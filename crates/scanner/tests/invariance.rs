//! Property tests pinning the scanner's determinism guarantees:
//! worker-count invariance (report, metrics export, unprobed set) and
//! graceful deadline degradation under arbitrary fault intensity.

use kt_faults::{Fault, FaultPlan};
use kt_scanner::{record_scan_metrics, run_scan, PortState, ScanConfig};
use kt_simnet::{HostEnv, Os, SimNet};
use kt_trace::metrics::Registry;
use kt_trace::names::describe_defaults;
use proptest::prelude::*;

fn os_from(idx: u8) -> Os {
    Os::ALL[idx as usize % Os::ALL.len()]
}

fn config(seed: u64, rate: f64, deadline_ms: u64, workers: usize) -> ScanConfig {
    let mut cfg = ScanConfig::new(seed);
    cfg.workers = workers;
    cfg.udp = true;
    cfg.ipv6 = true;
    cfg.deadline_ms = deadline_ms;
    cfg.sequences = vec![vec![6463, 6464, 6465], vec![80, 443, 8080]];
    cfg.faults = FaultPlan::none(seed)
        .with_rate(Fault::ProbeDrop, rate)
        .with_rate(Fault::ProbeDelay, rate)
        .with_rate(Fault::ConnectionReset, rate)
        .with_rate(Fault::DnsFlap, rate)
        .with_rate(Fault::TruncatedCapture, rate);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance bar: for any seed, OS, fault intensity, and
    /// budget, the report rendering AND the metrics export are
    /// byte-identical across 1/2/4/8 probe workers.
    #[test]
    fn scan_is_byte_identical_across_worker_counts(
        seed in any::<u64>(),
        os_idx in 0u8..3,
        rate in 0.0f64..0.5,
        deadline_ms in 1_000u64..600_000,
    ) {
        let env = HostEnv::sampled(os_from(os_idx), seed);
        let net = SimNet::new(seed);
        let mut outputs = Vec::new();
        for workers in [1usize, 2, 4, 8] {
            let cfg = config(seed, rate, deadline_ms, workers);
            let report = run_scan(&env, &net, &cfg);
            let mut reg = Registry::new();
            describe_defaults(&mut reg);
            record_scan_metrics(&report, &mut reg);
            outputs.push((report.render(), reg.render_prometheus()));
        }
        for pair in outputs.windows(2) {
            prop_assert_eq!(&pair[0].0, &pair[1].0, "report render differs");
            prop_assert_eq!(&pair[0].1, &pair[1].1, "metrics export differs");
        }
    }

    /// Graceful degradation: any budget, any fault intensity — the
    /// scan terminates, never panics, and accounts for every target
    /// exactly once across results / breaker-skips / unprobed.
    #[test]
    fn scan_degrades_gracefully_never_hangs(
        seed in any::<u64>(),
        os_idx in 0u8..3,
        rate in 0.0f64..1.0,
        deadline_ms in 1u64..100_000,
    ) {
        let env = HostEnv::sampled(os_from(os_idx), seed);
        let net = SimNet::new(seed);
        let cfg = config(seed, rate, deadline_ms, 4);
        let report = run_scan(&env, &net, &cfg);
        prop_assert_eq!(
            report.results.len() + report.skipped.len() + report.unprobed.len(),
            report.targets_total
        );
        // A clean, ample scan probes everything; a starved one says so
        // explicitly instead of silently shrinking coverage.
        if report.unprobed.is_empty() && report.skipped.is_empty() {
            prop_assert_eq!(report.results.len(), report.targets_total);
        }
        // States partition the probed set.
        let by_state = report.count(PortState::Open)
            + report.count(PortState::Closed)
            + report.count(PortState::Filtered);
        prop_assert_eq!(by_state, report.results.len());
    }
}
