//! Per-host circuit breakers.
//!
//! A LAN address with no host behind it costs a full timeout per knock
//! per attempt; sweeping several ports on a dead host burns the scan's
//! deadline budget for nothing. The breaker trips after a configured
//! run of consecutive hard failures on a host, rejects that host's
//! knocks while open, and half-opens on a clock schedule to let one
//! probe test whether the host came back.
//!
//! The state machine is the classic three-state breaker:
//!
//! ```text
//!            consecutive hard failures ≥ threshold
//!   Closed ────────────────────────────────────────▶ Open{until}
//!     ▲                                                  │
//!     │ probe succeeds                      now ≥ until  │
//!     │                                                  ▼
//!     └─────────────────────────────────────────── HalfOpen
//!                    probe fails ⇒ Open{until = now + cooldown}
//! ```
//!
//! All times are simulated milliseconds from the scan's virtual clock,
//! so breaker behaviour is deterministic and worker-count-invariant.

use serde::{Deserialize, Serialize};

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive hard failures (exhausted knocks) that trip the
    /// breaker. 0 disables tripping entirely.
    pub threshold: u32,
    /// How long the breaker stays open before half-opening, ms.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            threshold: 3,
            cooldown_ms: 5_000,
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Probes flow; failures are being counted.
    Closed,
    /// Probes are rejected until the cooldown expires at `until`.
    Open {
        /// Virtual time at which the breaker half-opens.
        until: u64,
    },
    /// One trial probe is admitted; its outcome decides the next state.
    HalfOpen,
}

/// One host's breaker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
        }
    }

    /// Current state (transitions Open→HalfOpen happen in [`admit`]).
    ///
    /// [`admit`]: CircuitBreaker::admit
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times this breaker has tripped (Closed/HalfOpen → Open).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// May a probe be sent at virtual time `now`? An open breaker past
    /// its cooldown half-opens and admits exactly one trial probe.
    pub fn admit(&mut self, now: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { until } if now >= until => {
                self.state = BreakerState::HalfOpen;
                true
            }
            BreakerState::Open { .. } => false,
        }
    }

    /// A knock on the host got a definitive answer: the host is alive.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// A knock exhausted its retries without a definitive answer at
    /// virtual time `now`.
    pub fn record_failure(&mut self, now: u64) {
        match self.state {
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.config.threshold > 0 && self.consecutive_failures >= self.config.threshold {
                    self.trip(now);
                }
            }
            // Failures cannot be recorded while open: admit() refused.
            BreakerState::Open { .. } => {}
        }
    }

    fn trip(&mut self, now: u64) {
        self.state = BreakerState::Open {
            until: now + self.config.cooldown_ms,
        };
        self.consecutive_failures = 0;
        self.trips += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            threshold: 3,
            cooldown_ms: 1_000,
        }
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = CircuitBreaker::new(cfg());
        b.record_failure(0);
        b.record_failure(10);
        b.record_success(); // a definitive answer resets the run
        b.record_failure(20);
        b.record_failure(30);
        assert_eq!(b.state(), BreakerState::Closed, "run was broken by success");
        b.record_failure(40);
        assert_eq!(b.state(), BreakerState::Open { until: 1_040 });
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn open_rejects_until_cooldown_then_half_opens() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..3 {
            assert!(b.admit(t));
            b.record_failure(t);
        }
        assert!(!b.admit(500), "open: rejected");
        assert!(b.admit(1_002), "past cooldown: half-open trial admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_success_closes_failure_reopens() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..3 {
            b.record_failure(t);
        }
        assert!(b.admit(2_000));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);

        // Trip again, then fail the half-open trial: immediate re-open
        // with a fresh cooldown, each transition counted as a trip.
        for t in 0..3 {
            b.record_failure(3_000 + t);
        }
        assert!(b.admit(5_000));
        b.record_failure(5_100);
        assert_eq!(b.state(), BreakerState::Open { until: 6_100 });
        assert_eq!(b.trips(), 3);
    }

    #[test]
    fn zero_threshold_disables_tripping() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            threshold: 0,
            cooldown_ms: 1_000,
        });
        for t in 0..50 {
            assert!(b.admit(t));
            b.record_failure(t);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }
}
