//! The scan engine: pure parallel knock computation, then a serial
//! deterministic fold.
//!
//! Worker-count invariance is structural, not statistical. Phase 1
//! computes every knock as a pure function of `(seed, target identity,
//! attempt)` — fault draws and backoff jitter hash the identity string,
//! never a worker id or a wall clock — so the phase can run on any
//! number of threads and produce the same values. Phase 2 folds the
//! precomputed knocks serially, in target order, over a virtual clock:
//! circuit breakers and the deadline budget live here, where there is
//! no concurrency to perturb them. `workers` therefore changes wall
//! time only; the [`ScanReport`] is byte-identical by construction.

use std::collections::BTreeMap;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use kt_faults::{Fault, FaultPlan, RetryPolicy};
use kt_netbase::services::{BIGIP_PORTS, DISCORD_PORTS, THREATMETRIX_PORTS};
use kt_netbase::Locality;
use kt_simnet::rng;
use kt_simnet::{ConnectOutcome, HostEnv, ServerBehavior, SimNet};

use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::probe::{
    AttemptOutcome, AttemptRecord, KnockReport, Payload, PortState, ProbeTarget, Protocol,
    TransientKind,
};
use crate::report::{ScanReport, SequenceResult};

/// Everything a scan needs, in one seeded value.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Campaign seed: keys every fault draw and every jitter draw.
    pub seed: u64,
    /// Loopback ports to knock.
    pub ports: Vec<u16>,
    /// Also send UDP knocks to every target.
    pub udp: bool,
    /// Also knock `[::1]` (dual-stack loopback sweep).
    pub ipv6: bool,
    /// Sweep the common LAN device addresses too.
    pub lan: bool,
    /// Knock sequences (ordered port lists, knock-rs style): each is
    /// matched only if every knock lands in order.
    pub sequences: Vec<Vec<u16>>,
    /// Optional hex payload carried by each knock.
    pub payload: Option<Payload>,
    /// Physical probe workers for the pure phase. Affects wall time
    /// only — results are identical for any value ≥ 1.
    pub workers: usize,
    /// Per-knock timeout, simulated ms.
    pub timeout_ms: u64,
    /// Retry policy for transient knock failures — the same type the
    /// crawl supervisor uses, so backoff schedules agree by property
    /// test.
    pub retry: RetryPolicy,
    /// Per-host circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Total scan budget, simulated ms: targets that would start after
    /// this deadline are reported in `unprobed` instead of probed.
    pub deadline_ms: u64,
    /// The fault plan every knock flows through.
    pub faults: FaultPlan,
}

impl ScanConfig {
    /// A production-shaped default scan: the paper's known port
    /// families plus the common local-service ports, TCP-only, v4
    /// loopback + LAN, three attempts per knock, 1 s per-knock timeout,
    /// 10-minute budget, no faults.
    pub fn new(seed: u64) -> ScanConfig {
        ScanConfig {
            seed,
            ports: default_port_set(),
            udp: false,
            ipv6: false,
            lan: true,
            sequences: Vec::new(),
            payload: None,
            workers: 4,
            timeout_ms: 1_000,
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff_ms: 100,
                max_backoff_ms: 2_000,
                recrawl: false,
            },
            breaker: BreakerConfig::default(),
            deadline_ms: 600_000,
            faults: FaultPlan::none(seed),
        }
    }
}

/// The default loopback sweep: every port the paper's detected
/// scanners knock (ThreatMetrix WebSockets, BIG-IP ASM HTTP, Discord's
/// RPC range) plus the local services the host model can run.
pub fn default_port_set() -> Vec<u16> {
    let mut ports: Vec<u16> = THREATMETRIX_PORTS
        .iter()
        .chain(BIGIP_PORTS.iter())
        .chain(DISCORD_PORTS.iter())
        .copied()
        // HostEnv's sampled services: dev server, RDP, VNC, TeamViewer,
        // X11, plus the LAN-ish 8080.
        .chain([3000, 3389, 5900, 5939, 6039, 8080])
        .collect();
    ports.sort_unstable();
    ports.dedup();
    ports
}

/// LAN addresses the sweep visits when `lan` is set: the three slots
/// the host model can populate plus one address nothing ever occupies
/// (so every scan exercises the black-hole → breaker path).
const LAN_ADDRS: [Ipv4Addr; 4] = [
    Ipv4Addr::new(192, 168, 0, 1),
    Ipv4Addr::new(192, 168, 0, 20),
    Ipv4Addr::new(192, 168, 0, 64),
    Ipv4Addr::new(192, 168, 0, 254),
];

/// Ports knocked on each LAN address: the admin-HTTP ports devices
/// actually bind plus TR-069. Four per host, so a threshold-3 breaker
/// trips on a dead host with one port still unknocked.
const LAN_PORTS: [u16; 4] = [80, 443, 7547, 8080];

/// Build the sorted, deduplicated target list for a config.
pub fn build_targets(cfg: &ScanConfig) -> Vec<ProbeTarget> {
    let mut targets = Vec::new();
    let mut stacks: Vec<IpAddr> = vec![IpAddr::V4(Ipv4Addr::LOCALHOST)];
    if cfg.ipv6 {
        stacks.push(IpAddr::V6(Ipv6Addr::LOCALHOST));
    }
    for addr in &stacks {
        for &port in &cfg.ports {
            targets.push(ProbeTarget::tcp(*addr, port));
            if cfg.udp {
                targets.push(ProbeTarget::udp(*addr, port));
            }
        }
    }
    if cfg.lan {
        for addr in LAN_ADDRS {
            for port in LAN_PORTS {
                targets.push(ProbeTarget::tcp(IpAddr::V4(addr), port));
                if cfg.udp {
                    targets.push(ProbeTarget::udp(IpAddr::V4(addr), port));
                }
            }
        }
    }
    targets.sort_unstable();
    targets.dedup();
    targets
}

/// What one knock's fabric consultation found, before fault overlay.
enum BaseOutcome {
    Answered { elapsed_ms: u64 },
    Refused { elapsed_ms: u64 },
    Silent,
}

/// Consult the simulated fabric for the target's true behaviour.
fn base_outcome(env: &HostEnv, net: &SimNet, target: &ProbeTarget) -> BaseOutcome {
    match target.protocol {
        Protocol::Tcp => match net.connect(env, target.addr, target.port, None) {
            ConnectOutcome::Established { connect_ms, .. } => BaseOutcome::Answered {
                elapsed_ms: connect_ms,
            },
            ConnectOutcome::Refused { elapsed_ms } => BaseOutcome::Refused { elapsed_ms },
            // The fabric's own 30 s connect timeout is longer than any
            // sane per-knock timeout; the scanner's clock governs.
            ConnectOutcome::TimedOut { .. } => BaseOutcome::Silent,
            // Unreachable for plaintext knocks (no TLS requested), but
            // a knock must never panic on a surprising fabric answer.
            ConnectOutcome::CertError { .. } | ConnectOutcome::TlsProtocolError { .. } => {
                BaseOutcome::Silent
            }
        },
        Protocol::Udp => {
            // UDP has no handshake: the endpoint tables decide whether
            // a datagram is answered (listener), rejected with ICMP
            // port-unreachable (loopback, no listener), or swallowed
            // (empty LAN slot).
            let endpoint = match (Locality::of_ip(target.addr), target.addr) {
                (Locality::Loopback, _) => env.localhost_endpoint(target.port),
                (Locality::Private, IpAddr::V4(v4)) => env.lan_endpoint(v4, target.port),
                _ => kt_simnet::Endpoint {
                    behavior: ServerBehavior::Blackhole,
                    certificate: None,
                },
            };
            let locality = Locality::of_ip(target.addr);
            let key = format!("udp/{}:{}", target.addr, target.port);
            match endpoint.behavior {
                ServerBehavior::Refused => BaseOutcome::Refused {
                    elapsed_ms: net.latency().refused_ms(locality, &key),
                },
                ServerBehavior::Blackhole => BaseOutcome::Silent,
                _ => BaseOutcome::Answered {
                    elapsed_ms: net.latency().connect_ms(locality, &key),
                },
            }
        }
    }
}

/// One knock attempt with the fault plan overlaid. Pure in
/// `(seed, id, attempt)`: every random draw hashes the identity.
fn knock_once(
    env: &HostEnv,
    net: &SimNet,
    cfg: &ScanConfig,
    target: &ProbeTarget,
    id: &str,
    attempt: u32,
) -> AttemptRecord {
    let plan = &cfg.faults;
    // Loopback knocks address `localhost` by name; a flapping stub
    // resolver fails the attempt before a packet leaves the machine.
    if target.addr.is_loopback() && plan.injects(Fault::DnsFlap, id, attempt) {
        return AttemptRecord {
            outcome: AttemptOutcome::Transient(TransientKind::DnsFlap),
            elapsed_ms: net.latency().dns_ms("localhost"),
        };
    }
    // The knock packet itself vanishes: indistinguishable from a black
    // hole, charged at the full per-knock timeout.
    if plan.injects(Fault::ProbeDrop, id, attempt) {
        return AttemptRecord {
            outcome: AttemptOutcome::Transient(TransientKind::Timeout),
            elapsed_ms: cfg.timeout_ms,
        };
    }
    // Path delay: added latency, possibly past the timeout.
    let delay_ms = if plan.injects(Fault::ProbeDelay, id, attempt) {
        rng::range(
            cfg.seed,
            &format!("probe-delay/{id}/{attempt}"),
            25.0,
            cfg.timeout_ms as f64 * 1.5,
        ) as u64
    } else {
        0
    };
    let timed = |elapsed_ms: u64, outcome: AttemptOutcome| {
        let total = elapsed_ms + delay_ms;
        if total >= cfg.timeout_ms {
            AttemptRecord {
                outcome: AttemptOutcome::Transient(TransientKind::Timeout),
                elapsed_ms: cfg.timeout_ms,
            }
        } else {
            AttemptRecord {
                outcome,
                elapsed_ms: total,
            }
        }
    };
    match base_outcome(env, net, target) {
        BaseOutcome::Answered { elapsed_ms } => {
            if plan.injects(Fault::ConnectionReset, id, attempt) {
                return timed(elapsed_ms, AttemptOutcome::Transient(TransientKind::Reset));
            }
            if plan.injects(Fault::TruncatedCapture, id, attempt) {
                return timed(
                    elapsed_ms,
                    AttemptOutcome::Transient(TransientKind::Truncated),
                );
            }
            timed(elapsed_ms, AttemptOutcome::Definitive(PortState::Open))
        }
        BaseOutcome::Refused { elapsed_ms } => {
            timed(elapsed_ms, AttemptOutcome::Definitive(PortState::Closed))
        }
        BaseOutcome::Silent => AttemptRecord {
            outcome: AttemptOutcome::Transient(TransientKind::Timeout),
            elapsed_ms: cfg.timeout_ms,
        },
    }
}

/// The listener / device name behind an open port, if the host model
/// knows one.
fn service_name(env: &HostEnv, target: &ProbeTarget) -> Option<String> {
    match (Locality::of_ip(target.addr), target.addr) {
        (Locality::Loopback, _) => env
            .listeners()
            .find(|l| l.port == target.port)
            .map(|l| l.name.clone()),
        (Locality::Private, IpAddr::V4(v4)) => env
            .lan_devices()
            .find(|d| d.address == v4 && d.port == target.port)
            .map(|d| d.kind.clone()),
        _ => None,
    }
}

/// The full retry loop for one target under identity `id`. Pure: the
/// same `(env, net, cfg, target, id)` always produces the same record.
fn knock(
    env: &HostEnv,
    net: &SimNet,
    cfg: &ScanConfig,
    target: &ProbeTarget,
    id: &str,
) -> KnockReport {
    let max_attempts = cfg.retry.max_attempts.max(1);
    let mut attempts = Vec::new();
    let mut knock_ms: u64 = 0;
    for attempt in 1..=max_attempts {
        let rec = knock_once(env, net, cfg, target, id, attempt);
        knock_ms += rec.elapsed_ms;
        let definitive = rec.outcome.is_definitive();
        attempts.push(rec);
        if definitive {
            break;
        }
        if attempt < max_attempts {
            knock_ms += cfg.retry.backoff_ms(cfg.seed, id, attempt);
        }
    }
    let state = match attempts.last().expect("≥1 attempt").outcome {
        AttemptOutcome::Definitive(s) => s,
        AttemptOutcome::Transient(_) => PortState::Filtered,
    };
    let service = if state == PortState::Open {
        service_name(env, target)
    } else {
        None
    };
    KnockReport {
        target: *target,
        service,
        state,
        attempts,
        knock_ms,
    }
}

/// Compute `jobs.len()` knocks on `workers` threads. The job list and
/// output order are fixed; threads race only over *which* pure
/// computation they pick up next, never over any value.
fn knock_all(
    env: &HostEnv,
    net: &SimNet,
    cfg: &ScanConfig,
    jobs: &[(ProbeTarget, String)],
) -> Vec<KnockReport> {
    let workers = cfg.workers.max(1).min(jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<KnockReport>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (target, id) = &jobs[i];
                let report = knock(env, net, cfg, target, id);
                *slots[i].lock().expect("slot poisoned") = Some(report);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot poisoned")
                .expect("job computed")
        })
        .collect()
}

/// Run a full scan: sweep + sequences, breakers, deadline budget.
/// Never panics, never hangs; a scan that runs out of budget returns a
/// partial report with an explicit `unprobed` set.
pub fn run_scan(env: &HostEnv, net: &SimNet, cfg: &ScanConfig) -> ScanReport {
    let targets = build_targets(cfg);

    // ---- Phase 1: pure parallel knock computation. -------------------
    let mut jobs: Vec<(ProbeTarget, String)> = targets.iter().map(|t| (*t, t.identity())).collect();
    // Sequence steps are independent knocks with their own identities:
    // step j of sequence i draws its own faults and jitter even when
    // the same port also appears in the sweep.
    let loopback = IpAddr::V4(Ipv4Addr::LOCALHOST);
    let mut seq_job_index = Vec::new();
    for (si, seq) in cfg.sequences.iter().enumerate() {
        let mut steps = Vec::new();
        for (pi, &port) in seq.iter().enumerate() {
            let target = ProbeTarget::tcp(loopback, port);
            steps.push(jobs.len());
            jobs.push((target, format!("seq{si}/step{pi}/{}", target.identity())));
        }
        seq_job_index.push(steps);
    }
    let raw = knock_all(env, net, cfg, &jobs);

    // ---- Phase 2: serial deterministic fold. -------------------------
    let mut clock: u64 = 0;
    let mut breakers: BTreeMap<IpAddr, CircuitBreaker> = BTreeMap::new();
    let mut results = Vec::new();
    let mut skipped = Vec::new();
    let mut unprobed = Vec::new();
    for (i, target) in targets.iter().enumerate() {
        if clock >= cfg.deadline_ms {
            unprobed.push(target.identity());
            continue;
        }
        let breaker = breakers
            .entry(target.addr)
            .or_insert_with(|| CircuitBreaker::new(cfg.breaker));
        if !breaker.admit(clock) {
            skipped.push(target.identity());
            continue;
        }
        let report = raw[i].clone();
        clock += report.knock_ms;
        if report.state.is_definitive() {
            breaker.record_success();
        } else {
            breaker.record_failure(clock);
        }
        results.push(report);
    }
    let breaker_trips: u64 = breakers.values().map(|b| b.trips()).sum();

    // Sequences run after the sweep, on the same clock and budget.
    // Breakers do not apply: a sequence is explicit operator intent,
    // and skipping a step would void the order-match anyway.
    let mut sequences = Vec::new();
    for (si, seq) in cfg.sequences.iter().enumerate() {
        let mut states = Vec::new();
        let mut complete = true;
        for &job in &seq_job_index[si] {
            if clock >= cfg.deadline_ms {
                complete = false;
                break;
            }
            let step = &raw[job];
            clock += step.knock_ms;
            states.push(step.state);
        }
        // knock-rs port-order matching: the sequence matches only if
        // every knock was delivered, in order — a definitive answer
        // (accept or RST) proves delivery; a drop breaks the chain.
        let matched = complete && !states.is_empty() && states.iter().all(|s| s.is_definitive());
        sequences.push(SequenceResult {
            ports: seq.clone(),
            states,
            matched,
            complete,
        });
    }

    ScanReport {
        seed: cfg.seed,
        os: env.os,
        targets_total: targets.len(),
        results,
        skipped,
        unprobed,
        sequences,
        breaker_trips,
        virtual_elapsed_ms: clock,
        deadline_ms: cfg.deadline_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_simnet::Os;

    fn world(seed: u64) -> (HostEnv, SimNet) {
        (HostEnv::sampled(Os::Windows, seed), SimNet::new(seed))
    }

    fn storm(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan::none(seed)
            .with_rate(Fault::ProbeDrop, rate)
            .with_rate(Fault::ProbeDelay, rate)
            .with_rate(Fault::ConnectionReset, rate)
            .with_rate(Fault::DnsFlap, rate)
            .with_rate(Fault::TruncatedCapture, rate)
    }

    #[test]
    fn clean_scan_finds_exactly_the_listening_services() {
        // Seed 3 ^ 'W' gives Windows RDP+Discord in the sampled env —
        // assert against the env itself rather than hard-coding.
        let (env, net) = world(3);
        let cfg = ScanConfig::new(3);
        let report = run_scan(&env, &net, &cfg);
        let mut open: Vec<u16> = report
            .results
            .iter()
            .filter(|r| r.state == PortState::Open && r.target.addr.is_loopback())
            .map(|r| r.target.port)
            .collect();
        open.sort_unstable();
        let mut listening: Vec<u16> = env
            .listeners()
            .filter(|l| cfg.ports.contains(&l.port))
            .map(|l| l.port)
            .collect();
        listening.sort_unstable();
        assert_eq!(open, listening, "active scan = ground truth, no faults");
        assert!(report.unprobed.is_empty(), "budget is ample");
        // Open ports carry their service names.
        for r in report.results.iter().filter(|r| r.state == PortState::Open) {
            if r.target.addr.is_loopback() {
                assert!(
                    r.service.is_some(),
                    "{} open but unnamed",
                    r.target.identity()
                );
            }
        }
    }

    #[test]
    fn udp_and_ipv6_targets_probe_both_stacks() {
        let (env, net) = world(3);
        let mut cfg = ScanConfig::new(3);
        cfg.udp = true;
        cfg.ipv6 = true;
        let report = run_scan(&env, &net, &cfg);
        let ids: Vec<String> = report.results.iter().map(|r| r.target.identity()).collect();
        assert!(ids.iter().any(|i| i.starts_with("udp/127.0.0.1:")));
        assert!(ids.iter().any(|i| i.starts_with("tcp/::1:")));
        assert!(ids.iter().any(|i| i.starts_with("udp/::1:")));
        // The two loopback stacks agree port-by-port (same listener
        // table behind both).
        for r in &report.results {
            if r.target.addr == IpAddr::V6(Ipv6Addr::LOCALHOST) {
                let v4 = report.results.iter().find(|o| {
                    o.target.addr == IpAddr::V4(Ipv4Addr::LOCALHOST)
                        && o.target.port == r.target.port
                        && o.target.protocol == r.target.protocol
                });
                if let Some(v4) = v4 {
                    assert_eq!(
                        v4.state, r.state,
                        "dual-stack disagreement on {}",
                        r.target.port
                    );
                }
            }
        }
    }

    #[test]
    fn dead_lan_hosts_trip_breakers_and_skip_knocks() {
        let (env, net) = world(3);
        let cfg = ScanConfig::new(3);
        let report = run_scan(&env, &net, &cfg);
        // 192.168.0.254 never hosts a device: four black-holed ports,
        // threshold 3 ⇒ the breaker trips before the fourth knock.
        assert!(report.breaker_trips >= 1, "dead host must trip its breaker");
        assert!(
            report.skipped.iter().any(|s| s.contains("192.168.0.254")),
            "tripped breaker must skip the host's remaining knocks: {:?}",
            report.skipped
        );
    }

    #[test]
    fn deadline_budget_degrades_to_explicit_unprobed_set() {
        let (env, net) = world(3);
        let mut cfg = ScanConfig::new(3);
        cfg.deadline_ms = 40; // a few knocks at most
        let report = run_scan(&env, &net, &cfg);
        assert!(
            !report.unprobed.is_empty(),
            "tight budget must leave targets unprobed"
        );
        assert_eq!(
            report.results.len() + report.skipped.len() + report.unprobed.len(),
            report.targets_total,
            "every target accounted for exactly once"
        );
        // The unprobed set is the tail of the target order: the scan
        // degraded by truncation, not by sampling.
        let all_ids: Vec<String> = build_targets(&cfg).iter().map(|t| t.identity()).collect();
        assert_eq!(
            report.unprobed.as_slice(),
            &all_ids[all_ids.len() - report.unprobed.len()..]
        );
    }

    #[test]
    fn fault_storm_always_terminates_with_full_accounting() {
        for seed in 0..8u64 {
            let (env, net) = world(seed);
            let mut cfg = ScanConfig::new(seed);
            cfg.faults = storm(seed, 0.20);
            cfg.udp = true;
            cfg.ipv6 = true;
            cfg.sequences = vec![vec![7000, 8000, 9000]];
            let report = run_scan(&env, &net, &cfg);
            assert_eq!(
                report.results.len() + report.skipped.len() + report.unprobed.len(),
                report.targets_total,
                "seed {seed}: results+skipped+unprobed must cover all targets"
            );
            assert!(report.virtual_elapsed_ms > 0);
        }
    }

    #[test]
    fn retries_and_backoff_follow_the_shared_policy_exactly() {
        // A fully dropped target burns max_attempts timeouts plus the
        // policy's exact backoff schedule — same math as the crawler.
        let (env, net) = world(3);
        let mut cfg = ScanConfig::new(3);
        cfg.faults = FaultPlan::none(3).with_rate(Fault::ProbeDrop, 1.0);
        let target = ProbeTarget::tcp(IpAddr::V4(Ipv4Addr::LOCALHOST), 6463);
        let id = target.identity();
        let report = knock(&env, &net, &cfg, &target, &id);
        assert_eq!(report.state, PortState::Filtered);
        assert_eq!(report.attempts.len(), 3);
        let expected = 3 * cfg.timeout_ms
            + cfg.retry.backoff_ms(cfg.seed, &id, 1)
            + cfg.retry.backoff_ms(cfg.seed, &id, 2);
        assert_eq!(report.knock_ms, expected);
    }

    #[test]
    fn sequences_match_only_when_every_knock_lands_in_order() {
        let (env, net) = world(3);
        let mut cfg = ScanConfig::new(3);
        cfg.sequences = vec![vec![7000, 8000, 9000]];
        let clean = run_scan(&env, &net, &cfg);
        // Loopback RSTs are definitive deliveries: the sequence lands.
        assert!(clean.sequences[0].matched, "{:?}", clean.sequences[0]);

        cfg.faults = FaultPlan::none(3).with_rate(Fault::ProbeDrop, 1.0);
        let dropped = run_scan(&env, &net, &cfg);
        assert!(
            !dropped.sequences[0].matched,
            "dropped knocks break the chain"
        );
        assert!(dropped.sequences[0].complete, "budget was not the cause");
    }

    #[test]
    fn worker_count_never_changes_the_report() {
        for seed in [3u64, 11, 42] {
            let (env, net) = world(seed);
            let mut renders = Vec::new();
            for workers in [1usize, 2, 4, 8] {
                let mut cfg = ScanConfig::new(seed);
                cfg.workers = workers;
                cfg.udp = true;
                cfg.ipv6 = true;
                cfg.faults = storm(seed, 0.20);
                cfg.sequences = vec![vec![6463, 6464], vec![80, 443]];
                renders.push(run_scan(&env, &net, &cfg).render());
            }
            assert!(
                renders.windows(2).all(|w| w[0] == w[1]),
                "seed {seed}: report must be byte-identical across worker counts"
            );
        }
    }
}
