//! Scan reports: the deterministic result of a sweep, its stable text
//! rendering, and its metrics export.
//!
//! Everything here is derived from the serial fold in
//! [`engine::run_scan`](crate::engine::run_scan), so every field — and
//! therefore [`ScanReport::render`] and
//! [`record_scan_metrics`] — is byte-identical across probe-worker
//! counts. CI diffs the rendering across `--concurrency 1` and `8`.

use std::fmt::Write as _;

use kt_simnet::Os;
use kt_trace::metrics::{Labels, Registry};
use kt_trace::names;
use serde::{Deserialize, Serialize};

use crate::probe::{KnockReport, PortState};

/// Outcome of one knock sequence (ordered port list).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequenceResult {
    /// The configured ports, in knock order.
    pub ports: Vec<u16>,
    /// Final state of each step actually knocked.
    pub states: Vec<PortState>,
    /// True when every knock was delivered in order (each step got a
    /// definitive answer) — the knock-rs port-order match.
    pub matched: bool,
    /// False when the deadline budget cut the sequence short.
    pub complete: bool,
}

/// The full, deterministic result of one scan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanReport {
    /// Campaign seed the scan ran under.
    pub seed: u64,
    /// The probed machine's OS.
    pub os: Os,
    /// Targets the sweep intended to knock.
    pub targets_total: usize,
    /// Knocks that ran, in target order.
    pub results: Vec<KnockReport>,
    /// Target identities skipped by an open circuit breaker.
    pub skipped: Vec<String>,
    /// Target identities never started: the deadline budget ran out.
    /// Always the tail of the target order (truncation, not sampling).
    pub unprobed: Vec<String>,
    /// Knock-sequence outcomes, in configuration order.
    pub sequences: Vec<SequenceResult>,
    /// Circuit-breaker trips across all hosts.
    pub breaker_trips: u64,
    /// Total simulated time the scan consumed, ms.
    pub virtual_elapsed_ms: u64,
    /// The budget the scan ran under, ms.
    pub deadline_ms: u64,
}

impl ScanReport {
    /// Knock attempts sent, retries included.
    pub fn knocks(&self) -> u64 {
        self.results.iter().map(|r| r.attempts.len() as u64).sum()
    }

    /// Retry attempts (attempts beyond each target's first).
    pub fn retries(&self) -> u64 {
        self.results.iter().map(|r| r.retries()).sum()
    }

    /// Attempts that hit the per-knock timeout.
    pub fn timeouts(&self) -> u64 {
        self.results.iter().map(|r| r.timeouts()).sum()
    }

    /// Results in a given final state.
    pub fn count(&self, state: PortState) -> usize {
        self.results.iter().filter(|r| r.state == state).count()
    }

    /// The open results, in target order.
    pub fn open(&self) -> impl Iterator<Item = &KnockReport> {
        self.results.iter().filter(|r| r.state == PortState::Open)
    }

    /// Stable text rendering: byte-identical across worker counts, and
    /// the thing CI diffs between `--concurrency 1` and `8`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "active scan: seed={} os={}", self.seed, self.os.name());
        let _ = writeln!(
            out,
            "  targets: {}  probed: {}  skipped(breaker): {}  unprobed(deadline): {}",
            self.targets_total,
            self.results.len(),
            self.skipped.len(),
            self.unprobed.len(),
        );
        let _ = writeln!(
            out,
            "  knocks: {}  retries: {}  timeouts: {}  breaker trips: {}",
            self.knocks(),
            self.retries(),
            self.timeouts(),
            self.breaker_trips,
        );
        let _ = writeln!(
            out,
            "  sim elapsed: {} ms (budget {} ms)",
            self.virtual_elapsed_ms, self.deadline_ms
        );
        let _ = writeln!(
            out,
            "  states: open={} closed={} filtered={}",
            self.count(PortState::Open),
            self.count(PortState::Closed),
            self.count(PortState::Filtered),
        );
        for r in self.open() {
            let _ = writeln!(
                out,
                "    open {}  {}  ({} attempt{}, {} ms)",
                r.target.identity(),
                r.service.as_deref().unwrap_or("unknown service"),
                r.attempts.len(),
                if r.attempts.len() == 1 { "" } else { "s" },
                r.knock_ms,
            );
        }
        if !self.skipped.is_empty() {
            let _ = writeln!(out, "  breaker-skipped:");
            for id in &self.skipped {
                let _ = writeln!(out, "    {id}");
            }
        }
        if !self.unprobed.is_empty() {
            let _ = writeln!(out, "  unprobed:");
            for id in &self.unprobed {
                let _ = writeln!(out, "    {id}");
            }
        }
        if !self.sequences.is_empty() {
            let _ = writeln!(out, "  sequences:");
            for s in &self.sequences {
                let ports: Vec<String> = s.ports.iter().map(|p| p.to_string()).collect();
                let states: Vec<&str> = s.states.iter().map(|st| st.label()).collect();
                let _ = writeln!(
                    out,
                    "    {} -> {} [{}]{}",
                    ports.join(","),
                    if s.matched { "matched" } else { "unmatched" },
                    states.join(","),
                    if s.complete { "" } else { " (budget cut)" },
                );
            }
        }
        out
    }
}

/// Export a scan into the metrics registry under the `scan_*` schema.
/// Derived from the report alone, so the export inherits its
/// worker-count invariance.
pub fn record_scan_metrics(report: &ScanReport, reg: &mut Registry) {
    let none = Labels::empty();
    reg.inc_counter(names::SCAN_KNOCKS_TOTAL, none.clone(), report.knocks());
    reg.inc_counter(names::SCAN_RETRIES_TOTAL, none.clone(), report.retries());
    reg.inc_counter(names::SCAN_TIMEOUTS_TOTAL, none.clone(), report.timeouts());
    reg.inc_counter(
        names::SCAN_BREAKER_TRIPS_TOTAL,
        none.clone(),
        report.breaker_trips,
    );
    reg.inc_counter(
        names::SCAN_BREAKER_SKIPS_TOTAL,
        none.clone(),
        report.skipped.len() as u64,
    );
    reg.inc_counter(
        names::SCAN_UNPROBED_TOTAL,
        none.clone(),
        report.unprobed.len() as u64,
    );
    reg.set_gauge(
        names::SCAN_OPEN_PORTS,
        none.clone(),
        report.count(PortState::Open) as f64,
    );
    for r in &report.results {
        for attempt in &r.attempts {
            reg.observe(&names::SCAN_KNOCK_SECONDS, none.clone(), attempt.elapsed_ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_scan, ScanConfig};
    use kt_faults::{Fault, FaultPlan};
    use kt_simnet::{HostEnv, SimNet};
    use kt_trace::names::describe_defaults;

    fn scan(seed: u64, workers: usize) -> ScanReport {
        let env = HostEnv::sampled(Os::Windows, seed);
        let net = SimNet::new(seed);
        let mut cfg = ScanConfig::new(seed);
        cfg.workers = workers;
        cfg.faults = FaultPlan::none(seed)
            .with_rate(Fault::ProbeDrop, 0.15)
            .with_rate(Fault::ConnectionReset, 0.10);
        cfg.sequences = vec![vec![6463, 6464, 6465]];
        run_scan(&env, &net, &cfg)
    }

    #[test]
    fn render_mentions_every_accounting_line() {
        let report = scan(7, 4);
        let text = report.render();
        assert!(text.contains("active scan: seed=7 os=Windows"));
        assert!(text.contains("targets:"));
        assert!(text.contains("knocks:"));
        assert!(text.contains("states: open="));
        assert!(text.contains("sequences:"));
    }

    #[test]
    fn metrics_export_is_worker_count_invariant() {
        let mut renders = Vec::new();
        for workers in [1usize, 8] {
            let report = scan(7, workers);
            let mut reg = Registry::new();
            describe_defaults(&mut reg);
            record_scan_metrics(&report, &mut reg);
            renders.push(reg.render_prometheus());
        }
        assert_eq!(renders[0], renders[1]);
    }

    #[test]
    fn metrics_counts_match_report_counts() {
        let report = scan(7, 4);
        let mut reg = Registry::new();
        describe_defaults(&mut reg);
        record_scan_metrics(&report, &mut reg);
        let text = reg.render_prometheus();
        assert!(text.contains(&format!("scan_knocks_total {}", report.knocks())));
        assert!(text.contains(&format!("scan_retries_total {}", report.retries())));
        assert!(
            text.contains(&format!("scan_knock_seconds_count {}", report.knocks())),
            "one histogram observation per knock attempt"
        );
    }
}
