//! Active local-network probing: the "knock" side of knock-and-talk.
//!
//! The paper's passive pipeline records what website scripts *send* at
//! the visitor's local network during a 20-second capture window. This
//! crate is the complementary ground-truth instrument: a deterministic
//! port scanner that actively knocks TCP and UDP ports on the same
//! simulated [`HostEnv`](kt_simnet::HostEnv) — loopback services on
//! both IP stacks and LAN devices — so analysis can cross-validate
//! passive detection against what is *actually* listening.
//!
//! Robustness is the point, not an afterthought:
//!
//! - every knock has a per-knock timeout drawn against the simulated
//!   latency model, and transient failures retry under the same
//!   [`RetryPolicy`](kt_faults::RetryPolicy) the crawl supervisor uses
//!   (exponential backoff + deterministic jitter — one policy type,
//!   property-tested to agree across consumers);
//! - probe I/O flows through [`kt_faults`] fault plans: seeded DNS
//!   flaps, connection resets, truncated reads, and the probe-specific
//!   [`Fault::ProbeDrop`](kt_faults::Fault) /
//!   [`Fault::ProbeDelay`](kt_faults::Fault) kinds;
//! - per-host circuit breakers trip after consecutive hard failures
//!   and half-open on a clock schedule, so black-holed hosts cannot
//!   starve the sweep;
//! - a total per-scan deadline budget degrades gracefully: when it
//!   runs out the scan returns a partial [`ScanReport`] with an
//!   explicit `unprobed` set — never a panic, never a hang.
//!
//! Determinism is structural: knocks are computed as pure functions of
//! `(seed, target identity, attempt)` in a parallel phase, then folded
//! serially over a virtual clock. Worker count parallelises the pure
//! phase only, so reports are byte-identical across `--concurrency`
//! settings by construction.

pub mod breaker;
pub mod engine;
pub mod probe;
pub mod report;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use engine::{default_port_set, run_scan, ScanConfig};
pub use probe::{AttemptRecord, KnockReport, Payload, PortState, ProbeTarget, Protocol};
pub use report::{record_scan_metrics, ScanReport, SequenceResult};
