//! Probe vocabulary: targets, payloads, per-attempt outcomes, and the
//! per-target knock record.

use std::net::IpAddr;

use serde::{Deserialize, Serialize};

/// Transport protocol of a knock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// TCP connect scan (SYN, await SYN-ACK or RST).
    Tcp,
    /// UDP datagram probe (await a reply or an ICMP port-unreachable).
    Udp,
}

impl Protocol {
    /// Wire label, used in target identities and reports.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Tcp => "tcp",
            Protocol::Udp => "udp",
        }
    }
}

/// One `(address, port, protocol)` the scanner knocks. Ordering groups
/// targets by host first so the serial fold sees each host's ports
/// consecutively — that is what lets a tripped breaker actually skip
/// the host's remaining ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProbeTarget {
    /// Destination address (loopback or RFC 1918 in practice).
    pub addr: IpAddr,
    /// Destination port.
    pub port: u16,
    /// Transport.
    pub protocol: Protocol,
}

impl ProbeTarget {
    /// A TCP target.
    pub fn tcp(addr: IpAddr, port: u16) -> ProbeTarget {
        ProbeTarget {
            addr,
            port,
            protocol: Protocol::Tcp,
        }
    }

    /// A UDP target.
    pub fn udp(addr: IpAddr, port: u16) -> ProbeTarget {
        ProbeTarget {
            addr,
            port,
            protocol: Protocol::Udp,
        }
    }

    /// The stable identity string, e.g. `tcp/127.0.0.1:3389`. This is
    /// the RNG key for fault injection and backoff jitter: every
    /// random draw about this target hashes this string, never a loop
    /// index or worker id.
    pub fn identity(&self) -> String {
        format!("{}/{}:{}", self.protocol.label(), self.addr, self.port)
    }
}

/// A hex-encoded probe payload (the knock-rs idiom: UDP knocks carry a
/// recognisable datagram, TCP knocks may send a banner-elicit string).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Payload(Vec<u8>);

impl Payload {
    /// Parse from hex text (`"0d0a0d0a"`). Case-insensitive; an odd
    /// length or a non-hex digit is a typed error, not a panic.
    pub fn from_hex(s: &str) -> Result<Payload, String> {
        let s = s.trim();
        if !s.len().is_multiple_of(2) {
            return Err(format!("odd-length hex payload ({} digits)", s.len()));
        }
        let mut bytes = Vec::with_capacity(s.len() / 2);
        let digits = s.as_bytes();
        for pair in digits.chunks(2) {
            let hi = (pair[0] as char).to_digit(16);
            let lo = (pair[1] as char).to_digit(16);
            match (hi, lo) {
                (Some(h), Some(l)) => bytes.push((h * 16 + l) as u8),
                _ => {
                    return Err(format!(
                        "invalid hex digit in payload at byte {}",
                        bytes.len()
                    ))
                }
            }
        }
        Ok(Payload(bytes))
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Render back to lower-case hex.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

/// Final state of a probed port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortState {
    /// A listener answered (TCP accept / UDP reply).
    Open,
    /// The host refused (TCP RST / ICMP port-unreachable): definitive
    /// evidence the host is up and the port unbound.
    Closed,
    /// Every attempt died silently — a black hole or a dropping
    /// middlebox; retries were exhausted without a definitive answer.
    Filtered,
}

impl PortState {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            PortState::Open => "open",
            PortState::Closed => "closed",
            PortState::Filtered => "filtered",
        }
    }

    /// True when the knock produced a definitive answer (the packet
    /// demonstrably reached the host): open or closed.
    pub fn is_definitive(self) -> bool {
        !matches!(self, PortState::Filtered)
    }
}

/// A transient per-attempt failure, worth retrying under the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransientKind {
    /// No answer within the per-knock timeout (black hole, or an
    /// injected `ProbeDrop` / excessive `ProbeDelay`).
    Timeout,
    /// Connection reset mid-probe (injected `ConnectionReset`).
    Reset,
    /// The response read came back short (injected `TruncatedCapture`).
    Truncated,
    /// The loopback name flapped at the stub resolver (injected
    /// `DnsFlap`; loopback knocks address `localhost` by name).
    DnsFlap,
}

impl TransientKind {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            TransientKind::Timeout => "timeout",
            TransientKind::Reset => "reset",
            TransientKind::Truncated => "truncated",
            TransientKind::DnsFlap => "dns-flap",
        }
    }
}

/// What one knock attempt concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttemptOutcome {
    /// A definitive answer: the packet demonstrably reached the host.
    Definitive(PortState),
    /// A transient failure, worth retrying under the policy.
    Transient(TransientKind),
}

impl AttemptOutcome {
    /// True for definitive answers.
    pub fn is_definitive(self) -> bool {
        matches!(self, AttemptOutcome::Definitive(_))
    }
}

/// One knock attempt: its conclusion plus the simulated time it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttemptRecord {
    /// Definitive state or transient failure.
    pub outcome: AttemptOutcome,
    /// Simulated cost of this attempt, ms.
    pub elapsed_ms: u64,
}

/// The full per-target knock record: every attempt, the final state,
/// and the total simulated cost (attempts plus backoff waits).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnockReport {
    /// What was knocked.
    pub target: ProbeTarget,
    /// Listener / device name, when the port answered and the host
    /// environment knows one.
    pub service: Option<String>,
    /// Final state after retries.
    pub state: PortState,
    /// Every attempt, in order (length ≥ 1, ≤ `max_attempts`).
    pub attempts: Vec<AttemptRecord>,
    /// Total simulated cost: attempt latencies + backoff waits, ms.
    pub knock_ms: u64,
}

impl KnockReport {
    /// Retries = attempts beyond the first.
    pub fn retries(&self) -> u64 {
        (self.attempts.len() as u64).saturating_sub(1)
    }

    /// Attempts that hit the per-knock timeout.
    pub fn timeouts(&self) -> u64 {
        self.attempts
            .iter()
            .filter(|a| a.outcome == AttemptOutcome::Transient(TransientKind::Timeout))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn identity_strings_are_stable() {
        let t = ProbeTarget::tcp(IpAddr::V4(Ipv4Addr::LOCALHOST), 3389);
        assert_eq!(t.identity(), "tcp/127.0.0.1:3389");
        let u = ProbeTarget::udp("::1".parse().unwrap(), 5353);
        assert_eq!(u.identity(), "udp/::1:5353");
    }

    #[test]
    fn targets_sort_host_first() {
        let lo = IpAddr::V4(Ipv4Addr::LOCALHOST);
        let lan = IpAddr::V4(Ipv4Addr::new(192, 168, 0, 1));
        let mut v = [
            ProbeTarget::tcp(lan, 80),
            ProbeTarget::udp(lo, 9),
            ProbeTarget::tcp(lo, 6463),
            ProbeTarget::tcp(lo, 9),
        ];
        v.sort();
        // All loopback targets precede the LAN target; within a host,
        // ports ascend; at equal (host, port), TCP precedes UDP.
        assert_eq!(v[0], ProbeTarget::tcp(lo, 9));
        assert_eq!(v[1], ProbeTarget::udp(lo, 9));
        assert_eq!(v[2], ProbeTarget::tcp(lo, 6463));
        assert_eq!(v[3], ProbeTarget::tcp(lan, 80));
    }

    #[test]
    fn payload_hex_round_trips() {
        let p = Payload::from_hex("0D0a00ff").unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.to_hex(), "0d0a00ff");
        assert!(Payload::from_hex("").unwrap().is_empty());
    }

    #[test]
    fn payload_rejects_malformed_hex() {
        assert!(Payload::from_hex("abc").is_err(), "odd length");
        assert!(Payload::from_hex("zz").is_err(), "non-hex digit");
    }

    #[test]
    fn knock_report_counts_retries_and_timeouts() {
        let r = KnockReport {
            target: ProbeTarget::tcp(IpAddr::V4(Ipv4Addr::LOCALHOST), 80),
            service: None,
            state: PortState::Open,
            attempts: vec![
                AttemptRecord {
                    outcome: AttemptOutcome::Transient(TransientKind::Timeout),
                    elapsed_ms: 1_000,
                },
                AttemptRecord {
                    outcome: AttemptOutcome::Transient(TransientKind::Reset),
                    elapsed_ms: 3,
                },
                AttemptRecord {
                    outcome: AttemptOutcome::Definitive(PortState::Open),
                    elapsed_ms: 2,
                },
            ],
            knock_ms: 1_205,
        };
        assert_eq!(r.retries(), 2);
        assert_eq!(r.timeouts(), 1);
    }
}
