//! Property tests for the registry merge: folding per-worker sinks
//! into a registry is associative and commutative, so the exported
//! Prometheus text is a pure function of the recorded samples — never
//! of merge order, pre-merge grouping, or worker count.

use kt_trace::{names, Labels, Registry, WorkerSink};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::TestRng;

const SINKS: usize = 5;

/// One recorded sample: which sink saw it, which series it lands in,
/// and the value.
type Op = (usize, usize, u64);

const COUNTER_NAMES: [&str; 3] = [
    names::VISITS_TOTAL,
    names::RETRIES_TOTAL,
    names::LOCAL_OBSERVATIONS_TOTAL,
];
const LABEL_SETS: [&[(&str, &str)]; 3] = [
    &[("crawl", "T1"), ("os", "Linux")],
    &[("crawl", "T2"), ("os", "Mac")],
    &[],
];

/// Build the per-worker sinks a crawl would produce from a flat list
/// of samples. Even sample indices hit counters, odd ones hit the
/// analysis-stage histogram, so every run exercises both merge paths.
fn build_sinks(ops: &[Op]) -> Vec<WorkerSink> {
    let mut sinks: Vec<WorkerSink> = (0..SINKS).map(|_| WorkerSink::new()).collect();
    for (i, &(sink, series, value)) in ops.iter().enumerate() {
        let sink = &mut sinks[sink % SINKS];
        let labels = Labels::new(LABEL_SETS[series % LABEL_SETS.len()]);
        if i % 2 == 0 {
            let id = sink.counter(COUNTER_NAMES[series % COUNTER_NAMES.len()], labels);
            sink.add(id, value);
        } else {
            let id = sink.histogram(&names::ANALYSIS_STAGE_SECONDS, labels);
            sink.observe(id, value * 997); // spread across buckets
        }
    }
    sinks
}

fn export(registry: &Registry) -> String {
    registry.render_prometheus()
}

/// Fisher–Yates with the deterministic test RNG.
fn shuffled(n: usize, rng: &mut TestRng) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.below(i as u64 + 1) as usize);
    }
    order
}

proptest! {
    #[test]
    fn shuffled_merge_order_yields_identical_export(
        ops in vec((0usize..SINKS, 0usize..3, 1u64..100_000), 0..60),
        shuffle_seed in 0u64..u64::MAX,
    ) {
        let sinks = build_sinks(&ops);

        let mut in_order = Registry::new();
        names::describe_defaults(&mut in_order);
        for sink in &sinks {
            in_order.merge_sink(sink);
        }

        let mut rng = TestRng::from_label(&format!("shuffle-{shuffle_seed}"));
        let mut shuffled_reg = Registry::new();
        names::describe_defaults(&mut shuffled_reg);
        for i in shuffled(sinks.len(), &mut rng) {
            shuffled_reg.merge_sink(&sinks[i]);
        }

        prop_assert_eq!(export(&in_order), export(&shuffled_reg));
    }

    #[test]
    fn pre_merging_sinks_is_associative(
        ops in vec((0usize..SINKS, 0usize..3, 1u64..100_000), 0..60),
        split in 1usize..SINKS,
    ) {
        let sinks = build_sinks(&ops);

        // ((s0 ⊕ … ⊕ s_split-1) ⊕ (s_split ⊕ … )) via sink-level merge…
        let mut left = WorkerSink::new();
        for sink in &sinks[..split] {
            left.merge(sink);
        }
        let mut right = WorkerSink::new();
        for sink in &sinks[split..] {
            right.merge(sink);
        }
        let mut grouped = Registry::new();
        names::describe_defaults(&mut grouped);
        grouped.merge_sink(&left);
        grouped.merge_sink(&right);

        // …must equal folding each sink into the registry directly.
        let mut flat = Registry::new();
        names::describe_defaults(&mut flat);
        for sink in &sinks {
            flat.merge_sink(sink);
        }

        prop_assert_eq!(export(&grouped), export(&flat));
    }
}
