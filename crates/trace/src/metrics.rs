//! The metrics registry: counters, gauges, and fixed-bucket histograms
//! addressed by `&'static str` names plus low-cardinality labels, with
//! lock-free per-worker [`WorkerSink`]s merged at join.
//!
//! Determinism contract: every value that reaches the Prometheus export
//! is an integer (counters, raw histogram observations) or a
//! deterministic `f64` gauge, accumulated in structures whose merge is
//! associative and commutative (`u64`/`u128` sums, element-wise bucket
//! adds). Series render in `BTreeMap` order — metric name, then label
//! set — so the exported text is a pure function of the recorded
//! multiset of samples, never of worker count, claim order, or merge
//! order. Scaled values (histogram bounds and sums) are formatted by
//! exact decimal shifting, not floating-point arithmetic.

use std::collections::BTreeMap;

/// A sorted, deduplicated label set. Sorting at construction makes the
/// render order (and therefore the exported text) independent of the
/// order call sites happen to list their labels in.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Labels(Vec<(&'static str, String)>);

impl Labels {
    /// The empty label set.
    pub fn empty() -> Labels {
        Labels(Vec::new())
    }

    /// Build from `(key, value)` pairs. Keys must be unique.
    pub fn new(pairs: &[(&'static str, &str)]) -> Labels {
        let mut v: Vec<(&'static str, String)> =
            pairs.iter().map(|&(k, val)| (k, val.to_string())).collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        for pair in v.windows(2) {
            assert_ne!(pair[0].0, pair[1].0, "duplicate label key {:?}", pair[0].0);
        }
        Labels(v)
    }

    /// The pairs, sorted by key.
    pub fn pairs(&self) -> &[(&'static str, String)] {
        &self.0
    }

    /// Render as `{k="v",…}` with an optional extra pair appended in
    /// sorted position (used for the histogram `le` label); empty sets
    /// render as nothing unless an extra pair is given.
    fn render(&self, extra: Option<(&str, &str)>) -> String {
        if self.0.is_empty() && extra.is_none() {
            return String::new();
        }
        let mut parts: Vec<String> = self
            .0
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
            .collect();
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
            parts.sort();
        }
        format!("{{{}}}", parts.join(","))
    }
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Format `raw * 10^scale_exp` as an exact decimal string. Integer
/// arithmetic only: `format_scaled(1_234, -6)` is `"0.001234"`,
/// trailing zeros trimmed, so the text is byte-stable across platforms.
pub fn format_scaled(raw: u128, scale_exp: i32) -> String {
    if scale_exp >= 0 {
        let mut s = raw.to_string();
        if raw != 0 {
            s.extend(std::iter::repeat_n('0', scale_exp as usize));
        }
        return s;
    }
    let digits = (-scale_exp) as u32;
    let div = 10u128.pow(digits);
    let int = raw / div;
    let frac = raw % div;
    if frac == 0 {
        return int.to_string();
    }
    let mut frac_s = format!("{frac:0width$}", width = digits as usize);
    while frac_s.ends_with('0') {
        frac_s.pop();
    }
    format!("{int}.{frac_s}")
}

/// A histogram's shape: fixed raw-unit bucket bounds plus the decimal
/// exponent that converts raw observations to the exported unit (e.g.
/// microsecond observations with `scale_exp = -6` export as seconds).
#[derive(Debug)]
pub struct HistogramSpec {
    /// Metric name (without the `_bucket`/`_sum`/`_count` suffixes).
    pub name: &'static str,
    /// `# HELP` text.
    pub help: &'static str,
    /// Strictly increasing upper bounds, in raw units. An implicit
    /// `+Inf` bucket is always appended.
    pub buckets: &'static [u64],
    /// Export value = raw × 10^scale_exp.
    pub scale_exp: i32,
}

/// Accumulated histogram state: per-bucket counts (last slot is +Inf),
/// the raw-unit sum, and the observation count. Merging is element-wise
/// addition, hence associative and commutative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistData {
    counts: Vec<u64>,
    sum: u128,
    total: u64,
}

impl HistData {
    fn new(spec: &HistogramSpec) -> HistData {
        HistData {
            counts: vec![0; spec.buckets.len() + 1],
            sum: 0,
            total: 0,
        }
    }

    fn observe(&mut self, spec: &HistogramSpec, raw: u64) {
        let slot = spec
            .buckets
            .iter()
            .position(|&b| raw <= b)
            .unwrap_or(spec.buckets.len());
        self.counts[slot] += 1;
        self.sum += raw as u128;
        self.total += 1;
    }

    fn merge(&mut self, other: &HistData) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histogram merge across different bucket shapes"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.total += other.total;
    }

    /// Observation count.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Handle to a counter registered in a [`WorkerSink`] — incrementing
/// through it is a vector-index add, no lookup or allocation.
#[derive(Debug, Clone, Copy)]
pub struct CounterId(usize);

/// Handle to a histogram registered in a [`WorkerSink`].
#[derive(Debug, Clone, Copy)]
pub struct HistogramId(usize);

/// A per-worker metrics buffer. Workers own one exclusively (no locks,
/// no atomics) and the supervisor merges them at join; because every
/// stored value is a sum, the merged result is invariant under merge
/// order and worker count.
#[derive(Debug, Default)]
pub struct WorkerSink {
    counters: Vec<(&'static str, Labels, u64)>,
    histograms: Vec<(&'static HistogramSpec, Labels, HistData)>,
}

impl WorkerSink {
    /// An empty sink.
    pub fn new() -> WorkerSink {
        WorkerSink::default()
    }

    /// Register (or find) a counter series; the returned handle makes
    /// subsequent increments allocation-free.
    pub fn counter(&mut self, name: &'static str, labels: Labels) -> CounterId {
        if let Some(i) = self
            .counters
            .iter()
            .position(|(n, l, _)| *n == name && *l == labels)
        {
            return CounterId(i);
        }
        self.counters.push((name, labels, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Add `v` to a registered counter.
    pub fn add(&mut self, id: CounterId, v: u64) {
        self.counters[id.0].2 += v;
    }

    /// Add 1 to a registered counter.
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Register (or find) a histogram series.
    pub fn histogram(&mut self, spec: &'static HistogramSpec, labels: Labels) -> HistogramId {
        if let Some(i) = self
            .histograms
            .iter()
            .position(|(s, l, _)| s.name == spec.name && *l == labels)
        {
            return HistogramId(i);
        }
        self.histograms.push((spec, labels, HistData::new(spec)));
        HistogramId(self.histograms.len() - 1)
    }

    /// Record one raw-unit observation.
    pub fn observe(&mut self, id: HistogramId, raw: u64) {
        let (spec, _, data) = &mut self.histograms[id.0];
        data.observe(spec, raw);
    }

    /// Fold another sink into this one (sink-level pre-merge; the
    /// registry merge accepts either granularity).
    pub fn merge(&mut self, other: &WorkerSink) {
        for (name, labels, v) in &other.counters {
            let id = self.counter(name, labels.clone());
            self.add(id, *v);
        }
        for (spec, labels, data) in &other.histograms {
            let id = self.histogram(spec, labels.clone());
            self.histograms[id.0].2.merge(data);
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
struct Desc {
    help: &'static str,
    kind: Kind,
    spec: Option<&'static HistogramSpec>,
}

/// The supervisor-side registry. Single-threaded by design — wrap in a
/// `Mutex` (as [`crate::Trace`] does) for shared access; the hot path
/// never touches it because workers record into [`WorkerSink`]s.
#[derive(Debug, Default)]
pub struct Registry {
    descs: BTreeMap<&'static str, Desc>,
    counters: BTreeMap<&'static str, BTreeMap<Labels, u64>>,
    gauges: BTreeMap<&'static str, BTreeMap<Labels, f64>>,
    histograms: BTreeMap<&'static str, BTreeMap<Labels, HistData>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn describe(&mut self, name: &'static str, help: &'static str, kind: Kind) {
        let desc = self.descs.entry(name).or_insert(Desc {
            help,
            kind,
            spec: None,
        });
        assert_eq!(
            desc.kind, kind,
            "metric {name:?} re-registered as another kind"
        );
    }

    /// Declare a counter's help text.
    pub fn describe_counter(&mut self, name: &'static str, help: &'static str) {
        self.describe(name, help, Kind::Counter);
    }

    /// Declare a gauge's help text.
    pub fn describe_gauge(&mut self, name: &'static str, help: &'static str) {
        self.describe(name, help, Kind::Gauge);
    }

    /// Declare a histogram (name, help, buckets, unit scale).
    pub fn describe_histogram(&mut self, spec: &'static HistogramSpec) {
        self.describe(spec.name, spec.help, Kind::Histogram);
        self.descs.get_mut(spec.name).expect("just described").spec = Some(spec);
    }

    /// Add `v` to a counter series (creating it at 0 first).
    pub fn inc_counter(&mut self, name: &'static str, labels: Labels, v: u64) {
        self.describe(name, "", Kind::Counter);
        *self
            .counters
            .entry(name)
            .or_default()
            .entry(labels)
            .or_insert(0) += v;
    }

    /// Materialise a counter series at its current value (0 if new), so
    /// exports always contain it even when nothing incremented it.
    pub fn touch_counter(&mut self, name: &'static str, labels: Labels) {
        self.inc_counter(name, labels, 0);
    }

    /// Set a gauge series to an absolute value. Gauges are
    /// supervisor-owned: they carry no merge semantics, so they are set
    /// once from already-deterministic totals, never from workers.
    pub fn set_gauge(&mut self, name: &'static str, labels: Labels, v: f64) {
        self.describe(name, "", Kind::Gauge);
        self.gauges.entry(name).or_default().insert(labels, v);
    }

    /// Record one raw observation directly on the registry.
    pub fn observe(&mut self, spec: &'static HistogramSpec, labels: Labels, raw: u64) {
        self.describe_histogram(spec);
        self.histograms
            .entry(spec.name)
            .or_default()
            .entry(labels)
            .or_insert_with(|| HistData::new(spec))
            .observe(spec, raw);
    }

    /// Materialise a histogram series with zero observations.
    pub fn touch_histogram(&mut self, spec: &'static HistogramSpec, labels: Labels) {
        self.describe_histogram(spec);
        self.histograms
            .entry(spec.name)
            .or_default()
            .entry(labels)
            .or_insert_with(|| HistData::new(spec));
    }

    /// Fold a worker sink into the registry. Order-independent: all
    /// underlying values are sums.
    pub fn merge_sink(&mut self, sink: &WorkerSink) {
        for (name, labels, v) in &sink.counters {
            self.inc_counter(name, labels.clone(), *v);
        }
        for (spec, labels, data) in &sink.histograms {
            self.describe_histogram(spec);
            self.histograms
                .entry(spec.name)
                .or_default()
                .entry(labels.clone())
                .or_insert_with(|| HistData::new(spec))
                .merge(data);
        }
    }

    /// Read a counter series back (testing / cross-run diffing).
    pub fn counter_value(&self, name: &str, labels: &Labels) -> Option<u64> {
        self.counters.get(name)?.get(labels).copied()
    }

    /// Render the whole registry in Prometheus text exposition format.
    /// Output is sorted by metric name then label set, so two
    /// registries holding the same samples render byte-identically.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, desc) in &self.descs {
            if !desc.help.is_empty() {
                out.push_str(&format!("# HELP {name} {}\n", desc.help));
            }
            out.push_str(&format!("# TYPE {name} {}\n", desc.kind.as_str()));
            match desc.kind {
                Kind::Counter => {
                    for (labels, v) in self.counters.get(name).into_iter().flatten() {
                        out.push_str(&format!("{name}{} {v}\n", labels.render(None)));
                    }
                }
                Kind::Gauge => {
                    for (labels, v) in self.gauges.get(name).into_iter().flatten() {
                        out.push_str(&format!("{name}{} {v}\n", labels.render(None)));
                    }
                }
                Kind::Histogram => {
                    let spec = desc.spec.expect("histogram desc always carries its spec");
                    for (labels, data) in self.histograms.get(name).into_iter().flatten() {
                        let mut cumulative = 0u64;
                        for (slot, &bound) in spec.buckets.iter().enumerate() {
                            cumulative += data.counts[slot];
                            let le = format_scaled(bound as u128, spec.scale_exp);
                            out.push_str(&format!(
                                "{name}_bucket{} {cumulative}\n",
                                labels.render(Some(("le", &le)))
                            ));
                        }
                        cumulative += data.counts[spec.buckets.len()];
                        out.push_str(&format!(
                            "{name}_bucket{} {cumulative}\n",
                            labels.render(Some(("le", "+Inf")))
                        ));
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            labels.render(None),
                            format_scaled(data.sum, spec.scale_exp)
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            labels.render(None),
                            data.total
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_HIST: HistogramSpec = HistogramSpec {
        name: "test_seconds",
        help: "test histogram",
        buckets: &[1_000, 10_000, 100_000],
        scale_exp: -6,
    };

    #[test]
    fn labels_sort_and_render_deterministically() {
        let a = Labels::new(&[("os", "Linux"), ("crawl", "T1")]);
        let b = Labels::new(&[("crawl", "T1"), ("os", "Linux")]);
        assert_eq!(a, b);
        assert_eq!(a.render(None), "{crawl=\"T1\",os=\"Linux\"}");
        assert_eq!(Labels::empty().render(None), "");
    }

    #[test]
    fn label_values_escape_quotes_backslashes_newlines() {
        let l = Labels::new(&[("k", "a\"b\\c\nd")]);
        assert_eq!(l.render(None), "{k=\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn format_scaled_shifts_exactly() {
        assert_eq!(format_scaled(0, -6), "0");
        assert_eq!(format_scaled(1, -6), "0.000001");
        assert_eq!(format_scaled(1_234, -6), "0.001234");
        assert_eq!(format_scaled(21_000_000, -6), "21");
        assert_eq!(format_scaled(21_500_000, -6), "21.5");
        assert_eq!(format_scaled(7, 0), "7");
        assert_eq!(format_scaled(7, 3), "7000");
    }

    #[test]
    fn counter_gauge_render_in_name_then_label_order() {
        let mut reg = Registry::new();
        reg.describe_counter("b_total", "second");
        reg.describe_counter("a_total", "first");
        reg.inc_counter("b_total", Labels::new(&[("os", "Mac")]), 2);
        reg.inc_counter("b_total", Labels::new(&[("os", "Linux")]), 5);
        reg.inc_counter("a_total", Labels::empty(), 1);
        reg.set_gauge("z_ratio", Labels::empty(), 0.5);
        let text = reg.render_prometheus();
        let a = text.find("a_total 1").expect("a series");
        let b_linux = text.find("b_total{os=\"Linux\"} 5").expect("linux series");
        let b_mac = text.find("b_total{os=\"Mac\"} 2").expect("mac series");
        let z = text.find("z_ratio 0.5").expect("gauge");
        assert!(a < b_linux && b_linux < b_mac && b_mac < z);
        assert!(text.contains("# HELP a_total first\n# TYPE a_total counter\n"));
    }

    #[test]
    fn touch_counter_materialises_zero_series() {
        let mut reg = Registry::new();
        reg.describe_counter("idle_total", "never incremented");
        reg.touch_counter("idle_total", Labels::empty());
        assert!(reg.render_prometheus().contains("idle_total 0\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let mut reg = Registry::new();
        for raw in [500, 1_000, 5_000, 50_000, 1_000_000] {
            reg.observe(&TEST_HIST, Labels::empty(), raw);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("test_seconds_bucket{le=\"0.001\"} 2\n"));
        assert!(text.contains("test_seconds_bucket{le=\"0.01\"} 3\n"));
        assert!(text.contains("test_seconds_bucket{le=\"0.1\"} 4\n"));
        assert!(text.contains("test_seconds_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("test_seconds_sum 1.0565\n"));
        assert!(text.contains("test_seconds_count 5\n"));
        assert!(text.contains("# TYPE test_seconds histogram\n"));
    }

    #[test]
    fn histogram_le_sorts_with_other_labels() {
        let mut reg = Registry::new();
        reg.observe(&TEST_HIST, Labels::new(&[("stage", "decode")]), 10);
        let text = reg.render_prometheus();
        assert!(
            text.contains("test_seconds_bucket{le=\"0.001\",stage=\"decode\"} 1\n"),
            "le merges into sorted label position: {text}"
        );
    }

    #[test]
    fn sink_handles_are_stable_and_reused() {
        let mut sink = WorkerSink::new();
        let a = sink.counter("x_total", Labels::empty());
        let b = sink.counter("x_total", Labels::empty());
        assert_eq!(a.0, b.0);
        sink.inc(a);
        sink.add(b, 4);
        let mut reg = Registry::new();
        reg.describe_counter("x_total", "x");
        reg.merge_sink(&sink);
        assert_eq!(reg.counter_value("x_total", &Labels::empty()), Some(5));
    }

    #[test]
    fn registry_merge_equals_sink_premerge() {
        let mut s1 = WorkerSink::new();
        let c1 = s1.counter("v_total", Labels::new(&[("os", "Linux")]));
        s1.add(c1, 3);
        let h1 = s1.histogram(&TEST_HIST, Labels::empty());
        s1.observe(h1, 700);
        let mut s2 = WorkerSink::new();
        let h2 = s2.histogram(&TEST_HIST, Labels::empty());
        s2.observe(h2, 70_000);
        let c2 = s2.counter("v_total", Labels::new(&[("os", "Linux")]));
        s2.add(c2, 4);

        let mut direct = Registry::new();
        direct.describe_counter("v_total", "visits");
        direct.merge_sink(&s1);
        direct.merge_sink(&s2);

        let mut premerged = WorkerSink::new();
        premerged.merge(&s2);
        premerged.merge(&s1);
        let mut via_sink = Registry::new();
        via_sink.describe_counter("v_total", "visits");
        via_sink.merge_sink(&premerged);

        assert_eq!(direct.render_prometheus(), via_sink.render_prometheus());
    }
}
