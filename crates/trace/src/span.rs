//! Structured spans and events on the simulated clock.
//!
//! Workers record into a bounded [`SpanRing`] they own exclusively —
//! no locks in the visit loop, and a campaign that emits more spans
//! than the ring holds drops the *oldest* ones and counts the loss
//! instead of growing without bound. Timestamps are simulated-clock
//! milliseconds (the same `wall_ms` the crawl supervisor schedules on);
//! `Instant::now()` never appears in a sim path, so a trace replays
//! identically for a given seed.
//!
//! The exporter renders JSONL: one meta line (counts + drops), then
//! spans sorted by `(start_ms, end_ms, name, target, status, worker)`,
//! then events — a deterministic order for a fixed schedule, chosen so
//! diffs between two runs of the same configuration are meaningful.

use std::collections::VecDeque;

/// A completed span: a named interval on the simulated clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span kind, e.g. `"visit"` or `"recrawl"`.
    pub name: &'static str,
    /// Recording worker index.
    pub worker: u32,
    /// Simulated start, milliseconds.
    pub start_ms: u64,
    /// Simulated end, milliseconds.
    pub end_ms: u64,
    /// What the span worked on (domain, shard id, …).
    pub target: String,
    /// Terminal status, e.g. `"success"`, `"error"`, `"crashed"`.
    pub status: &'static str,
}

/// A point event on the simulated clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Event kind, e.g. `"retry"` or `"checkpoint"`.
    pub name: &'static str,
    /// Recording worker index.
    pub worker: u32,
    /// Simulated timestamp, milliseconds.
    pub at_ms: u64,
    /// What the event concerns.
    pub target: String,
    /// Free-form detail (error name, attempt number, …).
    pub detail: String,
}

/// A bounded per-worker buffer: keeps the most recent `cap` spans and
/// `cap` events, counting what it sheds.
#[derive(Debug)]
pub struct SpanRing {
    cap: usize,
    spans: VecDeque<SpanRecord>,
    events: VecDeque<EventRecord>,
    dropped: u64,
}

impl SpanRing {
    /// A ring holding at most `cap` spans and `cap` events.
    pub fn new(cap: usize) -> SpanRing {
        SpanRing {
            cap: cap.max(1),
            spans: VecDeque::new(),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Record a completed span, shedding the oldest if full.
    pub fn span(&mut self, record: SpanRecord) {
        if self.spans.len() == self.cap {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(record);
    }

    /// Record a point event, shedding the oldest if full.
    pub fn event(&mut self, record: EventRecord) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(record);
    }

    /// Spans currently held.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Records shed so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// The supervisor-side trace store: rings absorbed at join, exported
/// as JSONL.
#[derive(Debug, Default)]
pub struct TraceLog {
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    dropped: u64,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> TraceLog {
        TraceLog::default()
    }

    /// Fold a worker's ring into the log.
    pub fn absorb(&mut self, ring: SpanRing) {
        self.spans.extend(ring.spans);
        self.events.extend(ring.events);
        self.dropped += ring.dropped;
    }

    /// Spans held.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Events held.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Render as JSONL: meta line, sorted spans, sorted events.
    pub fn to_jsonl(&self) -> String {
        let mut spans: Vec<&SpanRecord> = self.spans.iter().collect();
        spans.sort_by(|a, b| {
            (a.start_ms, a.end_ms, a.name, &a.target, a.status, a.worker)
                .cmp(&(b.start_ms, b.end_ms, b.name, &b.target, b.status, b.worker))
        });
        let mut events: Vec<&EventRecord> = self.events.iter().collect();
        events.sort_by(|a, b| {
            (a.at_ms, a.name, &a.target, &a.detail, a.worker)
                .cmp(&(b.at_ms, b.name, &b.target, &b.detail, b.worker))
        });
        let mut out = format!(
            "{{\"type\":\"meta\",\"spans\":{},\"events\":{},\"dropped\":{}}}\n",
            spans.len(),
            events.len(),
            self.dropped
        );
        for s in spans {
            out.push_str(&format!(
                "{{\"type\":\"span\",\"name\":\"{}\",\"worker\":{},\"start_ms\":{},\
                 \"end_ms\":{},\"target\":\"{}\",\"status\":\"{}\"}}\n",
                escape_json(s.name),
                s.worker,
                s.start_ms,
                s.end_ms,
                escape_json(&s.target),
                escape_json(s.status),
            ));
        }
        for e in events {
            out.push_str(&format!(
                "{{\"type\":\"event\",\"name\":\"{}\",\"worker\":{},\"at_ms\":{},\
                 \"target\":\"{}\",\"detail\":\"{}\"}}\n",
                escape_json(e.name),
                e.worker,
                e.at_ms,
                escape_json(&e.target),
                escape_json(&e.detail),
            ));
        }
        out
    }
}

/// Minimal JSON string escaping (targets are domains and error names,
/// but be safe about quotes, backslashes, and control characters).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn visit(worker: u32, start_ms: u64, target: &str) -> SpanRecord {
        SpanRecord {
            name: "visit",
            worker,
            start_ms,
            end_ms: start_ms + 21_000,
            target: target.to_string(),
            status: "success",
        }
    }

    #[test]
    fn ring_sheds_oldest_and_counts_drops() {
        let mut ring = SpanRing::new(2);
        ring.span(visit(0, 0, "a.example"));
        ring.span(visit(0, 1, "b.example"));
        ring.span(visit(0, 2, "c.example"));
        assert_eq!(ring.span_count(), 2);
        assert_eq!(ring.dropped(), 1);
        let mut log = TraceLog::new();
        log.absorb(ring);
        let jsonl = log.to_jsonl();
        assert!(!jsonl.contains("a.example"), "oldest span shed");
        assert!(jsonl.contains("\"dropped\":1"));
    }

    #[test]
    fn export_is_sorted_not_insertion_ordered() {
        let mut log = TraceLog::new();
        let mut r1 = SpanRing::new(8);
        r1.span(visit(1, 500, "late.example"));
        let mut r0 = SpanRing::new(8);
        r0.span(visit(0, 100, "early.example"));
        log.absorb(r1);
        log.absorb(r0);
        let jsonl = log.to_jsonl();
        let early = jsonl.find("early.example").expect("early span present");
        let late = jsonl.find("late.example").expect("late span present");
        assert!(early < late, "spans sort by start time, not absorb order");
        assert!(jsonl.starts_with("{\"type\":\"meta\",\"spans\":2,"));
    }

    #[test]
    fn events_render_after_spans_with_escaping() {
        let mut log = TraceLog::new();
        let mut ring = SpanRing::new(4);
        ring.event(EventRecord {
            name: "retry",
            worker: 3,
            at_ms: 42,
            target: "x.example".to_string(),
            detail: "ERR_CONNECTION_RESET \"raw\"\n".to_string(),
        });
        log.absorb(ring);
        let jsonl = log.to_jsonl();
        assert!(jsonl.contains("\\\"raw\\\"\\n"));
        assert!(jsonl.contains("\"at_ms\":42"));
    }
}
