//! Campaign observability for the knock-talk pipeline.
//!
//! Three subsystems, one determinism contract:
//!
//! - [`metrics`]: a registry of counters, gauges, and fixed-bucket
//!   histograms addressed by `&'static str` names + low-cardinality
//!   labels, fed by lock-free per-worker [`WorkerSink`]s merged at
//!   join. Everything exported is schedule-invariant, so the
//!   Prometheus text is byte-identical across worker counts and
//!   kill/resume cycles (`tests/` and CI gate on this).
//! - [`span`]: structured spans/events on the *simulated* clock with a
//!   bounded per-worker ring buffer and a sorted JSONL exporter.
//!   `Instant::now()` never appears in a sim path.
//! - [`profile`]: the opt-in counting global allocator and a stage
//!   profiler producing a real-time/alloc breakdown table — the only
//!   place real wall clocks are allowed, and its output is never
//!   byte-compared.
//!
//! [`Trace`] bundles a registry and a trace log behind mutexes so the
//! supervisor can hand one handle to scoped worker threads; workers
//! only lock at join (to merge a whole sink/ring), never per sample.

pub mod metrics;
pub mod names;
pub mod profile;
pub mod span;

pub use metrics::{
    format_scaled, CounterId, HistData, HistogramId, HistogramSpec, Labels, Registry, WorkerSink,
};
pub use profile::{
    alloc_counts, count_allocs, live_bytes, peak_bytes, reset_peak_bytes, CountingAllocator,
    StageProfiler, StageRecord,
};
pub use span::{EventRecord, SpanRecord, SpanRing, TraceLog};

use std::sync::Mutex;

/// A shareable observability handle: the metrics registry plus the
/// span log, locked independently. Workers record into their own
/// [`WorkerSink`]/[`SpanRing`] and merge once at join, so the mutexes
/// see one uncontended lock per worker per campaign.
#[derive(Debug, Default)]
pub struct Trace {
    registry: Mutex<Registry>,
    log: Mutex<TraceLog>,
}

impl Trace {
    /// A trace with the standard metric schema pre-declared
    /// ([`names::describe_defaults`]).
    pub fn new() -> Trace {
        let mut registry = Registry::new();
        names::describe_defaults(&mut registry);
        Trace {
            registry: Mutex::new(registry),
            log: Mutex::new(TraceLog::new()),
        }
    }

    /// Fold a worker's metrics sink into the registry.
    pub fn merge_sink(&self, sink: &WorkerSink) {
        self.registry
            .lock()
            .expect("registry lock")
            .merge_sink(sink);
    }

    /// Fold a worker's span ring into the trace log.
    pub fn absorb_ring(&self, ring: SpanRing) {
        self.log.lock().expect("log lock").absorb(ring);
    }

    /// Add `v` to a counter series (supervisor-side convenience).
    pub fn inc_counter(&self, name: &'static str, labels: Labels, v: u64) {
        self.registry
            .lock()
            .expect("registry lock")
            .inc_counter(name, labels, v);
    }

    /// Set a gauge series from an already-deterministic total.
    pub fn set_gauge(&self, name: &'static str, labels: Labels, v: f64) {
        self.registry
            .lock()
            .expect("registry lock")
            .set_gauge(name, labels, v);
    }

    /// Record one raw histogram observation (supervisor-side).
    pub fn observe(&self, spec: &'static HistogramSpec, labels: Labels, raw: u64) {
        self.registry
            .lock()
            .expect("registry lock")
            .observe(spec, labels, raw);
    }

    /// Run `f` with the registry locked (batch updates, reads).
    pub fn with_registry<T>(&self, f: impl FnOnce(&mut Registry) -> T) -> T {
        f(&mut self.registry.lock().expect("registry lock"))
    }

    /// Render the registry as Prometheus text exposition format.
    pub fn export_prometheus(&self) -> String {
        self.registry
            .lock()
            .expect("registry lock")
            .render_prometheus()
    }

    /// Render the span log as JSONL.
    pub fn export_trace_jsonl(&self) -> String {
        self.log.lock().expect("log lock").to_jsonl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_round_trips_sinks_rings_and_gauges() {
        let trace = Trace::new();
        std::thread::scope(|scope| {
            for worker in 0..4u32 {
                let trace = &trace;
                scope.spawn(move || {
                    let mut sink = WorkerSink::new();
                    let visits = sink.counter(names::VISITS_TOTAL, Labels::new(&[("crawl", "T1")]));
                    sink.add(visits, 10 + worker as u64);
                    let mut ring = SpanRing::new(8);
                    ring.span(SpanRecord {
                        name: "visit",
                        worker,
                        start_ms: worker as u64 * 100,
                        end_ms: worker as u64 * 100 + 21_000,
                        target: format!("w{worker}.example"),
                        status: "success",
                    });
                    trace.merge_sink(&sink);
                    trace.absorb_ring(ring);
                });
            }
        });
        trace.set_gauge(
            names::CRAWL_SUCCESS_RATIO,
            Labels::new(&[("crawl", "T1"), ("os", "Linux")]),
            0.75,
        );
        let prom = trace.export_prometheus();
        assert!(prom.contains("visits_total{crawl=\"T1\"} 46\n"));
        assert!(prom.contains("crawl_success_ratio{crawl=\"T1\",os=\"Linux\"} 0.75\n"));
        assert!(prom.contains("journal_frames_total 0\n"));
        let jsonl = trace.export_trace_jsonl();
        assert!(jsonl.starts_with("{\"type\":\"meta\",\"spans\":4,"));
        assert!(jsonl.contains("w3.example"));
    }

    #[test]
    fn export_is_merge_order_invariant_across_threads() {
        let render = |order: &[u64]| {
            let trace = Trace::new();
            for &w in order {
                let mut sink = WorkerSink::new();
                let c = sink.counter(names::RETRIES_TOTAL, Labels::new(&[("os", "Mac")]));
                sink.add(c, w);
                let h = sink.histogram(&names::ANALYSIS_STAGE_SECONDS, Labels::empty());
                sink.observe(h, w * 1_000);
                trace.merge_sink(&sink);
            }
            trace.export_prometheus()
        };
        assert_eq!(render(&[1, 2, 3, 4]), render(&[4, 3, 2, 1]));
        assert_eq!(render(&[1, 2, 3, 4]), render(&[2, 4, 1, 3]));
    }
}
