//! The metric-name schema: every series the pipeline exports, declared
//! in one place so producers and the CI checker agree on spelling.
//!
//! Naming rules (see DESIGN.md §13):
//! - counters end in `_total`; gauges and histograms name their unit
//!   (`_seconds`, `_ratio`) or are bare nouns;
//! - label keys come from the closed set {`crawl`, `os`, `error`,
//!   `stage`, `locality`, `tenant`, `reason`, `profile`, `archetype`}
//!   — all low-cardinality (≤ 11 values each; `tenant` is bounded by
//!   the service's admission table, `reason` by the `AdmissionError`
//!   variants, `profile` and `archetype` by the bias model's enums);
//! - only schedule-invariant values may be exported: anything derived
//!   from claim order or per-worker wall clocks (makespan,
//!   connectivity stalls) stays out of the registry so the exposition
//!   text is byte-identical across worker counts and kill/resume.

use crate::metrics::{HistogramSpec, Labels, Registry};

/// Sites whose crawl reached a terminal verdict. Labels: crawl, os.
pub const VISITS_TOTAL: &str = "visits_total";
/// Visits whose final attempt loaded cleanly. Labels: crawl, os.
pub const SUCCESS_TOTAL: &str = "success_total";
/// In-place retry attempts after transient failures. Labels: crawl, os.
pub const RETRIES_TOTAL: &str = "retries_total";
/// Sites queued for the end-of-campaign recrawl pass. Labels: crawl, os.
pub const RECRAWLED_TOTAL: &str = "recrawled_total";
/// Sites that succeeded only on the recrawl pass. Labels: crawl, os.
pub const RECOVERED_TOTAL: &str = "recovered_total";
/// Sites abandoned after exhausting every attempt. Labels: crawl, os.
pub const GAVE_UP_TOTAL: &str = "gave_up_total";
/// Browser panics quarantined by the supervisor. Labels: crawl, os.
pub const CRASHED_TOTAL: &str = "crashed_total";
/// Store appends retried after injected failures. Labels: crawl, os.
pub const STORE_RETRIES_TOTAL: &str = "store_retries_total";
/// Final-attempt failures by Chrome net_error. Labels: crawl, os, error.
pub const FAILURES_TOTAL: &str = "failures_total";

/// Journal frames appended (all kinds). No labels.
pub const JOURNAL_FRAMES_TOTAL: &str = "journal_frames_total";
/// Visit frames appended to the journal. No labels.
pub const JOURNAL_VISITS_TOTAL: &str = "journal_visits_total";
/// Checkpoint frames appended to the journal. No labels.
pub const JOURNAL_CHECKPOINTS_TOTAL: &str = "journal_checkpoints_total";
/// Bytes appended to the journal. No labels.
pub const JOURNAL_BYTES_TOTAL: &str = "journal_bytes_total";
/// fsync calls issued by the journal writer. No labels.
pub const JOURNAL_FSYNCS_TOTAL: &str = "journal_fsyncs_total";
/// Batched group-commit writes that drained the journal's frame
/// buffer. No labels.
pub const JOURNAL_GROUP_COMMITS_TOTAL: &str = "journal_group_commits_total";
/// Frames whose write syscall was amortized by a group of more than
/// one. No labels.
pub const JOURNAL_GROUPED_FRAMES_TOTAL: &str = "journal_grouped_frames_total";
/// Frames appended per fsync (the group-commit amortization). No
/// labels.
pub const JOURNAL_FRAMES_PER_FSYNC: &str = "journal_frames_per_fsync";

/// Local-network observations found by analysis. Labels: crawl.
pub const LOCAL_OBSERVATIONS_TOTAL: &str = "local_observations_total";

/// Knock attempts sent by the active scanner, retries included. No
/// labels.
pub const SCAN_KNOCKS_TOTAL: &str = "scan_knocks_total";
/// Knock retries after transient probe failures. No labels.
pub const SCAN_RETRIES_TOTAL: &str = "scan_retries_total";
/// Knock attempts that hit the per-knock timeout. No labels.
pub const SCAN_TIMEOUTS_TOTAL: &str = "scan_timeouts_total";
/// Per-host circuit-breaker trips during a scan. No labels.
pub const SCAN_BREAKER_TRIPS_TOTAL: &str = "scan_breaker_trips_total";
/// Knocks skipped because the target host's breaker was open. No
/// labels.
pub const SCAN_BREAKER_SKIPS_TOTAL: &str = "scan_breaker_skips_total";
/// Targets left unprobed when the scan's deadline budget ran out. No
/// labels.
pub const SCAN_UNPROBED_TOTAL: &str = "scan_unprobed_total";
/// Ports the active scanner confirmed open. No labels.
pub const SCAN_OPEN_PORTS: &str = "scan_open_ports";
/// Cross-validation cells where passive detection and the active scan
/// agree a behaviour is present. Labels: reason.
pub const SCAN_AGREEMENT_BOTH_TOTAL: &str = "scan_agreement_both_total";
/// Cells where only the 20-second passive window saw the behaviour.
/// Labels: reason.
pub const SCAN_AGREEMENT_PASSIVE_ONLY_TOTAL: &str = "scan_agreement_passive_only_total";
/// Cells where only the active scan saw the behaviour (passive false
/// negatives, typically late-firing scripts). Labels: reason.
pub const SCAN_AGREEMENT_ACTIVE_ONLY_TOTAL: &str = "scan_agreement_active_only_total";
/// Cells where neither side saw the behaviour. Labels: reason.
pub const SCAN_AGREEMENT_NEITHER_TOTAL: &str = "scan_agreement_neither_total";

/// Ground-truth locally-active sites planted in the bias population
/// (profile-invariant by construction; exported per profile so the
/// checker can assert the invariance). Labels: profile.
pub const BIAS_TRUE_SITES_TOTAL: &str = "bias_true_sites_total";
/// Ground-truth sites the profile's crawl actually observed as locally
/// active. Labels: profile.
pub const BIAS_OBSERVED_SITES_TOTAL: &str = "bias_observed_sites_total";
/// Ground-truth sites missing from the profile's crawl — behaviour the
/// sensors suppressed, delayed past the window, or swapped away (plus
/// the profile-invariant availability misses). Labels: profile.
pub const BIAS_SUPPRESSED_SITES_TOTAL: &str = "bias_suppressed_sites_total";
/// Sensored ground-truth sites invisible to the profile, split by the
/// deployed sensor archetype. Labels: profile, archetype.
pub const BIAS_HIDDEN_SITES_TOTAL: &str = "bias_hidden_sites_total";
/// observed sites / true sites for the profile (the headline bias
/// figure; 1.0 = unbiased). Labels: profile.
pub const BIAS_OBSERVED_RATIO: &str = "bias_observed_ratio";

/// Visits executed by the longitudinal snapshot engine (changed +
/// fresh sites only; derived from the incremental plan, so the value
/// is identical across worker counts and kill/resume). No labels.
pub const SNAPSHOT_VISITS_TOTAL: &str = "snapshot_visits_total";
/// Visits a full per-snapshot recrawl would have executed (every
/// listed site, every crawled OS). No labels.
pub const SNAPSHOT_FULL_VISITS_TOTAL: &str = "snapshot_full_visits_total";
/// Manifest rows linked to the prior snapshot's chunks by reference
/// instead of being crawled. No labels.
pub const SNAPSHOT_LINKED_TOTAL: &str = "snapshot_linked_total";
/// Chunks newly written to the content-addressed snapshot store
/// (deduplicated ingests don't count). No labels.
pub const SNAPSHOT_CHUNKS_TOTAL: &str = "snapshot_chunks_total";
/// logical bytes / stored bytes of the snapshot store (≥ 1). No labels.
pub const SNAPSHOT_DEDUP_RATIO: &str = "snapshot_dedup_ratio";
/// Bytes the snapshot store actually holds (each chunk once). No labels.
pub const SNAPSHOT_STORED_BYTES: &str = "snapshot_stored_bytes";
/// Bytes the snapshots would occupy stored flat. No labels.
pub const SNAPSHOT_LOGICAL_BYTES: &str = "snapshot_logical_bytes";
/// executed visits / full-recrawl visits over the whole series (the
/// incremental-crawl work fraction; lower is better). No labels.
pub const SNAPSHOT_INCREMENTAL_FRACTION: &str = "snapshot_incremental_fraction";

/// Campaigns accepted by service admission control. Labels: tenant.
pub const SERVICE_ADMITTED_TOTAL: &str = "service_admitted_total";
/// Campaigns rejected at admission. Labels: tenant, reason.
pub const SERVICE_REJECTED_TOTAL: &str = "service_rejected_total";
/// Admitted campaigns that ran to completion. Labels: tenant.
pub const SERVICE_COMPLETED_TOTAL: &str = "service_completed_total";
/// Admitted campaigns cancelled by deadline budget. Labels: tenant.
pub const SERVICE_SHED_TOTAL: &str = "service_shed_total";
/// Admitted campaigns still in flight when the service drained.
/// Labels: tenant.
pub const SERVICE_DRAINED_TOTAL: &str = "service_drained_total";
/// Visit-result updates enqueued toward online aggregation.
/// Labels: tenant.
pub const SERVICE_UPDATES_TOTAL: &str = "service_updates_total";
/// Updates shed by the bounded queue's overflow policy. Labels: tenant.
pub const SERVICE_UPDATES_SHED_TOTAL: &str = "service_updates_shed_total";
/// Producer stalls absorbed by the Block overflow policy.
/// Labels: tenant.
pub const SERVICE_QUEUE_BLOCKS_TOTAL: &str = "service_queue_blocks_total";
/// Modeled high-water depth of the bounded result queue (deterministic
/// single-server queue model, not the physical channel). Labels: tenant.
pub const SERVICE_QUEUE_DEPTH: &str = "service_queue_depth";

/// Distinct sites with local traffic. Labels: crawl, locality.
pub const LOCAL_SITES: &str = "local_sites";
/// Telemetry records analyzed per campaign. Labels: crawl.
pub const STORE_RECORDS: &str = "store_records";
/// successful / attempted for the campaign. Labels: crawl, os.
pub const CRAWL_SUCCESS_RATIO: &str = "crawl_success_ratio";
/// Records written by `persist::save`. No labels.
pub const SAVE_RECORDS: &str = "save_records";
/// Bytes written by `persist::save`. No labels.
pub const SAVE_BYTES: &str = "save_bytes";
/// fsyncs issued by `persist::save`. No labels.
pub const SAVE_FSYNCS: &str = "save_fsyncs";

/// Simulated seconds per analysis stage, recorded in microseconds
/// under the deterministic per-element cost model (see DESIGN.md §13)
/// so the distribution is identical across worker counts.
/// Labels: crawl, stage.
pub static ANALYSIS_STAGE_SECONDS: HistogramSpec = HistogramSpec {
    name: "analysis_stage_seconds",
    help: "Simulated seconds spent per analysis stage (deterministic cost model)",
    buckets: &[
        100,        // 100 µs
        1_000,      // 1 ms
        10_000,     // 10 ms
        100_000,    // 100 ms
        1_000_000,  // 1 s
        10_000_000, // 10 s
        60_000_000, // 1 min
    ],
    scale_exp: -6,
};

/// Simulated seconds per knock (attempt latency under the latency
/// model, fault delays included), recorded in milliseconds so the
/// distribution is identical across probe-worker counts.
/// No labels.
pub static SCAN_KNOCK_SECONDS: HistogramSpec = HistogramSpec {
    name: "scan_knock_seconds",
    help: "Simulated seconds per knock attempt (deterministic latency model)",
    buckets: &[
        1,      // 1 ms (loopback RST)
        5,      // 5 ms
        20,     // 20 ms
        100,    // 100 ms
        500,    // 500 ms
        1_000,  // 1 s (typical per-knock timeout)
        5_000,  // 5 s
        30_000, // 30 s (fabric connect timeout)
    ],
    scale_exp: -3,
};

/// The scanner counters every scan exports, in declaration order.
pub const SCAN_COUNTERS: [&str; 10] = [
    SCAN_KNOCKS_TOTAL,
    SCAN_RETRIES_TOTAL,
    SCAN_TIMEOUTS_TOTAL,
    SCAN_BREAKER_TRIPS_TOTAL,
    SCAN_BREAKER_SKIPS_TOTAL,
    SCAN_UNPROBED_TOTAL,
    SCAN_AGREEMENT_BOTH_TOTAL,
    SCAN_AGREEMENT_PASSIVE_ONLY_TOTAL,
    SCAN_AGREEMENT_ACTIVE_ONLY_TOTAL,
    SCAN_AGREEMENT_NEITHER_TOTAL,
];

/// The measurement-bias counters every bias sweep exports, in
/// declaration order.
pub const BIAS_COUNTERS: [&str; 4] = [
    BIAS_TRUE_SITES_TOTAL,
    BIAS_OBSERVED_SITES_TOTAL,
    BIAS_SUPPRESSED_SITES_TOTAL,
    BIAS_HIDDEN_SITES_TOTAL,
];

/// The longitudinal snapshot-engine counters, in declaration order.
pub const SNAPSHOT_COUNTERS: [&str; 4] = [
    SNAPSHOT_VISITS_TOTAL,
    SNAPSHOT_FULL_VISITS_TOTAL,
    SNAPSHOT_LINKED_TOTAL,
    SNAPSHOT_CHUNKS_TOTAL,
];

/// The crawl-layer counters every campaign exports, in declaration
/// order (render order is alphabetical regardless).
pub const CRAWL_COUNTERS: [&str; 8] = [
    VISITS_TOTAL,
    SUCCESS_TOTAL,
    RETRIES_TOTAL,
    RECRAWLED_TOTAL,
    RECOVERED_TOTAL,
    GAVE_UP_TOTAL,
    CRASHED_TOTAL,
    STORE_RETRIES_TOTAL,
];

/// Declare help text for every schema metric and materialise the
/// always-present zero-valued series (the journal counters exist even
/// in un-journaled runs, so dashboards and the CI checker can rely on
/// them unconditionally).
pub fn describe_defaults(reg: &mut Registry) {
    reg.describe_counter(VISITS_TOTAL, "Sites whose crawl reached a terminal verdict");
    reg.describe_counter(SUCCESS_TOTAL, "Visits whose final attempt loaded cleanly");
    reg.describe_counter(
        RETRIES_TOTAL,
        "In-place retry attempts after transient failures",
    );
    reg.describe_counter(
        RECRAWLED_TOTAL,
        "Sites queued for the end-of-campaign recrawl pass",
    );
    reg.describe_counter(
        RECOVERED_TOTAL,
        "Sites that succeeded only on the recrawl pass",
    );
    reg.describe_counter(
        GAVE_UP_TOTAL,
        "Sites abandoned after exhausting every attempt",
    );
    reg.describe_counter(
        CRASHED_TOTAL,
        "Browser panics quarantined by the supervisor",
    );
    reg.describe_counter(
        STORE_RETRIES_TOTAL,
        "Store appends retried after injected failures",
    );
    reg.describe_counter(FAILURES_TOTAL, "Final-attempt failures by Chrome net_error");
    reg.describe_counter(JOURNAL_FRAMES_TOTAL, "Journal frames appended (all kinds)");
    reg.describe_counter(JOURNAL_VISITS_TOTAL, "Visit frames appended to the journal");
    reg.describe_counter(
        JOURNAL_CHECKPOINTS_TOTAL,
        "Checkpoint frames appended to the journal",
    );
    reg.describe_counter(JOURNAL_BYTES_TOTAL, "Bytes appended to the journal");
    reg.describe_counter(
        JOURNAL_FSYNCS_TOTAL,
        "fsync calls issued by the journal writer",
    );
    reg.describe_counter(
        JOURNAL_GROUP_COMMITS_TOTAL,
        "Batched group-commit writes draining the journal frame buffer",
    );
    reg.describe_counter(
        JOURNAL_GROUPED_FRAMES_TOTAL,
        "Frames whose write syscall was amortized by a group commit",
    );
    reg.describe_gauge(
        JOURNAL_FRAMES_PER_FSYNC,
        "Frames appended per fsync (group-commit amortization)",
    );
    reg.describe_counter(
        LOCAL_OBSERVATIONS_TOTAL,
        "Local-network observations found by analysis",
    );
    reg.describe_counter(
        SCAN_KNOCKS_TOTAL,
        "Knock attempts sent by the active scanner, retries included",
    );
    reg.describe_counter(
        SCAN_RETRIES_TOTAL,
        "Knock retries after transient probe failures",
    );
    reg.describe_counter(
        SCAN_TIMEOUTS_TOTAL,
        "Knock attempts that hit the per-knock timeout",
    );
    reg.describe_counter(
        SCAN_BREAKER_TRIPS_TOTAL,
        "Per-host circuit-breaker trips during a scan",
    );
    reg.describe_counter(
        SCAN_BREAKER_SKIPS_TOTAL,
        "Knocks skipped because the target host's breaker was open",
    );
    reg.describe_counter(
        SCAN_UNPROBED_TOTAL,
        "Targets left unprobed when the scan deadline budget ran out",
    );
    reg.describe_gauge(SCAN_OPEN_PORTS, "Ports the active scanner confirmed open");
    reg.describe_counter(
        SCAN_AGREEMENT_BOTH_TOTAL,
        "Cross-validation cells where passive and active detection agree",
    );
    reg.describe_counter(
        SCAN_AGREEMENT_PASSIVE_ONLY_TOTAL,
        "Cells only the 20-second passive window detected",
    );
    reg.describe_counter(
        SCAN_AGREEMENT_ACTIVE_ONLY_TOTAL,
        "Cells only the active scan detected (passive false negatives)",
    );
    reg.describe_counter(
        SCAN_AGREEMENT_NEITHER_TOTAL,
        "Cells where neither detection side fired",
    );
    reg.describe_counter(
        BIAS_TRUE_SITES_TOTAL,
        "Ground-truth locally-active sites planted in the bias population",
    );
    reg.describe_counter(
        BIAS_OBSERVED_SITES_TOTAL,
        "Ground-truth sites the profile's crawl observed as locally active",
    );
    reg.describe_counter(
        BIAS_SUPPRESSED_SITES_TOTAL,
        "Ground-truth sites missing from the profile's crawl",
    );
    reg.describe_counter(
        BIAS_HIDDEN_SITES_TOTAL,
        "Sensored ground-truth sites invisible to the profile, by archetype",
    );
    reg.describe_gauge(
        BIAS_OBSERVED_RATIO,
        "observed sites / true sites for the profile",
    );
    reg.describe_counter(
        SNAPSHOT_VISITS_TOTAL,
        "Visits executed by the longitudinal snapshot engine",
    );
    reg.describe_counter(
        SNAPSHOT_FULL_VISITS_TOTAL,
        "Visits a full per-snapshot recrawl would have executed",
    );
    reg.describe_counter(
        SNAPSHOT_LINKED_TOTAL,
        "Manifest rows linked to prior-snapshot chunks by reference",
    );
    reg.describe_counter(
        SNAPSHOT_CHUNKS_TOTAL,
        "Chunks newly written to the content-addressed snapshot store",
    );
    reg.describe_gauge(
        SNAPSHOT_DEDUP_RATIO,
        "logical bytes / stored bytes of the snapshot store",
    );
    reg.describe_gauge(
        SNAPSHOT_STORED_BYTES,
        "Bytes the snapshot store actually holds",
    );
    reg.describe_gauge(
        SNAPSHOT_LOGICAL_BYTES,
        "Bytes the snapshots would occupy stored flat",
    );
    reg.describe_gauge(
        SNAPSHOT_INCREMENTAL_FRACTION,
        "executed visits / full-recrawl visits over the snapshot series",
    );
    reg.describe_counter(
        SERVICE_ADMITTED_TOTAL,
        "Campaigns accepted by service admission control",
    );
    reg.describe_counter(SERVICE_REJECTED_TOTAL, "Campaigns rejected at admission");
    reg.describe_counter(
        SERVICE_COMPLETED_TOTAL,
        "Admitted campaigns that ran to completion",
    );
    reg.describe_counter(
        SERVICE_SHED_TOTAL,
        "Admitted campaigns cancelled by deadline budget",
    );
    reg.describe_counter(
        SERVICE_DRAINED_TOTAL,
        "Admitted campaigns still in flight when the service drained",
    );
    reg.describe_counter(
        SERVICE_UPDATES_TOTAL,
        "Visit-result updates enqueued toward online aggregation",
    );
    reg.describe_counter(
        SERVICE_UPDATES_SHED_TOTAL,
        "Updates shed by the bounded queue's overflow policy",
    );
    reg.describe_counter(
        SERVICE_QUEUE_BLOCKS_TOTAL,
        "Producer stalls absorbed by the Block overflow policy",
    );
    reg.describe_gauge(
        SERVICE_QUEUE_DEPTH,
        "Modeled high-water depth of the bounded result queue",
    );
    reg.describe_gauge(
        LOCAL_SITES,
        "Distinct sites with local traffic, by locality",
    );
    reg.describe_gauge(STORE_RECORDS, "Telemetry records analyzed per campaign");
    reg.describe_gauge(CRAWL_SUCCESS_RATIO, "successful visits / attempted visits");
    reg.describe_gauge(SAVE_RECORDS, "Records written by the store snapshot");
    reg.describe_gauge(SAVE_BYTES, "Bytes written by the store snapshot");
    reg.describe_gauge(SAVE_FSYNCS, "fsyncs issued by the store snapshot");
    reg.describe_histogram(&ANALYSIS_STAGE_SECONDS);
    reg.describe_histogram(&SCAN_KNOCK_SECONDS);
    reg.touch_histogram(&SCAN_KNOCK_SECONDS, Labels::empty());
    for name in SCAN_COUNTERS {
        reg.touch_counter(name, Labels::empty());
    }
    reg.set_gauge(SCAN_OPEN_PORTS, Labels::empty(), 0.0);
    for name in BIAS_COUNTERS {
        reg.touch_counter(name, Labels::empty());
    }
    reg.set_gauge(BIAS_OBSERVED_RATIO, Labels::empty(), 0.0);
    for name in SNAPSHOT_COUNTERS {
        reg.touch_counter(name, Labels::empty());
    }
    reg.set_gauge(SNAPSHOT_DEDUP_RATIO, Labels::empty(), 1.0);
    reg.set_gauge(SNAPSHOT_STORED_BYTES, Labels::empty(), 0.0);
    reg.set_gauge(SNAPSHOT_LOGICAL_BYTES, Labels::empty(), 0.0);
    reg.set_gauge(SNAPSHOT_INCREMENTAL_FRACTION, Labels::empty(), 0.0);
    for name in [
        JOURNAL_FRAMES_TOTAL,
        JOURNAL_VISITS_TOTAL,
        JOURNAL_CHECKPOINTS_TOTAL,
        JOURNAL_BYTES_TOTAL,
        JOURNAL_FSYNCS_TOTAL,
        JOURNAL_GROUP_COMMITS_TOTAL,
        JOURNAL_GROUPED_FRAMES_TOTAL,
        SERVICE_ADMITTED_TOTAL,
        SERVICE_REJECTED_TOTAL,
        SERVICE_COMPLETED_TOTAL,
        SERVICE_SHED_TOTAL,
        SERVICE_DRAINED_TOTAL,
        SERVICE_UPDATES_TOTAL,
        SERVICE_UPDATES_SHED_TOTAL,
        SERVICE_QUEUE_BLOCKS_TOTAL,
    ] {
        reg.touch_counter(name, Labels::empty());
    }
    reg.set_gauge(SERVICE_QUEUE_DEPTH, Labels::empty(), 0.0);
}

/// The per-tenant campaign accounting counters, in the order the
/// shed-reconciliation invariant reads them: admitted = completed +
/// shed + drained (+ still-running, zero once the service has drained).
pub const SERVICE_CAMPAIGN_COUNTERS: [&str; 4] = [
    SERVICE_ADMITTED_TOTAL,
    SERVICE_COMPLETED_TOTAL,
    SERVICE_SHED_TOTAL,
    SERVICE_DRAINED_TOTAL,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_pre_create_journal_series_at_zero() {
        let mut reg = Registry::new();
        describe_defaults(&mut reg);
        let text = reg.render_prometheus();
        for name in [
            "journal_frames_total 0",
            "journal_visits_total 0",
            "journal_checkpoints_total 0",
            "journal_bytes_total 0",
            "journal_fsyncs_total 0",
            "service_admitted_total 0",
            "service_rejected_total 0",
            "service_completed_total 0",
            "service_shed_total 0",
            "service_drained_total 0",
            "service_updates_total 0",
            "service_updates_shed_total 0",
            "service_queue_blocks_total 0",
            "service_queue_depth 0",
            "scan_knocks_total 0",
            "scan_retries_total 0",
            "scan_timeouts_total 0",
            "scan_breaker_trips_total 0",
            "scan_breaker_skips_total 0",
            "scan_unprobed_total 0",
            "scan_open_ports 0",
            "scan_agreement_both_total 0",
            "scan_agreement_passive_only_total 0",
            "scan_agreement_active_only_total 0",
            "scan_agreement_neither_total 0",
            "bias_true_sites_total 0",
            "bias_observed_sites_total 0",
            "bias_suppressed_sites_total 0",
            "bias_hidden_sites_total 0",
            "bias_observed_ratio 0",
            "snapshot_visits_total 0",
            "snapshot_full_visits_total 0",
            "snapshot_linked_total 0",
            "snapshot_chunks_total 0",
            "snapshot_dedup_ratio 1",
            "snapshot_stored_bytes 0",
            "snapshot_logical_bytes 0",
            "snapshot_incremental_fraction 0",
        ] {
            assert!(text.contains(name), "missing {name:?} in:\n{text}");
        }
        assert!(text.contains("# TYPE analysis_stage_seconds histogram"));
        assert!(text.contains("# TYPE scan_knock_seconds histogram"));
        assert!(
            text.contains("scan_knock_seconds_count 0"),
            "scan knock histogram must exist at zero observations"
        );
    }

    #[test]
    fn describe_defaults_is_idempotent() {
        let mut reg = Registry::new();
        describe_defaults(&mut reg);
        let once = reg.render_prometheus();
        describe_defaults(&mut reg);
        assert_eq!(once, reg.render_prometheus());
    }

    #[test]
    fn counter_names_follow_the_total_convention() {
        for name in CRAWL_COUNTERS {
            assert!(name.ends_with("_total"), "{name} must end in _total");
        }
        for name in SERVICE_CAMPAIGN_COUNTERS {
            assert!(name.ends_with("_total"), "{name} must end in _total");
        }
        for name in SCAN_COUNTERS {
            assert!(name.ends_with("_total"), "{name} must end in _total");
        }
        for name in SNAPSHOT_COUNTERS {
            assert!(name.ends_with("_total"), "{name} must end in _total");
        }
        for name in BIAS_COUNTERS {
            assert!(name.ends_with("_total"), "{name} must end in _total");
        }
    }
}
