//! The stage profiler: real-time/allocation breakdown per pipeline
//! stage, plus the opt-in counting global allocator it reads from.
//!
//! This is the one corner of kt-trace where `Instant::now()` is
//! allowed: profiler output is diagnostic, rendered for humans, and
//! never byte-compared across runs — the determinism contract covers
//! the metrics registry and spans, not wall-clock profiles. A stage may
//! also carry a simulated-clock annotation so the table shows both
//! clocks side by side.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// Bump the live-bytes gauge and ratchet the peak watermark.
fn count_live(delta: usize) {
    let live = LIVE_BYTES.fetch_add(delta as u64, Ordering::Relaxed) + delta as u64;
    // `fetch_max` keeps the watermark monotone under racing threads; a
    // momentarily stale `live` only ever *under*-reports the peak by
    // bytes another thread freed in the same instant.
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

fn uncount_live(delta: usize) {
    // Saturating: a binary can install the allocator after some early
    // allocations, whose frees would otherwise underflow the gauge.
    let _ = LIVE_BYTES.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |live| {
        Some(live.saturating_sub(delta as u64))
    });
}

/// A pass-through [`System`] allocator that counts every allocation.
/// Install it per-binary:
///
/// ```ignore
/// #[global_allocator]
/// static GLOBAL: kt_trace::CountingAllocator = kt_trace::CountingAllocator;
/// ```
///
/// Reallocs and zeroed allocations count too. Frees don't reduce the
/// cumulative traffic counters, but they do reduce the live-bytes
/// gauge behind [`live_bytes`]/[`peak_bytes`] — that pair is the
/// flat-memory instrument: peak resident heap, not total churn.
/// Binaries that don't install it still link and run —
/// [`alloc_counts`] just stays at zero.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        count_live(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        uncount_live(layout.size());
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        uncount_live(layout.size());
        count_live(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        count_live(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }
}

/// Cumulative (allocations, heap bytes) since process start — zeros
/// unless [`CountingAllocator`] is installed as the global allocator.
pub fn alloc_counts() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// Currently-live heap bytes (allocated minus freed) — zero unless
/// [`CountingAllocator`] is installed.
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of [`live_bytes`] since process start. This is the
/// number the flat-memory gates compare against a ceiling: mmap-backed
/// segments never appear in it, resident ones do.
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Reset the peak watermark to the current live level, so a bench can
/// measure the peak of one phase in isolation.
pub fn reset_peak_bytes() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Run `f`, returning its result plus the (allocations, heap bytes)
/// performed while it ran. The counters are process-global, so
/// concurrent allocation on other threads is attributed here too —
/// fine for whole-pipeline stages, which is what the profiler wraps.
pub fn count_allocs<T>(f: impl FnOnce() -> T) -> (T, u64, u64) {
    let (a0, b0) = alloc_counts();
    let value = f();
    let (a1, b1) = alloc_counts();
    (value, a1 - a0, b1 - b0)
}

/// One profiled stage.
#[derive(Debug, Clone)]
pub struct StageRecord {
    /// Stage label, e.g. `"crawl:T1/Windows"`.
    pub name: String,
    /// Real elapsed seconds.
    pub real_secs: f64,
    /// Allocations during the stage.
    pub allocs: u64,
    /// Heap bytes requested during the stage.
    pub alloc_bytes: u64,
    /// Work-unit count (sites, records, frames…), if annotated.
    pub elements: Option<u64>,
    /// Simulated-clock duration, if the stage has one.
    pub sim_ms: Option<u64>,
}

/// Wraps pipeline stages, recording real time + allocator traffic for
/// each, and renders the per-stage breakdown as an aligned text table
/// in the repo's paper-table style.
#[derive(Debug, Default)]
pub struct StageProfiler {
    stages: Vec<StageRecord>,
}

impl StageProfiler {
    /// An empty profiler.
    pub fn new() -> StageProfiler {
        StageProfiler::default()
    }

    /// Run `f` as a named stage, recording elapsed time and allocator
    /// traffic.
    pub fn run<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let (value, allocs, alloc_bytes) = count_allocs(f);
        self.stages.push(StageRecord {
            name: name.to_string(),
            real_secs: t0.elapsed().as_secs_f64(),
            allocs,
            alloc_bytes,
            elements: None,
            sim_ms: None,
        });
        value
    }

    /// Attach a work-unit count to the most recent stage.
    pub fn annotate_elements(&mut self, elements: u64) {
        if let Some(last) = self.stages.last_mut() {
            last.elements = Some(elements);
        }
    }

    /// Attach a simulated-clock duration to the most recent stage.
    pub fn annotate_sim_ms(&mut self, sim_ms: u64) {
        if let Some(last) = self.stages.last_mut() {
            last.sim_ms = Some(sim_ms);
        }
    }

    /// The recorded stages, in execution order.
    pub fn stages(&self) -> &[StageRecord] {
        &self.stages
    }

    /// Render the breakdown as an aligned table with a totals row.
    pub fn render_table(&self) -> String {
        let header = ["stage", "real_s", "sim_s", "elements", "allocs", "alloc_mb"];
        let fmt_opt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |v| v.to_string());
        let mut rows: Vec<[String; 6]> = self
            .stages
            .iter()
            .map(|s| {
                [
                    s.name.clone(),
                    format!("{:.3}", s.real_secs),
                    s.sim_ms
                        .map_or_else(|| "-".to_string(), |ms| format!("{:.1}", ms as f64 / 1e3)),
                    fmt_opt(s.elements),
                    s.allocs.to_string(),
                    format!("{:.2}", s.alloc_bytes as f64 / 1e6),
                ]
            })
            .collect();
        let total_real: f64 = self.stages.iter().map(|s| s.real_secs).sum();
        let total_allocs: u64 = self.stages.iter().map(|s| s.allocs).sum();
        let total_bytes: u64 = self.stages.iter().map(|s| s.alloc_bytes).sum();
        rows.push([
            "total".to_string(),
            format!("{total_real:.3}"),
            "-".to_string(),
            "-".to_string(),
            total_allocs.to_string(),
            format!("{:.2}", total_bytes as f64 / 1e6),
        ]);

        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("{cell:>w$}"));
                }
            }
            line.trim_end().to_string()
        };
        let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
        let mut out = render_row(&header_cells);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        let n = rows.len();
        for (i, row) in rows.iter().enumerate() {
            if i + 1 == n {
                out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
                out.push('\n');
            }
            out.push_str(&render_row(row.as_slice()));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_records_stage_results_and_annotations() {
        let mut prof = StageProfiler::new();
        let v = prof.run("crawl:T1/Linux", || 40 + 2);
        assert_eq!(v, 42);
        prof.annotate_elements(2_000);
        prof.annotate_sim_ms(42_000);
        assert_eq!(prof.stages().len(), 1);
        let s = &prof.stages()[0];
        assert_eq!(s.name, "crawl:T1/Linux");
        assert_eq!(s.elements, Some(2_000));
        assert_eq!(s.sim_ms, Some(42_000));
        assert!(s.real_secs >= 0.0);
    }

    #[test]
    fn table_has_header_rule_rows_and_total() {
        let mut prof = StageProfiler::new();
        prof.run("alpha", || ());
        prof.annotate_elements(10);
        prof.run("beta", || ());
        let table = prof.render_table();
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].starts_with("stage"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines.iter().any(|l| l.starts_with("alpha")));
        assert!(lines.iter().any(|l| l.starts_with("beta")));
        assert!(lines.last().expect("rows").starts_with("total"));
    }

    #[test]
    fn live_and_peak_gauges_are_consistent() {
        // Unit tests run without the counting allocator installed, so
        // only this test touches the gauges (keep it that way — the
        // statics are process-global). Exercise the accounting
        // directly: a live bump must ratchet the watermark, a free
        // must not lower it, and over-freeing saturates at zero.
        reset_peak_bytes();
        assert_eq!(peak_bytes(), live_bytes());
        count_live(4096);
        assert!(peak_bytes() >= live_bytes());
        let peak = peak_bytes();
        uncount_live(4096);
        assert_eq!(peak_bytes(), peak, "frees never lower the watermark");
        assert!(live_bytes() <= peak);
        uncount_live(usize::MAX);
        assert_eq!(live_bytes(), 0, "over-free saturates instead of wrapping");
        reset_peak_bytes();
    }

    #[test]
    fn count_allocs_is_monotonic_and_nonpanicking() {
        // The counting allocator is not installed in unit tests, so the
        // deltas are zero — the contract is just that the plumbing works.
        let (v, allocs, bytes) = count_allocs(|| vec![1u8; 128].len());
        assert_eq!(v, 128);
        let (a, b) = alloc_counts();
        assert!(allocs <= a || a == 0);
        assert!(bytes <= b || b == 0);
    }
}
