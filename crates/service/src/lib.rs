//! Resident multi-tenant campaign service for the knock-talk pipeline.
//!
//! The batch pipeline (`kt-crawler::run_crawl`) owns one campaign from
//! start to finish. This crate turns that into a *resident service*: a
//! [`CampaignService`] that multiplexes many concurrent campaigns —
//! across tenants — over one scheduler, streaming visit results
//! through a bounded queue into online incremental aggregation, so any
//! campaign's tables are queryable mid-flight.
//!
//! The robustness contract, in one line: **under overload the service
//! degrades predictably — it rejects, blocks, or sheds by policy, it
//! counts everything it refuses, and it never panics or corrupts a
//! journal.** Concretely:
//!
//! - [`admission`]: per-tenant quotas decide up front, with a typed
//!   [`AdmissionError`] per refusal;
//! - [`queue`]: a physical [`BoundedQueue`] bounds memory and blocks
//!   producers (real backpressure), while a deterministic
//!   [`QueueModel`] decides overflow shedding as a pure function of
//!   the update sequence — never of thread timing;
//! - [`service`]: batch-synchronous rounds run one job per campaign,
//!   making every campaign's history serial and therefore identical
//!   across worker counts; deadline budgets cancel cooperatively;
//!   `drain` stops the world with journals synced and resumable.
//!
//! Campaigns run with the same visit/recrawl machinery as the batch
//! path ([`kt_crawler::crawl::run_pool_job`] /
//! [`kt_crawler::crawl::run_recrawl_job`]), so for outage-free
//! configurations a completed service campaign renders tables
//! byte-identical to `run_crawl` + `analyze_crawl_par` — including
//! campaigns that were drained mid-flight and resumed from their
//! journal.

#![warn(missing_docs)]

pub mod admission;
pub mod queue;
pub mod service;

pub use admission::{AdmissionError, TenantQuota};
pub use queue::{BoundedQueue, OverflowPolicy, QueueModel, QueueVerdict};
pub use service::{
    deadline_for, CampaignHandle, CampaignService, CampaignSpec, CampaignStatus, ServiceConfig,
    ServiceJob, TenantAccounting,
};
