//! The bounded result queue: a physical channel with real
//! backpressure, plus the deterministic overflow model that decides
//! shedding.
//!
//! Two layers, deliberately separate:
//!
//! - [`BoundedQueue`] is the *physical* channel between campaign
//!   executors and the online-aggregation consumer: a
//!   `Mutex<VecDeque>` + two condvars, with a hard capacity. A full
//!   queue blocks the producer — real memory-bounded backpressure. It
//!   never drops an element, because anything timing-dependent (how
//!   fast the consumer thread happens to run) must not influence
//!   results;
//! - [`QueueModel`] is the *deterministic* single-server queue that
//!   decides overflow: arrivals are stamped with the campaign's
//!   simulated clock (a pure function of the visit sequence), service
//!   time is a fixed per-update drain cost plus any injected
//!   slow-consumer stall, and the configured [`OverflowPolicy`]
//!   resolves a full queue into a counted block or a counted shed.
//!   Every verdict is a function of the update sequence, so the shed
//!   set is identical across worker counts — the acceptance criterion
//!   the overload tests pin.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// What a full queue does to the arriving update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// The producer waits for the consumer: latency, not loss.
    Block,
    /// The update is dropped and counted: loss, not latency.
    Shed,
}

/// The deterministic verdict for one arriving update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueVerdict {
    /// Enqueued without waiting.
    Delivered,
    /// The producer had to wait (Block policy) before the update fit.
    DeliveredAfterBlock,
    /// The update was shed (Shed policy, queue full).
    Shed,
}

/// Deterministic single-server queue model. Time is the campaign's
/// simulated clock, not wall time; the model is a fold over the
/// arrival sequence and therefore schedule-invariant.
#[derive(Debug, Clone)]
pub struct QueueModel {
    capacity: usize,
    drain_ms_per_update: u64,
    policy: OverflowPolicy,
    /// Scheduled departure times of updates still in the modeled queue.
    departures: VecDeque<u64>,
    /// Deepest the modeled queue has been (after each arrival).
    pub high_water: usize,
    /// Arrivals that found the queue full and blocked.
    pub blocks: u64,
    /// Arrivals that found the queue full and were shed.
    pub shed: u64,
}

impl QueueModel {
    /// A model with the given capacity, per-update drain cost, and
    /// overflow policy.
    pub fn new(capacity: usize, drain_ms_per_update: u64, policy: OverflowPolicy) -> QueueModel {
        QueueModel {
            capacity: capacity.max(1),
            drain_ms_per_update: drain_ms_per_update.max(1),
            policy,
            departures: VecDeque::new(),
            high_water: 0,
            blocks: 0,
            shed: 0,
        }
    }

    /// Fold one arrival in. `arrival_ms` is the update's position on
    /// the campaign's simulated clock, `stall_ms` any injected
    /// slow-consumer stall (added to this update's service time), and
    /// `forced_overflow` an injected queue-overflow fault (the arrival
    /// is treated as finding the queue full regardless of depth).
    pub fn on_arrival(
        &mut self,
        arrival_ms: u64,
        stall_ms: u64,
        forced_overflow: bool,
    ) -> QueueVerdict {
        // Consumer progress up to this arrival.
        while self.departures.front().is_some_and(|d| *d <= arrival_ms) {
            self.departures.pop_front();
        }
        let full = forced_overflow || self.departures.len() >= self.capacity;
        let (effective_arrival, verdict) = if full {
            match self.policy {
                OverflowPolicy::Shed => {
                    self.shed += 1;
                    return QueueVerdict::Shed;
                }
                OverflowPolicy::Block => {
                    self.blocks += 1;
                    // The producer waits until the head departs (or,
                    // for a forced overflow on a shallow queue, one
                    // drain slot).
                    let unblocked = self
                        .departures
                        .front()
                        .copied()
                        .unwrap_or(arrival_ms + self.drain_ms_per_update)
                        .max(arrival_ms);
                    self.departures.pop_front();
                    (unblocked, QueueVerdict::DeliveredAfterBlock)
                }
            }
        } else {
            (arrival_ms, QueueVerdict::Delivered)
        };
        // Single server: service starts when the previous update
        // finishes or this one arrives, whichever is later.
        let start = self
            .departures
            .back()
            .copied()
            .unwrap_or(0)
            .max(effective_arrival);
        self.departures
            .push_back(start + self.drain_ms_per_update + stall_ms);
        self.high_water = self.high_water.max(self.departures.len());
        verdict
    }
}

/// A bounded MPSC channel: `push` blocks while full, `pop` blocks
/// while empty, `close` wakes everyone. The physical backpressure
/// layer under the deterministic [`QueueModel`].
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

#[derive(Debug)]
struct QueueInner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
    /// Pushes that had to wait for space (observability only — never
    /// part of any byte-compared export).
    blocked_pushes: u64,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` in-flight elements.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
                blocked_pushes: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Push, waiting for space while the queue is full. Returns false
    /// if the queue closed before the element could be enqueued.
    pub fn push(&self, item: T) -> bool {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.items.len() >= inner.capacity && !inner.closed {
            inner.blocked_pushes += 1;
            while inner.items.len() >= inner.capacity && !inner.closed {
                inner = self.not_full.wait(inner).expect("queue lock");
            }
        }
        if inner.closed {
            return false;
        }
        inner.items.push_back(item);
        self.not_empty.notify_one();
        true
    }

    /// Pop, waiting while the queue is empty. Returns `None` once the
    /// queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Close the queue: pending pops drain what's left, new pushes
    /// fail, all waiters wake.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Elements currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many pushes had to wait for space so far.
    pub fn blocked_pushes(&self) -> u64 {
        self.inner.lock().expect("queue lock").blocked_pushes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn model_sheds_only_past_capacity() {
        let mut model = QueueModel::new(2, 10, OverflowPolicy::Shed);
        // Three arrivals at the same instant: the third finds the
        // queue full and sheds.
        assert_eq!(model.on_arrival(0, 0, false), QueueVerdict::Delivered);
        assert_eq!(model.on_arrival(0, 0, false), QueueVerdict::Delivered);
        assert_eq!(model.on_arrival(0, 0, false), QueueVerdict::Shed);
        assert_eq!(model.shed, 1);
        assert_eq!(model.high_water, 2);
        // Once the consumer catches up, arrivals deliver again.
        assert_eq!(model.on_arrival(100, 0, false), QueueVerdict::Delivered);
    }

    #[test]
    fn model_blocks_instead_of_shedding_under_block_policy() {
        let mut model = QueueModel::new(1, 10, OverflowPolicy::Block);
        assert_eq!(model.on_arrival(0, 0, false), QueueVerdict::Delivered);
        assert_eq!(
            model.on_arrival(0, 0, false),
            QueueVerdict::DeliveredAfterBlock
        );
        assert_eq!(model.blocks, 1);
        assert_eq!(model.shed, 0);
    }

    #[test]
    fn forced_overflow_fires_the_policy_even_when_shallow() {
        let mut shed = QueueModel::new(100, 10, OverflowPolicy::Shed);
        assert_eq!(shed.on_arrival(0, 0, true), QueueVerdict::Shed);
        let mut block = QueueModel::new(100, 10, OverflowPolicy::Block);
        assert_eq!(
            block.on_arrival(0, 0, true),
            QueueVerdict::DeliveredAfterBlock
        );
    }

    #[test]
    fn stall_inflates_depth_behind_the_stalled_update() {
        let mut model = QueueModel::new(10, 10, OverflowPolicy::Shed);
        model.on_arrival(0, 1_000, false);
        for t in [10, 20, 30] {
            model.on_arrival(t, 0, false);
        }
        assert_eq!(model.high_water, 4, "stalled head backs everyone up");
        let mut smooth = QueueModel::new(10, 10, OverflowPolicy::Shed);
        for t in [0, 10, 20, 30] {
            smooth.on_arrival(t, 0, false);
        }
        assert!(smooth.high_water < 4);
    }

    #[test]
    fn model_is_a_pure_fold_over_the_arrival_sequence() {
        let run = || {
            let mut model = QueueModel::new(3, 7, OverflowPolicy::Shed);
            (0..50u64)
                .map(|i| model.on_arrival(i * 2, (i % 5) * 3, i % 11 == 0))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn physical_queue_blocks_producer_and_delivers_in_order() {
        let queue = Arc::new(BoundedQueue::new(2));
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                for i in 0..100 {
                    assert!(queue.push(i));
                }
                queue.close();
            })
        };
        let mut seen = Vec::new();
        while let Some(item) = queue.pop() {
            seen.push(item);
        }
        producer.join().unwrap();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        assert!(queue.blocked_pushes() > 0, "capacity 2 must backpressure");
    }

    #[test]
    fn closed_queue_rejects_pushes_and_drains_pops() {
        let queue = BoundedQueue::new(4);
        assert!(queue.push(1));
        queue.close();
        assert!(!queue.push(2));
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), None);
    }
}
