//! The resident campaign service: many concurrent campaigns, one
//! scheduler, deterministic degradation.
//!
//! # Execution model
//!
//! The service multiplexes admitted campaigns over a pool of executor
//! slots in *batch-synchronous rounds*: each round picks up to
//! `workers` distinct runnable campaigns (least-progressed first,
//! admission order breaking ties), runs **one job per campaign** in
//! parallel scoped threads, then applies the results serially in
//! selection order. The campaign is the determinism boundary — within
//! a campaign every visit, cost, and journal frame lands in the same
//! serial order whatever the worker count; parallelism comes from
//! multiplexing *across* campaigns, whose states are disjoint. That is
//! why the shed set, the stats, the journals, and the Prometheus
//! export are all byte-identical across 1/2/4/8 workers — the
//! acceptance criterion the overload tests pin.
//!
//! # Degradation
//!
//! Three pressure valves, all deterministic:
//!
//! - **admission control** rejects over-quota submissions up front
//!   with a typed [`AdmissionError`] — a pure function of the
//!   submission sequence;
//! - **deadline budgets** cancel a campaign cooperatively once its
//!   simulated consumed time exceeds its budget: the in-flight job
//!   drains, the rest are shed and counted, the journal stays
//!   resumable;
//! - **queue overflow** follows the tenant's [`OverflowPolicy`]
//!   through the per-campaign [`QueueModel`] — block (latency) or
//!   shed (counted loss). The *physical* [`BoundedQueue`] under it
//!   never drops: it bounds memory and exerts real backpressure, while
//!   the model makes the shed set schedule-invariant.
//!
//! Visit records always reach the store (the pool job appends before
//! the update is enqueued), so even a campaign with shed updates can
//! reconcile its final tables from the store at drain.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use kt_analysis::online::{OnlinePartial, UpdatePass};
use kt_analysis::par::CrawlAnalysis;
use kt_browser::World;
use kt_crawler::crawl::{
    run_pool_job, run_recrawl_job, simulated_makespan, CrawlConfig, CrawlJob, VISIT_WALL_MS,
};
use kt_crawler::CrawlStats;
use kt_faults::{Fault, FaultPlan};
use kt_netbase::Os;
use kt_simnet::connectivity::ConnectivityChecker;
use kt_store::journal::{JournalConfig, JournalWriter};
use kt_store::{CheckpointFrame, CrawlId, TelemetryStore, VisitRecord};
use kt_trace::{names, Labels, Trace};
use kt_webgen::WebSite;

use crate::admission::{AdmissionError, TenantQuota};
use crate::queue::{BoundedQueue, OverflowPolicy, QueueModel, QueueVerdict};

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Simulation seed (worlds, faults, backoff jitter).
    pub seed: u64,
    /// Executor slots per scheduling round — real parallelism across
    /// campaigns. Never changes any result, only wall time.
    pub workers: usize,
    /// Physical and modeled result-queue capacity.
    pub queue_capacity: usize,
    /// Modeled consumer cost per update, simulated ms.
    pub drain_ms_per_update: u64,
    /// Stall injected per [`Fault::SlowConsumer`] draw, simulated ms.
    pub slow_consumer_stall_ms: u64,
    /// Fault plan shared by the crawl and service paths.
    pub faults: FaultPlan,
    /// When set, each campaign journals to
    /// `<dir>/<tenant>/<crawl>-<os>.ktj` — drained campaigns resume
    /// from there to byte-identical tables.
    pub journal_dir: Option<PathBuf>,
    /// Flush cadence and group-commit thresholds for campaign
    /// journals. The default matches the standalone writer.
    pub journal_config: JournalConfig,
}

impl ServiceConfig {
    /// Defaults: 4 executors, a 64-deep queue, no faults.
    pub fn new(seed: u64) -> ServiceConfig {
        ServiceConfig {
            seed,
            workers: 4,
            queue_capacity: 64,
            drain_ms_per_update: 1_000,
            slow_consumer_stall_ms: 30_000,
            faults: FaultPlan::none(seed),
            journal_dir: None,
            journal_config: JournalConfig::default(),
        }
    }
}

/// One owned unit of campaign work.
#[derive(Debug, Clone)]
pub struct ServiceJob {
    /// The site to visit.
    pub site: WebSite,
    /// Blocklist category code for malicious crawls.
    pub malicious_category: Option<u8>,
}

/// A campaign submission.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign identifier — keys the store; records of this campaign
    /// land under this crawl id.
    pub crawl: CrawlId,
    /// The crawling OS.
    pub os: Os,
    /// The sites to visit, in order.
    pub jobs: Vec<ServiceJob>,
    /// Simulated-time budget; `None` is unbounded. A campaign whose
    /// consumed simulated time exceeds the budget is cancelled
    /// cooperatively and its remaining jobs shed.
    pub deadline_ms: Option<u64>,
    /// Nominal worker count for the campaign's makespan replay — the
    /// batch `run_crawl` worker count this campaign is equivalent to.
    pub nominal_workers: usize,
}

/// Opaque handle to an admitted campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CampaignHandle(u64);

/// Where a campaign is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignStatus {
    /// Admitted, no job run yet.
    Queued,
    /// At least one job run.
    Running,
    /// All jobs (pool + recrawl) terminally resolved.
    Completed,
    /// Cancelled by its deadline budget; remaining jobs shed.
    DeadlineExceeded,
    /// The service drained before the campaign finished; its journal
    /// is resumable.
    Drained,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Pool,
    Recrawl,
    Done,
}

/// One round's executor output, applied serially by the coordinator.
struct RoundOutcome {
    record: VisitRecord,
    pass: UpdatePass,
    cost_ms: u64,
}

struct Campaign {
    id: u64,
    tenant: String,
    spec: CampaignSpec,
    cfg: CrawlConfig,
    status: CampaignStatus,
    phase: Phase,
    /// Next pool job index.
    next_job: usize,
    /// Pool-parked job indices awaiting the recrawl phase.
    parked: Vec<usize>,
    recrawl_queue: Vec<usize>,
    recrawl_pos: usize,
    recrawl_world: Option<World>,
    checker: ConnectivityChecker,
    recrawl_checker: ConnectivityChecker,
    stats: CrawlStats,
    pool_wall_ms: u64,
    recrawl_wall_ms: u64,
    /// Per-pool-job simulated costs, for the makespan replay.
    costs: Vec<u64>,
    /// Total simulated time consumed — the deadline meter and the
    /// queue model's arrival clock.
    consumed_ms: u64,
    /// Jobs run so far (fair-share scheduling key).
    rounds: u64,
    /// Jobs never run because the deadline cancelled the campaign.
    shed_jobs: u64,
    model: QueueModel,
    journal: Option<JournalWriter>,
    updates: u64,
    updates_shed: u64,
    round: Option<RoundOutcome>,
}

impl Campaign {
    fn runnable(&self) -> bool {
        matches!(
            self.status,
            CampaignStatus::Queued | CampaignStatus::Running
        ) && self.phase != Phase::Done
    }

    fn unfinished(&self) -> bool {
        matches!(
            self.status,
            CampaignStatus::Queued | CampaignStatus::Running
        )
    }

    fn remaining_jobs(&self) -> u64 {
        match self.phase {
            Phase::Pool => (self.spec.jobs.len() - self.next_job) as u64,
            Phase::Recrawl => (self.recrawl_queue.len() - self.recrawl_pos) as u64,
            Phase::Done => 0,
        }
    }
}

struct Tenant {
    quota: TenantQuota,
    policy: OverflowPolicy,
    admitted: u64,
    rejected: BTreeMap<&'static str, u64>,
}

/// One tenant's deterministic accounting snapshot. The shed invariant
/// the overload-smoke CI job reconciles:
/// `admitted == completed + shed + drained + in_flight`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantAccounting {
    /// Tenant name.
    pub tenant: String,
    /// Campaigns admitted.
    pub admitted: u64,
    /// Rejections by reason label.
    pub rejected: BTreeMap<&'static str, u64>,
    /// Campaigns run to completion.
    pub completed: u64,
    /// Campaigns cancelled by deadline budget.
    pub shed: u64,
    /// Campaigns still unfinished when the service drained.
    pub drained: u64,
    /// Campaigns admitted and still queued/running.
    pub in_flight: u64,
    /// Updates that entered the result path.
    pub updates: u64,
    /// Updates shed by the overflow policy.
    pub updates_shed: u64,
    /// Producer blocks absorbed by the Block policy.
    pub queue_blocks: u64,
    /// Deepest modeled queue across the tenant's campaigns.
    pub queue_high_water: usize,
}

impl TenantAccounting {
    /// True when every admitted campaign is accounted for.
    pub fn reconciles(&self) -> bool {
        self.admitted == self.completed + self.shed + self.drained + self.in_flight
    }
}

enum Update {
    Visit {
        campaign: u64,
        record: VisitRecord,
        pass: UpdatePass,
    },
    Flush(Arc<FlushGate>),
}

#[derive(Default)]
struct FlushGate {
    done: Mutex<bool>,
    cv: Condvar,
}

impl FlushGate {
    fn open(&self) {
        *self.done.lock().expect("gate lock") = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut done = self.done.lock().expect("gate lock");
        while !*done {
            done = self.cv.wait(done).expect("gate lock");
        }
    }
}

/// The resident multi-tenant campaign service.
pub struct CampaignService {
    config: ServiceConfig,
    store: TelemetryStore,
    tenants: BTreeMap<String, Tenant>,
    campaigns: Vec<Mutex<Campaign>>,
    aggregators: Arc<Mutex<BTreeMap<u64, OnlinePartial>>>,
    queue: Arc<BoundedQueue<Update>>,
    consumer: Option<JoinHandle<()>>,
    draining: bool,
}

impl CampaignService {
    /// Start a service: spawns the online-aggregation consumer behind
    /// the bounded result queue.
    pub fn new(config: ServiceConfig) -> CampaignService {
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let aggregators: Arc<Mutex<BTreeMap<u64, OnlinePartial>>> = Arc::default();
        let consumer = {
            let queue = Arc::clone(&queue);
            let aggregators = Arc::clone(&aggregators);
            std::thread::spawn(move || {
                while let Some(update) = queue.pop() {
                    match update {
                        Update::Visit {
                            campaign,
                            record,
                            pass,
                        } => {
                            aggregators
                                .lock()
                                .expect("aggregator lock")
                                .entry(campaign)
                                .or_default()
                                .absorb(&record, pass);
                        }
                        Update::Flush(gate) => gate.open(),
                    }
                }
            })
        };
        CampaignService {
            config,
            store: TelemetryStore::new(),
            tenants: BTreeMap::new(),
            campaigns: Vec::new(),
            aggregators,
            queue,
            consumer: Some(consumer),
            draining: false,
        }
    }

    /// Register a tenant with its quotas and overflow policy.
    pub fn register_tenant(&mut self, name: &str, quota: TenantQuota, policy: OverflowPolicy) {
        self.tenants.insert(
            name.to_string(),
            Tenant {
                quota,
                policy,
                admitted: 0,
                rejected: BTreeMap::new(),
            },
        );
    }

    /// Submit a campaign. Admission is a pure function of the
    /// submission sequence: quotas count admitted-but-unfinished work,
    /// never timing.
    pub fn submit(
        &mut self,
        tenant: &str,
        spec: CampaignSpec,
    ) -> Result<CampaignHandle, AdmissionError> {
        let verdict = self.admit(tenant, &spec);
        if let Some(t) = self.tenants.get_mut(tenant) {
            match &verdict {
                Ok(()) => t.admitted += 1,
                Err(e) => *t.rejected.entry(e.reason()).or_insert(0) += 1,
            }
        }
        verdict?;
        let id = self.campaigns.len() as u64;
        let tenant_state = self.tenants.get(tenant).expect("admitted tenant exists");
        let mut cfg = CrawlConfig::paper(spec.crawl.clone(), spec.os, self.config.seed);
        cfg.workers = spec.nominal_workers;
        cfg.faults = self.config.faults.clone();
        let journal = match &self.config.journal_dir {
            Some(dir) => {
                let dir = dir.join(tenant);
                std::fs::create_dir_all(&dir).expect("journal dir");
                let path = dir.join(format!("{}-{}.ktj", spec.crawl.as_str(), spec.os.name()));
                Some(
                    JournalWriter::create_with(&path, self.config.journal_config)
                        .expect("campaign journal"),
                )
            }
            None => None,
        };
        let jobs = spec.jobs.len();
        let outages = cfg.outages.clone();
        self.campaigns.push(Mutex::new(Campaign {
            id,
            tenant: tenant.to_string(),
            cfg,
            status: CampaignStatus::Queued,
            phase: Phase::Pool,
            next_job: 0,
            parked: Vec::new(),
            recrawl_queue: Vec::new(),
            recrawl_pos: 0,
            recrawl_world: None,
            checker: ConnectivityChecker::with_outages(outages.clone()),
            recrawl_checker: ConnectivityChecker::with_outages(outages),
            stats: CrawlStats::new(),
            pool_wall_ms: 0,
            recrawl_wall_ms: 0,
            costs: vec![0; jobs],
            consumed_ms: 0,
            rounds: 0,
            shed_jobs: 0,
            model: QueueModel::new(
                self.config.queue_capacity,
                self.config.drain_ms_per_update,
                tenant_state.policy,
            ),
            journal,
            updates: 0,
            updates_shed: 0,
            round: None,
            spec,
        }));
        Ok(CampaignHandle(id))
    }

    fn admit(&self, tenant: &str, spec: &CampaignSpec) -> Result<(), AdmissionError> {
        if self.draining {
            return Err(AdmissionError::Draining);
        }
        let Some(t) = self.tenants.get(tenant) else {
            return Err(AdmissionError::UnknownTenant(tenant.to_string()));
        };
        if spec.jobs.is_empty() {
            return Err(AdmissionError::EmptyCampaign);
        }
        let mut unfinished = 0usize;
        let mut in_flight_visits = 0usize;
        for campaign in &self.campaigns {
            let c = campaign.lock().expect("campaign lock");
            if c.tenant == tenant && c.unfinished() {
                unfinished += 1;
                in_flight_visits += c.spec.jobs.len();
                if c.spec.crawl == spec.crawl && c.spec.os == spec.os {
                    return Err(AdmissionError::DuplicateCampaign(format!(
                        "{}/{}",
                        spec.crawl.as_str(),
                        spec.os.name()
                    )));
                }
            }
        }
        if unfinished >= t.quota.max_campaigns {
            return Err(AdmissionError::CampaignQuotaExceeded {
                limit: t.quota.max_campaigns,
            });
        }
        if in_flight_visits.saturating_add(spec.jobs.len()) > t.quota.max_inflight_visits {
            return Err(AdmissionError::VisitQuotaExceeded {
                limit: t.quota.max_inflight_visits,
                in_flight: in_flight_visits,
                requested: spec.jobs.len(),
            });
        }
        Ok(())
    }

    /// One scheduling round: run one job for each of up to `workers`
    /// runnable campaigns (least progressed first, admission order
    /// breaking ties) in parallel, then apply results serially in
    /// selection order. Returns false when nothing was runnable.
    pub fn step(&mut self) -> bool {
        let mut runnable: Vec<(u64, u64)> = Vec::new();
        for campaign in &self.campaigns {
            let c = campaign.lock().expect("campaign lock");
            if c.runnable() {
                runnable.push((c.rounds, c.id));
            }
        }
        if runnable.is_empty() {
            return false;
        }
        runnable.sort_unstable();
        let selected: Vec<u64> = runnable
            .into_iter()
            .take(self.config.workers.max(1))
            .map(|(_, id)| id)
            .collect();
        // Execute: one job per selected campaign, in parallel. Each
        // thread locks a distinct campaign, so campaign state stays
        // serial per campaign — the determinism boundary.
        std::thread::scope(|scope| {
            for &id in &selected {
                let campaign = &self.campaigns[id as usize];
                let store = &self.store;
                scope.spawn(move || {
                    let mut c = campaign.lock().expect("campaign lock");
                    run_campaign_job(&mut c, store);
                });
            }
        });
        // Apply serially, in selection order: queue verdicts, deadline
        // checks, phase transitions. Selection order is deterministic
        // (sorted above), so every counter below is too.
        for &id in &selected {
            self.apply_round(id);
        }
        true
    }

    fn apply_round(&mut self, id: u64) {
        let mut c = self.campaigns[id as usize].lock().expect("campaign lock");
        let Some(round) = c.round.take() else {
            return;
        };
        c.status = CampaignStatus::Running;
        c.rounds += 1;
        c.consumed_ms += round.cost_ms;
        c.updates += 1;
        // Service-path fault draws are keyed by the update's identity
        // (domain + pass), never by schedule.
        let pass_attempt = match round.pass {
            UpdatePass::Pool => 0,
            UpdatePass::Recrawl => 1,
        };
        let stall =
            if self
                .config
                .faults
                .injects(Fault::SlowConsumer, &round.record.domain, pass_attempt)
            {
                self.config.slow_consumer_stall_ms
            } else {
                0
            };
        let forced =
            self.config
                .faults
                .injects(Fault::QueueOverflow, &round.record.domain, pass_attempt);
        let arrival = c.consumed_ms;
        let verdict = c.model.on_arrival(arrival, stall, forced);
        if verdict == QueueVerdict::Shed {
            c.updates_shed += 1;
        } else {
            // The physical push may block — that is the backpressure
            // working, and it never changes what gets aggregated.
            self.queue.push(Update::Visit {
                campaign: c.id,
                record: round.record,
                pass: round.pass,
            });
        }
        // Deadline budget: cooperative cancellation after the
        // in-flight job drains.
        if let Some(deadline) = c.spec.deadline_ms {
            if c.consumed_ms > deadline {
                c.shed_jobs = c.remaining_jobs();
                c.status = CampaignStatus::DeadlineExceeded;
                c.phase = Phase::Done;
                if let Some(journal) = &c.journal {
                    // No checkpoint: the journal stays a resumable
                    // partial campaign.
                    journal.sync();
                }
                return;
            }
        }
        // Phase transitions.
        if c.phase == Phase::Pool && c.next_job == c.spec.jobs.len() {
            let mut queue = std::mem::take(&mut c.parked);
            queue.sort_by(|a, b| {
                c.spec.jobs[*a]
                    .site
                    .domain
                    .as_str()
                    .cmp(c.spec.jobs[*b].site.domain.as_str())
            });
            if queue.is_empty() {
                self.complete(&mut c);
            } else {
                // The batch recrawl pass builds one world over its
                // whole queue; mirror that exactly.
                let sites: Vec<WebSite> =
                    queue.iter().map(|&i| c.spec.jobs[i].site.clone()).collect();
                c.recrawl_world = Some(World::build(&sites, c.spec.os, self.config.seed));
                c.recrawl_queue = queue;
                c.phase = Phase::Recrawl;
            }
        } else if c.phase == Phase::Recrawl && c.recrawl_pos == c.recrawl_queue.len() {
            self.complete(&mut c);
        }
    }

    fn complete(&self, c: &mut Campaign) {
        // Identical to the batch path: greedy schedule replay over the
        // pool costs at the campaign's nominal worker count, plus the
        // serial recrawl coda.
        let sched_workers = c.spec.nominal_workers.max(1).min(c.spec.jobs.len().max(1)) as u64;
        c.stats.makespan_ms = simulated_makespan(&c.costs, sched_workers) + c.recrawl_wall_ms;
        c.status = CampaignStatus::Completed;
        c.phase = Phase::Done;
        c.recrawl_world = None;
        if let Some(journal) = &c.journal {
            journal.append_checkpoint(&CheckpointFrame {
                crawl: c.spec.crawl.as_str().to_string(),
                os: c.spec.os.name().to_string(),
                completed: c
                    .spec
                    .jobs
                    .iter()
                    .map(|job| job.site.domain.as_str().to_string())
                    .collect(),
                stats: c.stats.to_bytes(),
            });
            journal.sync();
        }
    }

    /// Run every admitted campaign to completion (or deadline).
    pub fn run(&mut self) {
        while self.step() {}
        self.flush();
    }

    /// Stop admitting, finish nothing more, and mark every unfinished
    /// campaign [`CampaignStatus::Drained`]. In-flight work has
    /// already drained (rounds are synchronous); journals are synced
    /// and resumable.
    pub fn drain(&mut self) {
        self.draining = true;
        for campaign in &self.campaigns {
            let mut c = campaign.lock().expect("campaign lock");
            if c.unfinished() {
                c.status = CampaignStatus::Drained;
                c.phase = Phase::Done;
                c.recrawl_world = None;
                if let Some(journal) = &c.journal {
                    journal.sync();
                }
            }
        }
        self.flush();
    }

    /// Wait until the consumer has absorbed everything enqueued so
    /// far — the barrier behind mid-flight snapshots.
    pub fn flush(&self) {
        let gate = Arc::new(FlushGate::default());
        if self.queue.push(Update::Flush(Arc::clone(&gate))) {
            gate.wait();
        }
    }

    /// A campaign's current status.
    pub fn status(&self, handle: CampaignHandle) -> Option<CampaignStatus> {
        self.campaigns
            .get(handle.0 as usize)
            .map(|c| c.lock().expect("campaign lock").status)
    }

    /// A campaign's crawl stats (makespan is set at completion).
    pub fn campaign_stats(&self, handle: CampaignHandle) -> Option<CrawlStats> {
        self.campaigns
            .get(handle.0 as usize)
            .map(|c| c.lock().expect("campaign lock").stats.clone())
    }

    /// Updates shed for one campaign so far.
    pub fn campaign_updates_shed(&self, handle: CampaignHandle) -> u64 {
        self.campaigns
            .get(handle.0 as usize)
            .map(|c| c.lock().expect("campaign lock").updates_shed)
            .unwrap_or(0)
    }

    /// Mid-flight tables: flush the queue and assemble the campaign's
    /// online partial over everything aggregated so far.
    pub fn snapshot(&self, handle: CampaignHandle) -> Option<CrawlAnalysis> {
        self.flush();
        self.aggregators
            .lock()
            .expect("aggregator lock")
            .get(&handle.0)
            .map(OnlinePartial::assemble)
    }

    /// Final tables for a campaign. When no updates were shed this is
    /// the online aggregate; otherwise it reconciles from the store
    /// (every record reached the store regardless of shedding), so the
    /// answer is byte-identical to the batch analyzer either way.
    pub fn final_analysis(&self, handle: CampaignHandle) -> Option<CrawlAnalysis> {
        let c = self.campaigns.get(handle.0 as usize)?;
        let (crawl, os, shed) = {
            let c = c.lock().expect("campaign lock");
            (c.spec.crawl.clone(), c.spec.os, c.updates_shed)
        };
        if shed == 0 {
            if let Some(analysis) = self.snapshot(handle) {
                return Some(analysis);
            }
        }
        let records = self.store.crawl_records_on(&crawl, os);
        Some(OnlinePartial::from_records(&records).assemble())
    }

    /// The shared telemetry store (all campaigns, all tenants).
    pub fn store(&self) -> &TelemetryStore {
        &self.store
    }

    /// A campaign's online partial as aggregated so far (flushes the
    /// queue first). Partials from different campaigns merge — the
    /// study driver merges one crawl's per-OS campaigns into the
    /// whole-crawl analysis.
    pub fn partial(&self, handle: CampaignHandle) -> Option<OnlinePartial> {
        self.flush();
        self.aggregators
            .lock()
            .expect("aggregator lock")
            .get(&handle.0)
            .cloned()
    }

    /// Shut the service down and take the telemetry store out of it.
    pub fn into_store(mut self) -> TelemetryStore {
        std::mem::replace(&mut self.store, TelemetryStore::new())
    }

    /// Deterministic per-tenant accounting, in tenant-name order.
    pub fn accounting(&self) -> Vec<TenantAccounting> {
        let mut out: Vec<TenantAccounting> = self
            .tenants
            .iter()
            .map(|(name, t)| TenantAccounting {
                tenant: name.clone(),
                admitted: t.admitted,
                rejected: t.rejected.clone(),
                completed: 0,
                shed: 0,
                drained: 0,
                in_flight: 0,
                updates: 0,
                updates_shed: 0,
                queue_blocks: 0,
                queue_high_water: 0,
            })
            .collect();
        for campaign in &self.campaigns {
            let c = campaign.lock().expect("campaign lock");
            let Some(acc) = out.iter_mut().find(|a| a.tenant == c.tenant) else {
                continue;
            };
            match c.status {
                CampaignStatus::Completed => acc.completed += 1,
                CampaignStatus::DeadlineExceeded => acc.shed += 1,
                CampaignStatus::Drained => acc.drained += 1,
                CampaignStatus::Queued | CampaignStatus::Running => acc.in_flight += 1,
            }
            acc.updates += c.updates;
            acc.updates_shed += c.updates_shed;
            acc.queue_blocks += c.model.blocks;
            acc.queue_high_water = acc.queue_high_water.max(c.model.high_water);
        }
        out
    }

    /// Export the service counters and gauges into a [`Trace`]. All
    /// values derive from the deterministic accounting state — never
    /// from the physical queue — so the rendered exposition text is
    /// byte-identical across worker counts.
    pub fn record_metrics(&self, trace: &Trace) {
        for acc in self.accounting() {
            let tenant = Labels::new(&[("tenant", &acc.tenant)]);
            trace.inc_counter(names::SERVICE_ADMITTED_TOTAL, tenant.clone(), acc.admitted);
            for (reason, n) in &acc.rejected {
                trace.inc_counter(
                    names::SERVICE_REJECTED_TOTAL,
                    Labels::new(&[("tenant", &acc.tenant), ("reason", reason)]),
                    *n,
                );
            }
            trace.inc_counter(
                names::SERVICE_COMPLETED_TOTAL,
                tenant.clone(),
                acc.completed,
            );
            trace.inc_counter(names::SERVICE_SHED_TOTAL, tenant.clone(), acc.shed);
            trace.inc_counter(names::SERVICE_DRAINED_TOTAL, tenant.clone(), acc.drained);
            trace.inc_counter(names::SERVICE_UPDATES_TOTAL, tenant.clone(), acc.updates);
            trace.inc_counter(
                names::SERVICE_UPDATES_SHED_TOTAL,
                tenant.clone(),
                acc.updates_shed,
            );
            trace.inc_counter(
                names::SERVICE_QUEUE_BLOCKS_TOTAL,
                tenant.clone(),
                acc.queue_blocks,
            );
            trace.set_gauge(
                names::SERVICE_QUEUE_DEPTH,
                tenant,
                acc.queue_high_water as f64,
            );
        }
    }
}

impl Drop for CampaignService {
    fn drop(&mut self) {
        self.queue.close();
        if let Some(consumer) = self.consumer.take() {
            let _ = consumer.join();
        }
    }
}

/// Run one job of one campaign — the executor body. Campaign state is
/// locked by the caller; everything here is campaign-serial.
fn run_campaign_job(c: &mut Campaign, store: &TelemetryStore) {
    match c.phase {
        Phase::Pool => {
            let index = c.next_job;
            let Campaign {
                spec,
                cfg,
                checker,
                stats,
                pool_wall_ms,
                journal,
                costs,
                parked,
                ..
            } = c;
            let job = CrawlJob {
                site: &spec.jobs[index].site,
                malicious_category: spec.jobs[index].malicious_category,
            };
            let end = run_pool_job(
                &job,
                cfg,
                store,
                journal.as_ref(),
                checker,
                stats,
                pool_wall_ms,
                0,
                None,
            );
            costs[index] = end.cost_ms;
            if end.parked {
                parked.push(index);
            }
            c.next_job += 1;
            c.round = Some(RoundOutcome {
                record: end.record,
                pass: UpdatePass::Pool,
                cost_ms: end.cost_ms,
            });
        }
        Phase::Recrawl => {
            let index = c.recrawl_queue[c.recrawl_pos];
            let before_wall = c.recrawl_wall_ms;
            let Campaign {
                spec,
                cfg,
                recrawl_world,
                recrawl_checker,
                stats,
                recrawl_wall_ms,
                journal,
                ..
            } = c;
            let job = CrawlJob {
                site: &spec.jobs[index].site,
                malicious_category: spec.jobs[index].malicious_category,
            };
            let record = run_recrawl_job(
                &job,
                cfg,
                store,
                journal.as_ref(),
                recrawl_world.as_mut().expect("recrawl world built"),
                recrawl_checker,
                stats,
                recrawl_wall_ms,
                None,
            );
            let cost_ms = c.recrawl_wall_ms - before_wall;
            c.recrawl_pos += 1;
            c.round = Some(RoundOutcome {
                record,
                pass: UpdatePass::Recrawl,
                cost_ms,
            });
        }
        Phase::Done => {}
    }
}

/// Suggested deadline for a campaign of `jobs` visits at `workers`
/// nominal workers, with `slack` extra visit slots of headroom —
/// convenience for tests and the CLI's overload sweeps.
pub fn deadline_for(jobs: usize, workers: usize, slack: u64) -> u64 {
    // Campaign-serial consumption: every visit costs at least one wall
    // slot regardless of nominal parallelism.
    let _ = workers;
    (jobs as u64 + slack) * VISIT_WALL_MS
}
