//! Admission control: per-tenant quotas with deterministic, typed
//! rejection.
//!
//! Admission is decided entirely from the submission sequence — tenant
//! quotas, what that tenant already has admitted-but-unfinished, and
//! the service's drain state. No clocks, no queue races: the same
//! submissions in the same order admit and reject identically whatever
//! the worker count, which is what lets a fault-storm test assert the
//! exact rejection set.

use std::fmt;

/// Per-tenant admission quotas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum admitted-but-unfinished campaigns (queued + running).
    pub max_campaigns: usize,
    /// Maximum total jobs (visits) across those campaigns.
    pub max_inflight_visits: usize,
}

impl TenantQuota {
    /// A quota that admits everything — the single-tenant batch
    /// equivalence mode.
    pub fn unbounded() -> TenantQuota {
        TenantQuota {
            max_campaigns: usize::MAX,
            max_inflight_visits: usize::MAX,
        }
    }
}

/// Why a submission was refused. Every variant is deterministic: the
/// same submission sequence produces the same errors on every run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The tenant was never registered.
    UnknownTenant(String),
    /// The tenant is at its admitted-campaign quota.
    CampaignQuotaExceeded {
        /// The tenant's `max_campaigns`.
        limit: usize,
    },
    /// Admitting the campaign would exceed the tenant's in-flight
    /// visit quota.
    VisitQuotaExceeded {
        /// The tenant's `max_inflight_visits`.
        limit: usize,
        /// In-flight visits the tenant already has admitted.
        in_flight: usize,
        /// Visits the rejected campaign asked for.
        requested: usize,
    },
    /// The tenant already has an unfinished campaign with this crawl
    /// id (campaign identity is `(tenant, crawl)` while unfinished).
    DuplicateCampaign(String),
    /// The campaign has no jobs.
    EmptyCampaign,
    /// The service is draining and admits nothing new.
    Draining,
}

impl AdmissionError {
    /// The low-cardinality `reason` label value for metrics.
    pub fn reason(&self) -> &'static str {
        match self {
            AdmissionError::UnknownTenant(_) => "unknown-tenant",
            AdmissionError::CampaignQuotaExceeded { .. } => "campaign-quota",
            AdmissionError::VisitQuotaExceeded { .. } => "visit-quota",
            AdmissionError::DuplicateCampaign(_) => "duplicate",
            AdmissionError::EmptyCampaign => "empty",
            AdmissionError::Draining => "draining",
        }
    }
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            AdmissionError::CampaignQuotaExceeded { limit } => {
                write!(f, "campaign quota exceeded (limit {limit})")
            }
            AdmissionError::VisitQuotaExceeded {
                limit,
                in_flight,
                requested,
            } => write!(
                f,
                "visit quota exceeded ({in_flight} in flight + {requested} requested > {limit})"
            ),
            AdmissionError::DuplicateCampaign(c) => {
                write!(f, "campaign {c:?} already admitted and unfinished")
            }
            AdmissionError::EmptyCampaign => write!(f, "campaign has no jobs"),
            AdmissionError::Draining => write!(f, "service is draining"),
        }
    }
}

impl std::error::Error for AdmissionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_are_stable_label_values() {
        let errors = [
            AdmissionError::UnknownTenant("x".into()),
            AdmissionError::CampaignQuotaExceeded { limit: 1 },
            AdmissionError::VisitQuotaExceeded {
                limit: 10,
                in_flight: 8,
                requested: 5,
            },
            AdmissionError::DuplicateCampaign("c".into()),
            AdmissionError::EmptyCampaign,
            AdmissionError::Draining,
        ];
        let mut reasons: Vec<&str> = errors.iter().map(|e| e.reason()).collect();
        assert!(reasons.iter().all(|r| !r.contains(' ')));
        reasons.dedup();
        assert_eq!(reasons.len(), errors.len(), "one reason per variant");
        for e in &errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
