//! Service-level acceptance tests: batch equivalence, worker-count
//! invariance of the shed set under a fault storm, typed admission,
//! deadline budgets, accounting reconciliation, and drain/resume.

use kt_analysis::{analyze_crawl_par, OnlinePartial};
use kt_crawler::crawl::{run_crawl, run_crawl_resumed, CrawlConfig, CrawlJob, VISIT_WALL_MS};
use kt_crawler::split_campaigns;
use kt_netbase::Os;
use kt_service::{
    AdmissionError, CampaignHandle, CampaignService, CampaignSpec, CampaignStatus, OverflowPolicy,
    ServiceConfig, ServiceJob, TenantQuota,
};
use kt_store::journal::replay;
use kt_store::{CrawlId, TelemetryStore};
use kt_trace::Trace;
use kt_webgen::{PopulationConfig, WebPopulation, WebSite};

use kt_faults::{Fault, FaultPlan};

fn sites(seed: u64, skip: usize, take: usize) -> Vec<WebSite> {
    let population = WebPopulation::generate(PopulationConfig::test_scale(seed));
    population
        .sites2020
        .into_iter()
        .skip(skip)
        .take(take)
        .collect()
}

fn spec(crawl: &str, os: Os, sites: &[WebSite], nominal_workers: usize) -> CampaignSpec {
    CampaignSpec {
        crawl: CrawlId(crawl.to_string()),
        os,
        jobs: sites
            .iter()
            .map(|site| ServiceJob {
                site: site.clone(),
                malicious_category: None,
            })
            .collect(),
        deadline_ms: None,
        nominal_workers,
    }
}

fn batch_jobs(sites: &[WebSite]) -> Vec<CrawlJob<'_>> {
    sites
        .iter()
        .map(|site| CrawlJob {
            site,
            malicious_category: None,
        })
        .collect()
}

#[test]
fn completed_campaign_matches_batch_tables_and_stats() {
    let seed = 41;
    let sites = sites(seed, 0, 20);
    let crawl = CrawlId("svc-batch".to_string());

    // Batch reference: the uninterrupted single-campaign pipeline.
    let mut batch_cfg = CrawlConfig::paper(crawl.clone(), Os::Linux, seed);
    batch_cfg.workers = 4;
    let batch_store = TelemetryStore::new();
    let batch_stats = run_crawl(&batch_jobs(&sites), &batch_cfg, &batch_store);
    let batch_analysis = analyze_crawl_par(&batch_store, &crawl, 4);

    // Service: same campaign through the resident scheduler, different
    // executor count than the campaign's nominal worker count.
    let mut config = ServiceConfig::new(seed);
    config.workers = 3;
    let mut service = CampaignService::new(config);
    service.register_tenant("paper", TenantQuota::unbounded(), OverflowPolicy::Block);
    let handle = service
        .submit("paper", spec("svc-batch", Os::Linux, &sites, 4))
        .expect("admitted");
    service.run();

    assert_eq!(service.status(handle), Some(CampaignStatus::Completed));
    assert_eq!(service.campaign_updates_shed(handle), 0);
    let service_stats = service.campaign_stats(handle).expect("stats");
    assert_eq!(
        service_stats.to_bytes(),
        batch_stats.to_bytes(),
        "campaign-serial service run must reproduce the batch stats, makespan included"
    );
    let analysis = service.final_analysis(handle).expect("analysis");
    assert_eq!(analysis, batch_analysis);
    // The store ends up with the same records too.
    assert_eq!(
        service.store().crawl_records(&crawl).len(),
        batch_store.crawl_records(&crawl).len()
    );
}

#[test]
fn mid_flight_snapshot_tracks_the_store_prefix() {
    let seed = 43;
    let sites = sites(seed, 30, 8);
    let mut config = ServiceConfig::new(seed);
    config.workers = 2;
    let mut service = CampaignService::new(config);
    service.register_tenant("paper", TenantQuota::unbounded(), OverflowPolicy::Block);
    let handle = service
        .submit("paper", spec("svc-snap", Os::Windows, &sites, 2))
        .expect("admitted");

    for steps_done in 1..=3 {
        assert!(service.step());
        let snapshot = service.snapshot(handle).expect("snapshot");
        assert_eq!(snapshot.visits, steps_done);
        let crawl = CrawlId("svc-snap".to_string());
        let records = service.store().crawl_records_on(&crawl, Os::Windows);
        assert_eq!(
            snapshot,
            OnlinePartial::from_records(&records).assemble(),
            "mid-flight snapshot must equal an analysis of the store prefix"
        );
    }
    service.run();
    assert_eq!(service.status(handle), Some(CampaignStatus::Completed));
}

/// The storm fixture: three tenants, mixed policies, over-quota
/// submissions, a deadline campaign, and every service + crawl fault
/// class firing at once.
fn storm_service(workers: usize) -> (CampaignService, Vec<CampaignHandle>) {
    let seed = 77;
    let mut config = ServiceConfig::new(seed);
    config.workers = workers;
    config.queue_capacity = 2;
    config.drain_ms_per_update = 60_000;
    config.slow_consumer_stall_ms = 120_000;
    config.faults = FaultPlan::none(seed)
        .with_rate(Fault::QueueOverflow, 0.35)
        .with_rate(Fault::SlowConsumer, 0.35)
        .with_rate(Fault::DnsFlap, 0.25)
        .with_rate(Fault::ConnectionReset, 0.20)
        .with_rate(Fault::WorkerPanic, 0.15);
    let mut service = CampaignService::new(config);
    service.register_tenant("acme", TenantQuota::unbounded(), OverflowPolicy::Block);
    service.register_tenant(
        "umbrella",
        TenantQuota {
            max_campaigns: 2,
            max_inflight_visits: 40,
        },
        OverflowPolicy::Shed,
    );
    service.register_tenant(
        "initech",
        TenantQuota {
            max_campaigns: 4,
            max_inflight_visits: 10,
        },
        OverflowPolicy::Shed,
    );

    let mut handles = Vec::new();
    handles.push(
        service
            .submit("acme", spec("acme-a", Os::Linux, &sites(7, 0, 8), 2))
            .expect("acme-a admitted"),
    );
    let mut deadline = spec("acme-b", Os::Windows, &sites(7, 8, 8), 2);
    deadline.deadline_ms = Some(3 * VISIT_WALL_MS + 1_000);
    handles.push(service.submit("acme", deadline).expect("acme-b admitted"));
    handles.push(
        service
            .submit("umbrella", spec("umb-a", Os::MacOs, &sites(7, 16, 6), 4))
            .expect("umb-a admitted"),
    );
    handles.push(
        service
            .submit("umbrella", spec("umb-b", Os::Linux, &sites(7, 22, 6), 4))
            .expect("umb-b admitted"),
    );
    // Over quota: umbrella is at its campaign limit.
    assert_eq!(
        service.submit("umbrella", spec("umb-c", Os::Linux, &sites(7, 28, 2), 1)),
        Err(AdmissionError::CampaignQuotaExceeded { limit: 2 })
    );
    handles.push(
        service
            .submit("initech", spec("ini-a", Os::Windows, &sites(7, 30, 8), 1))
            .expect("ini-a admitted"),
    );
    // Over quota: initech has 8 of 10 visit slots in flight.
    assert_eq!(
        service.submit("initech", spec("ini-b", Os::MacOs, &sites(7, 38, 8), 1)),
        Err(AdmissionError::VisitQuotaExceeded {
            limit: 10,
            in_flight: 8,
            requested: 8,
        })
    );
    (service, handles)
}

/// Per-campaign slice of the fingerprint: status, updates shed, and
/// the serialized stats.
type CampaignFingerprint = (CampaignStatus, u64, Vec<u8>);

/// Everything the acceptance criterion byte-compares across worker
/// counts: statuses, shed counts, stats, accounting, and the rendered
/// Prometheus exposition.
fn storm_fingerprint(workers: usize) -> (Vec<CampaignFingerprint>, String, String) {
    let (mut service, handles) = storm_service(workers);
    service.run();
    let campaigns = handles
        .iter()
        .map(|&h| {
            (
                service.status(h).expect("status"),
                service.campaign_updates_shed(h),
                service.campaign_stats(h).expect("stats").to_bytes(),
            )
        })
        .collect();
    let accounting = format!("{:?}", service.accounting());
    let trace = Trace::new();
    service.record_metrics(&trace);
    (campaigns, accounting, trace.export_prometheus())
}

#[test]
fn fault_storm_degrades_identically_across_worker_counts() {
    let baseline = storm_fingerprint(1);
    // The storm actually stormed: something shed, the deadline fired,
    // nothing panicked (we got here), and the books balance.
    let total_shed: u64 = baseline.0.iter().map(|(_, shed, _)| *shed).sum();
    assert!(total_shed > 0, "storm must shed at least one update");
    assert_eq!(baseline.0[1].0, CampaignStatus::DeadlineExceeded);
    assert!(
        baseline
            .0
            .iter()
            .filter(|(status, _, _)| *status == CampaignStatus::Completed)
            .count()
            >= 3,
        "most campaigns still complete under the storm"
    );
    for workers in [2, 4, 8] {
        let run = storm_fingerprint(workers);
        assert_eq!(
            run.0, baseline.0,
            "shed set must not depend on workers={workers}"
        );
        assert_eq!(
            run.1, baseline.1,
            "accounting must not depend on workers={workers}"
        );
        assert_eq!(
            run.2, baseline.2,
            "metrics must not depend on workers={workers}"
        );
    }
}

#[test]
fn storm_accounting_reconciles_and_counts_rejections() {
    let (mut service, _) = storm_service(2);
    service.run();
    let accounting = service.accounting();
    assert_eq!(accounting.len(), 3);
    for tenant in &accounting {
        assert!(
            tenant.reconciles(),
            "admitted == completed + shed + drained + in_flight for {}: {tenant:?}",
            tenant.tenant
        );
        assert_eq!(tenant.in_flight, 0, "run() drains all work");
    }
    let umbrella = &accounting[2];
    assert_eq!(umbrella.tenant, "umbrella");
    assert_eq!(umbrella.admitted, 2);
    assert_eq!(umbrella.rejected.get("campaign-quota"), Some(&1));
    let initech = &accounting[1];
    assert_eq!(initech.tenant, "initech");
    assert_eq!(initech.rejected.get("visit-quota"), Some(&1));
    // Block tenants block; shed tenants shed.
    let acme = &accounting[0];
    assert_eq!(acme.tenant, "acme");
    assert_eq!(acme.updates_shed, 0, "Block policy never sheds");
    assert!(
        acme.queue_blocks > 0,
        "Block policy absorbs overflow as blocks"
    );
    assert!(
        umbrella.updates_shed + initech.updates_shed > 0,
        "Shed policy sheds under the storm"
    );
}

#[test]
fn admission_errors_are_typed_and_deterministic() {
    let mut service = CampaignService::new(ServiceConfig::new(5));
    service.register_tenant(
        "t",
        TenantQuota {
            max_campaigns: 1,
            max_inflight_visits: 4,
        },
        OverflowPolicy::Block,
    );
    let sites = sites(5, 0, 6);
    assert_eq!(
        service.submit("ghost", spec("c", Os::Linux, &sites[..1], 1)),
        Err(AdmissionError::UnknownTenant("ghost".to_string()))
    );
    assert_eq!(
        service.submit("t", spec("c", Os::Linux, &[], 1)),
        Err(AdmissionError::EmptyCampaign)
    );
    assert_eq!(
        service.submit("t", spec("big", Os::Linux, &sites, 1)),
        Err(AdmissionError::VisitQuotaExceeded {
            limit: 4,
            in_flight: 0,
            requested: 6,
        })
    );
    let first = service
        .submit("t", spec("c", Os::Linux, &sites[..2], 1))
        .expect("admitted");
    assert_eq!(
        service.submit("t", spec("c", Os::Linux, &sites[2..4], 1)),
        Err(AdmissionError::DuplicateCampaign("c/Linux".to_string()))
    );
    assert_eq!(
        service.submit("t", spec("d", Os::Linux, &sites[2..4], 1)),
        Err(AdmissionError::CampaignQuotaExceeded { limit: 1 })
    );
    // Quota frees up once the admitted campaign finishes.
    service.run();
    assert_eq!(service.status(first), Some(CampaignStatus::Completed));
    let second = service
        .submit("t", spec("d", Os::Linux, &sites[2..4], 1))
        .expect("quota freed");
    service.run();
    assert_eq!(service.status(second), Some(CampaignStatus::Completed));
    // A draining service admits nothing.
    service.drain();
    assert_eq!(
        service.submit("t", spec("e", Os::Linux, &sites[..1], 1)),
        Err(AdmissionError::Draining)
    );
}

#[test]
fn deadline_budget_cancels_cooperatively() {
    let seed = 11;
    let sites = sites(seed, 0, 5);
    let mut service = CampaignService::new(ServiceConfig::new(seed));
    service.register_tenant("t", TenantQuota::unbounded(), OverflowPolicy::Block);
    let mut spec = spec("budgeted", Os::MacOs, &sites, 1);
    spec.deadline_ms = Some(VISIT_WALL_MS + 1);
    let handle = service.submit("t", spec).expect("admitted");
    service.run();
    assert_eq!(
        service.status(handle),
        Some(CampaignStatus::DeadlineExceeded)
    );
    let accounting = service.accounting();
    assert_eq!(accounting[0].shed, 1);
    assert!(accounting[0].reconciles());
    // The in-flight jobs drained into the store before cancellation.
    let crawl = CrawlId("budgeted".to_string());
    let drained = service.store().crawl_records_on(&crawl, Os::MacOs).len();
    assert!(drained >= 1 && drained < sites.len());
}

#[test]
fn drained_campaign_resumes_to_batch_identical_tables() {
    let seed = 19;
    let sites = sites(seed, 50, 10);
    let crawl = CrawlId("svc-resume".to_string());
    let dir = std::env::temp_dir().join(format!("kt-service-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut config = ServiceConfig::new(seed);
    config.workers = 1;
    config.journal_dir = Some(dir.clone());
    let mut service = CampaignService::new(config);
    service.register_tenant("paper", TenantQuota::unbounded(), OverflowPolicy::Block);
    let handle = service
        .submit("paper", spec("svc-resume", Os::MacOs, &sites, 2))
        .expect("admitted");
    for _ in 0..4 {
        assert!(service.step());
    }
    service.drain();
    assert_eq!(service.status(handle), Some(CampaignStatus::Drained));
    drop(service);

    // Resume from the journal through the batch resume machinery.
    let journal_path = dir.join("paper").join("svc-resume-Mac.ktj");
    let report = replay(&journal_path).expect("journal replays");
    let campaigns = split_campaigns(&report.visits, &report.checkpoints);
    let campaign = campaigns
        .get(&("svc-resume".to_string(), "Mac".to_string()))
        .expect("drained campaign present");
    let jobs = batch_jobs(&sites);
    let plan = campaign.plan(&jobs);
    let mut cfg = CrawlConfig::paper(crawl.clone(), Os::MacOs, seed);
    cfg.workers = 2;
    let resumed_stats = run_crawl_resumed(&jobs, &plan, &cfg, &report.store, None);

    // Uninterrupted batch reference.
    let batch_store = TelemetryStore::new();
    let batch_stats = run_crawl(&jobs, &cfg, &batch_store);
    assert_eq!(resumed_stats.to_bytes(), batch_stats.to_bytes());
    assert_eq!(
        analyze_crawl_par(&report.store, &crawl, 2),
        analyze_crawl_par(&batch_store, &crawl, 2),
        "drained-then-resumed tables must be byte-identical to batch"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
