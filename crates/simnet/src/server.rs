//! Simulated network endpoints.
//!
//! An [`Endpoint`] is anything listening at an `(address, port)`:
//! a public web server, a localhost native-application service, a LAN
//! device's HTTP interface. Its [`ServerBehavior`] decides what a
//! connection attempt observes — the error taxonomy of Table 1 lives
//! here for the connection-level failures (refused / reset / TLS cert).

use serde::{Deserialize, Serialize};

use crate::tls::Certificate;

/// A canned HTTP response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Body length in bytes (bodies themselves are not simulated).
    pub body_len: u64,
    /// `Access-Control-Allow-Origin: *` — whether cross-origin readers
    /// get CORS approval. The local services the paper observed do not
    /// send it.
    pub cors_allow_any: bool,
    /// `Location` header for 3xx responses.
    pub redirect_to: Option<String>,
}

impl HttpResponse {
    /// A plain 200 with a given body size.
    pub fn ok(body_len: u64) -> HttpResponse {
        HttpResponse {
            status: 200,
            body_len,
            cors_allow_any: false,
            redirect_to: None,
        }
    }

    /// A 404 (missing resource: the developer-error fetches).
    pub fn not_found() -> HttpResponse {
        HttpResponse {
            status: 404,
            body_len: 0,
            cors_allow_any: false,
            redirect_to: None,
        }
    }

    /// A redirect to another URL.
    pub fn redirect(to: &str) -> HttpResponse {
        HttpResponse {
            status: 302,
            body_len: 0,
            cors_allow_any: false,
            redirect_to: Some(to.to_string()),
        }
    }
}

/// What a connection to an endpoint experiences.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerBehavior {
    /// Accepts TCP and answers HTTP with the given response.
    Http(HttpResponse),
    /// Accepts TCP, completes a WebSocket upgrade, then echoes frames.
    WebSocket,
    /// Accepts TCP but the service resets the connection mid-exchange
    /// (`ERR_CONNECTION_RESET`).
    ResetOnRequest,
    /// No listener: the host answers RST (`ERR_CONNECTION_REFUSED`).
    Refused,
    /// Packets are silently dropped (`ERR_TIMED_OUT` after the connect
    /// timeout — in a 20 s crawl window, the window usually closes
    /// first and the request is recorded in-flight).
    Blackhole,
    /// Accepts TCP then closes without sending anything
    /// (`ERR_EMPTY_RESPONSE`).
    EmptyResponse,
}

/// A listener bound at an address and port.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Endpoint {
    /// Connection behaviour.
    pub behavior: ServerBehavior,
    /// TLS certificate presented when the client speaks TLS; `None`
    /// means the endpoint is plaintext-only (a TLS handshake to it
    /// fails with a protocol error).
    pub certificate: Option<Certificate>,
}

impl Endpoint {
    /// A plaintext HTTP endpoint.
    pub fn http(response: HttpResponse) -> Endpoint {
        Endpoint {
            behavior: ServerBehavior::Http(response),
            certificate: None,
        }
    }

    /// An HTTPS endpoint with a matching certificate for `host`.
    pub fn https(host: &str, response: HttpResponse) -> Endpoint {
        Endpoint {
            behavior: ServerBehavior::Http(response),
            certificate: Some(Certificate::valid_for(host)),
        }
    }

    /// A plaintext WebSocket endpoint.
    pub fn ws() -> Endpoint {
        Endpoint {
            behavior: ServerBehavior::WebSocket,
            certificate: None,
        }
    }

    /// A TLS WebSocket endpoint with a matching certificate.
    pub fn wss(host: &str) -> Endpoint {
        Endpoint {
            behavior: ServerBehavior::WebSocket,
            certificate: Some(Certificate::valid_for(host)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tls::CertVerdict;

    #[test]
    fn response_constructors() {
        assert_eq!(HttpResponse::ok(10).status, 200);
        assert_eq!(HttpResponse::not_found().status, 404);
        let r = HttpResponse::redirect("http://127.0.0.1/");
        assert_eq!(r.status, 302);
        assert_eq!(r.redirect_to.as_deref(), Some("http://127.0.0.1/"));
    }

    #[test]
    fn endpoint_constructors() {
        let e = Endpoint::https("example.com", HttpResponse::ok(1));
        assert_eq!(
            e.certificate.unwrap().verify("example.com"),
            CertVerdict::Ok
        );
        assert!(Endpoint::http(HttpResponse::ok(1)).certificate.is_none());
        assert!(matches!(Endpoint::ws().behavior, ServerBehavior::WebSocket));
        assert!(Endpoint::wss("a.b").certificate.is_some());
    }
}
