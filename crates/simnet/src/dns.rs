//! Simulated DNS.
//!
//! Table 1 of the paper attributes ~88–90% of all crawl failures to
//! `NAME_NOT_RESOLVED`; the DNS layer is therefore the single most
//! important failure source to model. The resolver supports positive
//! records, authoritative NXDOMAIN, server failure, and timeout, plus a
//! TTL cache (so repeated visits inside one crawl behave like a real
//! stub resolver).

use std::collections::HashMap;
use std::net::IpAddr;

use serde::{Deserialize, Serialize};

use crate::clock::SimTime;

/// Outcome configured for a DNS name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsRecord {
    /// The name resolves to this address.
    A(IpAddr),
    /// Authoritative name error (the domain does not exist) — the
    /// paper's dominant failure class.
    NxDomain,
    /// SERVFAIL from the authoritative side.
    ServFail,
    /// Queries are silently dropped until the stub resolver gives up.
    Timeout,
}

/// Resolution errors, mapped by the browser onto Chrome net errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsError {
    /// NXDOMAIN or an unregistered name.
    NxDomain,
    /// SERVFAIL.
    ServFail,
    /// Query timeout.
    Timeout,
    /// The record's address data does not parse as an IP address — a
    /// corrupt zone entry. Surfaced as a typed error at zone-load time
    /// instead of a panic inside the resolver.
    MalformedRecord,
}

impl DnsRecord {
    /// Parse an A/AAAA record from its textual address data. Returns
    /// [`DnsError::MalformedRecord`] instead of panicking when the
    /// data is not a valid IPv4 or IPv6 address.
    pub fn parse_a(data: &str) -> Result<DnsRecord, DnsError> {
        data.trim()
            .parse::<IpAddr>()
            .map(DnsRecord::A)
            .map_err(|_| DnsError::MalformedRecord)
    }
}

/// One cache entry.
#[derive(Debug, Clone)]
struct CacheEntry {
    result: Result<IpAddr, DnsError>,
    expires_at: SimTime,
}

/// A caching stub resolver over a static zone table.
#[derive(Debug, Default)]
pub struct DnsResolver {
    zone: HashMap<String, DnsRecord>,
    cache: HashMap<String, CacheEntry>,
    positive_ttl_ms: u64,
    negative_ttl_ms: u64,
    /// Total queries answered from the zone (cache misses).
    pub authoritative_queries: u64,
    /// Total queries answered from cache.
    pub cache_hits: u64,
}

impl DnsResolver {
    /// An empty resolver with Chrome-like TTL behaviour (Chrome caps
    /// positive cache entries at 60 s regardless of record TTL).
    pub fn new() -> DnsResolver {
        DnsResolver {
            zone: HashMap::new(),
            cache: HashMap::new(),
            positive_ttl_ms: 60_000,
            negative_ttl_ms: 5_000,
            authoritative_queries: 0,
            cache_hits: 0,
        }
    }

    /// Register a record; replaces any existing record for the name.
    /// Names are normalised to lower-case.
    pub fn insert(&mut self, name: &str, record: DnsRecord) {
        self.zone.insert(name.to_ascii_lowercase(), record);
    }

    /// Register an address record from textual data (the shape zone
    /// files and capture replays arrive in). Malformed address data is
    /// a typed [`DnsError::MalformedRecord`], never a panic, and the
    /// zone is left unchanged on error.
    pub fn insert_a(&mut self, name: &str, data: &str) -> Result<(), DnsError> {
        let record = DnsRecord::parse_a(data)?;
        self.insert(name, record);
        Ok(())
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.zone.len()
    }

    /// True if the zone is empty.
    pub fn is_empty(&self) -> bool {
        self.zone.is_empty()
    }

    /// Resolve a name at a point in simulated time.
    ///
    /// Unregistered names are NXDOMAIN: the simulated Internet is a
    /// closed world, exactly like the paper's parsed-and-stored
    /// telemetry database.
    pub fn resolve(&mut self, name: &str, now: SimTime) -> Result<IpAddr, DnsError> {
        let key = name.to_ascii_lowercase();
        if let Some(entry) = self.cache.get(&key) {
            if entry.expires_at > now {
                self.cache_hits += 1;
                return entry.result;
            }
        }
        self.authoritative_queries += 1;
        let result = match self.zone.get(&key) {
            Some(DnsRecord::A(addr)) => Ok(*addr),
            Some(DnsRecord::NxDomain) | None => Err(DnsError::NxDomain),
            Some(DnsRecord::ServFail) => Err(DnsError::ServFail),
            Some(DnsRecord::Timeout) => Err(DnsError::Timeout),
        };
        let ttl = if result.is_ok() {
            self.positive_ttl_ms
        } else {
            self.negative_ttl_ms
        };
        self.cache.insert(
            key,
            CacheEntry {
                result,
                expires_at: now + ttl,
            },
        );
        result
    }

    /// Drop all cached entries (a new browser profile).
    pub fn flush_cache(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Record data goes through the typed parse path — a malformed
    /// literal here is a test failure with a message, not a panic deep
    /// inside an `unwrap` on address data.
    fn ip(s: &str) -> IpAddr {
        match DnsRecord::parse_a(s) {
            Ok(DnsRecord::A(addr)) => addr,
            other => panic!("test record {s:?} did not parse: {other:?}"),
        }
    }

    #[test]
    fn malformed_record_data_is_a_typed_error_not_a_panic() {
        for bad in ["", "not-an-ip", "999.1.2.3", "1.2.3", "1.2.3.4.5", "[::1"] {
            assert_eq!(
                DnsRecord::parse_a(bad),
                Err(DnsError::MalformedRecord),
                "{bad:?} must be rejected as malformed"
            );
        }
        let mut r = DnsResolver::new();
        assert_eq!(
            r.insert_a("corrupt.example", "999.999.999.999"),
            Err(DnsError::MalformedRecord)
        );
        // The zone is untouched by the failed insert: the name still
        // answers NXDOMAIN, not a stale or half-written record.
        assert_eq!(r.len(), 0);
        assert_eq!(r.resolve("corrupt.example", 0), Err(DnsError::NxDomain));
    }

    #[test]
    fn insert_a_accepts_v4_and_v6_data() {
        let mut r = DnsResolver::new();
        r.insert_a("four.example", "93.184.216.34").unwrap();
        r.insert_a("six.example", "::1").unwrap();
        assert_eq!(r.resolve("four.example", 0), Ok(ip("93.184.216.34")));
        assert_eq!(r.resolve("six.example", 0), Ok(ip("::1")));
    }

    #[test]
    fn positive_resolution() {
        let mut r = DnsResolver::new();
        r.insert("example.com", DnsRecord::A(ip("93.184.216.34")));
        assert_eq!(r.resolve("example.com", 0), Ok(ip("93.184.216.34")));
        // Case-insensitive.
        assert_eq!(r.resolve("EXAMPLE.com", 0), Ok(ip("93.184.216.34")));
    }

    #[test]
    fn unregistered_names_are_nxdomain() {
        let mut r = DnsResolver::new();
        assert_eq!(r.resolve("no-such.example", 0), Err(DnsError::NxDomain));
    }

    #[test]
    fn failure_modes() {
        let mut r = DnsResolver::new();
        r.insert("dead.example", DnsRecord::NxDomain);
        r.insert("broken.example", DnsRecord::ServFail);
        r.insert("slow.example", DnsRecord::Timeout);
        assert_eq!(r.resolve("dead.example", 0), Err(DnsError::NxDomain));
        assert_eq!(r.resolve("broken.example", 0), Err(DnsError::ServFail));
        assert_eq!(r.resolve("slow.example", 0), Err(DnsError::Timeout));
    }

    #[test]
    fn cache_hits_within_ttl() {
        let mut r = DnsResolver::new();
        r.insert("example.com", DnsRecord::A(ip("1.2.3.4")));
        r.resolve("example.com", 0).unwrap();
        r.resolve("example.com", 30_000).unwrap();
        assert_eq!(r.authoritative_queries, 1);
        assert_eq!(r.cache_hits, 1);
        // Past the 60 s positive TTL: re-query.
        r.resolve("example.com", 61_000).unwrap();
        assert_eq!(r.authoritative_queries, 2);
    }

    #[test]
    fn negative_cache_is_shorter() {
        let mut r = DnsResolver::new();
        let _ = r.resolve("missing.example", 0);
        let _ = r.resolve("missing.example", 2_000);
        assert_eq!(r.authoritative_queries, 1, "negative hit cached");
        let _ = r.resolve("missing.example", 6_000);
        assert_eq!(r.authoritative_queries, 2, "negative entry expired");
    }

    #[test]
    fn record_updates_take_effect_after_expiry() {
        let mut r = DnsResolver::new();
        r.insert("moving.example", DnsRecord::A(ip("1.1.1.1")));
        assert_eq!(r.resolve("moving.example", 0), Ok(ip("1.1.1.1")));
        r.insert("moving.example", DnsRecord::A(ip("2.2.2.2")));
        // Cached answer persists…
        assert_eq!(r.resolve("moving.example", 1_000), Ok(ip("1.1.1.1")));
        // …until flushed or expired.
        r.flush_cache();
        assert_eq!(r.resolve("moving.example", 1_000), Ok(ip("2.2.2.2")));
    }
}
