//! Order-independent deterministic sampling.
//!
//! The simulation must produce identical traffic whether sites are
//! crawled serially or across a crossbeam worker pool. Sequential RNG
//! streams break under reordering, so all per-entity randomness is
//! derived by *hashing* the entity's identity with the run seed:
//! SplitMix64 over the seed and the entity's bytes. The result is a
//! high-quality 64-bit value that is stable across runs, threads and
//! call order.

/// SplitMix64 finaliser: a fast, well-distributed 64-bit mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash a byte string with a seed into a uniform u64.
pub fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    // FNV-1a accumulate, SplitMix64 finalise per 8-byte lane.
    let mut h = splitmix64(seed ^ 0x51ab_c0de_51ab_c0de);
    for chunk in bytes.chunks(8) {
        let mut lane = [0u8; 8];
        lane[..chunk.len()].copy_from_slice(chunk);
        h = splitmix64(h ^ u64::from_le_bytes(lane));
    }
    splitmix64(h ^ bytes.len() as u64)
}

/// Hash a string label with a seed.
pub fn hash_str(seed: u64, s: &str) -> u64 {
    hash_bytes(seed, s.as_bytes())
}

/// A uniform sample in `[0, 1)` derived from a seed and a label.
pub fn unit(seed: u64, label: &str) -> f64 {
    (hash_str(seed, label) >> 11) as f64 / (1u64 << 53) as f64
}

/// A uniform sample in `[lo, hi)` derived from a seed and a label.
pub fn range(seed: u64, label: &str, lo: f64, hi: f64) -> f64 {
    lo + unit(seed, label) * (hi - lo)
}

/// A Bernoulli trial with probability `p`, derived from seed + label.
pub fn coin(seed: u64, label: &str, p: f64) -> bool {
    unit(seed, label) < p
}

/// Pick an index in `0..n` (n > 0), derived from seed + label.
pub fn pick(seed: u64, label: &str, n: usize) -> usize {
    debug_assert!(n > 0);
    (hash_str(seed, label) % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_str(42, "ebay.com"), hash_str(42, "ebay.com"));
        assert_eq!(unit(7, "x"), unit(7, "x"));
    }

    #[test]
    fn sensitive_to_seed_and_label() {
        assert_ne!(hash_str(1, "a"), hash_str(2, "a"));
        assert_ne!(hash_str(1, "a"), hash_str(1, "b"));
        // Length extension must matter.
        assert_ne!(hash_bytes(1, b"ab"), hash_bytes(1, b"ab\0"));
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        for i in 0..1000 {
            let u = unit(99, &format!("label-{i}"));
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn unit_is_roughly_uniform() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| unit(3, &format!("k{i}"))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let below_quarter =
            (0..n).filter(|i| unit(3, &format!("k{i}")) < 0.25).count() as f64 / n as f64;
        assert!((below_quarter - 0.25).abs() < 0.02, "{below_quarter}");
    }

    #[test]
    fn coin_respects_probability() {
        let n = 10_000;
        let hits = (0..n).filter(|i| coin(11, &format!("c{i}"), 0.1)).count() as f64 / n as f64;
        assert!((hits - 0.1).abs() < 0.02, "{hits}");
        assert!((0..100).all(|i| !coin(11, &format!("z{i}"), 0.0)));
        assert!((0..100).all(|i| coin(11, &format!("z{i}"), 1.0)));
    }

    #[test]
    fn pick_covers_domain() {
        let mut seen = [false; 7];
        for i in 0..500 {
            seen[pick(5, &format!("p{i}"), 7)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn range_bounds() {
        for i in 0..200 {
            let v = range(8, &format!("r{i}"), 20.0, 200.0);
            assert!((20.0..200.0).contains(&v));
        }
    }
}
