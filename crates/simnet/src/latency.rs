//! Connection latency by destination class.
//!
//! Latency only needs to be *plausible* and *deterministic*: the
//! paper's timing analysis (Figures 5–7) is dominated by when scripts
//! fire, not by network RTT, but the BIG-IP bot-defence timing side
//! channel (§4.3.2) depends on refused-connection responses returning
//! much faster than timeouts, so the model distinguishes those cases.

use kt_netbase::Locality;

use crate::rng;

/// Deterministic latency sampler.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyModel {
    seed: u64,
}

impl LatencyModel {
    /// Build a model for a run seed.
    pub fn new(seed: u64) -> LatencyModel {
        LatencyModel { seed }
    }

    /// DNS resolution latency in ms for a name (cache misses).
    pub fn dns_ms(&self, name: &str) -> u64 {
        rng::range(self.seed, &format!("dns:{name}"), 5.0, 120.0) as u64
    }

    /// TCP connect latency in ms to an address of the given locality.
    pub fn connect_ms(&self, locality: Locality, key: &str) -> u64 {
        let (lo, hi) = match locality {
            Locality::Loopback => (0.0, 2.0),
            Locality::Private | Locality::LinkLocal => (1.0, 6.0),
            _ => (15.0, 180.0),
        };
        rng::range(self.seed, &format!("tcp:{key}"), lo, hi) as u64
    }

    /// Additional TLS handshake latency in ms (~1 extra RTT).
    pub fn tls_ms(&self, locality: Locality, key: &str) -> u64 {
        self.connect_ms(locality, &format!("tls:{key}")).max(1)
    }

    /// Server think-time plus first-byte latency in ms.
    pub fn response_ms(&self, key: &str) -> u64 {
        rng::range(self.seed, &format!("resp:{key}"), 2.0, 90.0) as u64
    }

    /// How long a connect to a dead port takes to *refuse* — fast,
    /// because the host answers with RST. This is the side channel the
    /// BIG-IP script reads.
    pub fn refused_ms(&self, locality: Locality, key: &str) -> u64 {
        self.connect_ms(locality, &format!("refused:{key}")).max(1)
    }

    /// The connect timeout for silently dropped packets, in ms.
    pub fn timeout_ms(&self) -> u64 {
        // Chrome's TCP connect attempt timeout is in the tens of
        // seconds; the crawl window (20 s) always expires first.
        30_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        let m = LatencyModel::new(7);
        assert_eq!(m.dns_ms("ebay.com"), m.dns_ms("ebay.com"));
        assert_eq!(
            m.connect_ms(Locality::Public, "1.2.3.4:443"),
            m.connect_ms(Locality::Public, "1.2.3.4:443")
        );
        let other = LatencyModel::new(8);
        // Different seeds should (almost always) differ somewhere.
        let differs = (0..64).any(|i| {
            let k = format!("k{i}");
            m.dns_ms(&k) != other.dns_ms(&k)
        });
        assert!(differs);
    }

    #[test]
    fn local_destinations_are_faster_than_public() {
        let m = LatencyModel::new(1);
        for i in 0..100 {
            let key = format!("addr{i}");
            let loopback = m.connect_ms(Locality::Loopback, &key);
            let public = m.connect_ms(Locality::Public, &key);
            assert!(loopback <= 2);
            assert!((15..180).contains(&(public as i64)), "{public}");
        }
    }

    #[test]
    fn refusal_beats_timeout_by_orders_of_magnitude() {
        let m = LatencyModel::new(1);
        let refused = m.refused_ms(Locality::Loopback, "localhost:4444");
        assert!(refused * 100 < m.timeout_ms());
    }
}
