//! The pre-visit connectivity check.
//!
//! "Before visiting a webpage, we first check for network connectivity
//! by pinging Google's DNS server (8.8.8.8). This ensures that we crawl
//! a site only when the measurement infrastructure has Internet
//! connectivity, and thus we can differentiate between website load
//! failures and network issues on our end." (§3.1)
//!
//! The checker supports injected outage windows so failure-injection
//! tests can verify that outages delay the crawl rather than polluting
//! the error statistics.

use crate::clock::SimTime;

/// A closed-open outage interval on the crawl wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// Outage start (inclusive), ms.
    pub start: SimTime,
    /// Outage end (exclusive), ms.
    pub end: SimTime,
}

/// Simulated ping-based connectivity checker.
#[derive(Debug, Clone, Default)]
pub struct ConnectivityChecker {
    outages: Vec<Outage>,
    /// Pings attempted.
    pub pings: u64,
    /// Pings that failed (fell inside an outage).
    pub failures: u64,
}

impl ConnectivityChecker {
    /// A checker with no outages (the paper's crawls observed none).
    pub fn always_online() -> ConnectivityChecker {
        ConnectivityChecker::default()
    }

    /// A checker with the given outage schedule.
    pub fn with_outages(mut outages: Vec<Outage>) -> ConnectivityChecker {
        outages.sort_by_key(|o| o.start);
        ConnectivityChecker {
            outages,
            pings: 0,
            failures: 0,
        }
    }

    /// Ping 8.8.8.8 at crawl time `now`; true means online.
    pub fn ping(&mut self, now: SimTime) -> bool {
        self.pings += 1;
        let online = !self.outages.iter().any(|o| o.start <= now && now < o.end);
        if !online {
            self.failures += 1;
        }
        online
    }

    /// The earliest time ≥ `now` at which the network is back up.
    pub fn next_online(&self, now: SimTime) -> SimTime {
        match self.outages.iter().find(|o| o.start <= now && now < o.end) {
            Some(o) => o.end,
            None => now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_online_never_fails() {
        let mut c = ConnectivityChecker::always_online();
        for t in [0, 1_000, 1_000_000] {
            assert!(c.ping(t));
        }
        assert_eq!(c.pings, 3);
        assert_eq!(c.failures, 0);
    }

    #[test]
    fn outage_windows_fail_pings() {
        let mut c = ConnectivityChecker::with_outages(vec![Outage {
            start: 100,
            end: 200,
        }]);
        assert!(c.ping(99));
        assert!(!c.ping(100));
        assert!(!c.ping(199));
        assert!(c.ping(200));
        assert_eq!(c.failures, 2);
    }

    #[test]
    fn next_online_skips_past_outage() {
        let c = ConnectivityChecker::with_outages(vec![
            Outage { start: 100, end: 200 },
            Outage { start: 500, end: 700 },
        ]);
        assert_eq!(c.next_online(50), 50);
        assert_eq!(c.next_online(150), 200);
        assert_eq!(c.next_online(600), 700);
    }
}
