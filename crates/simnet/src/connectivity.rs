//! The pre-visit connectivity check.
//!
//! "Before visiting a webpage, we first check for network connectivity
//! by pinging Google's DNS server (8.8.8.8). This ensures that we crawl
//! a site only when the measurement infrastructure has Internet
//! connectivity, and thus we can differentiate between website load
//! failures and network issues on our end." (§3.1)
//!
//! The checker supports injected outage windows so failure-injection
//! tests can verify that outages delay the crawl rather than polluting
//! the error statistics.

use crate::clock::SimTime;

/// A closed-open outage interval on the crawl wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// Outage start (inclusive), ms.
    pub start: SimTime,
    /// Outage end (exclusive), ms.
    pub end: SimTime,
}

/// Simulated ping-based connectivity checker.
#[derive(Debug, Clone, Default)]
pub struct ConnectivityChecker {
    outages: Vec<Outage>,
    /// Pings attempted.
    pub pings: u64,
    /// Pings that failed (fell inside an outage).
    pub failures: u64,
}

impl ConnectivityChecker {
    /// A checker with no outages (the paper's crawls observed none).
    pub fn always_online() -> ConnectivityChecker {
        ConnectivityChecker::default()
    }

    /// A checker with the given outage schedule.
    pub fn with_outages(mut outages: Vec<Outage>) -> ConnectivityChecker {
        outages.sort_by_key(|o| o.start);
        ConnectivityChecker {
            outages,
            pings: 0,
            failures: 0,
        }
    }

    /// Ping 8.8.8.8 at crawl time `now`; true means online.
    pub fn ping(&mut self, now: SimTime) -> bool {
        self.pings += 1;
        let online = !self.outages.iter().any(|o| o.start <= now && now < o.end);
        if !online {
            self.failures += 1;
        }
        online
    }

    /// The earliest time ≥ `now` at which the network is back up.
    /// Chains across overlapping or adjacent outages: one window's end
    /// may land inside (or exactly at the start of) the next.
    pub fn next_online(&self, now: SimTime) -> SimTime {
        let mut t = now;
        while let Some(o) = self.outages.iter().find(|o| o.start <= t && t < o.end) {
            t = o.end;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_online_never_fails() {
        let mut c = ConnectivityChecker::always_online();
        for t in [0, 1_000, 1_000_000] {
            assert!(c.ping(t));
        }
        assert_eq!(c.pings, 3);
        assert_eq!(c.failures, 0);
    }

    #[test]
    fn outage_windows_fail_pings() {
        let mut c = ConnectivityChecker::with_outages(vec![Outage {
            start: 100,
            end: 200,
        }]);
        assert!(c.ping(99));
        assert!(!c.ping(100));
        assert!(!c.ping(199));
        assert!(c.ping(200));
        assert_eq!(c.failures, 2);
    }

    #[test]
    fn next_online_skips_past_outage() {
        let c = ConnectivityChecker::with_outages(vec![
            Outage {
                start: 100,
                end: 200,
            },
            Outage {
                start: 500,
                end: 700,
            },
        ]);
        assert_eq!(c.next_online(50), 50);
        assert_eq!(c.next_online(150), 200);
        assert_eq!(c.next_online(600), 700);
    }

    #[test]
    fn probe_exactly_at_outage_end_is_online() {
        // Closed-open semantics: `end` itself is the first online ms.
        let mut c = ConnectivityChecker::with_outages(vec![Outage {
            start: 100,
            end: 200,
        }]);
        assert!(c.ping(200));
        assert_eq!(c.next_online(200), 200);
        assert_eq!(c.failures, 0);
    }

    #[test]
    fn overlapping_outages_chain_in_next_online() {
        // The first window's end (300) falls inside the second; a
        // single-lookup next_online would resurface mid-outage.
        let mut c = ConnectivityChecker::with_outages(vec![
            Outage {
                start: 100,
                end: 300,
            },
            Outage {
                start: 250,
                end: 450,
            },
        ]);
        assert_eq!(c.next_online(150), 450);
        assert!(!c.ping(300), "still inside the overlapping window");
        assert!(c.ping(450));
    }

    #[test]
    fn adjacent_outages_chain_in_next_online() {
        // Back-to-back windows: [100, 200) then [200, 350). Time 200
        // is simultaneously the first window's end and the second's
        // start, so the chain must keep walking.
        let c = ConnectivityChecker::with_outages(vec![
            Outage {
                start: 100,
                end: 200,
            },
            Outage {
                start: 200,
                end: 350,
            },
        ]);
        assert_eq!(c.next_online(120), 350);
        assert_eq!(c.next_online(200), 350);
        assert_eq!(c.next_online(350), 350);
    }

    #[test]
    fn unsorted_overlapping_schedule_still_chains() {
        let c = ConnectivityChecker::with_outages(vec![
            Outage {
                start: 500,
                end: 700,
            },
            Outage {
                start: 100,
                end: 550,
            },
        ]);
        assert_eq!(c.next_online(110), 700);
    }
}
