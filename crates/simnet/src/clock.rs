//! The virtual millisecond clock driving one page visit.
//!
//! Each page visit gets its own clock starting at 0; the crawler maps
//! visit-relative time onto the crawl's wall-clock epoch when storing
//! telemetry. The paper's 20-second observation window (§3.1) is a
//! bound on this clock.

/// Milliseconds of simulated time.
pub type SimTime = u64;

/// A monotonically advancing virtual clock.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> SimClock {
        SimClock { now: 0 }
    }

    /// Current time in milliseconds.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance by `ms` milliseconds and return the new time.
    pub fn advance(&mut self, ms: SimTime) -> SimTime {
        self.now += ms;
        self.now
    }

    /// Jump to an absolute time; ignored if it would move backwards
    /// (parallel sub-flows may complete out of order — the clock only
    /// ratchets forward).
    pub fn advance_to(&mut self, t: SimTime) -> SimTime {
        if t > self.now {
            self.now = t;
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(150), 150);
        assert_eq!(c.advance(50), 200);
        assert_eq!(c.now(), 200);
    }

    #[test]
    fn advance_to_is_monotone() {
        let mut c = SimClock::new();
        c.advance_to(100);
        assert_eq!(c.now(), 100);
        c.advance_to(60);
        assert_eq!(c.now(), 100, "never moves backwards");
        c.advance_to(101);
        assert_eq!(c.now(), 101);
    }
}
