//! The simulated network fabric: name resolution plus connections.
//!
//! [`SimNet`] owns the public Internet's DNS zone and endpoint table;
//! connections to loopback and RFC 1918 destinations are dispatched to
//! the visitor's [`HostEnv`] instead — a browser cannot reach another
//! machine's localhost, so the split mirrors reality.

use std::collections::HashMap;
use std::net::IpAddr;

use kt_netbase::Locality;

use crate::clock::SimTime;
use crate::dns::DnsResolver;
use crate::hostenv::HostEnv;
use crate::latency::LatencyModel;
use crate::server::{Endpoint, ServerBehavior};
use crate::tls::CertVerdict;

/// Result of a TCP (+ optional TLS) connection attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum ConnectOutcome {
    /// Connected (and TLS completed, when requested); the endpoint's
    /// request-level behaviour applies next.
    Established {
        /// TCP connect latency.
        connect_ms: u64,
        /// TLS handshake latency (0 for plaintext).
        tls_ms: u64,
        /// The listening endpoint.
        endpoint: Endpoint,
    },
    /// RST on SYN: `ERR_CONNECTION_REFUSED`.
    Refused {
        /// Time until the RST arrived.
        elapsed_ms: u64,
    },
    /// No response within the connect timeout: `ERR_TIMED_OUT`.
    TimedOut {
        /// The timeout that elapsed.
        elapsed_ms: u64,
    },
    /// TLS handshake completed but certificate verification failed.
    CertError {
        /// Time spent connecting and handshaking.
        elapsed_ms: u64,
        /// The verification failure.
        verdict: CertVerdict,
    },
    /// TLS attempted against a plaintext service:
    /// `ERR_SSL_PROTOCOL_ERROR`.
    TlsProtocolError {
        /// Time spent before the handshake collapsed.
        elapsed_ms: u64,
    },
}

impl ConnectOutcome {
    /// Total elapsed time for the attempt.
    pub fn elapsed_ms(&self) -> u64 {
        match self {
            ConnectOutcome::Established {
                connect_ms, tls_ms, ..
            } => connect_ms + tls_ms,
            ConnectOutcome::Refused { elapsed_ms }
            | ConnectOutcome::TimedOut { elapsed_ms }
            | ConnectOutcome::CertError { elapsed_ms, .. }
            | ConnectOutcome::TlsProtocolError { elapsed_ms } => *elapsed_ms,
        }
    }

    /// True if the transport (and TLS, if any) is usable.
    pub fn is_established(&self) -> bool {
        matches!(self, ConnectOutcome::Established { .. })
    }
}

/// The public-Internet side of the simulation.
#[derive(Debug, Default)]
pub struct SimNet {
    /// The DNS zone + stub resolver.
    pub dns: DnsResolver,
    endpoints: HashMap<(IpAddr, u16), Endpoint>,
    latency: LatencyModel,
}

impl SimNet {
    /// An empty network with the given latency seed.
    pub fn new(seed: u64) -> SimNet {
        SimNet {
            dns: DnsResolver::new(),
            endpoints: HashMap::new(),
            latency: LatencyModel::new(seed),
        }
    }

    /// The latency model (shared with callers that time sub-steps).
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Bind an endpoint at a public address.
    pub fn bind(&mut self, addr: IpAddr, port: u16, endpoint: Endpoint) {
        self.endpoints.insert((addr, port), endpoint);
    }

    /// Number of bound public endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Resolve a DNS name at the given time.
    pub fn resolve(&mut self, name: &str, now: SimTime) -> Result<IpAddr, crate::dns::DnsError> {
        self.dns.resolve(name, now)
    }

    /// Attempt a TCP connection (optionally TLS with `sni_host`) to
    /// `addr:port`. Loopback and private destinations are answered by
    /// `host_env`; public destinations by the bound endpoint table
    /// (default: black hole — an address nobody answers for).
    pub fn connect(
        &self,
        host_env: &HostEnv,
        addr: IpAddr,
        port: u16,
        tls_sni: Option<&str>,
    ) -> ConnectOutcome {
        let locality = Locality::of_ip(addr);
        let key = format!("{addr}:{port}");
        let endpoint = match (locality, addr) {
            (Locality::Loopback, _) => host_env.localhost_endpoint(port),
            (Locality::Private, IpAddr::V4(v4)) => host_env.lan_endpoint(v4, port),
            _ => self
                .endpoints
                .get(&(addr, port))
                .cloned()
                .unwrap_or(Endpoint {
                    behavior: ServerBehavior::Blackhole,
                    certificate: None,
                }),
        };
        match &endpoint.behavior {
            ServerBehavior::Refused => ConnectOutcome::Refused {
                elapsed_ms: self.latency.refused_ms(locality, &key),
            },
            ServerBehavior::Blackhole => ConnectOutcome::TimedOut {
                elapsed_ms: self.latency.timeout_ms(),
            },
            _ => {
                let connect_ms = self.latency.connect_ms(locality, &key);
                match tls_sni {
                    None => ConnectOutcome::Established {
                        connect_ms,
                        tls_ms: 0,
                        endpoint,
                    },
                    Some(host) => {
                        let tls_ms = self.latency.tls_ms(locality, &key);
                        match &endpoint.certificate {
                            None => ConnectOutcome::TlsProtocolError {
                                elapsed_ms: connect_ms + tls_ms,
                            },
                            Some(cert) => match cert.verify(host) {
                                CertVerdict::Ok => ConnectOutcome::Established {
                                    connect_ms,
                                    tls_ms,
                                    endpoint,
                                },
                                verdict => ConnectOutcome::CertError {
                                    elapsed_ms: connect_ms + tls_ms,
                                    verdict,
                                },
                            },
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostenv::Os;
    use crate::server::HttpResponse;
    use std::net::Ipv4Addr;

    fn public_ip() -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(93, 184, 216, 34))
    }

    #[test]
    fn public_http_connect() {
        let mut net = SimNet::new(1);
        net.bind(public_ip(), 80, Endpoint::http(HttpResponse::ok(100)));
        let env = HostEnv::bare(Os::Linux);
        let out = net.connect(&env, public_ip(), 80, None);
        assert!(out.is_established());
        match out {
            ConnectOutcome::Established { tls_ms, .. } => assert_eq!(tls_ms, 0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tls_with_matching_cert_succeeds() {
        let mut net = SimNet::new(1);
        net.bind(
            public_ip(),
            443,
            Endpoint::https("example.com", HttpResponse::ok(100)),
        );
        let env = HostEnv::bare(Os::Linux);
        let out = net.connect(&env, public_ip(), 443, Some("example.com"));
        assert!(out.is_established());
        assert!(out.elapsed_ms() > 0);
    }

    #[test]
    fn tls_with_wrong_name_is_cert_error() {
        let mut net = SimNet::new(1);
        net.bind(
            public_ip(),
            443,
            Endpoint::https("other.example", HttpResponse::ok(100)),
        );
        let env = HostEnv::bare(Os::Linux);
        match net.connect(&env, public_ip(), 443, Some("example.com")) {
            ConnectOutcome::CertError { verdict, .. } => {
                assert_eq!(verdict, CertVerdict::CommonNameInvalid)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tls_to_plaintext_endpoint_fails() {
        let mut net = SimNet::new(1);
        net.bind(public_ip(), 443, Endpoint::http(HttpResponse::ok(1)));
        let env = HostEnv::bare(Os::Linux);
        assert!(matches!(
            net.connect(&env, public_ip(), 443, Some("example.com")),
            ConnectOutcome::TlsProtocolError { .. }
        ));
    }

    #[test]
    fn unbound_public_address_blackholes() {
        let net = SimNet::new(1);
        let env = HostEnv::bare(Os::Linux);
        match net.connect(&env, public_ip(), 8080, None) {
            ConnectOutcome::TimedOut { elapsed_ms } => assert_eq!(elapsed_ms, 30_000),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn loopback_dispatches_to_host_env() {
        let net = SimNet::new(1);
        let mut env = HostEnv::bare(Os::Windows);
        env.add_listener(6463, "Discord RPC", Endpoint::ws());
        let loopback = IpAddr::V4(Ipv4Addr::LOCALHOST);
        assert!(net.connect(&env, loopback, 6463, None).is_established());
        // No listener on 4444: fast refusal.
        match net.connect(&env, loopback, 4444, None) {
            ConnectOutcome::Refused { elapsed_ms } => assert!(elapsed_ms <= 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ipv6_loopback_resolves_to_host_env_on_every_os_profile() {
        // `[::1]` must reach the same listener table as `127.0.0.1` on
        // all three OS profiles — the dual-stack knock path the
        // scanner's `--ipv6` mode exercises.
        use std::net::Ipv6Addr;
        let net = SimNet::new(5);
        let v6 = IpAddr::V6(Ipv6Addr::LOCALHOST);
        let v4 = IpAddr::V4(Ipv4Addr::LOCALHOST);
        for os in Os::ALL {
            let mut env = HostEnv::bare(os);
            env.add_listener(6463, "Discord RPC", Endpoint::ws());
            assert!(
                net.connect(&env, v6, 6463, None).is_established(),
                "{os:?}: listener must answer on [::1]"
            );
            // The two loopback literals agree port-by-port: a probe of
            // an unlistened port refuses on both stacks.
            match (
                net.connect(&env, v6, 4444, None),
                net.connect(&env, v4, 4444, None),
            ) {
                (ConnectOutcome::Refused { .. }, ConnectOutcome::Refused { .. }) => {}
                other => panic!("{os:?}: expected dual-stack refusal, got {other:?}"),
            }
        }
    }

    #[test]
    fn lan_dispatches_to_host_env() {
        let net = SimNet::new(1);
        let mut env = HostEnv::bare(Os::Linux);
        let router = Ipv4Addr::new(192, 168, 0, 1);
        env.add_lan_device(router, 80, "router", Endpoint::http(HttpResponse::ok(1)));
        assert!(net
            .connect(&env, IpAddr::V4(router), 80, None)
            .is_established());
        // Empty LAN slot: black hole, not refusal.
        assert!(matches!(
            net.connect(&env, IpAddr::V4(Ipv4Addr::new(192, 168, 0, 200)), 80, None),
            ConnectOutcome::TimedOut { .. }
        ));
    }

    #[test]
    fn refusal_is_much_faster_than_timeout() {
        let net = SimNet::new(1);
        let env = HostEnv::bare(Os::Windows);
        let loopback = IpAddr::V4(Ipv4Addr::LOCALHOST);
        let refused = net.connect(&env, loopback, 17556, None).elapsed_ms();
        let timed_out = net
            .connect(&env, IpAddr::V4(Ipv4Addr::new(10, 9, 9, 9)), 80, None)
            .elapsed_ms();
        assert!(refused * 100 < timed_out, "{refused} vs {timed_out}");
    }
}
