//! Simulated TLS certificates and verification.
//!
//! The crawl's fourth-largest failure class is certificate
//! misconfiguration (`CERT_CN_INVALID` in Table 1). We model just
//! enough of X.509 semantics to reproduce that taxonomy: a certificate
//! has a subject common name, optional subject-alternative names with
//! wildcard support, a validity flag, and an issuer-trust flag.

use serde::{Deserialize, Serialize};

/// A simulated server certificate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// Subject common name, possibly a wildcard (`*.example.com`).
    pub common_name: String,
    /// Subject alternative names, possibly wildcards.
    pub san: Vec<String>,
    /// False once the notAfter date has passed.
    pub in_validity_window: bool,
    /// False for self-signed / unknown-CA chains.
    pub trusted_chain: bool,
}

/// Result of verifying a certificate against a requested host name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CertVerdict {
    /// The handshake may proceed.
    Ok,
    /// Name mismatch — Chrome's `ERR_CERT_COMMON_NAME_INVALID`.
    CommonNameInvalid,
    /// Expired or not yet valid — `ERR_CERT_DATE_INVALID`.
    DateInvalid,
    /// Untrusted chain — `ERR_CERT_AUTHORITY_INVALID`.
    AuthorityInvalid,
}

impl Certificate {
    /// A well-formed certificate for one exact host name.
    pub fn valid_for(host: &str) -> Certificate {
        Certificate {
            common_name: host.to_string(),
            san: vec![host.to_string()],
            in_validity_window: true,
            trusted_chain: true,
        }
    }

    /// A certificate whose names do not cover `actual_host` — produces
    /// `CERT_CN_INVALID` when a site serves the wrong vhost cert, the
    /// misconfiguration the paper observed.
    pub fn mismatched(cert_host: &str) -> Certificate {
        Certificate::valid_for(cert_host)
    }

    /// Verify against the requested host, most-severe-first in the
    /// order Chrome reports: dates, then chain, then names.
    pub fn verify(&self, host: &str) -> CertVerdict {
        if !self.in_validity_window {
            return CertVerdict::DateInvalid;
        }
        if !self.trusted_chain {
            return CertVerdict::AuthorityInvalid;
        }
        let host = host.to_ascii_lowercase();
        let covers = |pattern: &str| name_matches(&pattern.to_ascii_lowercase(), &host);
        if covers(&self.common_name) || self.san.iter().any(|s| covers(s)) {
            CertVerdict::Ok
        } else {
            CertVerdict::CommonNameInvalid
        }
    }
}

/// RFC 6125-style name matching: exact, or a single `*.` left-most
/// wildcard label that matches exactly one label.
fn name_matches(pattern: &str, host: &str) -> bool {
    if pattern == host {
        return true;
    }
    if let Some(suffix) = pattern.strip_prefix("*.") {
        if let Some(host_rest) = host.split_once('.').map(|(_, rest)| rest) {
            return host_rest == suffix;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_verifies() {
        let c = Certificate::valid_for("example.com");
        assert_eq!(c.verify("example.com"), CertVerdict::Ok);
        assert_eq!(c.verify("EXAMPLE.COM"), CertVerdict::Ok);
    }

    #[test]
    fn name_mismatch_is_cn_invalid() {
        let c = Certificate::mismatched("other.example");
        assert_eq!(c.verify("example.com"), CertVerdict::CommonNameInvalid);
    }

    #[test]
    fn wildcard_matches_one_label_only() {
        let c = Certificate {
            common_name: "*.example.com".into(),
            san: vec![],
            in_validity_window: true,
            trusted_chain: true,
        };
        assert_eq!(c.verify("www.example.com"), CertVerdict::Ok);
        assert_eq!(c.verify("a.b.example.com"), CertVerdict::CommonNameInvalid);
        assert_eq!(c.verify("example.com"), CertVerdict::CommonNameInvalid);
    }

    #[test]
    fn san_is_consulted() {
        let c = Certificate {
            common_name: "cdn.example".into(),
            san: vec!["example.com".into(), "*.example.com".into()],
            in_validity_window: true,
            trusted_chain: true,
        };
        assert_eq!(c.verify("example.com"), CertVerdict::Ok);
        assert_eq!(c.verify("api.example.com"), CertVerdict::Ok);
        assert_eq!(c.verify("elsewhere.org"), CertVerdict::CommonNameInvalid);
    }

    #[test]
    fn date_and_chain_take_precedence() {
        let mut c = Certificate::valid_for("example.com");
        c.in_validity_window = false;
        assert_eq!(c.verify("example.com"), CertVerdict::DateInvalid);
        c.in_validity_window = true;
        c.trusted_chain = false;
        assert_eq!(c.verify("example.com"), CertVerdict::AuthorityInvalid);
    }
}
