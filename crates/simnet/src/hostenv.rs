//! The visitor's machine and LAN.
//!
//! "As different OSes support varying network services, a website's
//! locally-bound traffic may depend on the underlying host OS" (§1).
//! A [`HostEnv`] models one visitor machine: its OS, the localhost
//! services that happen to be listening, and the devices on its LAN.
//! Website behaviour scripts consult the OS (via the user agent) to
//! decide whether to run; the scan responses those scripts observe come
//! from the listener tables here.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

pub use kt_netbase::Os;
use serde::{Deserialize, Serialize};

use crate::rng;
use crate::server::{Endpoint, HttpResponse, ServerBehavior};

/// A service listening on the visitor's loopback interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalService {
    /// Listening TCP port.
    pub port: u16,
    /// Human-readable service name (for reports and debugging).
    pub name: String,
    /// Connection behaviour.
    pub endpoint: Endpoint,
}

/// A device on the visitor's LAN exposing an HTTP interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LanDevice {
    /// RFC 1918 address.
    pub address: Ipv4Addr,
    /// Listening port.
    pub port: u16,
    /// Device label (router, printer, camera, …).
    pub kind: String,
    /// Connection behaviour.
    pub endpoint: Endpoint,
}

/// One visitor machine: OS, localhost listeners, LAN devices.
#[derive(Debug, Clone)]
pub struct HostEnv {
    /// The machine's OS.
    pub os: Os,
    listeners: BTreeMap<u16, LocalService>,
    lan: BTreeMap<(Ipv4Addr, u16), LanDevice>,
}

impl HostEnv {
    /// An empty machine (no listeners, empty LAN).
    pub fn bare(os: Os) -> HostEnv {
        HostEnv {
            os,
            listeners: BTreeMap::new(),
            lan: BTreeMap::new(),
        }
    }

    /// A plausible machine for the OS, seeded: a fraction of real
    /// machines run remote-desktop software, local dev servers, a
    /// media client; home LANs contain a router and sometimes IoT
    /// devices. None of this changes *detection* (the paper records
    /// requests, not responses) but it exercises both response paths.
    pub fn sampled(os: Os, seed: u64) -> HostEnv {
        let mut env = HostEnv::bare(os);
        let tag = |label: &str| format!("hostenv:{}:{label}", os.name());
        match os {
            Os::Windows => {
                if rng::coin(seed, &tag("rdp"), 0.10) {
                    env.add_listener(3389, "Windows Remote Desktop", Endpoint::ws());
                }
                if rng::coin(seed, &tag("teamviewer"), 0.05) {
                    env.add_listener(5939, "TeamViewer", Endpoint::ws());
                }
                if rng::coin(seed, &tag("discord"), 0.20) {
                    env.add_listener(6463, "Discord RPC", Endpoint::ws());
                }
            }
            Os::Linux => {
                if rng::coin(seed, &tag("x11"), 0.15) {
                    env.add_listener(6039, "X Window System", Endpoint::ws());
                }
                if rng::coin(seed, &tag("devserver"), 0.10) {
                    env.add_listener(
                        3000,
                        "local dev server",
                        Endpoint::http(HttpResponse::ok(128)),
                    );
                }
            }
            Os::MacOs => {
                if rng::coin(seed, &tag("vnc"), 0.08) {
                    env.add_listener(5900, "Screen Sharing (VNC)", Endpoint::ws());
                }
                if rng::coin(seed, &tag("discord"), 0.20) {
                    env.add_listener(6463, "Discord RPC", Endpoint::ws());
                }
            }
        }
        // Every LAN has a router with an HTTP admin page.
        env.add_lan_device(
            Ipv4Addr::new(192, 168, 0, 1),
            80,
            "router",
            Endpoint::http(HttpResponse::ok(2048)),
        );
        if rng::coin(seed, &tag("printer"), 0.3) {
            env.add_lan_device(
                Ipv4Addr::new(192, 168, 0, 20),
                80,
                "printer",
                Endpoint::http(HttpResponse::ok(512)),
            );
        }
        if rng::coin(seed, &tag("camera"), 0.15) {
            env.add_lan_device(
                Ipv4Addr::new(192, 168, 0, 64),
                8080,
                "ip-camera",
                Endpoint::http(HttpResponse::ok(1024)),
            );
        }
        env
    }

    /// Register a loopback listener.
    pub fn add_listener(&mut self, port: u16, name: &str, endpoint: Endpoint) {
        self.listeners.insert(
            port,
            LocalService {
                port,
                name: name.to_string(),
                endpoint,
            },
        );
    }

    /// Register a LAN device.
    pub fn add_lan_device(&mut self, address: Ipv4Addr, port: u16, kind: &str, endpoint: Endpoint) {
        self.lan.insert(
            (address, port),
            LanDevice {
                address,
                port,
                kind: kind.to_string(),
                endpoint,
            },
        );
    }

    /// What answers a connection to `localhost:port`. Ports with no
    /// listener refuse (RST), which is the common case the anti-abuse
    /// scanners distinguish from an accepted connection.
    pub fn localhost_endpoint(&self, port: u16) -> Endpoint {
        self.listeners
            .get(&port)
            .map(|s| s.endpoint.clone())
            .unwrap_or(Endpoint {
                behavior: ServerBehavior::Refused,
                certificate: None,
            })
    }

    /// What answers a connection to a LAN address. Addresses with no
    /// device are black holes (no host ⇒ no RST, the SYN just dies),
    /// which is what makes naive LAN scanning slow in practice.
    pub fn lan_endpoint(&self, address: Ipv4Addr, port: u16) -> Endpoint {
        self.lan
            .get(&(address, port))
            .map(|d| d.endpoint.clone())
            .unwrap_or(Endpoint {
                behavior: ServerBehavior::Blackhole,
                certificate: None,
            })
    }

    /// Iterate the localhost listeners.
    pub fn listeners(&self) -> impl Iterator<Item = &LocalService> {
        self.listeners.values()
    }

    /// Iterate the LAN devices.
    pub fn lan_devices(&self) -> impl Iterator<Item = &LanDevice> {
        self.lan.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_labels() {
        assert_eq!(Os::Windows.letter(), 'W');
        assert_eq!(Os::Linux.letter(), 'L');
        assert_eq!(Os::MacOs.letter(), 'M');
        assert!(Os::Windows.user_agent().contains("Windows NT 10.0"));
        assert!(Os::Linux.user_agent().contains("X11; Linux"));
        assert!(Os::MacOs.user_agent().contains("Mac OS X 10_15_6"));
        // All crawls used Chrome v84 (§3.1).
        for os in Os::ALL {
            assert!(os.user_agent().contains("Chrome/84"));
        }
    }

    #[test]
    fn unlistened_localhost_port_refuses() {
        let env = HostEnv::bare(Os::Linux);
        assert!(matches!(
            env.localhost_endpoint(4444).behavior,
            ServerBehavior::Refused
        ));
    }

    #[test]
    fn unoccupied_lan_address_blackholes() {
        let env = HostEnv::bare(Os::Windows);
        assert!(matches!(
            env.lan_endpoint(Ipv4Addr::new(10, 0, 0, 99), 80).behavior,
            ServerBehavior::Blackhole
        ));
    }

    #[test]
    fn registered_listener_answers() {
        let mut env = HostEnv::bare(Os::Windows);
        env.add_listener(6463, "Discord RPC", Endpoint::ws());
        assert!(matches!(
            env.localhost_endpoint(6463).behavior,
            ServerBehavior::WebSocket
        ));
        assert_eq!(env.listeners().count(), 1);
    }

    #[test]
    fn duplicate_add_listener_replaces_not_duplicates() {
        // Registering the same port twice is last-write-wins: one
        // listener remains and it answers with the later endpoint —
        // the scanner must never observe two services on one port.
        let mut env = HostEnv::bare(Os::Linux);
        env.add_listener(3000, "dev server (ws)", Endpoint::ws());
        env.add_listener(
            3000,
            "dev server (http)",
            Endpoint::http(HttpResponse::ok(64)),
        );
        assert_eq!(env.listeners().count(), 1);
        let listener = env.listeners().next().unwrap();
        assert_eq!(listener.name, "dev server (http)");
        assert!(matches!(
            env.localhost_endpoint(3000).behavior,
            ServerBehavior::Http(_)
        ));
    }

    #[test]
    fn sampled_env_is_deterministic() {
        let a = HostEnv::sampled(Os::Windows, 42);
        let b = HostEnv::sampled(Os::Windows, 42);
        let ports = |e: &HostEnv| e.listeners().map(|l| l.port).collect::<Vec<_>>();
        assert_eq!(ports(&a), ports(&b));
        assert!(a.lan_devices().count() >= 1, "router always present");
    }

    #[test]
    fn sampled_env_varies_with_seed() {
        // Across many seeds, at least one Windows machine has RDP and
        // at least one does not.
        let with_rdp = (0..200).filter(|s| {
            HostEnv::sampled(Os::Windows, *s)
                .listeners()
                .any(|l| l.port == 3389)
        });
        let count = with_rdp.count();
        assert!(count > 0 && count < 200, "rdp on {count}/200 machines");
    }
}
