//! # kt-simnet
//!
//! A deterministic, discrete-event simulation of everything outside the
//! browser: the public Internet (DNS, TCP, TLS, web servers), the
//! visitor's machine (which localhost services listen on which OS), and
//! the visitor's LAN (which devices exist at which RFC 1918 addresses).
//!
//! The paper's crawl ran real Chrome against the real Internet from
//! three vantage points. A Rust reproduction cannot re-run that
//! measurement (`repro = 2/5`), so this crate supplies the closest
//! synthetic equivalent: a network whose *statistical behaviour* —
//! load-failure taxonomy and rates (Table 1), per-OS localhost service
//! exposure (§4.1), connection latency by destination class — matches
//! the published results, while exercising the same code paths a real
//! crawl would (resolve → connect → TLS → request → response, each
//! observable as NetLog events).
//!
//! Determinism contract: every sampled quantity is derived from a
//! SplitMix64 hash of a caller-supplied seed and the full identity of
//! the thing being sampled (domain, address, port). Two runs with the
//! same seed produce identical traffic regardless of crawl order or
//! parallelism.

#![warn(missing_docs)]

pub mod clock;
pub mod connectivity;
pub mod dns;
pub mod hostenv;
pub mod latency;
pub mod net;
pub mod rng;
pub mod server;
pub mod tls;

pub use clock::SimClock;
pub use connectivity::ConnectivityChecker;
pub use dns::{DnsError, DnsRecord, DnsResolver};
pub use hostenv::Os;
pub use hostenv::{HostEnv, LanDevice, LocalService};
pub use latency::LatencyModel;
pub use net::{ConnectOutcome, SimNet};
pub use server::{Endpoint, HttpResponse, ServerBehavior};
pub use tls::{CertVerdict, Certificate};
