//! Property tests for the simulated network substrate.

use kt_netbase::Locality;
use kt_simnet::dns::{DnsRecord, DnsResolver};
use kt_simnet::rng;
use kt_simnet::LatencyModel;
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr};

proptest! {
    #[test]
    fn dns_cache_never_changes_answers_within_ttl(
        names in proptest::collection::vec("[a-z]{2,10}", 1..20),
        queries in proptest::collection::vec((0usize..20, 0u64..50_000), 1..60),
    ) {
        let mut resolver = DnsResolver::new();
        for (i, name) in names.iter().enumerate() {
            let record = match i % 4 {
                0 => DnsRecord::A(IpAddr::V4(Ipv4Addr::new(93, 184, (i % 250) as u8, 1))),
                1 => DnsRecord::NxDomain,
                2 => DnsRecord::ServFail,
                _ => DnsRecord::Timeout,
            };
            resolver.insert(&format!("{name}{i}.example"), record);
        }
        // Within any monotone query sequence, the same name at the
        // same (or nearby, pre-TTL) time gives the same answer.
        let mut seen: std::collections::HashMap<String, _> = Default::default();
        let mut sorted = queries.clone();
        sorted.sort_by_key(|(_, t)| *t);
        for (idx, t) in sorted {
            let name = format!("{}{}.example", names[idx % names.len()], idx % names.len());
            let answer = resolver.resolve(&name, t);
            if let Some((prev_t, prev_a)) = seen.get(&name) {
                let ttl = if answer.is_ok() { 60_000 } else { 5_000 };
                if t - prev_t < ttl {
                    prop_assert_eq!(&answer, prev_a, "{} at {}", name, t);
                    continue;
                }
            }
            seen.insert(name, (t, answer));
        }
    }

    #[test]
    fn latency_is_deterministic_and_ordered(seed in any::<u64>(), key in "[a-z0-9:.]{1,30}") {
        let m = LatencyModel::new(seed);
        prop_assert_eq!(m.connect_ms(Locality::Loopback, &key), m.connect_ms(Locality::Loopback, &key));
        // Loopback never slower than the public floor.
        prop_assert!(m.connect_ms(Locality::Loopback, &key) <= 2);
        let public = m.connect_ms(Locality::Public, &key);
        prop_assert!((15..180).contains(&(public as i64)));
        prop_assert!(m.refused_ms(Locality::Loopback, &key) < m.timeout_ms());
    }

    #[test]
    fn hash_sampling_is_stable_and_in_range(seed in any::<u64>(), label in "[ -~]{0,40}") {
        prop_assert_eq!(rng::hash_str(seed, &label), rng::hash_str(seed, &label));
        let u = rng::unit(seed, &label);
        prop_assert!((0.0..1.0).contains(&u));
        let r = rng::range(seed, &label, 5.0, 9.0);
        prop_assert!((5.0..9.0).contains(&r));
        if !label.is_empty() {
            let p = rng::pick(seed, &label, 7);
            prop_assert!(p < 7);
        }
    }
}
