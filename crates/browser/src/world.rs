//! World building: mapping website fates onto the simulated network.
//!
//! A [`World`] is everything one browser instance can reach during a
//! crawl on one OS: the public Internet (DNS zone + endpoints, built
//! from the site population's availability fates) and the visitor
//! machine (localhost listeners, LAN devices).
//!
//! The browser itself never reads a site's `availability` — it just
//! speaks DNS/TCP/TLS against this world and observes whatever Table 1
//! error the fate was compiled into, exactly as real Chrome observed
//! the real Internet.

use std::net::{IpAddr, Ipv4Addr};

use kt_netbase::{Locality, Os, Scheme, Url};
use kt_simnet::dns::DnsRecord;
use kt_simnet::server::{Endpoint, HttpResponse, ServerBehavior};
use kt_simnet::tls::Certificate;
use kt_simnet::{HostEnv, SimNet};
use kt_webgen::{Availability, Behavior, WebSite};

/// Shared CDN hosts that serve every page's ordinary third-party
/// resources (the noise traffic detection must filter out).
pub const CDN_HOSTS: [&str; 4] = [
    "cdn0.ktstatic.net",
    "cdn1.ktstatic.net",
    "assets.ktedge.io",
    "tags.ktmetrics.com",
];

/// One OS-specific crawlable world.
#[derive(Debug)]
pub struct World {
    /// The public Internet.
    pub net: SimNet,
    /// The visitor machine.
    pub host_env: HostEnv,
}

/// Deterministic public IPv4 for a domain (never loopback/private).
pub fn public_ip_for(domain: &str, seed: u64) -> Ipv4Addr {
    let mut h = seed ^ 0x1b7;
    for b in domain.bytes() {
        h = h.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
    }
    // First octet drawn from unambiguously-public space.
    const FIRST: [u8; 8] = [13, 23, 34, 52, 93, 104, 151, 185];
    let ip = Ipv4Addr::new(
        FIRST[(h % 8) as usize],
        (h >> 8) as u8,
        (h >> 16) as u8,
        (h >> 24) as u8,
    );
    debug_assert_eq!(Locality::of_ipv4(ip), Locality::Public);
    ip
}

impl World {
    /// Build the world for a slice of sites on one OS.
    pub fn build(sites: &[WebSite], os: Os, seed: u64) -> World {
        let mut net = SimNet::new(seed);
        // Shared CDN hosts always resolve and answer.
        for host in CDN_HOSTS {
            let ip = IpAddr::V4(public_ip_for(host, seed));
            net.dns.insert(host, DnsRecord::A(ip));
            net.bind(ip, 443, Endpoint::https(host, HttpResponse::ok(4096)));
            net.bind(ip, 80, Endpoint::http(HttpResponse::ok(4096)));
        }
        for site in sites {
            Self::install_site(&mut net, site, os, seed);
        }
        World {
            net,
            host_env: HostEnv::sampled(os, seed ^ os.letter() as u64),
        }
    }

    /// Install one site's fate and supporting infrastructure.
    fn install_site(net: &mut SimNet, site: &WebSite, os: Os, seed: u64) {
        let domain = site.domain.as_str();
        let ip = IpAddr::V4(public_ip_for(domain, seed));
        let fate = site.availability_on(os);
        let port = if site.https { 443 } else { 80 };
        match fate {
            Availability::NxDomain => {
                net.dns.insert(domain, DnsRecord::NxDomain);
            }
            Availability::Refused => {
                net.dns.insert(domain, DnsRecord::A(ip));
                net.bind(
                    ip,
                    port,
                    Endpoint {
                        behavior: ServerBehavior::Refused,
                        certificate: None,
                    },
                );
            }
            Availability::Reset => {
                net.dns.insert(domain, DnsRecord::A(ip));
                net.bind(
                    ip,
                    port,
                    Endpoint {
                        behavior: ServerBehavior::ResetOnRequest,
                        certificate: if site.https {
                            Some(Certificate::valid_for(domain))
                        } else {
                            None
                        },
                    },
                );
            }
            Availability::CertInvalid => {
                net.dns.insert(domain, DnsRecord::A(ip));
                // The classic misconfiguration: the wrong vhost's cert.
                net.bind(
                    ip,
                    443,
                    Endpoint {
                        behavior: ServerBehavior::Http(HttpResponse::ok(1024)),
                        certificate: Some(Certificate::mismatched("default.hosting.example")),
                    },
                );
            }
            Availability::OtherError => {
                net.dns.insert(domain, DnsRecord::A(ip));
                // Alternate between empty responses and black holes.
                let behavior = if domain.len().is_multiple_of(2) {
                    ServerBehavior::EmptyResponse
                } else {
                    ServerBehavior::Blackhole
                };
                net.bind(
                    ip,
                    port,
                    Endpoint {
                        behavior,
                        certificate: if site.https {
                            Some(Certificate::valid_for(domain))
                        } else {
                            None
                        },
                    },
                );
            }
            Availability::Up => {
                net.dns.insert(domain, DnsRecord::A(ip));
                let endpoint = if site.https {
                    Endpoint::https(domain, HttpResponse::ok(64 * 1024))
                } else {
                    Endpoint::http(HttpResponse::ok(64 * 1024))
                };
                net.bind(ip, port, endpoint);
                // Behaviour-supporting public hosts (ThreatMetrix-style
                // vendor domains) must resolve and serve the script.
                for planted in &site.behaviors {
                    if let Behavior::ThreatMetrix { vendor } = &planted.behavior {
                        let vip = IpAddr::V4(public_ip_for(vendor.as_str(), seed));
                        net.dns.insert(vendor.as_str(), DnsRecord::A(vip));
                        net.bind(
                            vip,
                            443,
                            Endpoint::https(vendor.as_str(), HttpResponse::ok(32 * 1024)),
                        );
                    }
                }
            }
        }
    }

    /// The landing-page URL for a site.
    pub fn landing_url(site: &WebSite) -> Url {
        let scheme = if site.https {
            Scheme::Https
        } else {
            Scheme::Http
        };
        Url::from_parts(
            scheme,
            kt_netbase::Host::Domain(site.domain.clone()),
            None,
            "/",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_netbase::DomainName;

    fn site(domain: &str, fate: Availability) -> WebSite {
        let mut s = WebSite::plain(DomainName::parse(domain).unwrap(), Some(1), 4);
        s.https = false; // these tests connect on port 80
        s.set_availability_all(fate);
        s
    }

    #[test]
    fn public_ips_are_public_and_deterministic() {
        for d in [
            "ebay.example",
            "a.b.c.example",
            "x.ir",
            "localhost-like.com",
        ] {
            let ip = public_ip_for(d, 7);
            assert_eq!(Locality::of_ipv4(ip), Locality::Public, "{d} -> {ip}");
            assert_eq!(ip, public_ip_for(d, 7));
        }
        assert_ne!(public_ip_for("a.com", 7), public_ip_for("b.com", 7));
    }

    #[test]
    fn up_site_resolves_and_answers() {
        let sites = vec![site("healthy.example", Availability::Up)];
        let mut world = World::build(&sites, Os::Linux, 1);
        let ip = world.net.resolve("healthy.example", 0).unwrap();
        let out = world.net.connect(&world.host_env, ip, 80, None);
        assert!(out.is_established());
    }

    #[test]
    fn nxdomain_site_does_not_resolve() {
        let sites = vec![site("gone.example", Availability::NxDomain)];
        let mut world = World::build(&sites, Os::Linux, 1);
        assert!(world.net.resolve("gone.example", 0).is_err());
    }

    #[test]
    fn refused_site_resolves_but_refuses() {
        let sites = vec![site("refusing.example", Availability::Refused)];
        let mut world = World::build(&sites, Os::Linux, 1);
        let ip = world.net.resolve("refusing.example", 0).unwrap();
        assert!(matches!(
            world.net.connect(&world.host_env, ip, 80, None),
            kt_simnet::ConnectOutcome::Refused { .. }
        ));
    }

    #[test]
    fn cert_invalid_site_fails_tls() {
        let mut s = site("badcert.example", Availability::CertInvalid);
        s.https = true;
        let mut world = World::build(&[s], Os::Windows, 1);
        let ip = world.net.resolve("badcert.example", 0).unwrap();
        match world
            .net
            .connect(&world.host_env, ip, 443, Some("badcert.example"))
        {
            kt_simnet::ConnectOutcome::CertError { verdict, .. } => {
                assert_eq!(verdict, kt_simnet::CertVerdict::CommonNameInvalid);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cdn_hosts_always_work() {
        let world = World::build(&[], Os::MacOs, 1);
        let mut net = world.net;
        for host in CDN_HOSTS {
            let ip = net.resolve(host, 0).unwrap();
            assert!(net
                .connect(&world.host_env, ip, 443, Some(host))
                .is_established());
        }
    }

    #[test]
    fn fate_differs_by_os_when_site_flaps() {
        let mut s = site("flappy.example", Availability::Up);
        s.set_availability(Os::MacOs, Availability::NxDomain);
        let mut w_mac = World::build(std::slice::from_ref(&s), Os::MacOs, 1);
        let mut w_win = World::build(std::slice::from_ref(&s), Os::Windows, 1);
        assert!(w_mac.net.resolve("flappy.example", 0).is_err());
        assert!(w_win.net.resolve("flappy.example", 0).is_ok());
    }

    #[test]
    fn landing_url_respects_https_flag() {
        let mut s = site("either.example", Availability::Up);
        s.https = true;
        assert_eq!(
            World::landing_url(&s).to_string(),
            "https://either.example/"
        );
        s.https = false;
        assert_eq!(World::landing_url(&s).to_string(), "http://either.example/");
    }
}
