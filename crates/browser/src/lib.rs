//! # kt-browser
//!
//! A simulated Google Chrome v84: it loads a [`kt_webgen::WebSite`]'s
//! landing page over the [`kt_simnet`] fabric, executes the page's
//! behaviour plan for the paper's 20-second observation window, and
//! emits faithful [`kt_netlog`] telemetry — the instrument half of the
//! measurement (§3.1).
//!
//! What is modelled, because the paper's analysis depends on it:
//!
//! * serial NetLog source IDs per request flow;
//! * browser-internal traffic on separate sources (the paper filters
//!   it out "based on the network event source");
//! * `localhost` resolving internally without DNS, while public names
//!   go through the resolver (and can fail NAME_NOT_RESOLVED);
//! * WebSocket channels as distinct source types (SOP-exempt);
//! * redirects recorded on the original flow (the paper counts sites
//!   that *redirect* to local destinations);
//! * the 20-second window: flows that outlive it stay in-flight;
//! * Safe Browsing disabled, incognito profile (the paper's config).

#![warn(missing_docs)]

pub mod config;
pub mod visit;
pub mod world;

pub use config::{BrowserConfig, PnaMode};
pub use kt_webgen::CrawlerProfile;
pub use visit::{Browser, PageLoadOutcome, VisitResult};
pub use world::World;
