//! The page-visit engine.
//!
//! One [`Browser::visit`] is one row of the paper's crawl: load the
//! landing page, keep the instance alive for the observation window,
//! execute whatever the page does (ordinary resources, anti-abuse
//! scans, native-app probes, developer-error fetches…), and hand back
//! the NetLog capture.

use kt_faults::{SalvagedVisit, VisitFaults};
use kt_netbase::pna::{self, AddressSpace, PreflightResult};
use kt_netbase::services::is_native_app_port;
use kt_netbase::{Host, Url};
use kt_netlog::{
    Capture, EventParams, EventPhase, EventType, NetError, NetLogger, SourceRef, SourceType,
};
use kt_simnet::dns::DnsError;
use kt_simnet::server::ServerBehavior;
use kt_simnet::tls::CertVerdict;
use kt_simnet::ConnectOutcome;
use kt_webgen::{Channel, SensorGate, WebSite};

use crate::config::{BrowserConfig, PnaMode};
use crate::world::{World, CDN_HOSTS};

/// Outcome of the landing-page load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageLoadOutcome {
    /// Loaded; the page then ran for the rest of the window.
    Loaded {
        /// Time at which the main document finished, ms.
        at_ms: u64,
    },
    /// Failed with a Chrome net error (Table 1's taxonomy).
    Failed(NetError),
}

impl PageLoadOutcome {
    /// True if the page loaded.
    pub fn is_loaded(self) -> bool {
        matches!(self, PageLoadOutcome::Loaded { .. })
    }
}

/// The result of one page visit.
#[derive(Debug)]
pub struct VisitResult {
    /// The site's domain.
    pub domain: String,
    /// Landing-page outcome.
    pub outcome: PageLoadOutcome,
    /// Full NetLog telemetry for the visit.
    pub capture: Capture,
}

/// A browser instance bound to one world.
#[derive(Debug)]
pub struct Browser<'w> {
    world: &'w mut World,
    config: BrowserConfig,
    seed: u64,
}

/// Deterministic per-visit hash (independent of crawl order).
fn hash(seed: u64, label: &str) -> u64 {
    let mut h = seed ^ 0xb70b_5e65;
    for chunk in label.as_bytes().chunks(8) {
        let mut lane = [0u8; 8];
        lane[..chunk.len()].copy_from_slice(chunk);
        h = h
            .wrapping_add(u64::from_le_bytes(lane))
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 29;
    }
    h
}

impl<'w> Browser<'w> {
    /// Bind a browser to a world.
    pub fn new(world: &'w mut World, config: BrowserConfig, seed: u64) -> Browser<'w> {
        Browser {
            world,
            config,
            seed,
        }
    }

    /// Visit one site's landing page.
    pub fn visit(&mut self, site: &WebSite) -> VisitResult {
        self.visit_faulted(site, &VisitFaults::NONE)
    }

    /// Visit one site's landing page under an injected fault set.
    ///
    /// The hooks mirror how each fault manifests in a real crawl:
    ///
    /// * `dns_flap` — the resolver query times out this attempt; the
    ///   visit fails `ERR_TIMED_OUT` (transient, unlike a genuine
    ///   NXDOMAIN fate);
    /// * `connection_reset` — the landing connection dies after the
    ///   document starts arriving: the load is reported as
    ///   `ERR_CONNECTION_RESET` and the page never runs;
    /// * `panic` — the visit crashes mid-flight, throwing a
    ///   [`SalvagedVisit`] carrying the capture prefix logged so far
    ///   (the supervisor's `catch_unwind` quarantines the site);
    /// * `truncate_capture` — the capture loses its tail after the
    ///   visit completes; the outcome is untouched, only evidence
    ///   shrinks (monotone: a truncated capture is a valid prefix).
    pub fn visit_faulted(&mut self, site: &WebSite, faults: &VisitFaults) -> VisitResult {
        let mut log = NetLogger::new();
        let window = self.config.window_ms;

        // Chrome's own housekeeping traffic, on a browser-internal
        // source — present so the detection filter has something real
        // to exclude.
        let internal = log.new_source(SourceType::BrowserInternal);
        log.log(
            0,
            internal,
            EventType::NetworkChangeNotifier,
            EventPhase::None,
            EventParams::None,
        );

        let landing = World::landing_url(site);
        if faults.dns_flap {
            return self.flapped_dns_visit(log, site, &landing, window);
        }
        let (load_end, result) = self.fetch_http(&mut log, &landing, 0, None, window);
        let mut outcome = match result {
            Ok(_status) => PageLoadOutcome::Loaded { at_ms: load_end },
            Err(err) => PageLoadOutcome::Failed(err),
        };
        if faults.connection_reset {
            if let PageLoadOutcome::Loaded { at_ms } = outcome {
                // The document connection resets just after the load:
                // the flow that carried the page dies mid-flight.
                let source = log.new_source(SourceType::UrlRequest);
                self.log_clamped(
                    &mut log,
                    at_ms,
                    source,
                    EventType::UrlRequestStartJob,
                    EventPhase::Begin,
                    EventParams::UrlRequestStart {
                        url: landing.to_string(),
                        method: "GET".to_string(),
                        initiator: None,
                        load_flags: 0,
                    },
                    window,
                );
                self.fail(
                    &mut log,
                    source,
                    at_ms + 40,
                    NetError::ConnectionReset,
                    window,
                );
                outcome = PageLoadOutcome::Failed(NetError::ConnectionReset);
            }
        }
        if faults.panic {
            // Crash between the landing load and the page run: the
            // events logged so far are the salvageable prefix.
            std::panic::panic_any(SalvagedVisit {
                domain: site.domain.as_str().to_string(),
                events: log.into_capture().events,
            });
        }
        if let PageLoadOutcome::Loaded { at_ms } = outcome {
            self.run_page(&mut log, site, &landing, at_ms, window);
        }
        let mut capture = log.into_capture();
        if faults.truncate_capture {
            // The capture writer lost its tail: keep a prefix. Event
            // count is deterministic, so so is the cut.
            let keep = capture.events.len() * 2 / 3;
            capture.events.truncate(keep);
        }
        VisitResult {
            domain: site.domain.as_str().to_string(),
            outcome,
            capture,
        }
    }

    /// An injected transient resolver flap: the DNS query for the
    /// landing host never answers and the load times out.
    fn flapped_dns_visit(
        &mut self,
        mut log: NetLogger,
        site: &WebSite,
        landing: &Url,
        window: u64,
    ) -> VisitResult {
        let source = log.new_source(SourceType::UrlRequest);
        self.log_clamped(
            &mut log,
            0,
            source,
            EventType::RequestAlive,
            EventPhase::Begin,
            EventParams::None,
            window,
        );
        self.log_clamped(
            &mut log,
            0,
            source,
            EventType::UrlRequestStartJob,
            EventPhase::Begin,
            EventParams::UrlRequestStart {
                url: landing.to_string(),
                method: "GET".to_string(),
                initiator: None,
                load_flags: 0,
            },
            window,
        );
        self.log_clamped(
            &mut log,
            0,
            source,
            EventType::HostResolverImplJob,
            EventPhase::Begin,
            EventParams::DnsJob {
                host: landing.host().to_string(),
            },
            window,
        );
        // Chrome's resolver gives up after its own timeout dance.
        const DNS_FLAP_TIMEOUT_MS: u64 = 4_000;
        self.fail(
            &mut log,
            source,
            DNS_FLAP_TIMEOUT_MS.min(window.saturating_sub(1)),
            NetError::TimedOut,
            window,
        );
        VisitResult {
            domain: site.domain.as_str().to_string(),
            outcome: PageLoadOutcome::Failed(NetError::TimedOut),
            capture: log.into_capture(),
        }
    }

    /// Execute the page's content: ordinary resources + behaviours.
    fn run_page(
        &mut self,
        log: &mut NetLogger,
        site: &WebSite,
        landing: &Url,
        load_end: u64,
        window: u64,
    ) {
        let initiator = format!("{}://{}", landing.scheme(), landing.host());
        // The site's anti-bot sensor (if any) fingerprints this visit
        // and decides what happens to the local behaviours below. No
        // sensor means the page runs unmodified.
        let gate = site
            .sensor
            .map(|s| s.gate(self.seed, self.config.profile, site.domain.as_str()))
            .unwrap_or(SensorGate::Pass);
        // Ordinary public resources: half same-origin, half from the
        // shared CDNs, spread over the first ~12 s.
        struct Job {
            url: Url,
            channel: Channel,
            at: u64,
        }
        let mut jobs: Vec<Job> = Vec::new();
        for i in 0..site.public_resources {
            let label = format!("pubres:{}:{i}", site.domain);
            let delay = 100 + hash(self.seed, &label) % 12_000;
            let url = if i % 2 == 0 {
                let host = CDN_HOSTS[(hash(self.seed, &label) >> 32) as usize % CDN_HOSTS.len()];
                Url::parse(&format!("https://{host}/lib/resource{i}.js")).expect("static url")
            } else {
                Url::from_parts(
                    landing.scheme(),
                    landing.host().clone(),
                    None,
                    &format!("/static/asset{i}.css"),
                )
            };
            jobs.push(Job {
                url,
                channel: Channel::Fetch,
                at: load_end + delay,
            });
        }
        // Behaviour jobs run through the sensor gate: a Suppress or
        // Challenge verdict drops them (the probing script is never
        // served), a Delay verdict pushes them past the capture window.
        // Public resources above are untouched — a challenged page
        // still looks alive to the crawler.
        let extra_delay_ms = match gate {
            SensorGate::Delay(extra) => extra,
            _ => 0,
        };
        let behaviors_run = !matches!(gate, SensorGate::Suppress | SensorGate::Challenge);
        if behaviors_run {
            for planned in site.planned_requests(self.config.os) {
                jobs.push(Job {
                    url: planned.url,
                    channel: planned.channel,
                    at: load_end + planned.delay_ms + extra_delay_ms,
                });
            }
        }
        if gate == SensorGate::Challenge {
            // BIG-IP-ASM-style interstitial: the detected crawler is
            // handed a same-origin challenge fetch instead of the page.
            jobs.push(Job {
                url: Url::from_parts(
                    landing.scheme(),
                    landing.host().clone(),
                    None,
                    "/TSPD/08e8ab5bacab2000?type=7",
                ),
                channel: Channel::Fetch,
                at: load_end + 250,
            });
        }
        if self.config.crawl_internal && behaviors_run {
            // Deep crawl: the crawler navigates to an internal page
            // (e.g. /login) shortly after the landing page settles and
            // stays inside the same observation window.
            const INTERNAL_NAV_MS: u64 = 1_500;
            for planned in site.planned_internal_requests(self.config.os) {
                jobs.push(Job {
                    url: planned.url,
                    channel: planned.channel,
                    at: load_end + INTERNAL_NAV_MS + planned.delay_ms + extra_delay_ms,
                });
            }
        }
        jobs.sort_by_key(|j| j.at);
        for job in jobs {
            if job.at >= window {
                continue; // the window closed before this fired
            }
            // Private Network Access enforcement (§5.3): a request into
            // a more-private address space needs a secure initiating
            // context and a preflight opt-in. Blocked requests are
            // aborted before any socket work, but the attempt is still
            // visible in telemetry (URL_REQUEST + ERR_ABORTED).
            if self.pna_blocks(landing, &job.url) {
                let source = log.new_source(SourceType::UrlRequest);
                self.log_clamped(
                    log,
                    job.at,
                    source,
                    EventType::UrlRequestStartJob,
                    EventPhase::Begin,
                    EventParams::UrlRequestStart {
                        url: job.url.to_string(),
                        method: "GET".to_string(),
                        initiator: Some(initiator.clone()),
                        load_flags: 0,
                    },
                    window,
                );
                self.fail(log, source, job.at, NetError::Aborted, window);
                continue;
            }
            match job.channel {
                Channel::Fetch | Channel::Iframe => {
                    let _ = self.fetch_http(log, &job.url, job.at, Some(&initiator), window);
                }
                Channel::WebSocket => {
                    self.open_websocket(log, &job.url, job.at, window);
                }
                Channel::Redirect => {
                    self.redirect_document(log, landing, &job.url, job.at, window);
                }
            }
        }
        if let SensorGate::Ice { mdns } = gate {
            self.gather_ice_candidates(log, site, load_end, window, mdns);
        }
    }

    /// A WebRTC rendezvous page gathering ICE candidates. Every visitor
    /// sees the gathering; what differs is the *form* of the host
    /// candidate — a detected crawler gets the mDNS-obfuscated `.local`
    /// name, an undetected one the raw private address. The candidates
    /// ride a P2P socket source, not a URL request, so they are a
    /// second local-discovery channel entirely outside the HTTP path.
    fn gather_ice_candidates(
        &mut self,
        log: &mut NetLogger,
        site: &WebSite,
        load_end: u64,
        window: u64,
        mdns: bool,
    ) {
        let domain = site.domain.as_str();
        let h = hash(self.seed, &format!("ice:{domain}"));
        let source = log.new_source(SourceType::P2pSocket);
        let port = 49_152 + (h % 16_000) as u16;
        let at = load_end + 800 + h % 1_200;
        let address = if mdns {
            format!(
                "{:08x}-{:04x}-{:04x}.local:{port}",
                h as u32,
                (h >> 32) as u16,
                (h >> 48) as u16
            )
        } else {
            format!("192.168.{}.{}:{port}", (h >> 8) % 256, 1 + (h >> 16) % 254)
        };
        self.log_clamped(
            log,
            at,
            source,
            EventType::IceCandidateGathered,
            EventPhase::None,
            EventParams::IceCandidate {
                address,
                candidate_type: "host".to_string(),
            },
            window,
        );
        // The server-reflexive candidate: the visitor's public address
        // as seen by the STUN server — never local, present so the
        // detector has to discriminate by locality, not by event kind.
        self.log_clamped(
            log,
            at + 60,
            source,
            EventType::IceCandidateGathered,
            EventPhase::None,
            EventParams::IceCandidate {
                address: format!("203.0.113.{}:3478", 1 + (h >> 24) % 254),
                candidate_type: "srflx".to_string(),
            },
            window,
        );
    }

    /// True if the configured PNA mode blocks a request from the
    /// landing page's context to `target`.
    fn pna_blocks(&self, landing: &Url, target: &Url) -> bool {
        let preflight = match self.config.pna {
            PnaMode::Off => return false,
            PnaMode::EnforceNoOptIn => PreflightResult::Denied,
            PnaMode::EnforceFullOptIn => PreflightResult::Approved,
            PnaMode::EnforceNativeOptIn => {
                if target.locality().is_loopback() && is_native_app_port(target.port()) {
                    PreflightResult::Approved
                } else {
                    PreflightResult::Denied
                }
            }
        };
        let verdict = pna::decide(
            AddressSpace::of_url(landing),
            landing.scheme().is_secure(),
            target,
            preflight,
        );
        !verdict.permits()
    }

    /// Resolve a URL host to an address, logging DNS activity.
    /// Returns `Err` with the mapped net error on resolution failure.
    fn resolve_host(
        &mut self,
        log: &mut NetLogger,
        source: SourceRef,
        url: &Url,
        at: u64,
        window: u64,
    ) -> Result<(std::net::IpAddr, u64), NetError> {
        match url.host() {
            Host::Ipv4(ip) => Ok((std::net::IpAddr::V4(*ip), at)),
            Host::Ipv6(ip) => Ok((std::net::IpAddr::V6(*ip), at)),
            Host::Domain(d) if d.is_localhost() => {
                // let-localhost-be-localhost: no DNS query issued.
                Ok((std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST), at))
            }
            Host::Domain(d) => {
                let dns_ms = self.world.net.latency().dns_ms(d.as_str());
                self.log_clamped(
                    log,
                    at,
                    source,
                    EventType::HostResolverImplJob,
                    EventPhase::Begin,
                    EventParams::DnsJob {
                        host: d.as_str().to_string(),
                    },
                    window,
                );
                let result = self.world.net.resolve(d.as_str(), at);
                let end = at + dns_ms;
                self.log_clamped(
                    log,
                    end,
                    source,
                    EventType::HostResolverImplJob,
                    EventPhase::End,
                    EventParams::None,
                    window,
                );
                match result {
                    Ok(ip) => Ok((ip, end)),
                    // A malformed zone record is unresolvable from the
                    // browser's point of view, exactly like NXDOMAIN.
                    Err(DnsError::NxDomain)
                    | Err(DnsError::ServFail)
                    | Err(DnsError::MalformedRecord) => Err(NetError::NameNotResolved),
                    Err(DnsError::Timeout) => Err(NetError::TimedOut),
                }
            }
        }
    }

    /// One HTTP(S) fetch flow. Returns (end-time, status-or-error).
    fn fetch_http(
        &mut self,
        log: &mut NetLogger,
        url: &Url,
        at: u64,
        initiator: Option<&str>,
        window: u64,
    ) -> (u64, Result<u16, NetError>) {
        let source = log.new_source(SourceType::UrlRequest);
        self.log_clamped(
            log,
            at,
            source,
            EventType::RequestAlive,
            EventPhase::Begin,
            EventParams::None,
            window,
        );
        self.log_clamped(
            log,
            at,
            source,
            EventType::UrlRequestStartJob,
            EventPhase::Begin,
            EventParams::UrlRequestStart {
                url: url.to_string(),
                method: "GET".to_string(),
                initiator: initiator.map(str::to_string),
                load_flags: 0,
            },
            window,
        );
        self.drive_transaction(log, source, url, at, window, 0)
    }

    /// Connect + transact for an already-started flow (shared by plain
    /// fetches and post-redirect continuations).
    fn drive_transaction(
        &mut self,
        log: &mut NetLogger,
        source: SourceRef,
        url: &Url,
        at: u64,
        window: u64,
        redirect_depth: u8,
    ) -> (u64, Result<u16, NetError>) {
        let (ip, t_resolved) = match self.resolve_host(log, source, url, at, window) {
            Ok(pair) => pair,
            Err(err) => {
                self.fail(log, source, t_after_dns_failure(at), err, window);
                return (t_after_dns_failure(at), Err(err));
            }
        };
        let port = url.port();
        let address = format!("{ip}:{port}");
        self.log_clamped(
            log,
            t_resolved,
            source,
            EventType::TcpConnectAttempt,
            EventPhase::Begin,
            EventParams::Connect {
                address: address.clone(),
            },
            window,
        );
        let sni = if url.scheme().is_secure() {
            Some(url.host().to_string())
        } else {
            None
        };
        let outcome = self
            .world
            .net
            .connect(&self.world.host_env, ip, port, sni.as_deref());
        match outcome {
            ConnectOutcome::Established {
                connect_ms,
                tls_ms,
                endpoint,
            } => {
                let t_conn = t_resolved + connect_ms;
                self.log_clamped(
                    log,
                    t_conn,
                    source,
                    EventType::TcpConnect,
                    EventPhase::End,
                    EventParams::Connect { address },
                    window,
                );
                let mut t = t_conn;
                if url.scheme().is_secure() {
                    t += tls_ms;
                    self.log_clamped(
                        log,
                        t,
                        source,
                        EventType::SslConnect,
                        EventPhase::None,
                        EventParams::Ssl {
                            host: url.host().to_string(),
                        },
                        window,
                    );
                }
                self.log_clamped(
                    log,
                    t,
                    source,
                    EventType::HttpTransactionSendRequest,
                    EventPhase::None,
                    EventParams::None,
                    window,
                );
                match endpoint.behavior {
                    ServerBehavior::Http(resp) => {
                        let t_resp = t + self.world.net.latency().response_ms(&url.to_string());
                        if let Some(location) = &resp.redirect_to {
                            self.log_clamped(
                                log,
                                t_resp,
                                source,
                                EventType::UrlRequestRedirected,
                                EventPhase::None,
                                EventParams::Redirect {
                                    location: location.clone(),
                                },
                                window,
                            );
                            if redirect_depth < 3 {
                                if let Ok(next) = Url::parse(location) {
                                    return self.drive_transaction(
                                        log,
                                        source,
                                        &next,
                                        t_resp,
                                        window,
                                        redirect_depth + 1,
                                    );
                                }
                            }
                        }
                        self.log_clamped(
                            log,
                            t_resp,
                            source,
                            EventType::HttpTransactionReadHeaders,
                            EventPhase::None,
                            EventParams::ResponseHeaders {
                                status: resp.status,
                            },
                            window,
                        );
                        self.log_clamped(
                            log,
                            t_resp,
                            source,
                            EventType::RequestAlive,
                            EventPhase::End,
                            EventParams::None,
                            window,
                        );
                        (t_resp, Ok(resp.status))
                    }
                    ServerBehavior::WebSocket => {
                        // Plain HTTP against a WebSocket-only service:
                        // the handshake is rejected.
                        let t_resp = t + 5;
                        self.log_clamped(
                            log,
                            t_resp,
                            source,
                            EventType::HttpTransactionReadHeaders,
                            EventPhase::None,
                            EventParams::ResponseHeaders { status: 400 },
                            window,
                        );
                        self.log_clamped(
                            log,
                            t_resp,
                            source,
                            EventType::RequestAlive,
                            EventPhase::End,
                            EventParams::None,
                            window,
                        );
                        (t_resp, Ok(400))
                    }
                    ServerBehavior::ResetOnRequest => {
                        let t_fail = t + 3;
                        self.fail(log, source, t_fail, NetError::ConnectionReset, window);
                        (t_fail, Err(NetError::ConnectionReset))
                    }
                    ServerBehavior::EmptyResponse => {
                        let t_fail = t + 4;
                        self.fail(log, source, t_fail, NetError::EmptyResponse, window);
                        (t_fail, Err(NetError::EmptyResponse))
                    }
                    ServerBehavior::Refused | ServerBehavior::Blackhole => {
                        unreachable!("filtered by SimNet::connect")
                    }
                }
            }
            ConnectOutcome::Refused { elapsed_ms } => {
                let t_fail = t_resolved + elapsed_ms;
                self.fail(log, source, t_fail, NetError::ConnectionRefused, window);
                (t_fail, Err(NetError::ConnectionRefused))
            }
            ConnectOutcome::TimedOut { elapsed_ms } => {
                let t_fail = t_resolved + elapsed_ms;
                if t_fail >= window {
                    // The window closes first: the flow stays in-flight
                    // (no terminal event), exactly like a real capture.
                    (window, Err(NetError::TimedOut))
                } else {
                    self.fail(log, source, t_fail, NetError::TimedOut, window);
                    (t_fail, Err(NetError::TimedOut))
                }
            }
            ConnectOutcome::CertError {
                elapsed_ms,
                verdict,
            } => {
                let err = match verdict {
                    CertVerdict::CommonNameInvalid => NetError::CertCommonNameInvalid,
                    CertVerdict::DateInvalid => NetError::CertDateInvalid,
                    CertVerdict::AuthorityInvalid => NetError::CertAuthorityInvalid,
                    CertVerdict::Ok => unreachable!("Ok is not an error"),
                };
                let t_fail = t_resolved + elapsed_ms;
                self.fail(log, source, t_fail, err, window);
                (t_fail, Err(err))
            }
            ConnectOutcome::TlsProtocolError { elapsed_ms } => {
                let t_fail = t_resolved + elapsed_ms;
                self.fail(log, source, t_fail, NetError::SslProtocolError, window);
                (t_fail, Err(NetError::SslProtocolError))
            }
        }
    }

    /// One WebSocket channel.
    fn open_websocket(&mut self, log: &mut NetLogger, url: &Url, at: u64, window: u64) {
        let source = log.new_source(SourceType::WebSocket);
        self.log_clamped(
            log,
            at,
            source,
            EventType::WebSocketSendRequestHeaders,
            EventPhase::Begin,
            EventParams::WebSocket {
                url: url.to_string(),
            },
            window,
        );
        let (ip, t_resolved) = match self.resolve_host(log, source, url, at, window) {
            Ok(pair) => pair,
            Err(err) => {
                self.fail(log, source, t_after_dns_failure(at), err, window);
                return;
            }
        };
        let port = url.port();
        let sni = if url.scheme().is_secure() {
            Some(url.host().to_string())
        } else {
            None
        };
        let outcome = self
            .world
            .net
            .connect(&self.world.host_env, ip, port, sni.as_deref());
        match outcome {
            ConnectOutcome::Established {
                connect_ms,
                tls_ms,
                endpoint,
            } => {
                let t = t_resolved + connect_ms + tls_ms;
                match endpoint.behavior {
                    ServerBehavior::WebSocket => {
                        self.log_clamped(
                            log,
                            t,
                            source,
                            EventType::WebSocketReadResponseHeaders,
                            EventPhase::End,
                            EventParams::WebSocket {
                                url: url.to_string(),
                            },
                            window,
                        );
                        // A short exchange: the page reads what it can
                        // (WebSockets are SOP-exempt).
                        self.log_clamped(
                            log,
                            t + 10,
                            source,
                            EventType::WebSocketSentFrame,
                            EventPhase::None,
                            EventParams::WebSocketFrame { length: 64 },
                            window,
                        );
                        self.log_clamped(
                            log,
                            t + 25,
                            source,
                            EventType::WebSocketRecvFrame,
                            EventPhase::None,
                            EventParams::WebSocketFrame { length: 256 },
                            window,
                        );
                        self.log_clamped(
                            log,
                            t + 40,
                            source,
                            EventType::SocketClosed,
                            EventPhase::None,
                            EventParams::None,
                            window,
                        );
                    }
                    _ => {
                        // An HTTP(-ish) service that does not upgrade.
                        let t_fail = t + 5;
                        self.fail(log, source, t_fail, NetError::EmptyResponse, window);
                    }
                }
            }
            ConnectOutcome::Refused { elapsed_ms } => {
                self.fail(
                    log,
                    source,
                    t_resolved + elapsed_ms,
                    NetError::ConnectionRefused,
                    window,
                );
            }
            ConnectOutcome::TimedOut { elapsed_ms } => {
                let t_fail = t_resolved + elapsed_ms;
                if t_fail < window {
                    self.fail(log, source, t_fail, NetError::TimedOut, window);
                }
            }
            ConnectOutcome::CertError { elapsed_ms, .. }
            | ConnectOutcome::TlsProtocolError { elapsed_ms } => {
                self.fail(
                    log,
                    source,
                    t_resolved + elapsed_ms,
                    NetError::SslProtocolError,
                    window,
                );
            }
        }
    }

    /// A top-level redirect of the landing page to `target`.
    fn redirect_document(
        &mut self,
        log: &mut NetLogger,
        landing: &Url,
        target: &Url,
        at: u64,
        window: u64,
    ) {
        let source = log.new_source(SourceType::UrlRequest);
        self.log_clamped(
            log,
            at,
            source,
            EventType::UrlRequestStartJob,
            EventPhase::Begin,
            EventParams::UrlRequestStart {
                url: landing.to_string(),
                method: "GET".to_string(),
                initiator: None,
                load_flags: 0,
            },
            window,
        );
        self.log_clamped(
            log,
            at,
            source,
            EventType::UrlRequestRedirected,
            EventPhase::None,
            EventParams::Redirect {
                location: target.to_string(),
            },
            window,
        );
        let _ = self.drive_transaction(log, source, target, at, window, 1);
    }

    /// Log a terminal failure, respecting the window clamp.
    fn fail(
        &mut self,
        log: &mut NetLogger,
        source: SourceRef,
        at: u64,
        err: NetError,
        window: u64,
    ) {
        self.log_clamped(
            log,
            at,
            source,
            EventType::FailedRequest,
            EventPhase::None,
            EventParams::Failed {
                net_error: err.code(),
            },
            window,
        );
        self.log_clamped(
            log,
            at,
            source,
            EventType::RequestAlive,
            EventPhase::End,
            EventParams::None,
            window,
        );
    }

    /// Log only if the event falls inside the observation window.
    #[allow(clippy::too_many_arguments)]
    fn log_clamped(
        &mut self,
        log: &mut NetLogger,
        time: u64,
        source: SourceRef,
        event_type: EventType,
        phase: EventPhase,
        params: EventParams,
        window: u64,
    ) {
        if time < window {
            log.log(time, source, event_type, phase, params);
        }
    }
}

/// DNS failures surface after a short retry dance.
fn t_after_dns_failure(at: u64) -> u64 {
    at + 60
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_netbase::{DomainName, Locality, Os, OsSet, Scheme};
    use kt_netlog::FlowSet;
    use kt_webgen::{Availability, Behavior, NativeApp, PlantedBehavior, WebSite};

    fn mk_site(domain: &str, https: bool) -> WebSite {
        let mut s = WebSite::plain(DomainName::parse(domain).unwrap(), Some(10), 6);
        s.https = https;
        s
    }

    fn visit(site: &WebSite, os: Os) -> VisitResult {
        let mut world = World::build(std::slice::from_ref(site), os, 99);
        let mut browser = Browser::new(&mut world, BrowserConfig::paper(os), 99);
        browser.visit(site)
    }

    #[test]
    fn healthy_page_loads_and_fetches_resources() {
        let site = mk_site("healthy.example", true);
        let result = visit(&site, Os::Linux);
        assert!(result.outcome.is_loaded());
        let flows = FlowSet::from_events(result.capture.events);
        // Main document + 6 public resources (+ browser internal).
        assert!(flows.len() >= 7, "{} flows", flows.len());
        // No local traffic from a plain site.
        let local = flows
            .iter()
            .filter_map(|f| f.url())
            .filter_map(|u| Url::parse(u).ok())
            .filter(Url::is_local)
            .count();
        assert_eq!(local, 0);
    }

    #[test]
    fn nxdomain_page_fails_with_name_not_resolved() {
        let mut site = mk_site("gone.example", false);
        site.set_availability_all(Availability::NxDomain);
        let result = visit(&site, Os::Windows);
        assert_eq!(
            result.outcome,
            PageLoadOutcome::Failed(NetError::NameNotResolved)
        );
        // And the capture records the DNS failure.
        let flows = FlowSet::from_events(result.capture.events);
        let failed = flows.iter().any(|f| {
            matches!(
                f.outcome(),
                kt_netlog::FlowOutcome::Failed(NetError::NameNotResolved)
            )
        });
        assert!(failed);
    }

    #[test]
    fn cert_invalid_page_fails_with_cert_error() {
        let mut site = mk_site("badcert.example", true);
        site.set_availability_all(Availability::CertInvalid);
        let result = visit(&site, Os::MacOs);
        assert_eq!(
            result.outcome,
            PageLoadOutcome::Failed(NetError::CertCommonNameInvalid)
        );
    }

    #[test]
    fn threatmetrix_site_scans_localhost_on_windows_only() {
        let mut site = mk_site("bigshop.example", true);
        site.behaviors.push(PlantedBehavior {
            behavior: Behavior::ThreatMetrix {
                vendor: DomainName::parse("bigshop-metrics.example").unwrap(),
            },
            os_set: OsSet::WINDOWS_ONLY,
            base_delay_ms: 9_000,
        });
        let win = visit(&site, Os::Windows);
        let flows = FlowSet::from_events(win.capture.events);
        let local_ws: Vec<u16> = flows
            .iter()
            .filter(|f| f.is_websocket())
            .filter_map(|f| f.url())
            .filter_map(|u| Url::parse(u).ok())
            .filter(Url::is_local)
            .map(|u| u.port())
            .collect();
        assert_eq!(local_ws.len(), 14, "the 14 ThreatMetrix ports");
        assert!(local_ws.contains(&3389));

        let linux = visit(&site, Os::Linux);
        let flows = FlowSet::from_events(linux.capture.events);
        let local = flows
            .iter()
            .filter_map(|f| f.url())
            .filter_map(|u| Url::parse(u).ok())
            .filter(Url::is_local)
            .count();
        assert_eq!(local, 0, "no scan on Linux");
    }

    #[test]
    fn local_requests_carry_timestamps_after_page_load() {
        let mut site = mk_site("faceit-like.example", true);
        site.behaviors.push(PlantedBehavior {
            behavior: Behavior::NativeApp(NativeApp::Faceit),
            os_set: OsSet::ALL,
            base_delay_ms: 4_000,
        });
        let result = visit(&site, Os::Linux);
        let load_at = match result.outcome {
            PageLoadOutcome::Loaded { at_ms } => at_ms,
            other => panic!("{other:?}"),
        };
        let flows = FlowSet::from_events(result.capture.events);
        let ws_flow = flows
            .iter()
            .find(|f| f.is_websocket())
            .expect("faceit probe");
        assert!(ws_flow.start_time() >= load_at + 4_000);
        assert!(ws_flow.start_time() < 20_000);
    }

    #[test]
    fn requests_beyond_window_are_not_issued() {
        let mut site = mk_site("late.example", true);
        site.behaviors.push(PlantedBehavior {
            behavior: Behavior::NativeApp(NativeApp::Faceit),
            os_set: OsSet::ALL,
            base_delay_ms: 25_000, // past the 20 s window
        });
        let result = visit(&site, Os::Linux);
        let flows = FlowSet::from_events(result.capture.events);
        assert!(!flows.iter().any(|f| f.is_websocket()));
        // And no event exceeds the window.
        let max_t = flows.iter().map(|f| f.end_time()).max().unwrap_or(0);
        assert!(max_t < 20_000);
    }

    #[test]
    fn redirect_to_loopback_is_recorded_on_the_flow() {
        use kt_webgen::DevError;
        let mut site = mk_site("redirecting.example", false);
        site.behaviors.push(PlantedBehavior {
            behavior: Behavior::DevError(DevError::RedirectToLoopback),
            os_set: OsSet::ALL,
            base_delay_ms: 1_000,
        });
        let result = visit(&site, Os::Windows);
        let flows = FlowSet::from_events(result.capture.events);
        let redirected = flows
            .iter()
            .find(|f| !f.redirect_chain().is_empty())
            .expect("redirect flow");
        assert_eq!(redirected.redirect_chain(), vec!["http://127.0.0.1/"]);
    }

    #[test]
    fn lan_blackhole_request_is_logged_but_unterminated() {
        use kt_webgen::DevError;
        let mut site = mk_site("lanfetch.example", false);
        site.behaviors.push(PlantedBehavior {
            behavior: Behavior::DevError(DevError::LanResource {
                ip: std::net::Ipv4Addr::new(10, 193, 31, 212),
                scheme: Scheme::Http,
                port: 80,
                path: "/system/files/2020-06/banner.png".into(),
            }),
            os_set: OsSet::ALL,
            base_delay_ms: 1_500,
        });
        let result = visit(&site, Os::Linux);
        let flows = FlowSet::from_events(result.capture.events);
        let lan_flow = flows
            .iter()
            .find(|f| {
                f.url()
                    .and_then(|u| Url::parse(u).ok())
                    .is_some_and(|u| u.locality() == Locality::Private)
            })
            .expect("LAN request must be visible in telemetry");
        // No response ever arrives: the flow is in-flight at window end.
        assert_eq!(lan_flow.outcome(), kt_netlog::FlowOutcome::InFlight);
    }

    #[test]
    fn browser_internal_source_present_and_filterable() {
        let site = mk_site("any.example", true);
        let result = visit(&site, Os::Linux);
        let flows = FlowSet::from_events(result.capture.events);
        let internal = flows
            .iter()
            .filter(|f| f.source.kind == SourceType::BrowserInternal)
            .count();
        assert_eq!(internal, 1);
        assert!(flows.page_flows().count() < flows.len());
    }

    #[test]
    fn pna_enforcement_blocks_insecure_local_fetches() {
        use crate::config::PnaMode;
        use kt_webgen::DevError;
        let mut site = mk_site("devsite.example", false); // http page
        site.behaviors.push(PlantedBehavior {
            behavior: Behavior::DevError(DevError::LiveReload {
                scheme: Scheme::Http,
                port: 35729,
            }),
            os_set: OsSet::ALL,
            base_delay_ms: 1_000,
        });
        let mut world = World::build(std::slice::from_ref(&site), Os::Linux, 5);
        let mut config = BrowserConfig::paper(Os::Linux);
        config.pna = PnaMode::EnforceNoOptIn;
        let mut browser = Browser::new(&mut world, config, 5);
        let result = browser.visit(&site);
        let flows = FlowSet::from_events(result.capture.events);
        let local_flow = flows
            .iter()
            .find(|f| {
                f.url()
                    .and_then(|u| Url::parse(u).ok())
                    .is_some_and(|u| u.is_local())
            })
            .expect("blocked attempt still appears in telemetry");
        assert_eq!(
            local_flow.outcome(),
            kt_netlog::FlowOutcome::Failed(NetError::Aborted)
        );
        // And no socket work happened for it.
        assert!(!local_flow
            .events
            .iter()
            .any(|e| e.event_type == EventType::TcpConnectAttempt));
    }

    #[test]
    fn pna_native_opt_in_preserves_app_probes_on_secure_pages() {
        use crate::config::PnaMode;
        let mut site = mk_site("invite.example", true); // https page
        site.behaviors.push(PlantedBehavior {
            behavior: Behavior::NativeApp(NativeApp::Faceit),
            os_set: OsSet::ALL,
            base_delay_ms: 1_000,
        });
        let run = |mode: PnaMode| {
            let mut world = World::build(std::slice::from_ref(&site), Os::Linux, 5);
            let mut config = BrowserConfig::paper(Os::Linux);
            config.pna = mode;
            let mut browser = Browser::new(&mut world, config, 5);
            let result = browser.visit(&site);
            let flows = FlowSet::from_events(result.capture.events);
            flows
                .iter()
                .filter(|f| {
                    f.url()
                        .and_then(|u| Url::parse(u).ok())
                        .is_some_and(|u| u.is_local())
                })
                .map(|f| f.outcome())
                .collect::<Vec<_>>()
        };
        // Native opt-in: the FACEIT ws probe proceeds.
        let outcomes = run(PnaMode::EnforceNativeOptIn);
        assert!(outcomes
            .iter()
            .all(|o| *o != kt_netlog::FlowOutcome::Failed(NetError::Aborted)));
        // No opt-in: it is aborted.
        let outcomes = run(PnaMode::EnforceNoOptIn);
        assert!(outcomes
            .iter()
            .all(|o| *o == kt_netlog::FlowOutcome::Failed(NetError::Aborted)));
    }

    fn visit_faulted(site: &WebSite, os: Os, faults: VisitFaults) -> VisitResult {
        let mut world = World::build(std::slice::from_ref(site), os, 99);
        let mut browser = Browser::new(&mut world, BrowserConfig::paper(os), 99);
        browser.visit_faulted(site, &faults)
    }

    #[test]
    fn injected_dns_flap_fails_transiently() {
        let site = mk_site("healthy.example", true);
        let result = visit_faulted(
            &site,
            Os::Linux,
            VisitFaults {
                dns_flap: true,
                ..VisitFaults::NONE
            },
        );
        assert_eq!(result.outcome, PageLoadOutcome::Failed(NetError::TimedOut));
        // The failed resolution is visible in telemetry.
        assert!(result
            .capture
            .events
            .iter()
            .any(|e| e.event_type == EventType::HostResolverImplJob));
    }

    #[test]
    fn injected_reset_kills_a_loaded_page() {
        let site = mk_site("healthy.example", true);
        let result = visit_faulted(
            &site,
            Os::Linux,
            VisitFaults {
                connection_reset: true,
                ..VisitFaults::NONE
            },
        );
        assert_eq!(
            result.outcome,
            PageLoadOutcome::Failed(NetError::ConnectionReset)
        );
        // The page never ran: no public-resource fetches.
        let clean = visit_faulted(&site, Os::Linux, VisitFaults::NONE);
        assert!(result.capture.events.len() < clean.capture.events.len());
    }

    #[test]
    fn injected_panic_throws_a_salvageable_prefix() {
        let site = mk_site("crashy.example", true);
        let payload = std::panic::catch_unwind(|| {
            visit_faulted(
                &site,
                Os::Linux,
                VisitFaults {
                    panic: true,
                    ..VisitFaults::NONE
                },
            )
        })
        .expect_err("the visit must panic");
        let salvaged = payload
            .downcast::<SalvagedVisit>()
            .expect("payload carries the capture prefix");
        assert_eq!(salvaged.domain, "crashy.example");
        assert!(!salvaged.events.is_empty(), "landing-flow prefix salvaged");
    }

    #[test]
    fn truncated_capture_keeps_outcome_but_loses_tail() {
        let site = mk_site("healthy.example", true);
        let clean = visit_faulted(&site, Os::Linux, VisitFaults::NONE);
        let cut = visit_faulted(
            &site,
            Os::Linux,
            VisitFaults {
                truncate_capture: true,
                ..VisitFaults::NONE
            },
        );
        assert!(cut.outcome.is_loaded());
        assert!(cut.capture.events.len() < clean.capture.events.len());
        // And the prefix property holds: truncated events are a prefix
        // of the clean capture's events.
        assert_eq!(
            cut.capture.events[..],
            clean.capture.events[..cut.capture.events.len()]
        );
    }

    fn visit_profiled(site: &WebSite, profile: kt_webgen::CrawlerProfile) -> VisitResult {
        let mut world = World::build(std::slice::from_ref(site), Os::Linux, 99);
        let mut config = BrowserConfig::paper(Os::Linux);
        config.profile = profile;
        let mut browser = Browser::new(&mut world, config, 99);
        browser.visit(site)
    }

    fn local_flow_count(result: &VisitResult) -> usize {
        FlowSet::from_events(result.capture.events.clone())
            .iter()
            .filter_map(|f| f.url())
            .filter_map(|u| Url::parse(u).ok())
            .filter(Url::is_local)
            .count()
    }

    fn probing_site(archetype: kt_webgen::SensorArchetype) -> WebSite {
        let mut site = mk_site("sentry.example", true);
        site.behaviors.push(PlantedBehavior {
            behavior: Behavior::NativeApp(NativeApp::Faceit),
            os_set: OsSet::ALL,
            base_delay_ms: 2_000,
        });
        site.sensor = Some(kt_webgen::BotSensor { archetype });
        site
    }

    #[test]
    fn navigator_probe_suppresses_local_behavior_for_detected_crawlers() {
        use kt_webgen::{CrawlerProfile, SensorArchetype};
        let site = probing_site(SensorArchetype::NavigatorProbe);
        // Naive is always detected: the probing script is never served.
        let naive = visit_profiled(&site, CrawlerProfile::Naive);
        assert!(naive.outcome.is_loaded(), "the page itself still loads");
        assert_eq!(local_flow_count(&naive), 0, "local probe suppressed");
        // Human replay is never detected: the probe runs.
        let human = visit_profiled(&site, CrawlerProfile::HumanReplay);
        assert!(local_flow_count(&human) > 0, "probe visible to a human");
    }

    #[test]
    fn headless_trap_delays_behavior_past_the_window() {
        use kt_webgen::{CrawlerProfile, SensorArchetype};
        let site = probing_site(SensorArchetype::HeadlessTrap);
        let naive = visit_profiled(&site, CrawlerProfile::Naive);
        // Delayed past 20 s: never issued, and no event leaks past the
        // window either.
        assert_eq!(local_flow_count(&naive), 0);
        assert!(naive.capture.events.iter().all(|e| e.time < 20_000));
        let human = visit_profiled(&site, CrawlerProfile::HumanReplay);
        assert!(local_flow_count(&human) > 0);
    }

    #[test]
    fn bigip_challenge_swaps_the_page_for_an_interstitial() {
        use kt_webgen::{CrawlerProfile, SensorArchetype};
        let site = probing_site(SensorArchetype::BigIpChallenge);
        let naive = visit_profiled(&site, CrawlerProfile::Naive);
        assert_eq!(local_flow_count(&naive), 0, "real page never runs");
        let flows = FlowSet::from_events(naive.capture.events);
        assert!(
            flows
                .iter()
                .filter_map(|f| f.url())
                .any(|u| u.contains("/TSPD/")),
            "challenge interstitial fetched"
        );
        let human = visit_profiled(&site, CrawlerProfile::HumanReplay);
        assert!(local_flow_count(&human) > 0, "humans get the real page");
    }

    #[test]
    fn webrtc_probe_gathers_ice_candidates_for_every_profile() {
        use kt_webgen::{BotSensor, CrawlerProfile, SensorArchetype};
        let mut site = mk_site("rtc.example", true);
        site.sensor = Some(BotSensor {
            archetype: SensorArchetype::WebRtcProbe,
        });
        let ice_addresses = |profile| {
            let result = visit_profiled(&site, profile);
            let flows = FlowSet::from_events(result.capture.events);
            flows
                .iter()
                .flat_map(|f| {
                    f.ice_candidates()
                        .into_iter()
                        .map(|(a, t)| (a.to_string(), t.to_string()))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        // Detected crawler: the host candidate is mDNS-obfuscated.
        let naive = ice_addresses(CrawlerProfile::Naive);
        assert_eq!(naive.len(), 2, "host + srflx candidates");
        assert!(naive[0].0.contains(".local:"), "{:?}", naive[0]);
        assert_eq!(naive[0].1, "host");
        assert_eq!(naive[1].1, "srflx");
        // Undetected visitor: the raw private address leaks.
        let human = ice_addresses(CrawlerProfile::HumanReplay);
        assert_eq!(human.len(), 2);
        assert!(human[0].0.starts_with("192.168."), "{:?}", human[0]);
    }

    #[test]
    fn unsensored_sites_ignore_the_profile_entirely() {
        use kt_webgen::CrawlerProfile;
        let mut site = mk_site("plain.example", true);
        site.behaviors.push(PlantedBehavior {
            behavior: Behavior::NativeApp(NativeApp::Discord),
            os_set: OsSet::ALL,
            base_delay_ms: 2_000,
        });
        let naive = visit_profiled(&site, CrawlerProfile::Naive);
        let stealth = visit_profiled(&site, CrawlerProfile::Stealth);
        assert_eq!(naive.capture.events, stealth.capture.events);
    }

    #[test]
    fn visits_are_deterministic() {
        let mut site = mk_site("det.example", true);
        site.behaviors.push(PlantedBehavior {
            behavior: Behavior::NativeApp(NativeApp::Discord),
            os_set: OsSet::ALL,
            base_delay_ms: 2_000,
        });
        let a = visit(&site, Os::MacOs);
        let b = visit(&site, Os::MacOs);
        assert_eq!(a.capture.events, b.capture.events);
    }
}
