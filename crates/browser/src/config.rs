//! Browser configuration, mirroring the paper's crawl settings.

use kt_netbase::Os;
use kt_webgen::CrawlerProfile;
use serde::{Deserialize, Serialize};

/// Private Network Access enforcement mode (§5.3). `Off` reproduces
/// the paper's crawls (Chrome v84 predates the proposal); the other
/// modes gate local requests on a secure initiating context plus a
/// preflight opt-in under the given adoption assumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PnaMode {
    /// No enforcement (Chrome v84 behaviour).
    #[default]
    Off,
    /// Enforce; no local service opts in.
    EnforceNoOptIn,
    /// Enforce; native-application ports opt in.
    EnforceNativeOptIn,
    /// Enforce; every service opts in (secure-context check only).
    EnforceFullOptIn,
}

/// Configuration of one browser instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrowserConfig {
    /// Host operating system (decides OS-conditional site behaviour
    /// and the localhost service environment).
    pub os: Os,
    /// Observation window per page, ms. The paper chose 20 s after
    /// measuring that >98% of requests fire within 15 s (§3.1).
    pub window_ms: u64,
    /// Chrome Safe Browsing. The paper disables it so blocklisted
    /// pages can actually be visited.
    pub safe_browsing: bool,
    /// Clean profile per visit (incognito).
    pub incognito: bool,
    /// Private Network Access enforcement.
    pub pna: PnaMode,
    /// Deep-crawl mode: also execute behaviours that live on internal
    /// pages (login/checkout), which the paper's landing-page-only
    /// method cannot see (§3.3). Off for the paper's configuration.
    pub crawl_internal: bool,
    /// How the crawler presents itself to anti-bot sensors. The
    /// paper's instrumented Chrome is a stock headless automation
    /// (`Naive`); the bias experiment sweeps the other profiles.
    pub profile: CrawlerProfile,
}

impl BrowserConfig {
    /// The paper's configuration for a given OS.
    pub fn paper(os: Os) -> BrowserConfig {
        BrowserConfig {
            os,
            window_ms: 20_000,
            safe_browsing: false,
            incognito: true,
            pna: PnaMode::Off,
            crawl_internal: false,
            profile: CrawlerProfile::Naive,
        }
    }
}

impl Default for BrowserConfig {
    fn default() -> Self {
        BrowserConfig::paper(Os::Linux)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_settings() {
        let c = BrowserConfig::paper(Os::Windows);
        assert_eq!(c.window_ms, 20_000);
        assert!(!c.safe_browsing, "Safe Browsing disabled (§3.1)");
        assert!(c.incognito, "clean profile per visit (§3.1)");
        assert_eq!(c.os, Os::Windows);
        assert_eq!(c.pna, PnaMode::Off, "Chrome v84 predates PNA");
        assert!(!c.crawl_internal, "the paper crawls landing pages only");
        assert_eq!(
            c.profile,
            CrawlerProfile::Naive,
            "the paper's crawler is stock headless automation"
        );
    }
}
