//! Behaviour-level integration tests: every planted behaviour class
//! produces the telemetry signature the paper describes, when executed
//! by the browser against the simulated network.

use kt_browser::{Browser, BrowserConfig, World};
use kt_netbase::{DomainName, Os, OsSet, Scheme, Url};
use kt_netlog::{FlowSet, SourceType};
use kt_webgen::{Behavior, DevError, NativeApp, PlantedBehavior, UnknownKind, WebSite};

fn visit(site: &WebSite, os: Os) -> FlowSet {
    let mut world = World::build(std::slice::from_ref(site), os, 17);
    let mut browser = Browser::new(&mut world, BrowserConfig::paper(os), 17);
    FlowSet::from_events(browser.visit(site).capture.events)
}

fn planted(domain: &str, behavior: Behavior, os_set: OsSet, delay: u64) -> WebSite {
    let mut site = WebSite::plain(DomainName::parse(domain).unwrap(), Some(10), 4);
    site.behaviors.push(PlantedBehavior {
        behavior,
        os_set,
        base_delay_ms: delay,
    });
    site
}

fn local_urls(flows: &FlowSet) -> Vec<Url> {
    flows
        .page_flows()
        .filter_map(|f| f.url())
        .filter_map(|u| Url::parse(u).ok())
        .filter(Url::is_local)
        .collect()
}

#[test]
fn threatmetrix_vendor_script_and_upload_are_public_fetches() {
    let vendor = DomainName::parse("regstat.shop.example").unwrap();
    let site = planted(
        "shop.example",
        Behavior::ThreatMetrix { vendor },
        OsSet::WINDOWS_ONLY,
        9_000,
    );
    let flows = visit(&site, Os::Windows);
    let urls: Vec<String> = flows
        .page_flows()
        .filter_map(|f| f.url().map(str::to_string))
        .collect();
    // The script download precedes the scan, the upload follows it.
    assert!(urls.iter().any(|u| u.contains("/fp/tags.js")));
    assert!(urls.iter().any(|u| u.contains("/fp/clear.png")));
    // Both are fetches from the vendor, not local traffic.
    assert!(urls
        .iter()
        .filter(|u| u.contains("/fp/"))
        .all(|u| u.starts_with("https://regstat.shop.example")));
    // And the vendor endpoint actually answers (world registered it).
    let script_flow = flows
        .page_flows()
        .find(|f| f.url().is_some_and(|u| u.contains("/fp/tags.js")))
        .unwrap();
    assert!(matches!(
        script_flow.outcome(),
        kt_netlog::FlowOutcome::Success(200)
    ));
}

#[test]
fn gamehouse_probe_carries_api_port_query() {
    let site = planted(
        "gamesite.example",
        Behavior::NativeApp(NativeApp::GameHouse),
        OsSet::ALL,
        2_000,
    );
    let flows = visit(&site, Os::MacOs);
    let urls = local_urls(&flows);
    assert_eq!(urls.len(), 4, "12071, 12072, 17021, 27021");
    for u in &urls {
        assert!(u.path().starts_with("/v1/init.json"));
        assert!(u.query().unwrap().contains("api_port="));
        assert_eq!(u.scheme(), Scheme::Http);
    }
}

#[test]
fn samsung_probe_spans_two_protocols_and_two_hosts() {
    let site = planted(
        "card.example",
        Behavior::NativeApp(NativeApp::SamsungSecurity),
        OsSet::ALL,
        3_000,
    );
    let flows = visit(&site, Os::Windows);
    let urls = local_urls(&flows);
    let https = urls.iter().filter(|u| u.scheme() == Scheme::Https).count();
    let wss = urls.iter().filter(|u| u.scheme() == Scheme::Wss).count();
    assert_eq!(https, 10, "nProtect ports over https");
    assert_eq!(wss, 3, "AnySign ports over wss");
    // WebSocket flows use the WebSocket source type.
    let ws_sources = flows
        .page_flows()
        .filter(|f| f.source.kind == SourceType::WebSocket)
        .count();
    assert_eq!(ws_sources, 3);
}

#[test]
fn hola_json_probes_hit_ten_consecutive_ports() {
    let site = planted(
        "proxyish.example",
        Behavior::Unknown(UnknownKind::HolaJson),
        OsSet::ALL,
        1_500,
    );
    let flows = visit(&site, Os::Linux);
    let mut ports: Vec<u16> = local_urls(&flows).iter().map(Url::port).collect();
    ports.sort_unstable();
    assert_eq!(ports, (6880u16..=6889).collect::<Vec<_>>());
}

#[test]
fn lan_fetch_goes_to_the_exact_planted_address() {
    let site = planted(
        "uni.example",
        Behavior::DevError(DevError::LanResource {
            ip: std::net::Ipv4Addr::new(192, 168, 64, 160),
            scheme: Scheme::Http,
            port: 80,
            path: "/wp-content/uploads/2019/10/photo.jpg".into(),
        }),
        OsSet::ALL,
        1_000,
    );
    let flows = visit(&site, Os::Windows);
    let urls = local_urls(&flows);
    assert_eq!(urls.len(), 1);
    assert_eq!(urls[0].host().to_string(), "192.168.64.160");
}

#[test]
fn multiple_behaviors_coexist_on_one_site() {
    let mut site = planted(
        "busy.example",
        Behavior::NativeApp(NativeApp::Faceit),
        OsSet::ALL,
        1_000,
    );
    site.behaviors.push(PlantedBehavior {
        behavior: Behavior::DevError(DevError::LiveReload {
            scheme: Scheme::Https,
            port: 35729,
        }),
        os_set: OsSet::ALL,
        base_delay_ms: 4_000,
    });
    let flows = visit(&site, Os::Linux);
    let urls = local_urls(&flows);
    assert_eq!(urls.len(), 2);
    let ports: Vec<u16> = urls.iter().map(Url::port).collect();
    assert!(ports.contains(&28337));
    assert!(ports.contains(&35729));
}

#[test]
fn behavior_site_emits_public_noise_too() {
    let site = planted(
        "noisy.example",
        Behavior::NativeApp(NativeApp::AceStream),
        OsSet::ALL,
        1_000,
    );
    let flows = visit(&site, Os::MacOs);
    let public = flows
        .page_flows()
        .filter_map(|f| f.url())
        .filter_map(|u| Url::parse(u).ok())
        .filter(|u| !u.is_local())
        .count();
    // Main document + the site's 4 ordinary resources.
    assert!(public >= 5, "public flows {public}");
}
