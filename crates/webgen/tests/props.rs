//! Property tests for the website generator.

use kt_netbase::Os;
use kt_webgen::{Behavior, PopulationConfig, WebPopulation};
use proptest::prelude::*;

proptest! {
    // Population generation is expensive; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn population_invariants_hold_for_any_seed(seed in 0u64..1_000_000) {
        let pop = WebPopulation::generate(PopulationConfig {
            seed,
            top_size: 500,
            malicious_size: 300,
            sensors: false,
        });
        // Sizes.
        prop_assert_eq!(pop.sites2020.len(), 500);
        prop_assert_eq!(pop.sites2021.len(), 500);
        // All 116 plantings placed.
        let planted = pop.sites2020.iter().filter(|s| !s.behaviors.is_empty()).count();
        prop_assert_eq!(planted, 116);
        // Planted sites are always up.
        for site in pop.sites2020.iter().filter(|s| !s.behaviors.is_empty()) {
            for os in Os::ALL {
                prop_assert!(site.availability_on(os).is_up());
            }
        }
        // ThreatMetrix vendors are concrete domains.
        for site in &pop.sites2020 {
            for b in &site.behaviors {
                if let Behavior::ThreatMetrix { vendor } = &b.behavior {
                    prop_assert!(vendor.as_str() != "vendor.invalid");
                    prop_assert!(vendor.as_str().contains('.'));
                }
            }
        }
        // Ranks of planted sites are unique.
        let mut ranks: Vec<u32> = pop
            .sites2020
            .iter()
            .filter(|s| !s.behaviors.is_empty())
            .filter_map(|s| s.rank)
            .collect();
        let n = ranks.len();
        ranks.sort_unstable();
        ranks.dedup();
        prop_assert_eq!(ranks.len(), n);
    }

    #[test]
    fn planned_requests_are_time_sorted_and_local_flagged(seed in 0u64..100_000) {
        let pop = WebPopulation::generate(PopulationConfig {
            seed,
            top_size: 400,
            malicious_size: 200,
            sensors: false,
        });
        for site in pop.sites2020.iter().filter(|s| !s.behaviors.is_empty()).take(30) {
            for os in Os::ALL {
                let plan = site.planned_requests(os);
                prop_assert!(plan.windows(2).all(|w| w[0].delay_ms <= w[1].delay_ms));
                // Behaviour plans target local or behaviour-support
                // (vendor/script) hosts only; never an unrelated public
                // host.
                for r in &plan {
                    let local = r.url.is_local();
                    let support = r.url.to_string().contains("regstat.")
                        || r.url.to_string().contains("-metrics")
                        || r.url.path().starts_with("/TSPD")
                        || r.url.path().starts_with("/fp/");
                    prop_assert!(local || support, "unexpected {}", r.url);
                }
            }
        }
    }
}
