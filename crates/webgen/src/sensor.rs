//! Anti-bot sensors and crawler profiles — the measurement-bias model.
//!
//! The paper's prevalence numbers implicitly assume a site behaves the
//! same under an instrumented crawler as under a real user. Bot-
//! detection deployments break that assumption: a site that fingerprints
//! the visitor can suppress, delay, or swap its localhost-probing
//! behaviour when it decides it is being measured. This module gives the
//! synthetic population that adversarial capability, keyed — like every
//! other sampled quantity — purely on `(seed, domain)`, so the bias
//! experiment has exact planted ground truth to compare against.
//!
//! The model is deliberately *monotone*: each sensor check draws a
//! per-site difficulty in `1..=3`, and a crawler profile evades the
//! check iff its evasion power reaches that difficulty. A stronger
//! profile therefore evades every check a weaker one evades, which is
//! what guarantees (by construction, and pinned by property tests) that
//! the `stealth` profile observes a superset of the `naive` profile's
//! local observations on any seeded population.

use serde::{Deserialize, Serialize};

use crate::population::{hash_str, unit};

/// How the crawler presents itself to the page — the knob the bias
/// experiment sweeps. Ordered by evasion power.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum CrawlerProfile {
    /// Stock headless automation: `navigator.webdriver` set, headless
    /// UA string, no plugin/codec surface. Every sensor fires.
    #[default]
    Naive,
    /// Headless with the obvious tells patched (`webdriver` removed,
    /// UA rewritten). Beats fingerprint checks that only look at the
    /// easy signals.
    HeadlessPatched,
    /// Full stealth suite: patched fingerprints plus plausible canvas,
    /// codec and timing surfaces. Beats everything short of
    /// interaction analysis.
    Stealth,
    /// Replay of a recorded human session: real interaction cadence.
    /// No sensor in the model can tell it from a user.
    HumanReplay,
}

impl CrawlerProfile {
    /// All profiles, in evasion-power order.
    pub const ALL: [CrawlerProfile; 4] = [
        CrawlerProfile::Naive,
        CrawlerProfile::HeadlessPatched,
        CrawlerProfile::Stealth,
        CrawlerProfile::HumanReplay,
    ];

    /// Stable CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            CrawlerProfile::Naive => "naive",
            CrawlerProfile::HeadlessPatched => "headless-patched",
            CrawlerProfile::Stealth => "stealth",
            CrawlerProfile::HumanReplay => "human-replay",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<CrawlerProfile> {
        CrawlerProfile::ALL
            .into_iter()
            .find(|p| p.name() == s.trim())
    }

    /// How many difficulty levels this profile evades (0..=3). A check
    /// of difficulty `d` detects the crawler iff `evasion_power() < d`.
    pub fn evasion_power(self) -> u8 {
        match self {
            CrawlerProfile::Naive => 0,
            CrawlerProfile::HeadlessPatched => 1,
            CrawlerProfile::Stealth => 2,
            CrawlerProfile::HumanReplay => 3,
        }
    }
}

/// Which anti-bot deployment a site runs, and therefore what it does to
/// its local behaviour when the sensor fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorArchetype {
    /// `navigator.webdriver` / UA fingerprint check: a detected crawler
    /// simply never receives the local-probing script.
    NavigatorProbe,
    /// Headless heuristics (missing codecs, zero-size viewport
    /// rendering): a detected crawler gets the behaviour *delayed*
    /// past the capture window instead of dropped.
    HeadlessTrap,
    /// BIG-IP-ASM-style challenge: a detected crawler is served a
    /// challenge interstitial (a same-origin `/TSPD` fetch) and the
    /// real page — local probes included — never runs.
    BigIpChallenge,
    /// WebRTC data-channel rendezvous: the page gathers ICE candidates
    /// for *every* visitor, but a detected crawler sees only the
    /// mDNS-obfuscated `.local` form while an undetected one sees the
    /// raw private address — the behaviour is swapped, not hidden.
    WebRtcProbe,
}

impl SensorArchetype {
    /// All archetypes.
    pub const ALL: [SensorArchetype; 4] = [
        SensorArchetype::NavigatorProbe,
        SensorArchetype::HeadlessTrap,
        SensorArchetype::BigIpChallenge,
        SensorArchetype::WebRtcProbe,
    ];

    /// Stable report name.
    pub fn name(self) -> &'static str {
        match self {
            SensorArchetype::NavigatorProbe => "navigator-probe",
            SensorArchetype::HeadlessTrap => "headless-trap",
            SensorArchetype::BigIpChallenge => "bigip-challenge",
            SensorArchetype::WebRtcProbe => "webrtc-probe",
        }
    }
}

/// What the page does with its local behaviour after consulting the
/// sensor — the browser's gating instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorGate {
    /// Behaviour runs unmodified.
    Pass,
    /// Local behaviour is suppressed entirely.
    Suppress,
    /// Local behaviour is delayed by this many extra milliseconds
    /// (calibrated to land past the 20-second capture window).
    Delay(u64),
    /// A challenge interstitial is served instead of the real page:
    /// local behaviour suppressed, plus one same-origin `/TSPD` fetch.
    Challenge,
    /// WebRTC ICE candidates are gathered; `mdns` selects the
    /// obfuscated `.local` form over the raw private address.
    Ice {
        /// True when candidates carry mDNS `.local` names.
        mdns: bool,
    },
}

impl SensorGate {
    /// True if the gate removes the site's planted request behaviour
    /// from what the crawler can observe in-window.
    pub fn suppresses_behavior(self) -> bool {
        matches!(
            self,
            SensorGate::Suppress | SensorGate::Delay(_) | SensorGate::Challenge
        )
    }
}

/// An anti-bot sensor as deployed on one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BotSensor {
    /// Which deployment this site runs.
    pub archetype: SensorArchetype,
}

impl BotSensor {
    /// Per-(seed, domain) check difficulty in `1..=3`. Purely a hash of
    /// its inputs: identical across worker counts, visit ordering and
    /// repeated visits.
    pub fn difficulty(self, seed: u64, domain: &str) -> u8 {
        let label = format!("sensor-difficulty:{}:{domain}", self.archetype.name());
        1 + (hash_str(seed, &label) % 3) as u8
    }

    /// Does this sensor flag `profile` as a bot on `domain`? Pure in
    /// `(seed, profile, domain)`; monotone non-increasing in the
    /// profile's evasion power.
    pub fn detects(self, seed: u64, profile: CrawlerProfile, domain: &str) -> bool {
        profile.evasion_power() < self.difficulty(seed, domain)
    }

    /// The gating instruction for one visit. Deterministic: the same
    /// `(seed, profile, domain)` always gates the same way.
    pub fn gate(self, seed: u64, profile: CrawlerProfile, domain: &str) -> SensorGate {
        let detected = self.detects(seed, profile, domain);
        match self.archetype {
            SensorArchetype::WebRtcProbe => SensorGate::Ice { mdns: detected },
            _ if !detected => SensorGate::Pass,
            SensorArchetype::NavigatorProbe => SensorGate::Suppress,
            SensorArchetype::HeadlessTrap => {
                // Push the behaviour well past the 20 s capture window;
                // jitter keeps the delay site-specific but deterministic.
                let jitter = hash_str(seed, &format!("sensor-delay:{domain}")) % 10_000;
                SensorGate::Delay(25_000 + jitter)
            }
            SensorArchetype::BigIpChallenge => SensorGate::Challenge,
        }
    }

    /// Deterministic archetype choice for a behaviour-carrying site
    /// (never [`SensorArchetype::WebRtcProbe`], which is planted on
    /// otherwise-quiet sites as its own behaviour).
    pub fn for_behavior_site(seed: u64, domain: &str) -> BotSensor {
        let archetype = match hash_str(seed, &format!("sensor-archetype:{domain}")) % 3 {
            0 => SensorArchetype::NavigatorProbe,
            1 => SensorArchetype::HeadlessTrap,
            _ => SensorArchetype::BigIpChallenge,
        };
        BotSensor { archetype }
    }

    /// The share of behaviour-carrying sites that deploy a sensor when
    /// sensor planting is enabled.
    pub fn deployment_rate() -> f64 {
        0.6
    }

    /// Should `domain` deploy a sensor at all (among behaviour sites)?
    pub fn deployed_on(seed: u64, domain: &str) -> bool {
        unit(seed, &format!("sensor-deployed:{domain}")) < BotSensor::deployment_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn profile_names_round_trip() {
        for p in CrawlerProfile::ALL {
            assert_eq!(CrawlerProfile::parse(p.name()), Some(p));
        }
        assert_eq!(CrawlerProfile::parse("no-such"), None);
        assert_eq!(
            CrawlerProfile::parse(" stealth "),
            Some(CrawlerProfile::Stealth)
        );
    }

    #[test]
    fn evasion_power_is_strictly_ordered() {
        let powers: Vec<u8> = CrawlerProfile::ALL
            .iter()
            .map(|p| p.evasion_power())
            .collect();
        assert!(powers.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn human_replay_is_never_detected() {
        for archetype in SensorArchetype::ALL {
            let sensor = BotSensor { archetype };
            for seed in [0u64, 42, 0xdead_beef] {
                for domain in ["a.example", "b.example", "c.example"] {
                    assert!(!sensor.detects(seed, CrawlerProfile::HumanReplay, domain));
                }
            }
        }
    }

    #[test]
    fn naive_is_always_detected() {
        for archetype in SensorArchetype::ALL {
            let sensor = BotSensor { archetype };
            assert!(sensor.detects(42, CrawlerProfile::Naive, "any.example"));
        }
    }

    #[test]
    fn webrtc_probe_always_gathers_candidates() {
        let sensor = BotSensor {
            archetype: SensorArchetype::WebRtcProbe,
        };
        for profile in CrawlerProfile::ALL {
            match sensor.gate(42, profile, "rtc.example") {
                SensorGate::Ice { .. } => {}
                other => panic!("expected Ice, got {other:?}"),
            }
        }
        // Naive is detected → obfuscated; human-replay isn't → raw.
        assert_eq!(
            sensor.gate(42, CrawlerProfile::Naive, "rtc.example"),
            SensorGate::Ice { mdns: true }
        );
        assert_eq!(
            sensor.gate(42, CrawlerProfile::HumanReplay, "rtc.example"),
            SensorGate::Ice { mdns: false }
        );
    }

    #[test]
    fn delay_gate_lands_past_capture_window() {
        let sensor = BotSensor {
            archetype: SensorArchetype::HeadlessTrap,
        };
        for domain in ["a.example", "b.example", "c.example"] {
            match sensor.gate(7, CrawlerProfile::Naive, domain) {
                SensorGate::Delay(extra) => assert!((25_000..35_000).contains(&extra)),
                other => panic!("expected Delay, got {other:?}"),
            }
        }
    }

    proptest! {
        /// Verdicts are pure functions of (seed, profile, domain):
        /// recomputing in any order, any number of times, from any
        /// worker, gives the identical answer.
        #[test]
        fn verdicts_are_pure(
            seed in any::<u64>(),
            domain_n in 0u32..10_000,
            archetype_i in 0usize..4,
            order in proptest::collection::vec(0usize..4, 1..8),
        ) {
            let domain = format!("site{domain_n}.example");
            let sensor = BotSensor { archetype: SensorArchetype::ALL[archetype_i] };
            // Reference pass in canonical order…
            let reference: Vec<SensorGate> = CrawlerProfile::ALL
                .iter()
                .map(|&p| sensor.gate(seed, p, &domain))
                .collect();
            // …then re-evaluated in an arbitrary subsequence order,
            // interleaved with repeats (simulating racing workers).
            for &i in &order {
                let p = CrawlerProfile::ALL[i];
                prop_assert_eq!(sensor.gate(seed, p, &domain), reference[i]);
                prop_assert_eq!(sensor.gate(seed, p, &domain), reference[i]);
            }
        }

        /// The stealth profile's observable set is a superset of the
        /// naive profile's: any (seed, domain, archetype) the naive
        /// crawler gets through, stealth gets through too. Strictness
        /// (stealth sees sites naive does not) is asserted on a real
        /// population by the kt-analysis bias tests.
        #[test]
        fn stealth_passes_wherever_naive_passes(
            seed in any::<u64>(),
            domain_n in 0u32..10_000,
            archetype_i in 0usize..4,
        ) {
            let domain = format!("site{domain_n}.example");
            let sensor = BotSensor { archetype: SensorArchetype::ALL[archetype_i] };
            let naive = sensor.gate(seed, CrawlerProfile::Naive, &domain);
            let stealth = sensor.gate(seed, CrawlerProfile::Stealth, &domain);
            prop_assert!(
                naive.suppresses_behavior() || !stealth.suppresses_behavior(),
                "naive passed ({naive:?}) but stealth was gated ({stealth:?})"
            );
        }

        /// Detection is monotone: a profile with more evasion power is
        /// never detected where a weaker one passed.
        #[test]
        fn detection_is_monotone_in_evasion_power(
            seed in any::<u64>(),
            domain_n in 0u32..10_000,
            archetype_i in 0usize..4,
        ) {
            let domain = format!("site{domain_n}.example");
            let sensor = BotSensor { archetype: SensorArchetype::ALL[archetype_i] };
            let mut last_detected = true;
            for p in CrawlerProfile::ALL {
                let d = sensor.detects(seed, p, &domain);
                prop_assert!(!d || last_detected,
                    "stronger profile {p:?} detected where weaker passed");
                last_detected = d;
            }
        }
    }
}
