//! # kt-webgen
//!
//! The synthetic-web generator: website content models and the
//! population planting that reproduces the paper's ground truth.
//!
//! * [`behavior`] — every local-traffic behaviour of §4.3/Appendices
//!   A–C (ThreatMetrix, BIG-IP ASM, native apps, developer errors,
//!   unknown cases) with exact port sets, paths and OS patterns;
//! * [`site`] — the [`WebSite`] model: availability fate (Table 1's
//!   error taxonomy), public-resource noise, planted behaviours;
//! * [`plant`] — the planting plan: class sizes and OS multisets per
//!   population, straight from the paper's tables;
//! * [`population`] — assembly: Tranco snapshots + blocklists +
//!   plantings → three crawlable site populations (top-2020,
//!   top-2021, malicious);
//! * [`sensor`] — anti-bot sensors ([`BotSensor`]) and crawler
//!   profiles ([`CrawlerProfile`]): the measurement-bias model.

#![warn(missing_docs)]

pub mod behavior;
pub mod plant;
pub mod population;
pub mod sensor;
pub mod site;

pub use behavior::{Behavior, Channel, DevError, NativeApp, PlannedRequest, UnknownKind};
pub use plant::{DelayWindow, PlantSpec};
pub use population::{PopulationConfig, WebPopulation};
pub use sensor::{BotSensor, CrawlerProfile, SensorArchetype, SensorGate};
pub use site::{Availability, PlantedBehavior, SiteCategory, WebSite};
