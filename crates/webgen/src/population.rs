//! Population assembly: snapshots + blocklists + plantings → sites.
//!
//! [`WebPopulation::generate`] builds the three crawlable populations:
//!
//! 1. **top-2020** — one [`WebSite`] per entry of the 2020 snapshot,
//!    with the 107 + 9 plantings of [`crate::plant`] placed on ranks
//!    spread uniformly through the list (Figure 3's finding);
//! 2. **top-2021** — the successor snapshot (~75% overlap); carried
//!    behaviours stay on their domains, stopped ones disappear, and
//!    the 40 + 7 new plantings are split between domains that existed
//!    in 2020 (19) and newly-listed domains (21), matching §4.1;
//! 3. **malicious** — one site per blocklist entry with the Table 2
//!    composition, including the phishing pages that cloned
//!    ThreatMetrix-bearing sites.
//!
//! Availability fates are sampled per (site, OS) at the paper's rates
//! (Table 1 / Table 2); sites carrying plantings are forced up on the
//! OSes where their behaviour must be observable.

use kt_netbase::{DomainName, Os};
use kt_weblists::{Blocklist, MaliciousCategory, NameForge, TrancoSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::behavior::Behavior;
use crate::plant::{self, PlantSpec, VENDOR_PLACEHOLDER};
use crate::site::{Availability, PlantedBehavior, SiteCategory, WebSite};

/// Deterministic helpers (same SplitMix64 family as kt-simnet).
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub(crate) fn hash_str(seed: u64, s: &str) -> u64 {
    let mut h = mix(seed ^ 0x6b74_7067);
    for chunk in s.as_bytes().chunks(8) {
        let mut lane = [0u8; 8];
        lane[..chunk.len()].copy_from_slice(chunk);
        h = mix(h ^ u64::from_le_bytes(lane));
    }
    mix(h ^ s.len() as u64)
}

pub(crate) fn unit(seed: u64, label: &str) -> f64 {
    (hash_str(seed, label) >> 11) as f64 / (1u64 << 53) as f64
}

/// Configuration for population generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Run seed; every sampled quantity derives from it.
    pub seed: u64,
    /// Top-list size (the paper: 100,000). Must be ≥ 300 so all 116
    /// 2020 plantings fit on distinct ranks.
    pub top_size: usize,
    /// Malicious population size (the paper: 144,925).
    pub malicious_size: usize,
    /// Plant anti-bot sensors ([`crate::sensor::BotSensor`]) on the
    /// 2020 population: a share of behaviour sites gets a gating
    /// sensor, and a set of otherwise-quiet sites gets the WebRTC
    /// probe. Off by default so the paper-replication counts are
    /// untouched; the bias experiment turns it on.
    pub sensors: bool,
}

impl PopulationConfig {
    /// Full paper scale.
    pub fn paper_scale(seed: u64) -> PopulationConfig {
        PopulationConfig {
            seed,
            top_size: 100_000,
            malicious_size: 144_925,
            sensors: false,
        }
    }

    /// A reduced scale for tests and examples (still plants every
    /// behaviour at full count).
    pub fn test_scale(seed: u64) -> PopulationConfig {
        PopulationConfig {
            seed,
            top_size: 2_000,
            malicious_size: 1_200,
            sensors: false,
        }
    }

    /// [`PopulationConfig::test_scale`] with sensor planting enabled —
    /// the bias experiment's population.
    pub fn bias_scale(seed: u64) -> PopulationConfig {
        PopulationConfig {
            sensors: true,
            ..PopulationConfig::test_scale(seed)
        }
    }
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig::paper_scale(0x00C0_FFEE)
    }
}

/// The generated populations.
#[derive(Debug, Clone)]
pub struct WebPopulation {
    /// Generation parameters.
    pub config: PopulationConfig,
    /// The 2020 top-list snapshot.
    pub snapshot2020: TrancoSnapshot,
    /// The 2021 top-list snapshot (~75% overlap with 2020).
    pub snapshot2021: TrancoSnapshot,
    /// The malicious blocklist.
    pub blocklist: Blocklist,
    /// Sites as they behaved during the 2020 crawl.
    pub sites2020: Vec<WebSite>,
    /// Sites as they behaved during the 2021 crawl.
    pub sites2021: Vec<WebSite>,
    /// Malicious sites (crawled once, in 2021).
    pub malicious_sites: Vec<WebSite>,
}

/// Per-OS landing-page failure rates for the top-list crawls
/// (Table 1: ~10% in 2020, ~8% in 2021).
fn top_failure_rate(year: u16, os: Os) -> f64 {
    match (year, os) {
        (2020, Os::Windows) => 0.103,
        (2020, Os::Linux) => 0.098,
        (2020, Os::MacOs) => 0.101,
        (2021, _) => 0.083,
        _ => 0.10,
    }
}

/// Per-(category, OS) failure rates for malicious pages (Table 2's
/// crawl success rates, complemented).
fn malicious_failure_rate(category: MaliciousCategory, os: Os) -> f64 {
    match (category, os) {
        (MaliciousCategory::Malware, Os::Windows) => 0.39,
        (MaliciousCategory::Malware, Os::Linux) => 0.35,
        (MaliciousCategory::Malware, Os::MacOs) => 0.35,
        (MaliciousCategory::Abuse, Os::Windows) => 0.05,
        (MaliciousCategory::Abuse, Os::Linux) => 0.03,
        (MaliciousCategory::Abuse, Os::MacOs) => 0.07,
        (MaliciousCategory::Phishing, Os::Windows) => 0.27,
        (MaliciousCategory::Phishing, Os::Linux) => 0.24,
        (MaliciousCategory::Phishing, Os::MacOs) => 0.31,
    }
}

/// Sample a failure kind given that the load failed: the Table 1 error
/// mix (~88.5% DNS, then refused / reset / cert / other).
fn failure_kind(u: f64) -> Availability {
    if u < 0.885 {
        Availability::NxDomain
    } else if u < 0.885 + 0.033 {
        Availability::Refused
    } else if u < 0.885 + 0.033 + 0.022 {
        Availability::Reset
    } else if u < 0.885 + 0.033 + 0.022 + 0.027 {
        Availability::CertInvalid
    } else {
        Availability::OtherError
    }
}

/// Sample availability for one (site, OS) pair.
fn sample_availability(
    seed: u64,
    domain: &str,
    crawl: &str,
    os: Os,
    fail_rate: f64,
) -> Availability {
    let label = format!("avail:{crawl}:{}:{domain}", os.letter());
    if unit(seed, &label) < fail_rate {
        failure_kind(unit(seed, &format!("{label}:kind")))
    } else {
        Availability::Up
    }
}

/// Sample a base delay within a spec's window.
fn sample_delay(seed: u64, domain: &str, spec_idx: usize, window: plant::DelayWindow) -> u64 {
    let u = unit(seed, &format!("delay:{domain}:{spec_idx}"));
    window.min_ms + ((window.max_ms - window.min_ms) as f64 * u) as u64
}

/// Spread `count` ranks uniformly over `1..=n`, deterministically, with
/// a highly-ranked first slot (the paper's ebay.com sat at rank 104).
fn spread_ranks(count: usize, n: usize, seed: u64) -> Vec<u32> {
    assert!(count <= n, "cannot place {count} plantings in {n} ranks");
    let mut ranks = Vec::with_capacity(count);
    let mut used = std::collections::HashSet::new();
    for i in 0..count {
        let base = if i == 0 {
            // One high-profile site near the top of the list.
            (n / 960).max(1)
        } else {
            ((i as f64 + 0.5) / count as f64 * n as f64) as usize
        };
        let jitter =
            (hash_str(seed, &format!("rankjitter:{i}")) % (n as u64 / count as u64 + 1)) as usize;
        let mut r = (base + jitter).clamp(1, n) as u32;
        while used.contains(&r) {
            r = if (r as usize) < n { r + 1 } else { 1 };
        }
        used.insert(r);
        ranks.push(r);
    }
    ranks
}

/// Materialise one spec as a planted behaviour on `domain`.
fn materialise(
    spec: &PlantSpec,
    domain: &DomainName,
    spec_idx: usize,
    seed: u64,
    forge: &NameForge,
) -> PlantedBehavior {
    let behavior = match &spec.behavior {
        Behavior::ThreatMetrix { vendor } if vendor.as_str() == VENDOR_PLACEHOLDER => {
            Behavior::ThreatMetrix {
                vendor: forge.vendor_for(domain, spec_idx as u64),
            }
        }
        other => other.clone(),
    };
    PlantedBehavior {
        behavior,
        os_set: spec.os_set,
        base_delay_ms: sample_delay(seed, domain.as_str(), spec_idx, spec.delay),
    }
}

impl WebPopulation {
    /// Generate the full population set.
    pub fn generate(config: PopulationConfig) -> WebPopulation {
        let seed = config.seed;
        let forge = NameForge::new(seed ^ 0xfeed);
        let snapshot2020 = TrancoSnapshot::generate("2020-06-03", config.top_size, seed);
        let mut snapshot2021 = snapshot2020.successor("2021-03-11", 0.75, seed ^ 0x2021);
        let mut blocklist = Blocklist::generate(config.malicious_size, seed ^ 0xbad);
        blocklist.dedup_by_domain();

        // ---- 2020 plantings --------------------------------------
        let specs2020: Vec<PlantSpec> = plant::top2020_localhost_specs()
            .into_iter()
            .chain(plant::top2020_lan_specs())
            .collect();
        let mut ranks2020 = spread_ranks(specs2020.len(), config.top_size, seed ^ 0x20);
        // The spec list is ordered by class; a deterministic shuffle
        // decorrelates class from rank so each class spreads uniformly
        // through the list (Figure 3 shows near-linear CDFs per OS).
        // Slot 0 (the high-profile rank) stays pinned to spec 0, a
        // fraud-detection site, mirroring ebay.com at rank 104.
        for i in (2..ranks2020.len()).rev() {
            let j = 1 + (hash_str(seed, &format!("rankperm:{i}")) as usize) % i;
            ranks2020.swap(i, j);
        }
        // rank -> spec index
        let planted2020: HashMap<u32, usize> =
            ranks2020.iter().enumerate().map(|(i, r)| (*r, i)).collect();

        // Domains whose behaviour carries into 2021 must survive the
        // snapshot churn: the paper observed them in both crawls. Any
        // carried domain the successor dropped replaces a newly-listed
        // domain at a nearby rank.
        {
            let mut carried_domains: Vec<(u32, &DomainName)> = planted2020
                .iter()
                .filter(|(_, &si)| specs2020[si].carried_to_2021)
                .map(|(&rank, _)| (rank, &snapshot2020.entries[(rank - 1) as usize].domain))
                .collect();
            // HashMap iteration order is arbitrary; replacement order
            // must be stable for the run to be reproducible.
            carried_domains.sort_by_key(|(rank, _)| *rank);
            let present: std::collections::HashSet<String> = snapshot2021
                .entries
                .iter()
                .map(|e| e.domain.as_str().to_string())
                .collect();
            let old: std::collections::HashSet<&str> = snapshot2020
                .entries
                .iter()
                .map(|e| e.domain.as_str())
                .collect();
            for (rank, domain) in carried_domains {
                if present.contains(domain.as_str()) {
                    continue;
                }
                // Replace the nearest 2021-only entry.
                let start = (rank as usize - 1).min(snapshot2021.len() - 1);
                let mut replaced = false;
                for offset in 0..snapshot2021.len() {
                    for idx in [
                        start.saturating_sub(offset),
                        (start + offset).min(snapshot2021.len() - 1),
                    ] {
                        let candidate = &snapshot2021.entries[idx];
                        if !old.contains(candidate.domain.as_str()) {
                            snapshot2021.entries[idx].domain = domain.clone();
                            replaced = true;
                            break;
                        }
                    }
                    if replaced {
                        break;
                    }
                }
                debug_assert!(replaced, "no 2021-only slot for carried {domain}");
            }
        }

        let mut sites2020 = Vec::with_capacity(config.top_size);
        // domain -> (spec index) for behaviours carried into 2021
        let mut carried: HashMap<String, usize> = HashMap::new();
        for entry in &snapshot2020.entries {
            let mut site = WebSite::plain(
                entry.domain.clone(),
                Some(entry.rank),
                (2 + hash_str(seed, &format!("pub:{}", entry.domain)) % 9) as u8,
            );
            site.https = unit(seed, &format!("https:{}", entry.domain)) < 0.85;
            if let Some(&spec_idx) = planted2020.get(&entry.rank) {
                let spec = &specs2020[spec_idx];
                site.category = spec.category;
                site.behaviors
                    .push(materialise(spec, &entry.domain, spec_idx, seed, &forge));
                // Behaviour sites must load everywhere the behaviour
                // fires; force up on all OSes for simplicity.
                site.set_availability_all(Availability::Up);
                if spec.carried_to_2021 {
                    carried.insert(entry.domain.as_str().to_string(), spec_idx);
                }
            } else {
                for os in Os::ALL {
                    site.set_availability(
                        os,
                        sample_availability(
                            seed,
                            entry.domain.as_str(),
                            "top2020",
                            os,
                            top_failure_rate(2020, os),
                        ),
                    );
                }
            }
            sites2020.push(site);
        }

        // ---- 2021 plantings --------------------------------------
        // New specs are split: those placed on domains that were
        // already in the 2020 list (19) vs newly-listed domains (21).
        let new_specs: Vec<PlantSpec> = plant::top2021_new_localhost_specs()
            .into_iter()
            .chain(plant::top2021_new_lan_specs())
            .collect();
        let domains2020: std::collections::HashSet<&str> = snapshot2020
            .entries
            .iter()
            .map(|e| e.domain.as_str())
            .collect();
        // Domains that exhibited *any* behaviour in 2020 (carried or
        // stopped) are excluded from new-planting candidacy: the paper
        // says the 19 newly-behaving sites "were crawled in 2020 but
        // were not observed as generating such traffic".
        let behaved2020: std::collections::HashSet<&str> = planted2020
            .keys()
            .map(|rank| snapshot2020.entries[(*rank - 1) as usize].domain.as_str())
            .collect();
        // Partition candidate hosts for new plantings.
        let mut existing_hosts: Vec<&kt_weblists::RankedDomain> = Vec::new();
        let mut fresh_hosts: Vec<&kt_weblists::RankedDomain> = Vec::new();
        for e in &snapshot2021.entries {
            if carried.contains_key(e.domain.as_str()) || behaved2020.contains(e.domain.as_str()) {
                continue; // already carries or previously exhibited a behaviour
            }
            if domains2020.contains(e.domain.as_str()) {
                existing_hosts.push(e);
            } else {
                fresh_hosts.push(e);
            }
        }
        // Deterministically thin the host lists to spread ranks.
        let pick_spread =
            |hosts: &[&kt_weblists::RankedDomain], count: usize| -> Vec<(u32, DomainName)> {
                let mut out = Vec::with_capacity(count);
                if hosts.is_empty() || count == 0 {
                    return out;
                }
                let stride = (hosts.len() / count.max(1)).max(1);
                for i in 0..count {
                    let idx = (i * stride
                        + (hash_str(seed, &format!("h21:{i}")) as usize % stride.max(1)))
                    .min(hosts.len() - 1);
                    out.push((hosts[idx].rank, hosts[idx].domain.clone()));
                }
                out.dedup_by(|a, b| a.1 == b.1);
                // Fill any dedup losses from the tail.
                let mut tail = hosts.len();
                while out.len() < count && tail > 0 {
                    tail -= 1;
                    let cand = hosts[tail];
                    if !out.iter().any(|(_, d)| d == &cand.domain) {
                        out.push((cand.rank, cand.domain.clone()));
                    }
                }
                out
            };
        // The paper: 19 new-behaviour sites existed in 2020, 21 are
        // newly listed; LAN adds 7 more (placement split pro rata).
        let n_existing = 19.min(new_specs.len());
        let existing_assign = pick_spread(&existing_hosts, n_existing);
        let fresh_assign = pick_spread(&fresh_hosts, new_specs.len() - existing_assign.len());
        let mut new_hosts: Vec<(u32, DomainName)> = existing_assign;
        new_hosts.extend(fresh_assign);
        let new_by_domain: HashMap<String, usize> = new_hosts
            .iter()
            .enumerate()
            .map(|(i, (_, d))| (d.as_str().to_string(), i))
            .collect();

        let mut sites2021 = Vec::with_capacity(snapshot2021.len());
        for entry in &snapshot2021.entries {
            let mut site = WebSite::plain(
                entry.domain.clone(),
                Some(entry.rank),
                (2 + hash_str(seed, &format!("pub21:{}", entry.domain)) % 9) as u8,
            );
            site.https = unit(seed, &format!("https:{}", entry.domain)) < 0.88;
            if let Some(&spec_idx) = carried.get(entry.domain.as_str()) {
                let spec = &specs2020[spec_idx];
                site.category = spec.category;
                site.behaviors
                    .push(materialise(spec, &entry.domain, spec_idx, seed, &forge));
                site.set_availability_all(Availability::Up);
            } else if let Some(&new_idx) = new_by_domain.get(entry.domain.as_str()) {
                let spec = &new_specs[new_idx];
                site.category = spec.category;
                site.behaviors.push(materialise(
                    spec,
                    &entry.domain,
                    1_000 + new_idx,
                    seed,
                    &forge,
                ));
                site.set_availability_all(Availability::Up);
            } else {
                for os in Os::ALL {
                    site.set_availability(
                        os,
                        sample_availability(
                            seed,
                            entry.domain.as_str(),
                            "top2021",
                            os,
                            top_failure_rate(2021, os),
                        ),
                    );
                }
            }
            sites2021.push(site);
        }

        // ---- malicious plantings ---------------------------------
        let localhost_plants = plant::malicious::localhost_specs();
        let lan_plants = plant::malicious::lan_specs();
        // Assign plantings to blocklist entries per category, spreading
        // over each category's entry list.
        let mut per_category: HashMap<MaliciousCategory, Vec<usize>> = HashMap::new();
        for (i, e) in blocklist.entries.iter().enumerate() {
            per_category.entry(e.category).or_default().push(i);
        }
        // entry index -> planting
        let mut planted_mal: HashMap<usize, PlantedBehavior> = HashMap::new();
        let mut cat_cursor: HashMap<MaliciousCategory, usize> = HashMap::new();
        for (pi, p) in localhost_plants.iter().chain(lan_plants.iter()).enumerate() {
            let Some(pool) = per_category.get(&p.category) else {
                continue;
            };
            if pool.is_empty() {
                continue;
            }
            let cursor = cat_cursor.entry(p.category).or_insert(0);
            // Stride through the pool to spread plantings out.
            let total_for_cat = localhost_plants
                .iter()
                .chain(lan_plants.iter())
                .filter(|q| q.category == p.category)
                .count();
            let stride = (pool.len() / total_for_cat.max(1)).max(1);
            let slot = (*cursor * stride) % pool.len();
            let mut entry_idx = pool[slot];
            // Linear-probe to an unplanted entry.
            let mut probe = slot;
            while planted_mal.contains_key(&entry_idx) {
                probe = (probe + 1) % pool.len();
                entry_idx = pool[probe];
                if probe == slot {
                    break;
                }
            }
            *cursor += 1;
            let domain = &blocklist.entries[entry_idx].domain;
            // Phishing TM clones inherit the vendor of the site they
            // impersonate: derive an impersonated brand deterministically.
            let planted = match &p.spec.behavior {
                Behavior::ThreatMetrix { vendor } if vendor.as_str() == VENDOR_PLACEHOLDER => {
                    let brand_rank = (hash_str(seed, &format!("clone:{pi}"))
                        % snapshot2020.len().max(1) as u64)
                        as usize;
                    let target =
                        &snapshot2020.entries[brand_rank.min(snapshot2020.len() - 1)].domain;
                    PlantedBehavior {
                        behavior: Behavior::ThreatMetrix {
                            vendor: forge.vendor_for(target, pi as u64),
                        },
                        os_set: p.spec.os_set,
                        base_delay_ms: sample_delay(seed, domain.as_str(), pi, p.spec.delay),
                    }
                }
                _ => materialise(&p.spec, domain, 2_000 + pi, seed, &forge),
            };
            planted_mal.insert(entry_idx, planted);
        }

        let mut malicious_sites = Vec::with_capacity(blocklist.len());
        for (i, e) in blocklist.entries.iter().enumerate() {
            let mut site = WebSite::plain(
                e.domain.clone(),
                None,
                (1 + hash_str(seed, &format!("pubm:{}", e.domain)) % 6) as u8,
            );
            site.category = SiteCategory::Malicious;
            site.https = e.url.starts_with("https://");
            if let Some(planted) = planted_mal.get(&i) {
                site.behaviors.push(planted.clone());
                site.set_availability_all(Availability::Up);
            } else {
                for os in Os::ALL {
                    site.set_availability(
                        os,
                        sample_availability(
                            seed,
                            e.domain.as_str(),
                            "malicious",
                            os,
                            malicious_failure_rate(e.category, os),
                        ),
                    );
                }
            }
            malicious_sites.push(site);
        }

        // ---- internal-page plantings (deep-crawl mode) -----------
        // ThreatMetrix deployed on login pages only: invisible to the
        // paper's landing-page crawl, observable with crawl_internal.
        {
            let internal_specs = plant::top2020_internal_specs();
            let mut placed = 0usize;
            let mut idx = 0usize;
            let stride = (sites2020.len() / (internal_specs.len() + 1)).max(1);
            while placed < internal_specs.len() && idx < sites2020.len() {
                let site = &mut sites2020[idx];
                if site.behaviors.is_empty() && site.availability_on(Os::Windows).is_up() {
                    let spec = &internal_specs[placed];
                    site.category = spec.category;
                    let domain = site.domain.clone();
                    site.internal_behaviors.push(materialise(
                        spec,
                        &domain,
                        5_000 + placed,
                        seed,
                        &forge,
                    ));
                    placed += 1;
                    idx += stride;
                } else {
                    idx += 1;
                }
            }
            debug_assert_eq!(placed, internal_specs.len(), "all internal specs placed");
        }

        // ---- anti-bot sensor plantings (measurement-bias model) ---
        // Gating sensors ride on behaviour sites; WebRTC probes land
        // on otherwise-quiet sites, whose only local signal is then
        // the gathered ICE candidates. Both are keyed purely on
        // (seed, domain), so the planted ground truth is exact.
        if config.sensors {
            use crate::sensor::{BotSensor, SensorArchetype};
            for site in sites2020.iter_mut().filter(|s| !s.behaviors.is_empty()) {
                if BotSensor::deployed_on(seed, site.domain.as_str()) {
                    site.sensor = Some(BotSensor::for_behavior_site(seed, site.domain.as_str()));
                }
            }
            const WEBRTC_PROBES: usize = 24;
            let mut placed = 0usize;
            let mut idx = 0usize;
            let stride = (sites2020.len() / (WEBRTC_PROBES + 1)).max(1);
            while placed < WEBRTC_PROBES && idx < sites2020.len() {
                let site = &mut sites2020[idx];
                if site.behaviors.is_empty()
                    && site.internal_behaviors.is_empty()
                    && site.sensor.is_none()
                    && Os::ALL.iter().all(|os| site.availability_on(*os).is_up())
                {
                    site.sensor = Some(BotSensor {
                        archetype: SensorArchetype::WebRtcProbe,
                    });
                    placed += 1;
                    idx += stride;
                } else {
                    idx += 1;
                }
            }
            debug_assert_eq!(placed, WEBRTC_PROBES, "all WebRTC probes placed");
        }

        WebPopulation {
            config,
            snapshot2020,
            snapshot2021,
            blocklist,
            sites2020,
            sites2021,
            malicious_sites,
        }
    }

    /// Look up a 2020 site by domain.
    pub fn site2020(&self, domain: &str) -> Option<&WebSite> {
        self.sites2020.iter().find(|s| s.domain.as_str() == domain)
    }

    /// Sites of the 2020 population that issue local traffic anywhere.
    pub fn locally_active_2020(&self) -> impl Iterator<Item = &WebSite> {
        self.sites2020.iter().filter(|s| !s.behaviors.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_netbase::OsSet;

    fn small() -> WebPopulation {
        WebPopulation::generate(PopulationConfig::test_scale(42))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.sites2020, b.sites2020);
        assert_eq!(a.sites2021, b.sites2021);
        assert_eq!(a.malicious_sites, b.malicious_sites);
    }

    #[test]
    fn all_2020_plantings_are_placed() {
        let p = small();
        let planted = p
            .sites2020
            .iter()
            .filter(|s| !s.behaviors.is_empty())
            .count();
        assert_eq!(planted, 116, "107 localhost + 9 LAN plantings");
    }

    #[test]
    fn localhost_activity_counts_match_figure2a() {
        let p = small();
        let active = |os: Os| {
            p.sites2020
                .iter()
                .filter(|s| {
                    s.planned_requests(os)
                        .iter()
                        .any(|r| r.url.is_local() && r.url.locality().is_loopback())
                })
                .count()
        };
        assert_eq!(active(Os::Windows), 92);
        assert_eq!(active(Os::Linux), 53);
        assert_eq!(active(Os::MacOs), 54);
    }

    #[test]
    fn lan_activity_2020() {
        let p = small();
        let lan_sites = p
            .sites2020
            .iter()
            .filter(|s| {
                Os::ALL.iter().any(|os| {
                    s.planned_requests(*os)
                        .iter()
                        .any(|r| r.url.locality().is_private())
                })
            })
            .count();
        assert_eq!(lan_sites, 9);
    }

    #[test]
    fn no_overlap_between_localhost_and_lan_sites_2020() {
        // The paper found no overlap between the two site sets (§4.1).
        let p = small();
        for s in p.sites2020.iter().filter(|s| !s.behaviors.is_empty()) {
            let mut loopback = false;
            let mut lan = false;
            for os in Os::ALL {
                for r in s.planned_requests(os) {
                    if r.url.locality().is_loopback() {
                        loopback = true;
                    }
                    if r.url.locality().is_private() {
                        lan = true;
                    }
                }
            }
            assert!(
                !(loopback && lan),
                "{} does both localhost and LAN",
                s.domain
            );
        }
    }

    #[test]
    fn planted_sites_are_always_up() {
        let p = small();
        for s in p.sites2020.iter().filter(|s| !s.behaviors.is_empty()) {
            for os in Os::ALL {
                assert!(s.availability_on(os).is_up());
            }
        }
    }

    #[test]
    fn failure_rates_are_plausible_2020() {
        let p = WebPopulation::generate(PopulationConfig {
            seed: 7,
            top_size: 8_000,
            malicious_size: 600,
            sensors: false,
        });
        let failed = p
            .sites2020
            .iter()
            .filter(|s| !s.availability_on(Os::Windows).is_up())
            .count() as f64
            / p.sites2020.len() as f64;
        assert!((0.08..0.13).contains(&failed), "Windows 2020 fail {failed}");
        // DNS dominates failures (Table 1: ~89%).
        let fails: Vec<Availability> = p
            .sites2020
            .iter()
            .map(|s| s.availability_on(Os::Windows))
            .filter(|a| !a.is_up())
            .collect();
        let dns = fails
            .iter()
            .filter(|a| **a == Availability::NxDomain)
            .count() as f64
            / fails.len() as f64;
        assert!((0.84..0.93).contains(&dns), "DNS share {dns}");
    }

    #[test]
    fn sensor_planting_is_opt_in_and_leaves_behaviours_untouched() {
        use crate::sensor::SensorArchetype;
        let plain = small();
        assert!(plain.sites2020.iter().all(|s| s.sensor.is_none()));
        let biased = WebPopulation::generate(PopulationConfig::bias_scale(42));
        // Behaviour planting is byte-identical: sensors gate the
        // *browser*, not the planted ground truth.
        for (a, b) in plain.sites2020.iter().zip(biased.sites2020.iter()) {
            assert_eq!(a.domain, b.domain);
            assert_eq!(a.behaviors, b.behaviors);
            assert_eq!(a.availability, b.availability);
        }
        // A healthy share of behaviour sites carries a gating sensor…
        let gated = biased
            .sites2020
            .iter()
            .filter(|s| !s.behaviors.is_empty() && s.sensor.is_some())
            .count();
        assert!((40..=100).contains(&gated), "gated {gated}");
        // …and exactly 24 quiet sites carry the WebRTC probe.
        let probes = biased
            .sites2020
            .iter()
            .filter(|s| {
                s.behaviors.is_empty()
                    && matches!(
                        s.sensor,
                        Some(crate::sensor::BotSensor {
                            archetype: SensorArchetype::WebRtcProbe
                        })
                    )
            })
            .count();
        assert_eq!(probes, 24);
        // Ground truth counts both behaviour sites and probe sites.
        let truth = biased
            .sites2020
            .iter()
            .filter(|s| s.has_local_ground_truth())
            .count();
        assert_eq!(truth, 116 + 24);
    }

    #[test]
    fn vendor_placeholder_is_always_substituted() {
        let p = small();
        for s in &p.sites2020 {
            for b in &s.behaviors {
                if let Behavior::ThreatMetrix { vendor } = &b.behavior {
                    assert_ne!(vendor.as_str(), VENDOR_PLACEHOLDER);
                }
            }
        }
    }

    #[test]
    fn snapshot_overlap_is_roughly_75_percent() {
        let p = small();
        let overlap = p.snapshot2020.overlap_with(&p.snapshot2021);
        assert!((0.68..0.82).contains(&overlap), "{overlap}");
    }

    #[test]
    fn sites2021_activity_totals_match_figure9() {
        let p = small();
        let active = |os: Os| {
            p.sites2021
                .iter()
                .filter(|s| {
                    s.planned_requests(os)
                        .iter()
                        .any(|r| r.url.locality().is_loopback())
                })
                .count()
        };
        assert_eq!(active(Os::Windows), 82);
        assert_eq!(active(Os::Linux), 48);
    }

    #[test]
    fn sites2021_lan_count_matches_table10() {
        let p = small();
        let lan = p
            .sites2021
            .iter()
            .filter(|s| {
                [Os::Windows, Os::Linux].iter().any(|os| {
                    s.planned_requests(*os)
                        .iter()
                        .any(|r| r.url.locality().is_private())
                })
            })
            .count();
        assert_eq!(lan, 8, "7 new + 1 carried (unib)");
    }

    #[test]
    fn malicious_sites_follow_table2() {
        let p = small();
        let planted = p
            .malicious_sites
            .iter()
            .filter(|s| !s.behaviors.is_empty())
            .count();
        assert_eq!(planted, 160, "151 localhost + 9 LAN malicious plantings");
        // Phishing ThreatMetrix clones exist and are Windows-only.
        let clones = p
            .malicious_sites
            .iter()
            .filter(|s| {
                s.behaviors
                    .iter()
                    .any(|b| matches!(b.behavior, Behavior::ThreatMetrix { .. }))
            })
            .count();
        assert_eq!(clones, 13);
    }

    #[test]
    fn carried_behaviors_persist_across_snapshots() {
        let p = small();
        let carried_2020: std::collections::HashSet<&str> = p
            .sites2020
            .iter()
            .filter(|s| !s.behaviors.is_empty())
            .map(|s| s.domain.as_str())
            .collect();
        let behaved_2021: Vec<&WebSite> = p
            .sites2021
            .iter()
            .filter(|s| !s.behaviors.is_empty())
            .collect();
        let carried_count = behaved_2021
            .iter()
            .filter(|s| carried_2020.contains(s.domain.as_str()))
            .count();
        // 42 carried localhost + 1 carried LAN = 43 … but a carried
        // domain only persists if the successor snapshot kept it, and
        // new plantings may land on previously-behaving... they can't
        // (those domains are skipped). Allow the snapshot to have
        // dropped a few.
        assert!(
            (35..=43).contains(&carried_count),
            "carried {carried_count}"
        );
    }

    #[test]
    fn os_sets_respect_intrinsic_constraints() {
        let p = small();
        for s in &p.sites2020 {
            for b in &s.behaviors {
                if matches!(b.behavior, Behavior::ThreatMetrix { .. }) {
                    assert_eq!(b.effective_os_set(), OsSet::WINDOWS_ONLY);
                }
            }
        }
    }
}
