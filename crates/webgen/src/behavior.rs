//! Website behaviours that generate locally-bound traffic.
//!
//! Each variant of [`Behavior`] is one of the concrete behaviours the
//! paper uncovered in §4.3 and Appendices A–C, with the exact port
//! sets, schemes, URL paths and OS-conditionality the paper reports.
//! A behaviour *expands* into the [`PlannedRequest`]s the page will
//! issue on a given OS; the simulated browser executes the plan and the
//! analysis pipeline must recover the behaviour class from the
//! resulting NetLog telemetry — closing the loop the real measurement
//! closed by manual investigation.

use kt_netbase::services::{
    ANYSIGN_PORTS, BIGIP_PORTS, DISCORD_PORTS, HOLA_PORTS, IQIYI_PORTS, NPROTECT_PORTS,
    THREATMETRIX_PORTS, THUNDER_PORTS,
};
use kt_netbase::{DomainName, Host, Os, OsSet, Scheme, Url};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// How a request is issued by the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Channel {
    /// A subresource fetch (img/script/XHR/fetch). Subject to SOP.
    Fetch,
    /// A `new WebSocket(...)` connection. Exempt from SOP.
    WebSocket,
    /// An `<iframe src=...>` navigation (the censorship-injection case).
    Iframe,
    /// A top-level redirect of the landing page itself.
    Redirect,
}

/// One request the page plans to issue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannedRequest {
    /// Destination.
    pub url: Url,
    /// Issue mechanism.
    pub channel: Channel,
    /// Milliseconds after the page load completes.
    pub delay_ms: u64,
}

/// The native applications of §4.3.3 / Appendix A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NativeApp {
    /// Discord local RPC: ws 6463–6472, `/?v=1` (cponline, runeline).
    Discord,
    /// nProtect + AnySign: https 14440–14449 + wss 10531/31027/31029
    /// (samsungcard).
    SamsungSecurity,
    /// FACEIT anti-cheat client: ws 28337.
    Faceit,
    /// GameHouse manager: http 12071–12072/17021/27021,
    /// `/v1/init.json?api_port=*&query_id=*`.
    GameHouse,
    /// Zylom: http 12071/17021, same path as GameHouse.
    Zylom,
    /// games.lol launcher: ws 60202 `/check` (Windows+Linux only).
    GamesLol,
    /// iWin games client: http 2080–2082 `/version?_=*` (W+M).
    Iwin,
    /// Screenleap client: http 5320 `/status`.
    Screenleap,
    /// Ace Stream: http 6878 `/webui/api/service`.
    AceStream,
    /// trustdice.win wallet: http 50005/51505/53005/54505/56005.
    TrustDice,
    /// iQiyi family: http 16422–16423 `/get_client_ver?*` (2021).
    Iqiyi,
    /// Thunder/Xunlei: http 28317/36759 `/get_thunder_version/` (2021).
    Thunder,
    /// Uzbek e-signature service: wss 64443 `/service/cryptapi` (2021).
    SoliqCrypto,
    /// Gnway remote tooling: ws 38681–38687 `/` (2021, Windows only).
    Gnway,
    /// Socket.io dev client on https 4000 (mcgeeandco, 2021).
    McgeeSocketIo,
}

impl NativeApp {
    /// The OS pattern intrinsic to the app (most run everywhere; the
    /// exceptions come straight from Tables 5 and 7).
    pub fn default_os_set(self) -> OsSet {
        match self {
            NativeApp::GamesLol => OsSet::WINDOWS_LINUX,
            NativeApp::Iwin => OsSet::WINDOWS_MAC,
            NativeApp::Gnway => OsSet::WINDOWS_ONLY,
            _ => OsSet::ALL,
        }
    }
}

/// The developer-error shapes of §4.3.4 / Appendix B.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DevError {
    /// Fetching files from a development file server left in the page
    /// (`/wp-content/uploads/...` and friends).
    LocalFileServer {
        /// `http` or `https`.
        scheme: Scheme,
        /// Server port (80, 8080, 8888, …).
        port: u16,
        /// Resource path.
        path: String,
    },
    /// Same, but the server is a LAN address rather than localhost.
    LanResource {
        /// RFC 1918 server address.
        ip: Ipv4Addr,
        /// `http` or `https`.
        scheme: Scheme,
        /// Server port.
        port: u16,
        /// Resource path.
        path: String,
    },
    /// OWASP Xenotix `xook.js` fetch (rkn.gov.ru): http 5005.
    PenTest,
    /// `livereload.js` fetch (port 35729 or 460).
    LiveReload {
        /// `http` or `https`.
        scheme: Scheme,
        /// 35729 (standard) or a site-specific port.
        port: u16,
    },
    /// The landing page redirects to `http://127.0.0.1/`.
    RedirectToLoopback,
    /// SockJS-node `/sockjs-node/info?t=*` (observed Mac-only).
    SockJsNode {
        /// `http` or `https`.
        scheme: Scheme,
    },
    /// Some other local service endpoint left enabled
    /// (`/record/state`, `/setuid`, `/graphql`, …).
    LocalService {
        /// `http` or `https`.
        scheme: Scheme,
        /// Service port.
        port: u16,
        /// Endpoint path.
        path: String,
    },
    /// The `NonExistentImageNNNNN.gif` pattern of the phishing tables.
    NonExistentImage {
        /// `http` or `https`.
        scheme: Scheme,
        /// Server port.
        port: u16,
        /// The random image number.
        number: u32,
    },
}

/// The unexplained behaviours of Appendix C.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnknownKind {
    /// `http://127.0.0.1:6880–6889/*.json` (hola.org, svd-cdn.com).
    HolaJson,
    /// A sweep over ~25 service ports (wowreality.info).
    WidePortSweep,
    /// ws 2687 + 26876 (usaonlineclassifieds, usnetads; Windows only).
    WsPair,
    /// A 403 page with `<iframe src="http://10.10.34.35:80/">` —
    /// the censorship-injection signature of Raman et al.
    CensorshipIframe,
}

/// The ports probed by the wide sweep (Table 5, wowreality.info row).
pub const WIDE_SWEEP_PORTS: [u16; 25] = [
    1080, 1194, 2375, 2376, 3000, 3128, 3306, 3479, 4244, 5037, 5242, 5601, 5938, 6379, 8332, 8333,
    8530, 9000, 9050, 9150, 9785, 11211, 15672, 23399, 27017,
];

/// A behaviour a website exhibits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Behavior {
    /// ThreatMetrix fraud detection: WSS scan of 14 remote-desktop
    /// ports, Windows only, results uploaded to a vendor domain.
    ThreatMetrix {
        /// The ThreatMetrix-controlled domain hosting the script and
        /// receiving the encrypted telemetry.
        vendor: DomainName,
    },
    /// BIG-IP ASM Bot Defense: HTTP probes of 7 malware/automation
    /// ports, Windows only, timing side channel.
    BigIpBotDefense,
    /// Communication with an affiliated native application.
    NativeApp(NativeApp),
    /// A development/testing remnant.
    DevError(DevError),
    /// Unexplained local traffic.
    Unknown(UnknownKind),
}

impl Behavior {
    /// The OS pattern intrinsic to the behaviour. Dev errors have no
    /// intrinsic pattern (the paper saw every combination) except
    /// SockJS, which was Mac-only; the population generator supplies
    /// the per-site pattern for the rest.
    pub fn default_os_set(&self) -> OsSet {
        match self {
            Behavior::ThreatMetrix { .. } => OsSet::WINDOWS_ONLY,
            Behavior::BigIpBotDefense => OsSet::WINDOWS_ONLY,
            Behavior::NativeApp(app) => app.default_os_set(),
            Behavior::DevError(DevError::SockJsNode { .. }) => OsSet::MAC_ONLY,
            Behavior::DevError(_) => OsSet::ALL,
            Behavior::Unknown(UnknownKind::WsPair) => OsSet::WINDOWS_ONLY,
            Behavior::Unknown(_) => OsSet::ALL,
        }
    }

    /// Short class label for reports ("Fraud Detection", …) matching
    /// the paper's Table 5 reason column.
    pub fn reason_label(&self) -> &'static str {
        match self {
            Behavior::ThreatMetrix { .. } => "Fraud Detection",
            Behavior::BigIpBotDefense => "Bot Detection",
            Behavior::NativeApp(_) => "Native Application",
            Behavior::DevError(_) => "Developer Error",
            Behavior::Unknown(_) => "Unknown",
        }
    }

    /// Expand into the requests the page issues on `os`, offset from
    /// `base_delay_ms`. Returns an empty plan when the behaviour's
    /// intrinsic OS set excludes `os` (the caller applies the per-site
    /// OS set on top).
    pub fn planned_requests(
        &self,
        site: &DomainName,
        os: Os,
        base_delay_ms: u64,
    ) -> Vec<PlannedRequest> {
        if !self.default_os_set().contains(os) {
            return Vec::new();
        }
        let localhost = || Host::domain_unchecked("localhost");
        let loopback = || Host::Ipv4(Ipv4Addr::LOCALHOST);
        let mut plan = Vec::new();
        let mut push = |url: Url, channel: Channel, delay: u64| {
            plan.push(PlannedRequest {
                url,
                channel,
                delay_ms: delay,
            });
        };
        match self {
            Behavior::ThreatMetrix { vendor } => {
                // 1. Load the profiling script from the vendor domain.
                let script = Url::from_parts(
                    Scheme::Https,
                    Host::Domain(vendor.clone()),
                    None,
                    "/fp/tags.js?session_id=kt",
                );
                push(script, Channel::Fetch, base_delay_ms.saturating_sub(1_500));
                // 2. The script's blob scans the 14 ports over WSS.
                for (i, port) in THREATMETRIX_PORTS.iter().enumerate() {
                    let url = Url::from_parts(Scheme::Wss, localhost(), Some(*port), "/");
                    push(url, Channel::WebSocket, base_delay_ms + 60 * i as u64);
                }
                // 3. Encrypted results are uploaded back to the vendor.
                let upload = Url::from_parts(
                    Scheme::Https,
                    Host::Domain(vendor.clone()),
                    None,
                    "/fp/clear.png?ja=kt",
                );
                push(upload, Channel::Fetch, base_delay_ms + 60 * 14 + 250);
            }
            Behavior::BigIpBotDefense => {
                // 1. The /TSPD script is same-origin.
                let script = Url::from_parts(
                    Scheme::Https,
                    Host::Domain(site.clone()),
                    None,
                    "/TSPD/08e8ab5bacab2000",
                );
                push(script, Channel::Fetch, base_delay_ms.saturating_sub(1_200));
                // 2. HTTP probes of the malware/automation ports; the
                //    timing of each opaque response is the signal.
                for (i, port) in BIGIP_PORTS.iter().enumerate() {
                    let url = Url::from_parts(Scheme::Http, localhost(), Some(*port), "/");
                    push(url, Channel::Fetch, base_delay_ms + 40 * i as u64);
                }
            }
            Behavior::NativeApp(app) => expand_native_app(*app, &mut push, base_delay_ms),
            Behavior::DevError(err) => expand_dev_error(err, site, &mut push, base_delay_ms),
            Behavior::Unknown(kind) => match kind {
                UnknownKind::HolaJson => {
                    for (i, port) in HOLA_PORTS.iter().enumerate() {
                        let url = Url::from_parts(
                            Scheme::Http,
                            loopback(),
                            Some(*port),
                            "/app_list.json",
                        );
                        push(url, Channel::Fetch, base_delay_ms + 30 * i as u64);
                    }
                }
                UnknownKind::WidePortSweep => {
                    for (i, port) in WIDE_SWEEP_PORTS.iter().enumerate() {
                        let url = Url::from_parts(Scheme::Http, localhost(), Some(*port), "/");
                        push(url, Channel::Fetch, base_delay_ms + 25 * i as u64);
                    }
                }
                UnknownKind::WsPair => {
                    for (i, port) in [2687u16, 26876].iter().enumerate() {
                        let url = Url::from_parts(Scheme::Ws, localhost(), Some(*port), "/");
                        push(url, Channel::WebSocket, base_delay_ms + 100 * i as u64);
                    }
                }
                UnknownKind::CensorshipIframe => {
                    let url = Url::from_parts(
                        Scheme::Http,
                        Host::Ipv4(Ipv4Addr::new(10, 10, 34, 35)),
                        Some(80),
                        "/",
                    );
                    push(url, Channel::Iframe, base_delay_ms);
                }
            },
        }
        plan
    }
}

/// Expansion of the native-application probes (port sets and paths
/// from Tables 5 and 7 / Appendix A).
fn expand_native_app(app: NativeApp, push: &mut impl FnMut(Url, Channel, u64), base: u64) {
    let localhost = || Host::domain_unchecked("localhost");
    let loopback = || Host::Ipv4(Ipv4Addr::LOCALHOST);
    match app {
        NativeApp::Discord => {
            for (i, port) in DISCORD_PORTS.iter().enumerate() {
                let url = Url::from_parts(Scheme::Ws, localhost(), Some(*port), "/?v=1");
                push(url, Channel::WebSocket, base + 50 * i as u64);
            }
        }
        NativeApp::SamsungSecurity => {
            for (i, port) in NPROTECT_PORTS.iter().enumerate() {
                let url = Url::from_parts(
                    Scheme::Https,
                    loopback(),
                    Some(*port),
                    "/?code=kt1&dummy=kt2",
                );
                push(url, Channel::Fetch, base + 40 * i as u64);
            }
            for (i, port) in ANYSIGN_PORTS.iter().enumerate() {
                let url = Url::from_parts(Scheme::Wss, localhost(), Some(*port), "/");
                push(url, Channel::WebSocket, base + 420 + 60 * i as u64);
            }
        }
        NativeApp::Faceit => {
            let url = Url::from_parts(Scheme::Ws, localhost(), Some(28337), "/");
            push(url, Channel::WebSocket, base);
        }
        NativeApp::GameHouse => {
            for (i, port) in [12071u16, 12072, 17021, 27021].iter().enumerate() {
                let path = format!("/v1/init.json?api_port={port}&query_id={i}");
                let url = Url::from_parts(Scheme::Http, localhost(), Some(*port), &path);
                push(url, Channel::Fetch, base + 80 * i as u64);
            }
        }
        NativeApp::Zylom => {
            for (i, port) in [12071u16, 17021].iter().enumerate() {
                let path = format!("/v1/init.json?api_port={port}&query_id={i}");
                let url = Url::from_parts(Scheme::Http, localhost(), Some(*port), &path);
                push(url, Channel::Fetch, base + 80 * i as u64);
            }
        }
        NativeApp::GamesLol => {
            let url = Url::from_parts(Scheme::Ws, localhost(), Some(60202), "/check");
            push(url, Channel::WebSocket, base);
        }
        NativeApp::Iwin => {
            for (i, port) in [2080u16, 2081, 2082].iter().enumerate() {
                let url =
                    Url::from_parts(Scheme::Http, localhost(), Some(*port), "/version?_=1595");
                push(url, Channel::Fetch, base + 70 * i as u64);
            }
        }
        NativeApp::Screenleap => {
            let url = Url::from_parts(Scheme::Http, localhost(), Some(5320), "/status");
            push(url, Channel::Fetch, base);
            let url = Url::from_parts(Scheme::Http, localhost(), Some(5320), "/kt/up");
            push(url, Channel::Fetch, base + 120);
        }
        NativeApp::AceStream => {
            let url = Url::from_parts(Scheme::Http, loopback(), Some(6878), "/webui/api/service");
            push(url, Channel::Fetch, base);
        }
        NativeApp::TrustDice => {
            for (i, port) in [50005u16, 51505, 53005, 54505, 56005].iter().enumerate() {
                let url = Url::from_parts(Scheme::Http, localhost(), Some(*port), "/");
                push(url, Channel::Fetch, base + 60 * i as u64);
                let url = Url::from_parts(Scheme::Http, localhost(), Some(*port), "/socket.io");
                push(url, Channel::Fetch, base + 60 * i as u64 + 30);
            }
        }
        NativeApp::Iqiyi => {
            for (i, port) in IQIYI_PORTS.iter().enumerate() {
                let url = Url::from_parts(
                    Scheme::Http,
                    loopback(),
                    Some(*port),
                    "/get_client_ver?kt=1",
                );
                push(url, Channel::Fetch, base + 60 * i as u64);
            }
        }
        NativeApp::Thunder => {
            for (i, port) in THUNDER_PORTS.iter().enumerate() {
                let url = Url::from_parts(
                    Scheme::Http,
                    loopback(),
                    Some(*port),
                    "/get_thunder_version/",
                );
                push(url, Channel::Fetch, base + 60 * i as u64);
            }
        }
        NativeApp::SoliqCrypto => {
            let url = Url::from_parts(Scheme::Wss, loopback(), Some(64443), "/service/cryptapi");
            push(url, Channel::WebSocket, base);
        }
        NativeApp::Gnway => {
            for (i, port) in (38681u16..=38687).enumerate() {
                let url = Url::from_parts(Scheme::Ws, localhost(), Some(port), "/");
                push(url, Channel::WebSocket, base + 45 * i as u64);
            }
        }
        NativeApp::McgeeSocketIo => {
            let url = Url::from_parts(Scheme::Https, localhost(), Some(4000), "/socket.io/?EIO=3");
            push(url, Channel::Fetch, base);
        }
    }
}

/// Expansion of the developer-error fetches.
fn expand_dev_error(
    err: &DevError,
    _site: &DomainName,
    push: &mut impl FnMut(Url, Channel, u64),
    base: u64,
) {
    let localhost = || Host::domain_unchecked("localhost");
    let loopback = || Host::Ipv4(Ipv4Addr::LOCALHOST);
    match err {
        DevError::LocalFileServer { scheme, port, path } => {
            let url = Url::from_parts(*scheme, localhost(), Some(*port), path);
            push(url, Channel::Fetch, base);
        }
        DevError::LanResource {
            ip,
            scheme,
            port,
            path,
        } => {
            let url = Url::from_parts(*scheme, Host::Ipv4(*ip), Some(*port), path);
            push(url, Channel::Fetch, base);
        }
        DevError::PenTest => {
            let url = Url::from_parts(Scheme::Http, localhost(), Some(5005), "/xook.js");
            push(url, Channel::Fetch, base);
        }
        DevError::LiveReload { scheme, port } => {
            let url = Url::from_parts(*scheme, localhost(), Some(*port), "/livereload.js");
            push(url, Channel::Fetch, base);
        }
        DevError::RedirectToLoopback => {
            let url = Url::from_parts(Scheme::Http, loopback(), None, "/");
            push(url, Channel::Redirect, base);
        }
        DevError::SockJsNode { scheme } => {
            let url = Url::from_parts(*scheme, localhost(), Some(9000), "/sockjs-node/info?t=1595");
            push(url, Channel::Fetch, base);
        }
        DevError::LocalService { scheme, port, path } => {
            let url = Url::from_parts(*scheme, localhost(), Some(*port), path);
            push(url, Channel::Fetch, base);
        }
        DevError::NonExistentImage {
            scheme,
            port,
            number,
        } => {
            let path = format!("/NonExistentImage{number}.gif");
            let url = Url::from_parts(*scheme, localhost(), Some(*port), &path);
            push(url, Channel::Fetch, base);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_netbase::Locality;

    fn site() -> DomainName {
        DomainName::parse("example-shop.com").unwrap()
    }

    fn vendor() -> DomainName {
        DomainName::parse("regstat.example-shop.com").unwrap()
    }

    #[test]
    fn threatmetrix_is_windows_only() {
        let b = Behavior::ThreatMetrix { vendor: vendor() };
        assert!(b.planned_requests(&site(), Os::Linux, 10_000).is_empty());
        assert!(b.planned_requests(&site(), Os::MacOs, 10_000).is_empty());
        let plan = b.planned_requests(&site(), Os::Windows, 10_000);
        assert!(!plan.is_empty());
    }

    #[test]
    fn threatmetrix_scans_the_14_ports_over_wss() {
        let b = Behavior::ThreatMetrix { vendor: vendor() };
        let plan = b.planned_requests(&site(), Os::Windows, 10_000);
        let wss_ports: Vec<u16> = plan
            .iter()
            .filter(|r| r.url.scheme() == Scheme::Wss && r.url.is_local())
            .map(|r| r.url.port())
            .collect();
        assert_eq!(wss_ports.len(), 14);
        for p in THREATMETRIX_PORTS {
            assert!(wss_ports.contains(&p), "missing port {p}");
        }
        // Script download before the scan, upload after.
        assert!(plan
            .first()
            .unwrap()
            .url
            .to_string()
            .contains("/fp/tags.js"));
        assert!(plan
            .last()
            .unwrap()
            .url
            .to_string()
            .contains("/fp/clear.png"));
        // All local scans use path "/" and the WebSocket channel.
        for r in &plan {
            if r.url.is_local() {
                assert_eq!(r.url.path(), "/");
                assert_eq!(r.channel, Channel::WebSocket);
            }
        }
    }

    #[test]
    fn bigip_scans_the_7_ports_over_http() {
        let b = Behavior::BigIpBotDefense;
        let plan = b.planned_requests(&site(), Os::Windows, 9_000);
        let local: Vec<&PlannedRequest> = plan.iter().filter(|r| r.url.is_local()).collect();
        assert_eq!(local.len(), 7);
        for r in &local {
            assert_eq!(r.url.scheme(), Scheme::Http);
            assert_eq!(r.url.path(), "/");
            assert_eq!(r.channel, Channel::Fetch);
            assert!(BIGIP_PORTS.contains(&r.url.port()));
        }
        // The /TSPD script is the initiator.
        assert!(plan[0].url.path().starts_with("/TSPD"));
        assert!(b.planned_requests(&site(), Os::Linux, 9_000).is_empty());
    }

    #[test]
    fn discord_probes_ten_ports_with_version_query() {
        let b = Behavior::NativeApp(NativeApp::Discord);
        for os in Os::ALL {
            let plan = b.planned_requests(&site(), os, 2_000);
            assert_eq!(plan.len(), 10, "{os:?}");
            for r in &plan {
                assert_eq!(r.url.scheme(), Scheme::Ws);
                assert_eq!(r.url.path_and_query(), "/?v=1");
                assert!(DISCORD_PORTS.contains(&r.url.port()));
            }
        }
    }

    #[test]
    fn samsung_mixes_https_and_wss() {
        let b = Behavior::NativeApp(NativeApp::SamsungSecurity);
        let plan = b.planned_requests(&site(), Os::Linux, 2_000);
        let https = plan
            .iter()
            .filter(|r| r.url.scheme() == Scheme::Https)
            .count();
        let wss = plan
            .iter()
            .filter(|r| r.url.scheme() == Scheme::Wss)
            .count();
        assert_eq!(https, 10);
        assert_eq!(wss, 3);
    }

    #[test]
    fn games_lol_is_windows_linux_only() {
        let b = Behavior::NativeApp(NativeApp::GamesLol);
        assert!(!b.planned_requests(&site(), Os::Windows, 0).is_empty());
        assert!(!b.planned_requests(&site(), Os::Linux, 0).is_empty());
        assert!(b.planned_requests(&site(), Os::MacOs, 0).is_empty());
    }

    #[test]
    fn sockjs_is_mac_only() {
        let b = Behavior::DevError(DevError::SockJsNode {
            scheme: Scheme::Https,
        });
        assert!(b.planned_requests(&site(), Os::Windows, 0).is_empty());
        assert!(b.planned_requests(&site(), Os::Linux, 0).is_empty());
        let plan = b.planned_requests(&site(), Os::MacOs, 0);
        assert_eq!(plan.len(), 1);
        assert!(plan[0].url.path().starts_with("/sockjs-node/info"));
        assert_eq!(plan[0].url.port(), 9000);
    }

    #[test]
    fn lan_resource_targets_private_address() {
        let b = Behavior::DevError(DevError::LanResource {
            ip: Ipv4Addr::new(192, 168, 0, 208),
            scheme: Scheme::Https,
            port: 443,
            path: "/wp_011_test_demos/wp-content/uploads/2017/05/x.jpg".into(),
        });
        let plan = b.planned_requests(&site(), Os::Windows, 1_000);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].url.locality(), Locality::Private);
    }

    #[test]
    fn redirect_to_loopback_uses_redirect_channel() {
        let b = Behavior::DevError(DevError::RedirectToLoopback);
        let plan = b.planned_requests(&site(), Os::Linux, 0);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].channel, Channel::Redirect);
        assert_eq!(plan[0].url.to_string(), "http://127.0.0.1/");
    }

    #[test]
    fn censorship_iframe_targets_the_iranian_lan_address() {
        let b = Behavior::Unknown(UnknownKind::CensorshipIframe);
        let plan = b.planned_requests(&site(), Os::Windows, 500);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].channel, Channel::Iframe);
        assert_eq!(plan[0].url.to_string(), "http://10.10.34.35:80/");
        assert_eq!(plan[0].url.locality(), Locality::Private);
    }

    #[test]
    fn wide_sweep_covers_25_ports() {
        let b = Behavior::Unknown(UnknownKind::WidePortSweep);
        let plan = b.planned_requests(&site(), Os::MacOs, 1_000);
        assert_eq!(plan.len(), 25);
        let ports: std::collections::HashSet<u16> = plan.iter().map(|r| r.url.port()).collect();
        assert_eq!(ports.len(), 25);
        assert!(ports.contains(&27017), "mongodb port in the sweep");
    }

    #[test]
    fn reason_labels_match_table5() {
        assert_eq!(
            Behavior::ThreatMetrix { vendor: vendor() }.reason_label(),
            "Fraud Detection"
        );
        assert_eq!(Behavior::BigIpBotDefense.reason_label(), "Bot Detection");
        assert_eq!(
            Behavior::NativeApp(NativeApp::Faceit).reason_label(),
            "Native Application"
        );
        assert_eq!(
            Behavior::DevError(DevError::PenTest).reason_label(),
            "Developer Error"
        );
        assert_eq!(
            Behavior::Unknown(UnknownKind::HolaJson).reason_label(),
            "Unknown"
        );
    }

    #[test]
    fn delays_respect_base_offset() {
        let b = Behavior::NativeApp(NativeApp::Discord);
        let plan = b.planned_requests(&site(), Os::Windows, 3_000);
        assert!(plan.iter().all(|r| r.delay_ms >= 3_000));
        assert!(plan.iter().any(|r| r.delay_ms > 3_000), "staggered");
    }
}
