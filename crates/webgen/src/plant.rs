//! The planting plan: which behaviours exist in each population.
//!
//! These spec lists encode the paper's ground truth — the class sizes,
//! kind breakdowns and OS patterns of Tables 5–11 — as data. The
//! population generator places each spec on a concrete domain; the
//! analysis pipeline must then recover the same numbers from raw
//! telemetry, which is the end-to-end check on the whole system.
//!
//! 2020 top-100K composition (107 localhost + 9 LAN sites):
//!
//! | class       | sites | OS pattern                          |
//! |-------------|-------|-------------------------------------|
//! | ThreatMetrix| 36    | Windows only                        |
//! | BIG-IP      | 10    | Windows only                        |
//! | Native apps | 12    | 10 all-OS, games.lol W+L, iWin W+M  |
//! | Dev errors  | 44    | 28 all, 1 W+L, 7 L+M, 3 L, 5 M (SockJS) |
//! | Unknown     | 5     | 3 all-OS, 2 Windows (ws pair)       |
//!
//! yielding per-OS totals W=92, L=53, M=54 and an all-three overlap of
//! 41, matching Figure 2a's shape (the paper reports L=54; one site of
//! rounding separates the reconstructions).

use kt_netbase::{OsSet, Scheme};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

use crate::behavior::{Behavior, DevError, NativeApp, UnknownKind};
use crate::site::SiteCategory;

/// Where a spec's behaviour fires in time (drives Figures 5–7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayWindow {
    /// Minimum base delay, ms.
    pub min_ms: u64,
    /// Maximum base delay, ms.
    pub max_ms: u64,
}

impl DelayWindow {
    /// The anti-abuse scripts fire late (Windows median ≈ 10 s).
    pub const ANTI_ABUSE: DelayWindow = DelayWindow {
        min_ms: 8_000,
        max_ms: 15_000,
    };
    /// Native-app probes fire after client-side JS settles.
    pub const NATIVE: DelayWindow = DelayWindow {
        min_ms: 1_000,
        max_ms: 8_000,
    };
    /// Dev-error fetches are page resources: early.
    pub const RESOURCE: DelayWindow = DelayWindow {
        min_ms: 400,
        max_ms: 6_000,
    };
    /// Unknown behaviours spread widely.
    pub const UNKNOWN: DelayWindow = DelayWindow {
        min_ms: 1_000,
        max_ms: 9_000,
    };
    /// LAN fetches on Windows-active sites (Fig 5b: max 5 s on W).
    pub const LAN_FAST: DelayWindow = DelayWindow {
        min_ms: 400,
        max_ms: 4_500,
    };
    /// LAN fetches on Linux/Mac-only sites (max 15–16 s).
    pub const LAN_SLOW: DelayWindow = DelayWindow {
        min_ms: 400,
        max_ms: 15_500,
    };
}

/// One behaviour to plant on one (to-be-chosen) domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantSpec {
    /// The behaviour.
    pub behavior: Behavior,
    /// The per-site OS pattern.
    pub os_set: OsSet,
    /// Site genre to assign.
    pub category: SiteCategory,
    /// Firing-delay window.
    pub delay: DelayWindow,
    /// Whether the 2021 crawl still observes this behaviour
    /// (drives the carried/stopped dynamics between snapshots).
    pub carried_to_2021: bool,
}

/// A placeholder vendor marker: the generator substitutes a concrete
/// ThreatMetrix-style vendor domain per customer site.
pub const VENDOR_PLACEHOLDER: &str = "vendor.invalid";

/// Sites that deploy ThreatMetrix **only on internal pages** (login,
/// checkout). The paper's landing-page crawl cannot see these — it
/// calls its counts a lower bound (§3.3) and cites a blog post that
/// found ThreatMetrix specifically on login pages. Deep-crawl mode
/// makes them observable.
pub const INTERNAL_TM_SITES_2020: usize = 18;

/// Plantings that live on internal pages only (all fraud detection).
pub fn top2020_internal_specs() -> Vec<PlantSpec> {
    (0..INTERNAL_TM_SITES_2020).map(|_| tm(false)).collect()
}

fn tm(carried: bool) -> PlantSpec {
    PlantSpec {
        behavior: Behavior::ThreatMetrix {
            vendor: kt_netbase::DomainName::parse(VENDOR_PLACEHOLDER).expect("placeholder"),
        },
        os_set: OsSet::WINDOWS_ONLY,
        category: SiteCategory::Ecommerce,
        delay: DelayWindow::ANTI_ABUSE,
        carried_to_2021: carried,
    }
}

fn bigip() -> PlantSpec {
    PlantSpec {
        behavior: Behavior::BigIpBotDefense,
        os_set: OsSet::WINDOWS_ONLY,
        category: SiteCategory::Government,
        delay: DelayWindow::ANTI_ABUSE,
        // §4.3.2: no bot-detection traffic observed in 2021.
        carried_to_2021: false,
    }
}

fn native(app: NativeApp, category: SiteCategory, carried: bool) -> PlantSpec {
    PlantSpec {
        behavior: Behavior::NativeApp(app),
        os_set: OsSet::ALL,
        category,
        delay: DelayWindow::NATIVE,
        carried_to_2021: carried,
    }
}

fn dev(err: DevError, os_set: OsSet, carried: bool) -> PlantSpec {
    PlantSpec {
        behavior: Behavior::DevError(err),
        os_set,
        category: SiteCategory::Generic,
        delay: DelayWindow::RESOURCE,
        carried_to_2021: carried,
    }
}

fn unknown(kind: UnknownKind, os_set: OsSet) -> PlantSpec {
    PlantSpec {
        behavior: Behavior::Unknown(kind),
        os_set,
        category: SiteCategory::Generic,
        delay: DelayWindow::UNKNOWN,
        carried_to_2021: false,
    }
}

/// A WordPress-flavoured dev-error path, varied by index.
fn wp_path(i: usize) -> String {
    const YEARS: [&str; 5] = ["2017", "2018", "2019", "2020", "2015"];
    const EXT: [&str; 4] = ["jpg", "png", "ico", "mp4"];
    format!(
        "/wp-content/uploads/{}/{:02}/asset{}.{}",
        YEARS[i % YEARS.len()],
        1 + (i % 12),
        i,
        EXT[i % EXT.len()]
    )
}

/// The 36 + 10 + 12 + 44 + 5 localhost plantings of the 2020 crawl
/// (Tables 5 and 11), in stable order.
pub fn top2020_localhost_specs() -> Vec<PlantSpec> {
    let mut specs = Vec::new();
    // --- Fraud detection: 36 ThreatMetrix customers. 26 carried into
    //     2021, 10 stopped (the starred domains of Table 5).
    for i in 0..36 {
        let mut s = tm(i < 26);
        if i == 35 {
            // One non-e-commerce customer (commoncause.org).
            s.category = SiteCategory::Generic;
        }
        specs.push(s);
    }
    // --- Bot detection: 10 government sites; all gone by 2021.
    for _ in 0..10 {
        specs.push(bigip());
    }
    // --- Native applications: 12 sites (Appendix A). All but
    //     GameHouse carried into 2021.
    let mut faceit = native(NativeApp::Faceit, SiteCategory::Gaming, true);
    faceit.os_set = OsSet::ALL;
    specs.push(faceit);
    specs.push(native(NativeApp::Discord, SiteCategory::Generic, true));
    specs.push(native(
        NativeApp::SamsungSecurity,
        SiteCategory::Ecommerce,
        true,
    ));
    specs.push(native(
        NativeApp::SamsungSecurity,
        SiteCategory::Ecommerce,
        true,
    ));
    specs.push(native(NativeApp::GameHouse, SiteCategory::Gaming, false));
    let mut games_lol = native(NativeApp::GamesLol, SiteCategory::Gaming, true);
    games_lol.os_set = OsSet::WINDOWS_LINUX;
    specs.push(games_lol);
    specs.push(native(NativeApp::Zylom, SiteCategory::Gaming, true));
    let mut iwin = native(NativeApp::Iwin, SiteCategory::Gaming, true);
    iwin.os_set = OsSet::WINDOWS_MAC;
    specs.push(iwin);
    specs.push(native(NativeApp::Screenleap, SiteCategory::Generic, true));
    specs.push(native(NativeApp::AceStream, SiteCategory::Media, true));
    specs.push(native(NativeApp::TrustDice, SiteCategory::Gaming, true));
    specs.push(native(NativeApp::Discord, SiteCategory::Gaming, true));
    // --- Developer errors: 44 sites. OS multiset (non-SockJS):
    //     28 all-OS, 1 W+L, 7 L+M, 3 L-only; plus 5 Mac-only SockJS.
    //     5 of the all-OS ones carry into 2021.
    let mut dev_os = Vec::new();
    dev_os.extend(std::iter::repeat_n(OsSet::ALL, 28));
    dev_os.push(OsSet::WINDOWS_LINUX);
    dev_os.extend(std::iter::repeat_n(OsSet::LINUX_MAC, 7));
    dev_os.extend(std::iter::repeat_n(OsSet::LINUX_ONLY, 3));
    debug_assert_eq!(dev_os.len(), 39);
    let mut dev_kinds: Vec<DevError> = Vec::new();
    // 24 local file servers on assorted ports.
    const FS_PORTS: [u16; 8] = [8888, 80, 1987, 8080, 9999, 49972, 9092, 8899];
    for i in 0..24 {
        dev_kinds.push(DevError::LocalFileServer {
            scheme: if i % 6 == 0 {
                Scheme::Https
            } else {
                Scheme::Http
            },
            port: FS_PORTS[i % FS_PORTS.len()],
            path: wp_path(i),
        });
    }
    // 1 pen-test remnant (xook.js).
    dev_kinds.push(DevError::PenTest);
    // 5 LiveReload fetches (one on the odd port 460).
    for i in 0..5 {
        dev_kinds.push(DevError::LiveReload {
            scheme: if i == 0 { Scheme::Http } else { Scheme::Https },
            port: if i == 0 { 460 } else { 35729 },
        });
    }
    // 2 redirects to http://127.0.0.1/.
    dev_kinds.push(DevError::RedirectToLoopback);
    dev_kinds.push(DevError::RedirectToLoopback);
    // 7 other local services (zakupki, gamezone, filemail, …).
    const SVC: [(u16, &str, Scheme); 7] = [
        (1931, "/record/state", Scheme::Https),
        (8000, "/setuid", Scheme::Http),
        (56666, "/", Scheme::Http),
        (9080, "/avisos-portal", Scheme::Http),
        (28337, "/getCertificados", Scheme::Http),
        (8000, "/graphql", Scheme::Http),
        (8000, "/app/getLicenseKey", Scheme::Https),
    ];
    for (port, path, scheme) in SVC {
        dev_kinds.push(DevError::LocalService {
            scheme,
            port,
            path: path.to_string(),
        });
    }
    debug_assert_eq!(dev_kinds.len(), 39);
    for (i, (kind, os)) in dev_kinds.into_iter().zip(dev_os).enumerate() {
        // The first 5 all-OS dev errors persist into the 2021 crawl.
        specs.push(dev(kind, os, i < 5));
    }
    // 5 Mac-only SockJS-node fetches.
    for _ in 0..5 {
        specs.push(dev(
            DevError::SockJsNode {
                scheme: Scheme::Https,
            },
            OsSet::MAC_ONLY,
            false,
        ));
    }
    // --- Unknown: hola-style ×2, wide sweep, ws pair ×2.
    specs.push(unknown(UnknownKind::HolaJson, OsSet::ALL));
    specs.push(unknown(UnknownKind::WidePortSweep, OsSet::ALL));
    specs.push(unknown(UnknownKind::HolaJson, OsSet::ALL));
    specs.push(unknown(UnknownKind::WsPair, OsSet::WINDOWS_ONLY));
    specs.push(unknown(UnknownKind::WsPair, OsSet::WINDOWS_ONLY));
    specs
}

/// The 9 LAN plantings of the 2020 crawl (Table 6): 6 developer
/// errors and 3 censorship-iframe cases.
pub fn top2020_lan_specs() -> Vec<PlantSpec> {
    let lan = |ip: [u8; 4], scheme: Scheme, port: u16, path: &str, os: OsSet, carried: bool| {
        let mut s = dev(
            DevError::LanResource {
                ip: Ipv4Addr::new(ip[0], ip[1], ip[2], ip[3]),
                scheme,
                port,
                path: path.to_string(),
            },
            os,
            carried,
        );
        s.delay = if os.contains(kt_netbase::Os::Windows) {
            DelayWindow::LAN_FAST
        } else {
            DelayWindow::LAN_SLOW
        };
        s
    };
    let censor = |os: OsSet| {
        let mut s = unknown(UnknownKind::CensorshipIframe, os);
        s.delay = if os.contains(kt_netbase::Os::Windows) {
            DelayWindow::LAN_FAST
        } else {
            DelayWindow::LAN_SLOW
        };
        s
    };
    vec![
        lan(
            [10, 193, 31, 212],
            Scheme::Http,
            80,
            "/system/files/2020-06/banner.png",
            OsSet::ALL,
            false,
        ),
        lan(
            [10, 0, 0, 200],
            Scheme::Http,
            80,
            "/wordpress/wp-content/uploads/2020/04/intro.mp4",
            OsSet::ALL,
            false,
        ),
        // unib.ac.id — the one LAN site observed in both crawls.
        lan(
            [192, 168, 64, 160],
            Scheme::Http,
            80,
            "/wp-content/uploads/2019/10/photo.jpg",
            OsSet::ALL,
            true,
        ),
        lan(
            [10, 156, 2, 50],
            Scheme::Https,
            443,
            "/favicon.ico",
            OsSet::MAC_ONLY,
            false,
        ),
        lan(
            [10, 0, 20, 16],
            Scheme::Http,
            80,
            "/wp-content/uploads/2018/11/team.jpg",
            OsSet::LINUX_ONLY,
            false,
        ),
        lan(
            [192, 168, 0, 208],
            Scheme::Https,
            443,
            "/wp_011_test_demos/wp-content/uploads/2017/05/hero.jpg",
            OsSet::MAC_ONLY,
            false,
        ),
        censor(OsSet::WINDOWS_ONLY),
        censor(OsSet::WINDOWS_ONLY),
        censor(OsSet::ALL),
    ]
}

/// The 40 *new* localhost plantings first observed in the 2021 crawl
/// (Table 7): 6 fraud-detection, 14 native-app, 20 developer-error.
pub fn top2021_new_localhost_specs() -> Vec<PlantSpec> {
    let mut specs = Vec::new();
    for _ in 0..6 {
        specs.push(tm(true));
    }
    // 14 new native-app sites (the iQiyi family, e-signature services,
    // Thunder embedders, gnway, a socket.io client).
    for _ in 0..6 {
        specs.push(native(NativeApp::Iqiyi, SiteCategory::Media, true));
    }
    specs.push(native(
        NativeApp::SoliqCrypto,
        SiteCategory::Government,
        true,
    ));
    specs.push(native(
        NativeApp::SoliqCrypto,
        SiteCategory::Government,
        true,
    ));
    for _ in 0..3 {
        specs.push(native(NativeApp::Thunder, SiteCategory::Media, true));
    }
    specs.push(native(
        NativeApp::McgeeSocketIo,
        SiteCategory::Ecommerce,
        true,
    ));
    specs.push(native(NativeApp::Iqiyi, SiteCategory::Media, true));
    let mut gnway = native(NativeApp::Gnway, SiteCategory::Generic, true);
    gnway.os_set = OsSet::WINDOWS_ONLY;
    specs.push(gnway);
    // 20 new dev-error sites, all active on both crawled OSes.
    const PORTS_2021: [u16; 10] = [1500, 5555, 80, 443, 4502, 9988, 11066, 6081, 8080, 8888];
    for i in 0..20 {
        let kind = match i % 5 {
            0 => DevError::LocalFileServer {
                scheme: Scheme::Http,
                port: PORTS_2021[i % PORTS_2021.len()],
                path: wp_path(100 + i),
            },
            1 => DevError::LocalService {
                scheme: Scheme::Http,
                port: 1500,
                path: "/floor-domains".to_string(),
            },
            2 => DevError::NonExistentImage {
                scheme: Scheme::Http,
                port: 80,
                number: 48762 + i as u32,
            },
            3 => DevError::LiveReload {
                scheme: Scheme::Https,
                port: 35729,
            },
            _ => DevError::LocalFileServer {
                scheme: Scheme::Https,
                port: 443,
                path: wp_path(200 + i),
            },
        };
        specs.push(dev(kind, OsSet::WINDOWS_LINUX, true));
    }
    specs
}

/// The 7 *new* LAN plantings of the 2021 crawl (Table 10): 5 on both
/// OSes, 2 Linux-only. (The 8th site, unib.ac.id, carries from 2020.)
pub fn top2021_new_lan_specs() -> Vec<PlantSpec> {
    let lan = |ip: [u8; 4], scheme: Scheme, port: u16, path: &str, os: OsSet| {
        let mut s = dev(
            DevError::LanResource {
                ip: Ipv4Addr::new(ip[0], ip[1], ip[2], ip[3]),
                scheme,
                port,
                path: path.to_string(),
            },
            os,
            true,
        );
        s.delay = if os.contains(kt_netbase::Os::Windows) {
            DelayWindow::LAN_FAST
        } else {
            DelayWindow::LAN_SLOW
        };
        s
    };
    vec![
        lan(
            [10, 10, 34, 34],
            Scheme::Http,
            80,
            "/",
            OsSet::WINDOWS_LINUX,
        ),
        lan(
            [192, 168, 8, 241],
            Scheme::Http,
            5000,
            "/MyPhone/c2cinfo",
            OsSet::WINDOWS_LINUX,
        ),
        lan(
            [192, 168, 110, 72],
            Scheme::Https,
            443,
            "/matomo/matomo.js",
            OsSet::WINDOWS_LINUX,
        ),
        lan(
            [10, 50, 1, 242],
            Scheme::Https,
            8450,
            "/libraries/slick/slick/ajax-loader.gif",
            OsSet::WINDOWS_LINUX,
        ),
        lan(
            [172, 16, 0, 4],
            Scheme::Http,
            1117,
            "/UpLoadFile/20160801/cover.jpg",
            OsSet::WINDOWS_LINUX,
        ),
        lan(
            [192, 168, 33, 187],
            Scheme::Https,
            443,
            "/modules/mod_acontece/assets/logo.png",
            OsSet::LINUX_ONLY,
        ),
        lan(
            [192, 168, 0, 120],
            Scheme::Https,
            443,
            "/wp_011_gadgets/wp-content/uploads/shot.png",
            OsSet::LINUX_ONLY,
        ),
    ]
}

/// Malicious-population plantings, per blocklist category.
pub mod malicious {
    use super::*;
    use kt_weblists::MaliciousCategory;

    /// One malicious planting plus the category it belongs to.
    #[derive(Debug, Clone, PartialEq)]
    pub struct MaliciousPlant {
        /// Blocklist category to draw the host site from.
        pub category: MaliciousCategory,
        /// The behaviour spec.
        pub spec: PlantSpec,
    }

    fn plant(category: MaliciousCategory, spec: PlantSpec) -> MaliciousPlant {
        MaliciousPlant { category, spec }
    }

    /// All malicious localhost plantings: 96 malware + 13 phishing
    /// ThreatMetrix clones + 42 phishing developer errors = 151 sites,
    /// arranged to reproduce Table 2's per-OS detection counts
    /// (malware 72/83/75, phishing 25/41/9 on W/L/M).
    pub fn localhost_specs() -> Vec<MaliciousPlant> {
        let mut specs = Vec::new();
        // -- Malware: OS multiset 67 all, 5 W, 16 L, 8 M.
        let mut malware_os = Vec::new();
        malware_os.extend(std::iter::repeat_n(OsSet::ALL, 67));
        malware_os.extend(std::iter::repeat_n(OsSet::WINDOWS_ONLY, 5));
        malware_os.extend(std::iter::repeat_n(OsSet::LINUX_ONLY, 16));
        malware_os.extend(std::iter::repeat_n(OsSet::MAC_ONLY, 8));
        for (i, os) in malware_os.into_iter().enumerate() {
            let mut s = match i {
                // One compromised site embeds the Thunder JS library
                // (elilaifs.cn — the single malicious native-app case).
                0 => native(NativeApp::Thunder, SiteCategory::Malicious, false),
                // One livereload remnant, one socket.io dev server.
                1 => dev(
                    DevError::LiveReload {
                        scheme: Scheme::Https,
                        port: 35729,
                    },
                    os,
                    false,
                ),
                2 => dev(
                    DevError::LocalService {
                        scheme: Scheme::Http,
                        port: 8080,
                        path: "/socket.io/socket.io.js".to_string(),
                    },
                    os,
                    false,
                ),
                // The bulk: wp-content fetches from compromised sites.
                _ => dev(
                    DevError::LocalFileServer {
                        scheme: if i % 9 == 0 {
                            Scheme::Https
                        } else {
                            Scheme::Http
                        },
                        port: if i % 9 == 0 { 443 } else { 80 },
                        path: super::wp_path(300 + i),
                    },
                    os,
                    false,
                ),
            };
            s.os_set = os;
            s.category = SiteCategory::Malicious;
            specs.push(plant(MaliciousCategory::Malware, s));
        }
        // -- Phishing ThreatMetrix clones: 13, Windows-only (inherited
        //    from the legitimate sites they impersonate).
        for _ in 0..13 {
            let mut s = tm(false);
            s.category = SiteCategory::Malicious;
            specs.push(plant(MaliciousCategory::Phishing, s));
        }
        // -- Phishing dev errors: OS multiset 6 all, 6 W+L, 2 L+M,
        //    27 L, 1 M.
        let mut phish_os = Vec::new();
        phish_os.extend(std::iter::repeat_n(OsSet::ALL, 6));
        phish_os.extend(std::iter::repeat_n(OsSet::WINDOWS_LINUX, 6));
        phish_os.extend(std::iter::repeat_n(OsSet::LINUX_MAC, 2));
        phish_os.extend(std::iter::repeat_n(OsSet::LINUX_ONLY, 27));
        phish_os.extend(std::iter::repeat_n(OsSet::MAC_ONLY, 1));
        for (i, os) in phish_os.into_iter().enumerate() {
            let kind = match i % 4 {
                0 => DevError::NonExistentImage {
                    scheme: if i % 2 == 0 {
                        Scheme::Https
                    } else {
                        Scheme::Http
                    },
                    port: [44056u16, 5140, 62389, 44938, 49622][i % 5],
                    number: 19258 + i as u32,
                },
                1 => DevError::LocalFileServer {
                    scheme: Scheme::Http,
                    port: 80,
                    path: "/robots.txt".to_string(),
                },
                2 => DevError::LocalFileServer {
                    scheme: Scheme::Http,
                    port: 80,
                    path: "/".to_string(),
                },
                _ => DevError::LocalFileServer {
                    scheme: Scheme::Https,
                    port: 8443,
                    path: format!("/images/brand{i}.png"),
                },
            };
            let mut s = dev(kind, os, false);
            s.category = SiteCategory::Malicious;
            specs.push(plant(MaliciousCategory::Phishing, s));
        }
        specs
    }

    /// All malicious LAN plantings: 8 malware (6 all-OS… arranged to
    /// give Table 2's 8/7/7) + 1 abuse (all OS).
    pub fn lan_specs() -> Vec<MaliciousPlant> {
        let lan = |ip: [u8; 4], scheme: Scheme, port: u16, path: &str, os: OsSet| {
            let mut s = dev(
                DevError::LanResource {
                    ip: Ipv4Addr::new(ip[0], ip[1], ip[2], ip[3]),
                    scheme,
                    port,
                    path: path.to_string(),
                },
                os,
                false,
            );
            s.category = SiteCategory::Malicious;
            s.delay = if os.contains(kt_netbase::Os::Windows) {
                DelayWindow::LAN_FAST
            } else {
                DelayWindow::LAN_SLOW
            };
            s
        };
        let mut specs = vec![
            // Malware: 6 all-OS, 1 W+L, 1 W+M → W=8, L=7, M=7.
            plant(
                MaliciousCategory::Malware,
                lan([10, 2, 70, 15], Scheme::Http, 80, "/theme.css", OsSet::ALL),
            ),
            plant(
                MaliciousCategory::Malware,
                lan(
                    [192, 168, 1, 8],
                    Scheme::Http,
                    80,
                    "/crasar/wp-content/themes/header.png",
                    OsSet::ALL,
                ),
            ),
            plant(
                MaliciousCategory::Malware,
                lan(
                    [172, 26, 6, 230],
                    Scheme::Https,
                    443,
                    "/wp-content/uploads/2020/02/logo.png",
                    OsSet::ALL,
                ),
            ),
            plant(
                MaliciousCategory::Malware,
                lan(
                    [192, 168, 0, 208],
                    Scheme::Http,
                    80,
                    "/wp_011_test_demos/wp-content/uploads/2017/05/hero.jpg",
                    OsSet::ALL,
                ),
            ),
            plant(
                MaliciousCategory::Malware,
                lan([10, 10, 34, 35], Scheme::Http, 80, "/", OsSet::ALL),
            ),
            plant(
                MaliciousCategory::Malware,
                lan(
                    [192, 168, 33, 10],
                    Scheme::Https,
                    443,
                    "/wp-content/uploads/2019/12/icon.png",
                    OsSet::ALL,
                ),
            ),
            plant(
                MaliciousCategory::Malware,
                lan(
                    [192, 168, 0, 226],
                    Scheme::Http,
                    1080,
                    "/wp-content/themes/shop/style.css",
                    OsSet::WINDOWS_LINUX,
                ),
            ),
            plant(
                MaliciousCategory::Malware,
                lan(
                    [10, 99, 0, 7],
                    Scheme::Http,
                    80,
                    "/assets/app.js",
                    OsSet::WINDOWS_MAC,
                ),
            ),
        ];
        // Abuse: the single LAN case (001tel.com).
        specs.push(plant(
            MaliciousCategory::Abuse,
            lan(
                [172, 16, 205, 110],
                Scheme::Https,
                443,
                "/usershare/main.js",
                OsSet::ALL,
            ),
        ));
        specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_netbase::Os;
    use kt_weblists::MaliciousCategory;

    /// Count sites active on an OS given (spec OS set ∩ intrinsic).
    fn active_on(specs: &[PlantSpec], os: Os) -> usize {
        specs
            .iter()
            .filter(|s| s.os_set.intersect(s.behavior.default_os_set()).contains(os))
            .count()
    }

    #[test]
    fn top2020_localhost_class_sizes_match_paper() {
        let specs = top2020_localhost_specs();
        assert_eq!(specs.len(), 107, "107 localhost sites (§4.1)");
        let count = |label: &str| {
            specs
                .iter()
                .filter(|s| s.behavior.reason_label() == label)
                .count()
        };
        assert_eq!(count("Fraud Detection"), 36);
        assert_eq!(count("Bot Detection"), 10);
        assert_eq!(count("Native Application"), 12);
        assert_eq!(count("Developer Error"), 44);
        assert_eq!(count("Unknown"), 5);
    }

    #[test]
    fn top2020_per_os_totals_match_figure2a() {
        let specs = top2020_localhost_specs();
        assert_eq!(active_on(&specs, Os::Windows), 92, "Windows total");
        assert_eq!(active_on(&specs, Os::MacOs), 54, "Mac total");
        // One-site deviation from the paper's 54 (documented above).
        assert_eq!(active_on(&specs, Os::Linux), 53, "Linux total");
        // All-three overlap.
        let all3 = specs
            .iter()
            .filter(|s| {
                let eff = s.os_set.intersect(s.behavior.default_os_set());
                eff == kt_netbase::OsSet::ALL
            })
            .count();
        assert_eq!(all3, 41, "center of the Venn diagram");
        // Windows-only region: 48.
        let w_only = specs
            .iter()
            .filter(|s| {
                s.os_set.intersect(s.behavior.default_os_set()) == kt_netbase::OsSet::WINDOWS_ONLY
            })
            .count();
        assert_eq!(w_only, 48);
    }

    #[test]
    fn top2020_lan_has_nine_sites() {
        let specs = top2020_lan_specs();
        assert_eq!(specs.len(), 9);
        let dev_errors = specs
            .iter()
            .filter(|s| s.behavior.reason_label() == "Developer Error")
            .count();
        assert_eq!(dev_errors, 6);
        let unknown = specs
            .iter()
            .filter(|s| s.behavior.reason_label() == "Unknown")
            .count();
        assert_eq!(unknown, 3);
        // Exactly one LAN planting carries to 2021 (unib.ac.id).
        assert_eq!(specs.iter().filter(|s| s.carried_to_2021).count(), 1);
    }

    #[test]
    fn top2020_carried_counts() {
        let specs = top2020_localhost_specs();
        let carried = specs.iter().filter(|s| s.carried_to_2021).count();
        // 26 TM + 11 native + 5 dev = 42 sites behave the same in 2021.
        assert_eq!(carried, 42);
    }

    #[test]
    fn top2021_new_specs_counts() {
        let specs = top2021_new_localhost_specs();
        assert_eq!(specs.len(), 40, "19 newly-behaving + 21 newly-listed");
        let count = |label: &str| {
            specs
                .iter()
                .filter(|s| s.behavior.reason_label() == label)
                .count()
        };
        assert_eq!(count("Fraud Detection"), 6);
        assert_eq!(count("Native Application"), 14);
        assert_eq!(count("Developer Error"), 20);
        assert_eq!(count("Bot Detection"), 0, "BIG-IP gone by 2021 (§4.3.2)");
        assert_eq!(top2021_new_lan_specs().len(), 7);
    }

    #[test]
    fn projected_2021_totals_match_figure9() {
        // Carried 2020 specs + new 2021 specs, measured on W and L.
        let carried: Vec<PlantSpec> = top2020_localhost_specs()
            .into_iter()
            .filter(|s| s.carried_to_2021)
            .collect();
        let new = top2021_new_localhost_specs();
        let all: Vec<PlantSpec> = carried.into_iter().chain(new).collect();
        assert_eq!(all.len(), 82, "82 localhost sites in 2021 (§4.1)");
        assert_eq!(active_on(&all, Os::Windows), 82);
        assert_eq!(active_on(&all, Os::Linux), 48);
    }

    #[test]
    fn malicious_localhost_matches_table2() {
        let specs = malicious::localhost_specs();
        assert_eq!(specs.len(), 151, "151 malicious localhost sites (§4.1)");
        let by = |cat: MaliciousCategory, os: Os| {
            specs
                .iter()
                .filter(|p| p.category == cat)
                .filter(|p| {
                    p.spec
                        .os_set
                        .intersect(p.spec.behavior.default_os_set())
                        .contains(os)
                })
                .count()
        };
        assert_eq!(by(MaliciousCategory::Malware, Os::Windows), 72);
        assert_eq!(by(MaliciousCategory::Malware, Os::Linux), 83);
        assert_eq!(by(MaliciousCategory::Malware, Os::MacOs), 75);
        assert_eq!(by(MaliciousCategory::Phishing, Os::Windows), 25);
        assert_eq!(by(MaliciousCategory::Phishing, Os::Linux), 41);
        assert_eq!(by(MaliciousCategory::Phishing, Os::MacOs), 9);
        assert_eq!(by(MaliciousCategory::Abuse, Os::Windows), 0);
    }

    #[test]
    fn malicious_lan_matches_table2() {
        let specs = malicious::lan_specs();
        assert_eq!(specs.len(), 9, "9 malicious LAN sites");
        let by = |cat: MaliciousCategory, os: Os| {
            specs
                .iter()
                .filter(|p| p.category == cat)
                .filter(|p| p.spec.os_set.contains(os))
                .count()
        };
        assert_eq!(by(MaliciousCategory::Malware, Os::Windows), 8);
        assert_eq!(by(MaliciousCategory::Malware, Os::Linux), 7);
        assert_eq!(by(MaliciousCategory::Malware, Os::MacOs), 7);
        assert_eq!(by(MaliciousCategory::Abuse, Os::Windows), 1);
        assert_eq!(by(MaliciousCategory::Abuse, Os::Linux), 1);
        assert_eq!(by(MaliciousCategory::Abuse, Os::MacOs), 1);
    }

    #[test]
    fn lan_windows_sites_fire_fast() {
        for s in top2020_lan_specs().iter().chain(&top2021_new_lan_specs()) {
            if s.os_set.contains(Os::Windows) {
                assert!(
                    s.delay.max_ms <= 5_000,
                    "Fig 5b: LAN max 5 s on Windows, got {:?}",
                    s.delay
                );
            }
        }
    }
}
