//! The website content model.
//!
//! A [`WebSite`] is everything the crawler can observe about one
//! domain's landing page: whether it loads (and if not, which of
//! Table 1's error classes it fails with), which ordinary public
//! resources it embeds (the noise detection must filter), and which
//! local-traffic [`Behavior`]s it exhibits on which OSes.

use kt_netbase::{DomainName, Os, OsSet};
use serde::{Deserialize, Serialize};

use crate::behavior::{Behavior, PlannedRequest};
use crate::sensor::BotSensor;

/// Rough site genre — drives which behaviours are plausible (the paper
/// found ThreatMetrix on e-commerce, BIG-IP on government sites, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteCategory {
    /// Online shops, payment, banking.
    Ecommerce,
    /// Government portals, central banks, open-data sites.
    Government,
    /// Gaming portals and launchers.
    Gaming,
    /// Streaming/media.
    Media,
    /// News and blogs.
    News,
    /// Everything else.
    Generic,
    /// A known-malicious page (malware/abuse/phishing populations).
    Malicious,
}

/// How the landing page answers the crawler — the Table 1 taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Availability {
    /// Loads successfully.
    Up,
    /// DNS name does not resolve (`NAME_NOT_RESOLVED`).
    NxDomain,
    /// TCP connection refused (`CONN_REFUSED`).
    Refused,
    /// Connection reset mid-handshake (`CONN_RESET`).
    Reset,
    /// HTTPS certificate name mismatch (`CERT_CN_INVALID`).
    CertInvalid,
    /// The long tail (timeouts, empty responses, …).
    OtherError,
}

impl Availability {
    /// True if the page can be crawled.
    pub fn is_up(self) -> bool {
        self == Availability::Up
    }
}

/// A behaviour as planted on a specific site: the behaviour itself,
/// the OS pattern for *this* site, and the firing delay that anchors
/// the Figure 5–7 timing distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantedBehavior {
    /// The behaviour.
    pub behavior: Behavior,
    /// OSes on which this site runs the behaviour (intersected with
    /// the behaviour's intrinsic OS set at expansion time).
    pub os_set: OsSet,
    /// Base delay after page load, in ms.
    pub base_delay_ms: u64,
}

impl PlantedBehavior {
    /// The effective OS set: per-site pattern ∩ intrinsic pattern.
    pub fn effective_os_set(&self) -> OsSet {
        self.os_set.intersect(self.behavior.default_os_set())
    }

    /// The requests this planting issues on `os`.
    pub fn planned_requests(&self, site: &DomainName, os: Os) -> Vec<PlannedRequest> {
        if !self.os_set.contains(os) {
            return Vec::new();
        }
        self.behavior.planned_requests(site, os, self.base_delay_ms)
    }
}

/// One website in the synthetic population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebSite {
    /// The site's registrable domain.
    pub domain: DomainName,
    /// Tranco rank, for top-list sites.
    pub rank: Option<u32>,
    /// Genre.
    pub category: SiteCategory,
    /// Whether/how the landing page loads, possibly OS-varying (sites
    /// flap between the three OS crawls, which run at different times).
    pub availability: [(Os, Availability); 3],
    /// Whether the landing page is served over HTTPS.
    pub https: bool,
    /// Number of ordinary public third-party resources the page loads
    /// (CDNs, analytics, images) — noise the detector must ignore.
    pub public_resources: u8,
    /// Local-traffic behaviours on the landing page.
    pub behaviors: Vec<PlantedBehavior>,
    /// Local-traffic behaviours that only run on *internal* pages
    /// (login, checkout, …). The paper crawled landing pages only and
    /// calls its counts "a lower bound" (§3.3); a blog post it cites
    /// found ThreatMetrix specifically on login pages. Deep-crawl mode
    /// (`BrowserConfig::crawl_internal`) executes these too.
    pub internal_behaviors: Vec<PlantedBehavior>,
    /// Anti-bot sensor, if this site deploys one: its verdict on the
    /// visiting crawler profile gates whether the behaviours above run
    /// unmodified, suppressed, delayed, or swapped (the measurement-
    /// bias model; only planted when `PopulationConfig::sensors`).
    pub sensor: Option<BotSensor>,
}

impl WebSite {
    /// A plain, healthy site with no local behaviour.
    pub fn plain(domain: DomainName, rank: Option<u32>, public_resources: u8) -> WebSite {
        WebSite {
            domain,
            rank,
            category: SiteCategory::Generic,
            availability: [
                (Os::Windows, Availability::Up),
                (Os::Linux, Availability::Up),
                (Os::MacOs, Availability::Up),
            ],
            https: true,
            public_resources,
            behaviors: Vec::new(),
            internal_behaviors: Vec::new(),
            sensor: None,
        }
    }

    /// Availability on one OS.
    pub fn availability_on(&self, os: Os) -> Availability {
        self.availability
            .iter()
            .find(|(o, _)| *o == os)
            .map(|(_, a)| *a)
            .expect("all three OSes present")
    }

    /// Set availability on one OS.
    pub fn set_availability(&mut self, os: Os, availability: Availability) {
        for slot in &mut self.availability {
            if slot.0 == os {
                slot.1 = availability;
            }
        }
    }

    /// Set availability on every OS.
    pub fn set_availability_all(&mut self, availability: Availability) {
        for os in Os::ALL {
            self.set_availability(os, availability);
        }
    }

    /// All requests the page will issue on `os` — the behaviours'
    /// plans. (Ordinary public resources are synthesised separately by
    /// the browser, which knows the page's origin.)
    pub fn planned_requests(&self, os: Os) -> Vec<PlannedRequest> {
        let mut plan: Vec<PlannedRequest> = self
            .behaviors
            .iter()
            .flat_map(|b| b.planned_requests(&self.domain, os))
            .collect();
        plan.sort_by_key(|r| r.delay_ms);
        plan
    }

    /// Requests issued by the site's *internal* pages on `os` (only
    /// observable in deep-crawl mode).
    pub fn planned_internal_requests(&self, os: Os) -> Vec<PlannedRequest> {
        let mut plan: Vec<PlannedRequest> = self
            .internal_behaviors
            .iter()
            .flat_map(|b| b.planned_requests(&self.domain, os))
            .collect();
        plan.sort_by_key(|r| r.delay_ms);
        plan
    }

    /// True if this site issues any locally-destined request on `os`.
    pub fn is_locally_active_on(&self, os: Os) -> bool {
        self.planned_requests(os).iter().any(|r| r.url.is_local())
    }

    /// The union of OSes on which this site is locally active.
    pub fn local_os_set(&self) -> OsSet {
        OsSet::from_fn(|os| self.is_locally_active_on(os))
    }

    /// Planted ground truth for the bias experiment: the site emits
    /// *some* local-discovery signal for a perfectly-evasive visitor —
    /// either planted request behaviours or a WebRTC probe sensor
    /// (which surfaces local ICE candidates instead of requests).
    pub fn has_local_ground_truth(&self) -> bool {
        !self.behaviors.is_empty()
            || matches!(
                self.sensor,
                Some(BotSensor {
                    archetype: crate::sensor::SensorArchetype::WebRtcProbe,
                })
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{DevError, NativeApp};
    use kt_netbase::Scheme;

    fn domain(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn plain_site_has_no_local_activity() {
        let site = WebSite::plain(domain("quiet.example"), Some(500), 12);
        for os in Os::ALL {
            assert!(!site.is_locally_active_on(os));
            assert!(site.availability_on(os).is_up());
        }
        assert_eq!(site.local_os_set(), OsSet::NONE);
    }

    #[test]
    fn per_site_os_set_intersects_intrinsic() {
        // Discord runs on every OS intrinsically, but this site only
        // embeds the probe on Windows+Linux.
        let mut site = WebSite::plain(domain("invite.example"), Some(100), 4);
        site.behaviors.push(PlantedBehavior {
            behavior: Behavior::NativeApp(NativeApp::Discord),
            os_set: OsSet::WINDOWS_LINUX,
            base_delay_ms: 2_000,
        });
        assert!(site.is_locally_active_on(Os::Windows));
        assert!(site.is_locally_active_on(Os::Linux));
        assert!(!site.is_locally_active_on(Os::MacOs));
        assert_eq!(site.local_os_set(), OsSet::WINDOWS_LINUX);
    }

    #[test]
    fn intrinsic_windows_only_wins_over_site_all() {
        let mut site = WebSite::plain(domain("shop.example"), Some(104), 20);
        site.behaviors.push(PlantedBehavior {
            behavior: Behavior::ThreatMetrix {
                vendor: domain("shop-metrics.example"),
            },
            os_set: OsSet::ALL,
            base_delay_ms: 10_000,
        });
        assert_eq!(site.local_os_set(), OsSet::WINDOWS_ONLY);
        assert_eq!(site.behaviors[0].effective_os_set(), OsSet::WINDOWS_ONLY);
    }

    #[test]
    fn planned_requests_are_sorted_by_delay() {
        let mut site = WebSite::plain(domain("multi.example"), None, 3);
        site.behaviors.push(PlantedBehavior {
            behavior: Behavior::DevError(DevError::LiveReload {
                scheme: Scheme::Https,
                port: 35729,
            }),
            os_set: OsSet::ALL,
            base_delay_ms: 5_000,
        });
        site.behaviors.push(PlantedBehavior {
            behavior: Behavior::NativeApp(NativeApp::Faceit),
            os_set: OsSet::ALL,
            base_delay_ms: 1_000,
        });
        let plan = site.planned_requests(Os::Linux);
        assert_eq!(plan.len(), 2);
        assert!(plan[0].delay_ms <= plan[1].delay_ms);
        assert_eq!(plan[0].url.port(), 28337);
    }

    #[test]
    fn availability_flapping_across_oses() {
        let mut site = WebSite::plain(domain("flaky.example"), Some(9_000), 2);
        site.set_availability(Os::MacOs, Availability::NxDomain);
        assert!(site.availability_on(Os::Windows).is_up());
        assert!(!site.availability_on(Os::MacOs).is_up());
        site.set_availability_all(Availability::Reset);
        for os in Os::ALL {
            assert_eq!(site.availability_on(os), Availability::Reset);
        }
    }
}
