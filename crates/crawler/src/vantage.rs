//! Crawl vantage points (Figure 1 of the paper).

use kt_netbase::Os;
use serde::{Deserialize, Serialize};

/// The network a crawl runs from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkVantage {
    /// Georgia Tech's academic ISP (the Windows and Linux VMs).
    AcademicIsp,
    /// Comcast residential (the MacBook Air).
    ResidentialIsp,
}

impl NetworkVantage {
    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            NetworkVantage::AcademicIsp => "Georgia Tech (academic ISP)",
            NetworkVantage::ResidentialIsp => "Comcast (residential ISP)",
        }
    }
}

/// One (OS, network) crawl configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CrawlVantage {
    /// The crawling OS.
    pub os: Os,
    /// The network it crawls from.
    pub network: NetworkVantage,
}

impl CrawlVantage {
    /// The paper's vantage for a given OS: Windows and Linux crawled
    /// from Georgia Tech VMs, Mac from a residential Comcast line
    /// (Mac OS X licensing requires Apple hardware — §3.1, fn. 2).
    pub fn paper(os: Os) -> CrawlVantage {
        CrawlVantage {
            os,
            network: match os {
                Os::Windows | Os::Linux => NetworkVantage::AcademicIsp,
                Os::MacOs => NetworkVantage::ResidentialIsp,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_vantages() {
        assert_eq!(
            CrawlVantage::paper(Os::Windows).network,
            NetworkVantage::AcademicIsp
        );
        assert_eq!(
            CrawlVantage::paper(Os::Linux).network,
            NetworkVantage::AcademicIsp
        );
        assert_eq!(
            CrawlVantage::paper(Os::MacOs).network,
            NetworkVantage::ResidentialIsp
        );
        assert!(NetworkVantage::ResidentialIsp.name().contains("Comcast"));
    }
}
