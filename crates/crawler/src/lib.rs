//! # kt-crawler
//!
//! Crawl orchestration, mirroring §3.1's measurement procedure:
//!
//! * a [`vantage::CrawlVantage`] describes one (OS, network) crawl
//!   configuration — Windows/Linux VMs at Georgia Tech, a MacBook on
//!   residential Comcast;
//! * [`crawl::run_crawl`] drives a worker pool (scoped threads over a
//!   shared work-stealing [`queue::JobTicket`]) over a site
//!   population: connectivity pre-check (ping 8.8.8.8), visit, parse,
//!   store;
//! * [`queue`] holds the lock-free scheduling primitives (the job
//!   ticket and the recrawl injector);
//! * [`stats::CrawlStats`] accumulates the Table 1 numbers: successful
//!   and failed loads with the error-type breakdown.

#![warn(missing_docs)]

pub mod crawl;
pub mod incremental;
pub mod observe;
pub mod queue;
pub mod resume;
pub mod stats;
pub mod vantage;

pub use crawl::{
    run_crawl, run_crawl_chunked, run_crawl_journaled, run_crawl_observed, run_crawl_resumed,
    run_crawl_resumed_observed, run_pool_job, run_recrawl_job, simulated_makespan, CrawlConfig,
    CrawlJob, PoolJobEnd, VISIT_WALL_MS,
};
pub use incremental::IncrementalPlan;
pub use observe::{campaign_labels, set_stats_gauges, stats_sink, stats_sink_delta};
pub use resume::{split_campaigns, CampaignReplay, ResumePlan};
pub use stats::CrawlStats;
pub use vantage::{CrawlVantage, NetworkVantage};
