//! Lock-free scheduling primitives for the crawl pool.
//!
//! The crawl used to partition jobs statically into per-worker chunks,
//! which let one retry-heavy chunk gate the whole campaign tail: a
//! worker whose chunk was dense in faulty sites kept visiting long
//! after the other workers went idle. Both primitives here exist to
//! kill that chokepoint without adding any lock to the hot path:
//!
//! * [`JobTicket`] — a shared atomic cursor over the job slice.
//!   Workers claim the next unclaimed index with one `fetch_add`; a
//!   worker stuck in retries simply claims fewer jobs while its peers
//!   drain the rest. Every index is handed out exactly once.
//! * [`PendingInjector`] — a fixed-capacity, lock-free collector for
//!   job indices whose transient failures exhausted their in-place
//!   retries. Workers push concurrently during the crawl; the
//!   supervisor drains it once after join for the (deterministic,
//!   sorted) end-of-campaign recrawl pass.
//!
//! Neither primitive affects results: visit outcomes are keyed by site
//! identity and attempt number, never by which worker ran the visit,
//! so any claim interleaving produces bit-identical telemetry.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A shared work-stealing ticket over `0..len`: each call to
/// [`JobTicket::claim`] returns a distinct index until the range is
/// exhausted.
#[derive(Debug)]
pub struct JobTicket {
    next: AtomicUsize,
    len: usize,
}

impl JobTicket {
    /// A ticket over `0..len`.
    pub fn new(len: usize) -> JobTicket {
        JobTicket {
            next: AtomicUsize::new(0),
            len,
        }
    }

    /// Claim the next unclaimed job index, or `None` when the queue is
    /// drained. Relaxed ordering suffices: the index itself is the
    /// only payload, and the job slice is immutably shared.
    pub fn claim(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.len).then_some(i)
    }
}

/// A fixed-capacity, lock-free multi-producer collector of job
/// indices. Capacity is the job count — each job is parked at most
/// once — so a push is one `fetch_add` to reserve a slot plus one
/// store, and can never fail.
#[derive(Debug)]
pub struct PendingInjector {
    slots: Box<[AtomicUsize]>,
    len: AtomicUsize,
}

impl PendingInjector {
    /// An empty injector able to hold up to `capacity` indices.
    pub fn new(capacity: usize) -> PendingInjector {
        PendingInjector {
            slots: (0..capacity).map(|_| AtomicUsize::new(0)).collect(),
            len: AtomicUsize::new(0),
        }
    }

    /// Park one job index. Panics if pushed more times than
    /// `capacity` — a bug by construction, since each job index is
    /// parked at most once.
    pub fn push(&self, index: usize) {
        let slot = self.len.fetch_add(1, Ordering::Relaxed);
        self.slots[slot].store(index, Ordering::Release);
    }

    /// Drain the parked indices. Callers sequence this after joining
    /// every pushing thread (`join` synchronises-with the pushes), so
    /// the relaxed loads observe every completed push.
    pub fn drain(&self) -> Vec<usize> {
        let len = self.len.load(Ordering::Acquire).min(self.slots.len());
        self.slots[..len]
            .iter()
            .map(|slot| slot.load(Ordering::Acquire))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ticket_hands_out_every_index_exactly_once() {
        let ticket = JobTicket::new(100);
        let claimed: BTreeSet<usize> = std::iter::from_fn(|| ticket.claim()).collect();
        assert_eq!(claimed.len(), 100);
        assert_eq!(claimed.iter().copied().max(), Some(99));
        assert_eq!(ticket.claim(), None, "stays drained");
    }

    #[test]
    fn ticket_is_race_free_across_threads() {
        let ticket = JobTicket::new(1_000);
        let mut per_thread: Vec<Vec<usize>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine = Vec::new();
                        while let Some(i) = ticket.claim() {
                            mine.push(i);
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                per_thread.push(h.join().unwrap());
            }
        });
        let all: Vec<usize> = per_thread.into_iter().flatten().collect();
        let distinct: BTreeSet<usize> = all.iter().copied().collect();
        assert_eq!(all.len(), 1_000, "no index lost");
        assert_eq!(distinct.len(), 1_000, "no index claimed twice");
    }

    #[test]
    fn empty_ticket_yields_nothing() {
        assert_eq!(JobTicket::new(0).claim(), None);
    }

    #[test]
    fn injector_collects_concurrent_pushes() {
        let injector = PendingInjector::new(400);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let injector = &injector;
                scope.spawn(move || {
                    for i in 0..100 {
                        injector.push(t * 100 + i);
                    }
                });
            }
        });
        let mut drained = injector.drain();
        drained.sort_unstable();
        assert_eq!(drained, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn injector_drain_when_empty() {
        assert!(PendingInjector::new(16).drain().is_empty());
    }
}
