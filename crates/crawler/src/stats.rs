//! Crawl statistics: the raw material of Table 1.

use std::collections::BTreeMap;

use kt_netlog::NetError;
use kt_store::journal::VisitDelta;
use serde::{Deserialize, Serialize};

/// Accumulated load outcomes for one crawl.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlStats {
    /// Sites attempted (each site counts once, however many retries
    /// its visits needed).
    pub attempted: usize,
    /// Pages loaded successfully.
    pub successful: usize,
    /// Failed loads by net error.
    pub failures: BTreeMap<NetError, usize>,
    /// Connectivity-check retries performed (network outages on the
    /// measurement side delay the crawl instead of polluting stats).
    pub connectivity_retries: usize,
    /// In-place visit retries after transient failures.
    pub retries: usize,
    /// Sites revisited by the end-of-campaign recrawl pass.
    pub recrawled: usize,
    /// Sites that failed transiently but ended as successes (via
    /// in-place retry or recrawl).
    pub recovered: usize,
    /// Transiently-failing sites still failing after the recrawl pass
    /// (their last error lands in `failures`).
    pub gave_up: usize,
    /// Visits quarantined after a worker panic (`LoadOutcome::Crashed`
    /// records). A measurement artifact: excluded from Table 1's
    /// error columns but part of `failed()`.
    pub crashed: usize,
    /// Telemetry-store appends retried after an injected/observed
    /// append failure.
    pub store_retries: usize,
    /// Simulated campaign duration, ms: the busiest worker's final
    /// wall-clock position (visits are 21 s each plus backoff and
    /// outage waits), plus the serial recrawl pass. This is the
    /// scheduler-quality metric — unlike the outcome counters it
    /// legitimately depends on how jobs were laid onto workers.
    pub makespan_ms: u64,
}

impl CrawlStats {
    /// An empty tally.
    pub fn new() -> CrawlStats {
        CrawlStats::default()
    }

    /// Record a successful load.
    pub fn record_success(&mut self) {
        self.attempted += 1;
        self.successful += 1;
    }

    /// Record a failed load.
    pub fn record_failure(&mut self, err: NetError) {
        self.attempted += 1;
        *self.failures.entry(err).or_default() += 1;
    }

    /// Record a quarantined (crashed) visit.
    pub fn record_crash(&mut self) {
        self.attempted += 1;
        self.crashed += 1;
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &CrawlStats) {
        self.attempted += other.attempted;
        self.successful += other.successful;
        self.connectivity_retries += other.connectivity_retries;
        self.retries += other.retries;
        self.recrawled += other.recrawled;
        self.recovered += other.recovered;
        self.gave_up += other.gave_up;
        self.crashed += other.crashed;
        self.store_retries += other.store_retries;
        // Workers run concurrently in simulated time: the campaign
        // lasts as long as its busiest worker.
        self.makespan_ms = self.makespan_ms.max(other.makespan_ms);
        for (err, n) in &other.failures {
            *self.failures.entry(*err).or_default() += n;
        }
    }

    /// Total failed loads: derived from the failure map plus the
    /// quarantine count, never from `attempted - successful`
    /// subtraction (which underflows on partially-merged tallies).
    pub fn failed(&self) -> usize {
        self.failures.values().sum::<usize>() + self.crashed
    }

    /// Success rate in [0, 1].
    pub fn success_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.successful as f64 / self.attempted as f64
        }
    }

    /// Count of one failure class.
    pub fn failure_count(&self, err: NetError) -> usize {
        self.failures.get(&err).copied().unwrap_or(0)
    }

    /// The tally's contribution since `before` (a snapshot cloned at
    /// job start), as a journal-ready [`VisitDelta`]. Connectivity
    /// retries and the makespan are deliberately absent: both measure
    /// the *schedule*, not the site, and the resume path reconstructs
    /// them (zero without outages; greedy replay over journaled costs).
    pub fn delta_since(&self, before: &CrawlStats, cost_ms: u64) -> VisitDelta {
        let mut failures = Vec::new();
        for (err, n) in &self.failures {
            let prior = before.failures.get(err).copied().unwrap_or(0);
            if *n > prior {
                failures.push((err.code() as i64, (*n - prior) as u64));
            }
        }
        VisitDelta {
            cost_ms,
            attempted: (self.attempted - before.attempted) as u64,
            successful: (self.successful - before.successful) as u64,
            retries: (self.retries - before.retries) as u64,
            recrawled: (self.recrawled - before.recrawled) as u64,
            recovered: (self.recovered - before.recovered) as u64,
            gave_up: (self.gave_up - before.gave_up) as u64,
            crashed: (self.crashed - before.crashed) as u64,
            store_retries: (self.store_retries - before.store_retries) as u64,
            failures,
        }
    }

    /// Fold a journaled delta back into the tally (the inverse of
    /// [`CrawlStats::delta_since`], used when resuming from a journal).
    pub fn apply_delta(&mut self, delta: &VisitDelta) {
        self.attempted += delta.attempted as usize;
        self.successful += delta.successful as usize;
        self.retries += delta.retries as usize;
        self.recrawled += delta.recrawled as usize;
        self.recovered += delta.recovered as usize;
        self.gave_up += delta.gave_up as usize;
        self.crashed += delta.crashed as usize;
        self.store_retries += delta.store_retries as usize;
        for &(code, count) in &delta.failures {
            if let Some(err) = NetError::from_code(code as i32) {
                *self.failures.entry(err).or_default() += count as usize;
            }
        }
    }

    /// Compact binary encoding for checkpoint frames. The vendored
    /// serde shim cannot round-trip the enum-keyed failure map through
    /// JSON, and the journal should not depend on it anyway: fixed
    /// little-endian u64 fields in declaration order, then
    /// `(i64 code, u64 count)` failure pairs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(11 * 8 + self.failures.len() * 16);
        for v in [
            self.attempted,
            self.successful,
            self.connectivity_retries,
            self.retries,
            self.recrawled,
            self.recovered,
            self.gave_up,
            self.crashed,
            self.store_retries,
        ] {
            out.extend_from_slice(&(v as u64).to_le_bytes());
        }
        out.extend_from_slice(&self.makespan_ms.to_le_bytes());
        out.extend_from_slice(&(self.failures.len() as u64).to_le_bytes());
        for (err, n) in &self.failures {
            out.extend_from_slice(&(err.code() as i64).to_le_bytes());
            out.extend_from_slice(&(*n as u64).to_le_bytes());
        }
        out
    }

    /// Decode [`CrawlStats::to_bytes`]. `None` on malformed input
    /// (wrong length, unknown error code) — the checkpoint is then
    /// treated as absent and the campaign replayed from visit frames.
    pub fn from_bytes(bytes: &[u8]) -> Option<CrawlStats> {
        let word = |i: usize| -> Option<u64> {
            bytes
                .get(i * 8..i * 8 + 8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
        };
        let n_failures = word(10)? as usize;
        if bytes.len() != 11 * 8 + n_failures * 16 {
            return None;
        }
        let mut stats = CrawlStats {
            attempted: word(0)? as usize,
            successful: word(1)? as usize,
            connectivity_retries: word(2)? as usize,
            retries: word(3)? as usize,
            recrawled: word(4)? as usize,
            recovered: word(5)? as usize,
            gave_up: word(6)? as usize,
            crashed: word(7)? as usize,
            store_retries: word(8)? as usize,
            makespan_ms: word(9)?,
            failures: BTreeMap::new(),
        };
        for k in 0..n_failures {
            let code = word(11 + 2 * k)? as i64;
            let count = word(12 + 2 * k)? as usize;
            let err = NetError::from_code(code as i32)?;
            *stats.failures.entry(err).or_default() += count;
        }
        Some(stats)
    }

    /// Table 1's error columns: `NAME_NOT_RESOLVED`, `CONN_REFUSED`,
    /// `CONN_RESET`, `CERT_CN_INVALID`, and the "Others" bucket.
    pub fn table1_errors(&self) -> [(&'static str, usize); 5] {
        let named = [
            NetError::NameNotResolved,
            NetError::ConnectionRefused,
            NetError::ConnectionReset,
            NetError::CertCommonNameInvalid,
        ];
        let others: usize = self
            .failures
            .iter()
            .filter(|(err, _)| !named.contains(err))
            .map(|(_, n)| n)
            .sum();
        [
            (
                "NAME_NOT_RESOLVED",
                self.failure_count(NetError::NameNotResolved),
            ),
            (
                "CONN_REFUSED",
                self.failure_count(NetError::ConnectionRefused),
            ),
            ("CONN_RESET", self.failure_count(NetError::ConnectionReset)),
            (
                "CERT_CN_INVALID",
                self.failure_count(NetError::CertCommonNameInvalid),
            ),
            ("Others", others),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_and_rates() {
        let mut s = CrawlStats::new();
        for _ in 0..90 {
            s.record_success();
        }
        for _ in 0..9 {
            s.record_failure(NetError::NameNotResolved);
        }
        s.record_failure(NetError::TimedOut);
        assert_eq!(s.attempted, 100);
        assert_eq!(s.failed(), 10);
        assert!((s.success_rate() - 0.9).abs() < 1e-9);
        let errors = s.table1_errors();
        assert_eq!(errors[0], ("NAME_NOT_RESOLVED", 9));
        assert_eq!(errors[4], ("Others", 1));
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = CrawlStats::new();
        a.record_success();
        a.record_failure(NetError::ConnectionRefused);
        let mut b = CrawlStats::new();
        b.record_failure(NetError::ConnectionRefused);
        b.record_failure(NetError::CertCommonNameInvalid);
        a.merge(&b);
        assert_eq!(a.attempted, 4);
        assert_eq!(a.failure_count(NetError::ConnectionRefused), 2);
        assert_eq!(a.failure_count(NetError::CertCommonNameInvalid), 1);
    }

    #[test]
    fn empty_stats() {
        let s = CrawlStats::new();
        assert_eq!(s.success_rate(), 0.0);
        assert_eq!(s.failed(), 0);
    }

    #[test]
    fn failed_never_underflows_on_partial_merges() {
        // A tally holding only another worker's successes (e.g. a
        // half-merged supervisor snapshot) used to underflow
        // `attempted - successful` when successful > attempted.
        let s = CrawlStats {
            attempted: 1,
            successful: 3,
            ..CrawlStats::default()
        };
        assert_eq!(s.failed(), 0, "no panic, no wraparound");
    }

    #[test]
    fn crashes_count_as_failures_but_not_table1_errors() {
        let mut s = CrawlStats::new();
        s.record_success();
        s.record_crash();
        s.record_failure(NetError::ConnectionReset);
        assert_eq!(s.attempted, 3);
        assert_eq!(s.failed(), 2);
        assert_eq!(s.crashed, 1);
        let table1: usize = s.table1_errors().iter().map(|(_, n)| n).sum();
        assert_eq!(table1, 1, "the crash is a measurement artifact");
    }

    #[test]
    fn merge_takes_the_busiest_workers_makespan() {
        let mut a = CrawlStats {
            makespan_ms: 42_000,
            ..CrawlStats::default()
        };
        let b = CrawlStats {
            makespan_ms: 126_000,
            ..CrawlStats::default()
        };
        a.merge(&b);
        assert_eq!(a.makespan_ms, 126_000, "concurrent workers: max, not sum");
        a.merge(&CrawlStats::default());
        assert_eq!(a.makespan_ms, 126_000);
    }

    #[test]
    fn binary_codec_round_trips() {
        let mut s = CrawlStats {
            attempted: 100,
            successful: 90,
            connectivity_retries: 3,
            retries: 7,
            recrawled: 4,
            recovered: 2,
            gave_up: 2,
            crashed: 1,
            store_retries: 5,
            makespan_ms: 1_234_567,
            ..CrawlStats::default()
        };
        s.failures.insert(NetError::NameNotResolved, 6);
        s.failures.insert(NetError::ConnectionReset, 3);
        let bytes = s.to_bytes();
        assert_eq!(CrawlStats::from_bytes(&bytes), Some(s));
        assert_eq!(
            CrawlStats::from_bytes(&CrawlStats::default().to_bytes()),
            Some(CrawlStats::default())
        );
    }

    #[test]
    fn binary_codec_rejects_malformed_blobs() {
        let bytes = CrawlStats::default().to_bytes();
        assert_eq!(CrawlStats::from_bytes(&bytes[..bytes.len() - 1]), None);
        assert_eq!(CrawlStats::from_bytes(&[]), None);
        let mut s = CrawlStats::default();
        s.failures.insert(NetError::TimedOut, 1);
        let mut bytes = s.to_bytes();
        // Unknown error code → reject, don't guess.
        bytes[88..96].copy_from_slice(&(-99999i64).to_le_bytes());
        assert_eq!(CrawlStats::from_bytes(&bytes), None);
    }

    #[test]
    fn delta_round_trips_through_apply() {
        let mut before = CrawlStats::new();
        before.record_success();
        before.record_failure(NetError::TimedOut);
        let mut after = before.clone();
        after.record_success();
        after.record_failure(NetError::ConnectionReset);
        after.record_failure(NetError::TimedOut);
        after.retries += 2;
        after.store_retries += 1;
        let delta = after.delta_since(&before, 21_000);
        assert_eq!(delta.cost_ms, 21_000);
        assert_eq!(delta.attempted, 3);
        assert_eq!(delta.successful, 1);
        assert_eq!(delta.retries, 2);
        assert_eq!(delta.failures.len(), 2);
        let mut rebuilt = before.clone();
        rebuilt.apply_delta(&delta);
        // Everything except the schedule-owned fields must match.
        assert_eq!(rebuilt.attempted, after.attempted);
        assert_eq!(rebuilt.failures, after.failures);
        assert_eq!(rebuilt.retries, after.retries);
        assert_eq!(rebuilt.store_retries, after.store_retries);
    }

    #[test]
    fn merge_combines_resilience_counters() {
        let mut a = CrawlStats {
            retries: 2,
            recrawled: 1,
            recovered: 1,
            gave_up: 0,
            crashed: 1,
            store_retries: 3,
            ..CrawlStats::default()
        };
        let b = CrawlStats {
            retries: 1,
            recrawled: 2,
            recovered: 2,
            gave_up: 1,
            crashed: 0,
            store_retries: 1,
            ..CrawlStats::default()
        };
        a.merge(&b);
        assert_eq!(
            (
                a.retries,
                a.recrawled,
                a.recovered,
                a.gave_up,
                a.crashed,
                a.store_retries
            ),
            (3, 3, 3, 1, 1, 4)
        );
    }
}
