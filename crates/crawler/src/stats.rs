//! Crawl statistics: the raw material of Table 1.

use std::collections::BTreeMap;

use kt_netlog::NetError;
use serde::{Deserialize, Serialize};

/// Accumulated load outcomes for one crawl.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlStats {
    /// Pages attempted.
    pub attempted: usize,
    /// Pages loaded successfully.
    pub successful: usize,
    /// Failed loads by net error.
    pub failures: BTreeMap<NetError, usize>,
    /// Connectivity-check retries performed (network outages on the
    /// measurement side delay the crawl instead of polluting stats).
    pub connectivity_retries: usize,
}

impl CrawlStats {
    /// An empty tally.
    pub fn new() -> CrawlStats {
        CrawlStats::default()
    }

    /// Record a successful load.
    pub fn record_success(&mut self) {
        self.attempted += 1;
        self.successful += 1;
    }

    /// Record a failed load.
    pub fn record_failure(&mut self, err: NetError) {
        self.attempted += 1;
        *self.failures.entry(err).or_default() += 1;
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &CrawlStats) {
        self.attempted += other.attempted;
        self.successful += other.successful;
        self.connectivity_retries += other.connectivity_retries;
        for (err, n) in &other.failures {
            *self.failures.entry(*err).or_default() += n;
        }
    }

    /// Total failed loads.
    pub fn failed(&self) -> usize {
        self.attempted - self.successful
    }

    /// Success rate in [0, 1].
    pub fn success_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.successful as f64 / self.attempted as f64
        }
    }

    /// Count of one failure class.
    pub fn failure_count(&self, err: NetError) -> usize {
        self.failures.get(&err).copied().unwrap_or(0)
    }

    /// Table 1's error columns: `NAME_NOT_RESOLVED`, `CONN_REFUSED`,
    /// `CONN_RESET`, `CERT_CN_INVALID`, and the "Others" bucket.
    pub fn table1_errors(&self) -> [(&'static str, usize); 5] {
        let named = [
            NetError::NameNotResolved,
            NetError::ConnectionRefused,
            NetError::ConnectionReset,
            NetError::CertCommonNameInvalid,
        ];
        let others: usize = self
            .failures
            .iter()
            .filter(|(err, _)| !named.contains(err))
            .map(|(_, n)| n)
            .sum();
        [
            ("NAME_NOT_RESOLVED", self.failure_count(NetError::NameNotResolved)),
            ("CONN_REFUSED", self.failure_count(NetError::ConnectionRefused)),
            ("CONN_RESET", self.failure_count(NetError::ConnectionReset)),
            ("CERT_CN_INVALID", self.failure_count(NetError::CertCommonNameInvalid)),
            ("Others", others),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_and_rates() {
        let mut s = CrawlStats::new();
        for _ in 0..90 {
            s.record_success();
        }
        for _ in 0..9 {
            s.record_failure(NetError::NameNotResolved);
        }
        s.record_failure(NetError::TimedOut);
        assert_eq!(s.attempted, 100);
        assert_eq!(s.failed(), 10);
        assert!((s.success_rate() - 0.9).abs() < 1e-9);
        let errors = s.table1_errors();
        assert_eq!(errors[0], ("NAME_NOT_RESOLVED", 9));
        assert_eq!(errors[4], ("Others", 1));
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = CrawlStats::new();
        a.record_success();
        a.record_failure(NetError::ConnectionRefused);
        let mut b = CrawlStats::new();
        b.record_failure(NetError::ConnectionRefused);
        b.record_failure(NetError::CertCommonNameInvalid);
        a.merge(&b);
        assert_eq!(a.attempted, 4);
        assert_eq!(a.failure_count(NetError::ConnectionRefused), 2);
        assert_eq!(a.failure_count(NetError::CertCommonNameInvalid), 1);
    }

    #[test]
    fn empty_stats() {
        let s = CrawlStats::new();
        assert_eq!(s.success_rate(), 0.0);
        assert_eq!(s.failed(), 0);
    }
}
