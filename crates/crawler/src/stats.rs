//! Crawl statistics: the raw material of Table 1.

use std::collections::BTreeMap;

use kt_netlog::NetError;
use serde::{Deserialize, Serialize};

/// Accumulated load outcomes for one crawl.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlStats {
    /// Sites attempted (each site counts once, however many retries
    /// its visits needed).
    pub attempted: usize,
    /// Pages loaded successfully.
    pub successful: usize,
    /// Failed loads by net error.
    pub failures: BTreeMap<NetError, usize>,
    /// Connectivity-check retries performed (network outages on the
    /// measurement side delay the crawl instead of polluting stats).
    pub connectivity_retries: usize,
    /// In-place visit retries after transient failures.
    pub retries: usize,
    /// Sites revisited by the end-of-campaign recrawl pass.
    pub recrawled: usize,
    /// Sites that failed transiently but ended as successes (via
    /// in-place retry or recrawl).
    pub recovered: usize,
    /// Transiently-failing sites still failing after the recrawl pass
    /// (their last error lands in `failures`).
    pub gave_up: usize,
    /// Visits quarantined after a worker panic (`LoadOutcome::Crashed`
    /// records). A measurement artifact: excluded from Table 1's
    /// error columns but part of `failed()`.
    pub crashed: usize,
    /// Telemetry-store appends retried after an injected/observed
    /// append failure.
    pub store_retries: usize,
    /// Simulated campaign duration, ms: the busiest worker's final
    /// wall-clock position (visits are 21 s each plus backoff and
    /// outage waits), plus the serial recrawl pass. This is the
    /// scheduler-quality metric — unlike the outcome counters it
    /// legitimately depends on how jobs were laid onto workers.
    pub makespan_ms: u64,
}

impl CrawlStats {
    /// An empty tally.
    pub fn new() -> CrawlStats {
        CrawlStats::default()
    }

    /// Record a successful load.
    pub fn record_success(&mut self) {
        self.attempted += 1;
        self.successful += 1;
    }

    /// Record a failed load.
    pub fn record_failure(&mut self, err: NetError) {
        self.attempted += 1;
        *self.failures.entry(err).or_default() += 1;
    }

    /// Record a quarantined (crashed) visit.
    pub fn record_crash(&mut self) {
        self.attempted += 1;
        self.crashed += 1;
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &CrawlStats) {
        self.attempted += other.attempted;
        self.successful += other.successful;
        self.connectivity_retries += other.connectivity_retries;
        self.retries += other.retries;
        self.recrawled += other.recrawled;
        self.recovered += other.recovered;
        self.gave_up += other.gave_up;
        self.crashed += other.crashed;
        self.store_retries += other.store_retries;
        // Workers run concurrently in simulated time: the campaign
        // lasts as long as its busiest worker.
        self.makespan_ms = self.makespan_ms.max(other.makespan_ms);
        for (err, n) in &other.failures {
            *self.failures.entry(*err).or_default() += n;
        }
    }

    /// Total failed loads: derived from the failure map plus the
    /// quarantine count, never from `attempted - successful`
    /// subtraction (which underflows on partially-merged tallies).
    pub fn failed(&self) -> usize {
        self.failures.values().sum::<usize>() + self.crashed
    }

    /// Success rate in [0, 1].
    pub fn success_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.successful as f64 / self.attempted as f64
        }
    }

    /// Count of one failure class.
    pub fn failure_count(&self, err: NetError) -> usize {
        self.failures.get(&err).copied().unwrap_or(0)
    }

    /// Table 1's error columns: `NAME_NOT_RESOLVED`, `CONN_REFUSED`,
    /// `CONN_RESET`, `CERT_CN_INVALID`, and the "Others" bucket.
    pub fn table1_errors(&self) -> [(&'static str, usize); 5] {
        let named = [
            NetError::NameNotResolved,
            NetError::ConnectionRefused,
            NetError::ConnectionReset,
            NetError::CertCommonNameInvalid,
        ];
        let others: usize = self
            .failures
            .iter()
            .filter(|(err, _)| !named.contains(err))
            .map(|(_, n)| n)
            .sum();
        [
            (
                "NAME_NOT_RESOLVED",
                self.failure_count(NetError::NameNotResolved),
            ),
            (
                "CONN_REFUSED",
                self.failure_count(NetError::ConnectionRefused),
            ),
            ("CONN_RESET", self.failure_count(NetError::ConnectionReset)),
            (
                "CERT_CN_INVALID",
                self.failure_count(NetError::CertCommonNameInvalid),
            ),
            ("Others", others),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_and_rates() {
        let mut s = CrawlStats::new();
        for _ in 0..90 {
            s.record_success();
        }
        for _ in 0..9 {
            s.record_failure(NetError::NameNotResolved);
        }
        s.record_failure(NetError::TimedOut);
        assert_eq!(s.attempted, 100);
        assert_eq!(s.failed(), 10);
        assert!((s.success_rate() - 0.9).abs() < 1e-9);
        let errors = s.table1_errors();
        assert_eq!(errors[0], ("NAME_NOT_RESOLVED", 9));
        assert_eq!(errors[4], ("Others", 1));
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = CrawlStats::new();
        a.record_success();
        a.record_failure(NetError::ConnectionRefused);
        let mut b = CrawlStats::new();
        b.record_failure(NetError::ConnectionRefused);
        b.record_failure(NetError::CertCommonNameInvalid);
        a.merge(&b);
        assert_eq!(a.attempted, 4);
        assert_eq!(a.failure_count(NetError::ConnectionRefused), 2);
        assert_eq!(a.failure_count(NetError::CertCommonNameInvalid), 1);
    }

    #[test]
    fn empty_stats() {
        let s = CrawlStats::new();
        assert_eq!(s.success_rate(), 0.0);
        assert_eq!(s.failed(), 0);
    }

    #[test]
    fn failed_never_underflows_on_partial_merges() {
        // A tally holding only another worker's successes (e.g. a
        // half-merged supervisor snapshot) used to underflow
        // `attempted - successful` when successful > attempted.
        let s = CrawlStats {
            attempted: 1,
            successful: 3,
            ..CrawlStats::default()
        };
        assert_eq!(s.failed(), 0, "no panic, no wraparound");
    }

    #[test]
    fn crashes_count_as_failures_but_not_table1_errors() {
        let mut s = CrawlStats::new();
        s.record_success();
        s.record_crash();
        s.record_failure(NetError::ConnectionReset);
        assert_eq!(s.attempted, 3);
        assert_eq!(s.failed(), 2);
        assert_eq!(s.crashed, 1);
        let table1: usize = s.table1_errors().iter().map(|(_, n)| n).sum();
        assert_eq!(table1, 1, "the crash is a measurement artifact");
    }

    #[test]
    fn merge_takes_the_busiest_workers_makespan() {
        let mut a = CrawlStats {
            makespan_ms: 42_000,
            ..CrawlStats::default()
        };
        let b = CrawlStats {
            makespan_ms: 126_000,
            ..CrawlStats::default()
        };
        a.merge(&b);
        assert_eq!(a.makespan_ms, 126_000, "concurrent workers: max, not sum");
        a.merge(&CrawlStats::default());
        assert_eq!(a.makespan_ms, 126_000);
    }

    #[test]
    fn merge_combines_resilience_counters() {
        let mut a = CrawlStats {
            retries: 2,
            recrawled: 1,
            recovered: 1,
            gave_up: 0,
            crashed: 1,
            store_retries: 3,
            ..CrawlStats::default()
        };
        let b = CrawlStats {
            retries: 1,
            recrawled: 2,
            recovered: 2,
            gave_up: 1,
            crashed: 0,
            store_retries: 1,
            ..CrawlStats::default()
        };
        a.merge(&b);
        assert_eq!(
            (
                a.retries,
                a.recrawled,
                a.recovered,
                a.gave_up,
                a.crashed,
                a.store_retries
            ),
            (3, 3, 3, 1, 1, 4)
        );
    }
}
