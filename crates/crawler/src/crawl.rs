//! The crawl loop: worker pool over a site population.
//!
//! Each worker owns its own [`World`] (its own DNS cache and latency
//! stream, like a separate VM) built over its chunk of sites, performs
//! the paper's connectivity pre-check before every visit, runs the
//! browser, and appends the visit record to the shared store.
//! Determinism holds across worker counts because every sampled value
//! is keyed by site identity, not by visit order.

use kt_netbase::Os;
use kt_simnet::connectivity::{ConnectivityChecker, Outage};
use kt_browser::{Browser, BrowserConfig, PageLoadOutcome, World};
use kt_store::{CrawlId, LoadOutcome, TelemetryStore, VisitRecord};
use kt_webgen::WebSite;
use parking_lot::Mutex;

use crate::stats::CrawlStats;

/// One crawl work item.
#[derive(Debug, Clone)]
pub struct CrawlJob<'a> {
    /// The site to visit.
    pub site: &'a WebSite,
    /// Blocklist category code for malicious crawls (0 = malware,
    /// 1 = abuse, 2 = phishing).
    pub malicious_category: Option<u8>,
}

/// Crawl configuration.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Campaign identifier (keys the store).
    pub crawl: CrawlId,
    /// The crawling OS.
    pub os: Os,
    /// Run seed.
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
    /// Observation window per page, ms.
    pub window_ms: u64,
    /// Measurement-side network outages to simulate (none in the
    /// paper's crawls; used by failure-injection tests).
    pub outages: Vec<Outage>,
    /// Deep-crawl mode: also visit internal pages (§3.3 extension).
    pub crawl_internal: bool,
}

impl CrawlConfig {
    /// The paper's configuration for one campaign and OS.
    pub fn paper(crawl: CrawlId, os: Os, seed: u64) -> CrawlConfig {
        CrawlConfig {
            crawl,
            os,
            seed,
            workers: 4,
            window_ms: 20_000,
            outages: Vec::new(),
            crawl_internal: false,
        }
    }
}

/// Wall-clock cost of one visit: the 20 s window plus startup/teardown
/// overhead for the fresh incognito instance.
const VISIT_WALL_MS: u64 = 21_000;

/// Run one crawl campaign over `jobs`, appending to `store`.
pub fn run_crawl(jobs: &[CrawlJob<'_>], config: &CrawlConfig, store: &TelemetryStore) -> CrawlStats {
    let workers = config.workers.max(1).min(jobs.len().max(1));
    let chunk_size = jobs.len().div_ceil(workers);
    let total = Mutex::new(CrawlStats::new());
    crossbeam::thread::scope(|scope| {
        for (w, chunk) in jobs.chunks(chunk_size.max(1)).enumerate() {
            let total = &total;
            let config = config.clone();
            scope.spawn(move |_| {
                let stats = crawl_chunk(chunk, &config, store, w as u64);
                total.lock().merge(&stats);
            });
        }
    })
    .expect("crawl workers never panic");
    total.into_inner()
}

/// One worker's loop.
fn crawl_chunk(
    jobs: &[CrawlJob<'_>],
    config: &CrawlConfig,
    store: &TelemetryStore,
    worker_id: u64,
) -> CrawlStats {
    let sites: Vec<WebSite> = jobs.iter().map(|j| j.site.clone()).collect();
    let mut world = World::build(&sites, config.os, config.seed);
    let mut checker = ConnectivityChecker::with_outages(config.outages.clone());
    let mut stats = CrawlStats::new();
    let mut wall_ms: u64 = worker_id; // stagger workers trivially
    for job in jobs {
        // §3.1: ping 8.8.8.8 before each visit; wait out any outage so
        // measurement-side network problems never masquerade as
        // website failures.
        while !checker.ping(wall_ms) {
            stats.connectivity_retries += 1;
            wall_ms = checker.next_online(wall_ms);
        }
        let mut browser = Browser::new(
            &mut world,
            BrowserConfig {
                os: config.os,
                window_ms: config.window_ms,
                safe_browsing: false,
                incognito: true,
                pna: kt_browser::PnaMode::Off,
                crawl_internal: config.crawl_internal,
            },
            config.seed,
        );
        let result = browser.visit(job.site);
        let (outcome, loaded_at) = match result.outcome {
            PageLoadOutcome::Loaded { at_ms } => (LoadOutcome::Success, at_ms),
            PageLoadOutcome::Failed(err) => (LoadOutcome::Error(err), 0),
        };
        match outcome {
            LoadOutcome::Success => stats.record_success(),
            LoadOutcome::Error(err) => stats.record_failure(err),
        }
        store.append(&VisitRecord {
            crawl: config.crawl.clone(),
            domain: result.domain,
            rank: job.site.rank,
            malicious_category: job.malicious_category,
            os: config.os,
            outcome,
            loaded_at_ms: loaded_at,
            events: result.capture.events,
        });
        wall_ms += VISIT_WALL_MS;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_netbase::DomainName;
    use kt_netlog::NetError;
    use kt_webgen::{Availability, WebSite};

    fn sites(n: usize) -> Vec<WebSite> {
        (0..n)
            .map(|i| {
                let mut s = WebSite::plain(
                    DomainName::parse(&format!("site{i}.example")).unwrap(),
                    Some(i as u32 + 1),
                    3,
                );
                if i % 10 == 9 {
                    s.set_availability_all(Availability::NxDomain);
                }
                s
            })
            .collect()
    }

    fn jobs(sites: &[WebSite]) -> Vec<CrawlJob<'_>> {
        sites
            .iter()
            .map(|site| CrawlJob {
                site,
                malicious_category: None,
            })
            .collect()
    }

    #[test]
    fn crawl_visits_every_site() {
        let population = sites(40);
        let store = TelemetryStore::new();
        let config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 5);
        let stats = run_crawl(&jobs(&population), &config, &store);
        assert_eq!(stats.attempted, 40);
        assert_eq!(stats.failed(), 4, "every 10th site is NXDOMAIN");
        assert_eq!(store.len(), 40);
        assert_eq!(stats.failure_count(NetError::NameNotResolved), 4);
    }

    #[test]
    fn stats_are_stable_across_worker_counts() {
        let population = sites(30);
        let mut baseline = None;
        for workers in [1, 2, 4, 8] {
            let store = TelemetryStore::new();
            let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Windows, 5);
            config.workers = workers;
            let stats = run_crawl(&jobs(&population), &config, &store);
            match &baseline {
                None => baseline = Some(stats),
                Some(b) => {
                    assert_eq!(&stats.attempted, &b.attempted, "workers={workers}");
                    assert_eq!(&stats.failures, &b.failures, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn records_are_keyed_by_crawl_and_os() {
        let population = sites(5);
        let store = TelemetryStore::new();
        for os in [Os::Windows, Os::Linux] {
            let config = CrawlConfig::paper(CrawlId::top2020(), os, 5);
            run_crawl(&jobs(&population), &config, &store);
        }
        assert_eq!(store.len(), 10);
        assert!(store
            .get(&CrawlId::top2020(), "site0.example", Os::Windows)
            .is_some());
        assert!(store
            .get(&CrawlId::top2020(), "site0.example", Os::MacOs)
            .is_none());
    }

    #[test]
    fn outages_delay_but_do_not_fail() {
        let population = sites(10);
        let store = TelemetryStore::new();
        let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 5);
        config.workers = 1;
        config.outages = vec![Outage {
            start: 0,
            end: 50_000,
        }];
        let stats = run_crawl(&jobs(&population), &config, &store);
        assert!(stats.connectivity_retries > 0);
        assert_eq!(stats.attempted, 10, "every site still crawled");
        assert_eq!(stats.failed(), 1, "only the genuine NXDOMAIN fails");
    }

    #[test]
    fn empty_job_list_is_fine() {
        let store = TelemetryStore::new();
        let config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 5);
        let stats = run_crawl(&[], &config, &store);
        assert_eq!(stats.attempted, 0);
        assert!(store.is_empty());
    }
}
