//! The crawl loop: a supervised worker pool over a site population.
//!
//! Workers share one work-stealing job queue (a [`JobTicket`] — an
//! atomic cursor over the job slice): each worker claims the next
//! unclaimed job, builds a per-site [`World`] (its own DNS cache and
//! latency stream, like a separate VM), performs the paper's
//! connectivity pre-check before every visit, runs the browser, and
//! appends the visit record to the shared store. A worker bogged down
//! in a retry-heavy site simply claims fewer jobs while its peers
//! drain the queue — no chunk boundary ever serialises the campaign
//! tail. The old static-chunk scheduler survives as
//! [`run_crawl_chunked`], the ablation baseline the perf bench
//! measures the stealing scheduler against.
//!
//! On top of the plain loop sits a resilience layer:
//!
//! * every visit runs under [`catch_unwind`] — a panicking visit is
//!   quarantined as [`LoadOutcome::Crashed`] (salvaging whatever
//!   capture prefix the panic payload carries) and the worker moves
//!   on; `run_crawl` never aborts a campaign;
//! * transient failures ([`is_transient`]) are retried in place with
//!   exponential backoff, then parked on an end-of-campaign recrawl
//!   queue that gets one final pass before the error is allowed into
//!   the Table 1 statistics;
//! * injected faults from the config's [`FaultPlan`] flow through the
//!   same paths as organic failures, so failure-injection tests
//!   exercise the production machinery.
//!
//! Determinism holds across worker counts because every sampled value
//! — latencies, fault decisions, backoff jitter — is keyed by site
//! identity (and attempt number), not by visit order or thread.

use kt_browser::{Browser, BrowserConfig, CrawlerProfile, PageLoadOutcome, World};
use kt_faults::{is_transient, Fault, FaultPlan, RetryPolicy, SalvagedVisit};
use kt_netbase::Os;
use kt_netlog::NetLogEvent;
use kt_simnet::connectivity::{ConnectivityChecker, Outage};
use kt_store::journal::{JournalWriter, FLAG_FINAL, FLAG_RECRAWL};
use kt_store::{CrawlId, LoadOutcome, TelemetryStore, VisitRecord};
use kt_trace::{EventRecord, SpanRecord, SpanRing, Trace};
use kt_webgen::WebSite;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::observe::{set_stats_gauges, stats_sink, stats_sink_delta};
use crate::queue::{JobTicket, PendingInjector};
use crate::resume::ResumePlan;
use crate::stats::CrawlStats;

/// One crawl work item.
#[derive(Debug, Clone)]
pub struct CrawlJob<'a> {
    /// The site to visit.
    pub site: &'a WebSite,
    /// Blocklist category code for malicious crawls (0 = malware,
    /// 1 = abuse, 2 = phishing).
    pub malicious_category: Option<u8>,
}

/// Crawl configuration.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Campaign identifier (keys the store).
    pub crawl: CrawlId,
    /// The crawling OS.
    pub os: Os,
    /// Run seed.
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
    /// Observation window per page, ms.
    pub window_ms: u64,
    /// Measurement-side network outages to simulate (none in the
    /// paper's crawls; used by failure-injection tests).
    pub outages: Vec<Outage>,
    /// Deep-crawl mode: also visit internal pages (§3.3 extension).
    pub crawl_internal: bool,
    /// How the crawler presents itself to anti-bot sensors (the bias
    /// experiment's knob; the paper's crawler is `Naive`).
    pub profile: CrawlerProfile,
    /// Fault-injection plan (clean in production crawls).
    pub faults: FaultPlan,
    /// Retry/backoff/recrawl policy for transient failures.
    pub retry: RetryPolicy,
}

impl CrawlConfig {
    /// The paper's configuration for one campaign and OS.
    pub fn paper(crawl: CrawlId, os: Os, seed: u64) -> CrawlConfig {
        CrawlConfig {
            crawl,
            os,
            seed,
            workers: 4,
            window_ms: 20_000,
            outages: Vec::new(),
            crawl_internal: false,
            profile: CrawlerProfile::Naive,
            faults: FaultPlan::none(seed),
            retry: RetryPolicy::paper(),
        }
    }
}

/// Wall-clock cost of one visit: the 20 s window plus startup/teardown
/// overhead for the fresh incognito instance. Public so the campaign
/// service's deadline budgets and schedule replays price visits in the
/// same units as the pool.
pub const VISIT_WALL_MS: u64 = 21_000;

/// Per-worker span ring capacity: big enough for every visit of a
/// quick-scale campaign's share, bounded so a pathological retry storm
/// sheds old spans (counted in the trace meta line) instead of
/// growing without limit.
const SPAN_RING_CAP: usize = 4_096;

/// One attempt's result after panic isolation has run.
enum AttemptEnd {
    /// The browser returned: page outcome, landing domain, capture.
    Outcome(PageLoadOutcome, String, Vec<NetLogEvent>),
    /// The visit panicked; the events are the salvaged capture prefix
    /// (empty when the panic payload carried none).
    Crashed(Vec<NetLogEvent>),
}

/// Run one crawl campaign over `jobs`, appending to `store`.
///
/// Workers pull jobs off a shared work-stealing ticket queue, so a
/// fault-heavy stretch of the population slows only the worker inside
/// it — never a statically-assigned chunk of unrelated sites. Results
/// are bit-identical for any worker count because every sampled value
/// (latency, fault, backoff jitter) is keyed by site identity and
/// attempt number, not by claim order or thread.
///
/// Never aborts: panicking visits are quarantined as
/// [`LoadOutcome::Crashed`] and every job is accounted for exactly
/// once in the returned stats, whatever faults were injected.
pub fn run_crawl(
    jobs: &[CrawlJob<'_>],
    config: &CrawlConfig,
    store: &TelemetryStore,
) -> CrawlStats {
    run_crawl_journaled(jobs, config, store, None)
}

/// [`run_crawl`] with an optional write-ahead journal: each visit's
/// terminal verdict is framed (record + stats delta) before the
/// campaign moves on, so a crash loses at most the in-flight frame.
/// Journalling never perturbs results — the store contents and stats
/// of a journaled run are byte-identical to a plain one.
///
/// When the journal's kill switch fires (a [`kt_store::KillSpec`]
/// boundary or an injected [`Fault::ProcessKill`]), workers stop
/// claiming jobs and the returned stats describe an abandoned,
/// partially-run campaign — the caller is simulating `kill -9` and
/// should discard them in favour of `resume`.
pub fn run_crawl_journaled(
    jobs: &[CrawlJob<'_>],
    config: &CrawlConfig,
    store: &TelemetryStore,
    journal: Option<&JournalWriter>,
) -> CrawlStats {
    run_crawl_resumed(jobs, &ResumePlan::fresh(jobs.len()), config, store, journal)
}

/// Run the remainder of a campaign whose earlier work survives in a
/// journal. `plan` says which jobs are already done (their stats and
/// scheduler costs carried in), which were parked for the recrawl
/// pass, and which still need the worker pool. With
/// [`ResumePlan::fresh`] this *is* the uninterrupted crawl.
///
/// Resumed results are byte-identical to an uninterrupted run for
/// outage-free configurations: every visit outcome is a pure function
/// of `(seed, domain, attempt)`, the makespan is a greedy replay over
/// the full per-job cost vector (journaled costs for finished jobs,
/// freshly-recorded ones for the rest), and the recrawl pass is
/// domain-ordered either way.
pub fn run_crawl_resumed(
    jobs: &[CrawlJob<'_>],
    plan: &ResumePlan,
    config: &CrawlConfig,
    store: &TelemetryStore,
    journal: Option<&JournalWriter>,
) -> CrawlStats {
    run_crawl_resumed_observed(jobs, plan, config, store, journal, None)
}

/// [`run_crawl`] reporting into a [`Trace`]: per-visit spans land in
/// lock-free per-worker ring buffers, per-worker counter sinks are
/// built from each worker's private tally and merged at join, and the
/// campaign's derived gauges are set from the final stats. Tracing
/// never perturbs results — stats and store contents stay
/// byte-identical to an untraced run.
pub fn run_crawl_observed(
    jobs: &[CrawlJob<'_>],
    config: &CrawlConfig,
    store: &TelemetryStore,
    trace: Option<&Trace>,
) -> CrawlStats {
    run_crawl_resumed_observed(
        jobs,
        &ResumePlan::fresh(jobs.len()),
        config,
        store,
        None,
        trace,
    )
}

/// [`run_crawl_resumed`] with optional tracing. Counter series are
/// derived from [`CrawlStats`] snapshots (worker tallies, the
/// journal-replayed prior, the recrawl pass's delta), so the exported
/// values always sum to the returned stats — which are worker-count-
/// and resume-invariant, making the exported text byte-identical
/// across `--workers` settings and kill/resume cycles.
pub fn run_crawl_resumed_observed(
    jobs: &[CrawlJob<'_>],
    plan: &ResumePlan,
    config: &CrawlConfig,
    store: &TelemetryStore,
    journal: Option<&JournalWriter>,
    trace: Option<&Trace>,
) -> CrawlStats {
    // The schedule replays over the *full* job vector whatever subset
    // actually re-runs, so the worker count it uses must be the one
    // the uninterrupted campaign would have had.
    let sched_workers = config.workers.max(1).min(jobs.len().max(1));
    let pool_workers = config.workers.max(1).min(plan.todo.len().max(1));
    let ticket = JobTicket::new(plan.todo.len());
    let injector = PendingInjector::new(jobs.len());
    let costs: Vec<AtomicU64> = (0..jobs.len()).map(|_| AtomicU64::new(0)).collect();
    for &(i, cost) in &plan.prior_costs {
        costs[i].store(cost, Ordering::Relaxed);
    }
    let mut stats = plan.prior.clone();
    // Work finished before the crash was journaled with its stats
    // deltas; replaying them as a sink makes resumed counters equal to
    // an uninterrupted run's.
    if let Some(trace) = trace {
        trace.merge_sink(&stats_sink(&config.crawl, config.os, &plan.prior));
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..pool_workers)
            .map(|w| {
                let ticket = &ticket;
                let injector = &injector;
                let costs = costs.as_slice();
                let todo = plan.todo.as_slice();
                scope.spawn(move || {
                    crawl_worker(
                        jobs,
                        todo,
                        ticket,
                        injector,
                        costs,
                        config,
                        store,
                        journal,
                        w as u64,
                        pool_workers as u64,
                        trace.is_some(),
                    )
                })
            })
            .collect();
        // Per-worker tallies merge exactly once, at join — the crawl
        // itself holds no shared stats lock. The metrics sink and span
        // ring merge on the same schedule: one uncontended trace lock
        // per worker per campaign, nothing in the visit loop.
        for handle in handles {
            let (worker_stats, ring) = handle.join().expect("crawl worker panicked");
            if let Some(trace) = trace {
                trace.merge_sink(&stats_sink(&config.crawl, config.os, &worker_stats));
                if let Some(ring) = ring {
                    trace.absorb_ring(ring);
                }
            }
            stats.merge(&worker_stats);
        }
    });
    // The simulated makespan. A production pool's claim order follows
    // simulated time — a worker claims its next site the moment the
    // previous one finishes — but the simulation compresses 21 s
    // visits into microseconds, so the OS's thread scheduling would
    // otherwise leak into the claimed-job layout. Replaying the greedy
    // earliest-free-worker schedule over the recorded per-job costs
    // recovers the deterministic duration a real campaign would take.
    stats.makespan_ms = greedy_makespan(&costs, sched_workers as u64);
    let mut queue = injector.drain();
    queue.extend(plan.preparked.iter().copied());
    let dying = journal.is_some_and(|j| j.killed());
    if !queue.is_empty() && !dying {
        // Sorted by domain so the pass is independent of which worker
        // originally parked each site.
        queue.sort_by(|a, b| {
            jobs[*a]
                .site
                .domain
                .as_str()
                .cmp(jobs[*b].site.domain.as_str())
        });
        let before_recrawl = stats.clone();
        let mut ring = trace.map(|_| SpanRing::new(SPAN_RING_CAP));
        recrawl_pass(
            jobs,
            &queue,
            config,
            store,
            &mut stats,
            journal,
            ring.as_mut(),
        );
        if let Some(trace) = trace {
            // The pass mutates the merged tally in place, so its
            // counter contribution is the snapshot difference.
            trace.merge_sink(&stats_sink_delta(
                &config.crawl,
                config.os,
                &stats,
                &before_recrawl,
            ));
            if let Some(ring) = ring {
                trace.absorb_ring(ring);
            }
        }
    }
    // Recrawl wall-clock already journaled by the crashed run.
    stats.makespan_ms += plan.prior_recrawl_wall_ms;
    if let Some(trace) = trace {
        set_stats_gauges(trace, &config.crawl, config.os, &stats);
    }
    stats
}

/// The pre-work-stealing scheduler: jobs statically partitioned into
/// per-worker chunks. Kept as the ablation baseline — the perf bench
/// measures how badly a skewed (fault-heavy) chunk gates the campaign
/// tail compared to [`run_crawl`]. Produces identical stats and store
/// contents; only the wall-clock schedule differs.
pub fn run_crawl_chunked(
    jobs: &[CrawlJob<'_>],
    config: &CrawlConfig,
    store: &TelemetryStore,
) -> CrawlStats {
    let workers = config.workers.max(1).min(jobs.len().max(1));
    let chunk_size = jobs.len().div_ceil(workers).max(1);
    let mut stats = CrawlStats::new();
    let mut queue = Vec::<usize>::new();
    // Chunk results come back through the join handles and merge on
    // the supervisor thread, the same single-merge-point shape as
    // `run_crawl` and the trace registry — the old version funnelled
    // every worker through a Mutex<CrawlStats> + Mutex<Vec> pair, a
    // second hand-rolled merge path that observability would have had
    // to duplicate.
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .chunks(chunk_size)
            .enumerate()
            .map(|(w, chunk)| {
                let config = config.clone();
                scope.spawn(move || {
                    let base = w * chunk_size;
                    // A chunk is just a pre-claimed ticket range; reuse
                    // the worker loop via a ticket covering the chunk.
                    let order: Vec<usize> = (0..chunk.len()).collect();
                    let ticket = JobTicket::new(chunk.len());
                    let injector = PendingInjector::new(chunk.len());
                    // With a static assignment the worker's own
                    // accumulated wall clock *is* its schedule, so the
                    // recorded costs are only informational here.
                    let costs: Vec<AtomicU64> =
                        (0..chunk.len()).map(|_| AtomicU64::new(0)).collect();
                    let (stats, _) = crawl_worker(
                        chunk,
                        &order,
                        &ticket,
                        &injector,
                        &costs,
                        &config,
                        store,
                        None,
                        w as u64,
                        workers as u64,
                        false,
                    );
                    let pending: Vec<usize> =
                        injector.drain().into_iter().map(|i| base + i).collect();
                    (stats, pending)
                })
            })
            .collect();
        for handle in handles {
            let (chunk_stats, pending) = handle.join().expect("chunk worker panicked");
            stats.merge(&chunk_stats);
            queue.extend(pending);
        }
    });
    if !queue.is_empty() {
        queue.sort_by(|a, b| {
            jobs[*a]
                .site
                .domain
                .as_str()
                .cmp(jobs[*b].site.domain.as_str())
        });
        recrawl_pass(jobs, &queue, config, store, &mut stats, None, None);
    }
    stats
}

/// Deterministic simulated duration of a work-stealing pool: jobs are
/// handed out in queue order, each to the worker whose clock
/// (initialised to its staggered start) is earliest; the pool is done
/// when its busiest worker is. This is exactly the claim order a real
/// pool follows when visit wall time is real time.
fn greedy_makespan(costs: &[AtomicU64], workers: u64) -> u64 {
    let costs: Vec<u64> = costs.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    simulated_makespan(&costs, workers)
}

/// [`greedy_makespan`] over a plain cost slice — the same greedy
/// earliest-free-worker replay, exposed so the campaign service can
/// price a campaign's schedule from its own per-job cost vector.
pub fn simulated_makespan(costs: &[u64], workers: u64) -> u64 {
    let mut clocks: BinaryHeap<Reverse<u64>> = (0..workers)
        .map(|w| Reverse(w * VISIT_WALL_MS / workers.max(1)))
        .collect();
    for cost in costs {
        let Reverse(clock) = clocks.pop().expect("at least one worker");
        clocks.push(Reverse(clock + cost));
    }
    clocks.into_iter().map(|Reverse(t)| t).max().unwrap_or(0)
}

/// §3.1: ping 8.8.8.8 before each visit — and before each retry, since
/// a backoff can sleep straight into an outage window. Waits out any
/// outage so measurement-side network problems never masquerade as
/// website failures.
fn wait_online(checker: &mut ConnectivityChecker, wall_ms: &mut u64, stats: &mut CrawlStats) {
    while !checker.ping(*wall_ms) {
        stats.connectivity_retries += 1;
        *wall_ms = checker.next_online(*wall_ms);
    }
}

/// One supervised browser attempt: looks up the visit's injected
/// faults, runs the browser under `catch_unwind`, and converts a panic
/// into a quarantined [`AttemptEnd::Crashed`] with whatever capture
/// prefix the payload salvaged.
fn attempt_visit(
    world: &mut World,
    config: &CrawlConfig,
    site: &WebSite,
    attempt: u32,
) -> AttemptEnd {
    let faults = config.faults.visit_faults(site.domain.as_str(), attempt);
    // AssertUnwindSafe: the closure owns the browser; the world's only
    // cross-visit state (DNS cache, counters) is left at worst
    // harmlessly stale by a mid-visit panic, and the visit's whole
    // record is quarantined anyway.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut browser = Browser::new(
            world,
            BrowserConfig {
                os: config.os,
                window_ms: config.window_ms,
                safe_browsing: false,
                incognito: true,
                pna: kt_browser::PnaMode::Off,
                crawl_internal: config.crawl_internal,
                profile: config.profile,
            },
            config.seed,
        );
        browser.visit_faulted(site, &faults)
    }));
    match outcome {
        Ok(result) => AttemptEnd::Outcome(result.outcome, result.domain, result.capture.events),
        Err(payload) => {
            // A cooperative panic carries the capture prefix; anything
            // else (a genuine bug) quarantines with an empty capture.
            let events = match payload.downcast::<SalvagedVisit>() {
                Ok(salvaged) => salvaged.events,
                Err(_) => Vec::new(),
            };
            AttemptEnd::Crashed(events)
        }
    }
}

/// Build one visit's telemetry record.
fn make_record(
    config: &CrawlConfig,
    job: &CrawlJob<'_>,
    domain: String,
    outcome: LoadOutcome,
    loaded_at_ms: u64,
    events: Vec<NetLogEvent>,
) -> VisitRecord {
    VisitRecord {
        crawl: config.crawl.clone(),
        domain,
        rank: job.site.rank,
        malicious_category: job.malicious_category,
        os: config.os,
        outcome,
        loaded_at_ms,
        events,
    }
}

/// Append one visit record, retrying once when the fault plan injects
/// a store-append failure (the retry, like a real fsync hiccup's,
/// succeeds).
fn append_record(
    store: &TelemetryStore,
    stats: &mut CrawlStats,
    config: &CrawlConfig,
    record: &VisitRecord,
    attempt: u32,
) {
    if config
        .faults
        .injects(Fault::StoreAppendFailure, &record.domain, attempt)
    {
        stats.store_retries += 1;
    }
    store.append(record);
}

/// Frame one visit's terminal verdict in the write-ahead journal:
/// the full record plus the stats delta accumulated since `before`
/// (the snapshot taken when the job was claimed). Called *after* the
/// stats mutations and store append of the terminal arm, so the delta
/// captures everything the visit contributed — including retries and
/// store-append retries. A [`Fault::ProcessKill`] drawn for this
/// `(domain, attempt)` tears the frame mid-write and latches the
/// journal's kill switch, exactly like power loss under the writer.
#[allow(clippy::too_many_arguments)]
fn journal_visit(
    journal: Option<&JournalWriter>,
    config: &CrawlConfig,
    stats: &CrawlStats,
    before: &CrawlStats,
    record: &VisitRecord,
    cost_ms: u64,
    flags: u8,
    attempt: u32,
) {
    if let Some(journal) = journal {
        let delta = stats.delta_since(before, cost_ms);
        let kill = config
            .faults
            .injects(Fault::ProcessKill, &record.domain, attempt);
        journal.append_visit(record, &delta, flags, kill);
    }
}

/// One pool job's terminal outcome, for callers that need the record
/// itself: the resident campaign service streams it into online
/// aggregation; the batch pool drops it (the store already holds it).
#[derive(Debug)]
pub struct PoolJobEnd {
    /// The terminal visit record (already appended to the store and,
    /// when journaling, framed in the journal).
    pub record: VisitRecord,
    /// The job's whole simulated cost: visits, backoffs, outage waits.
    pub cost_ms: u64,
    /// True when the site was parked for the end-of-campaign recrawl
    /// pass (its stats verdict is deferred to that pass).
    pub parked: bool,
    /// Span status label: "success", "crashed", "error", or "parked".
    pub status: &'static str,
}

/// Run one site through the supervised attempt loop — the unit of work
/// a pool worker claims. Builds the per-site [`World`], runs the
/// connectivity pre-check before every attempt, retries transient
/// failures in place with deterministic backoff, appends the terminal
/// record to the store, frames it in the journal, and records spans
/// into `ring`. Mutates the caller's `stats` and `wall_ms` exactly as
/// the pool worker's loop always has; extracting it changes nothing
/// observable (the worker-invariance and journal tests pin this).
///
/// The campaign service calls this directly — one job per campaign per
/// scheduling round — so multiplexed campaigns reuse the identical
/// visit machinery and their results stay byte-identical to a batch
/// run of the same campaign.
#[allow(clippy::too_many_arguments)]
pub fn run_pool_job(
    job: &CrawlJob<'_>,
    config: &CrawlConfig,
    store: &TelemetryStore,
    journal: Option<&JournalWriter>,
    checker: &mut ConnectivityChecker,
    stats: &mut CrawlStats,
    wall_ms: &mut u64,
    worker_id: u64,
    mut ring: Option<&mut SpanRing>,
) -> PoolJobEnd {
    let job_start_ms = *wall_ms;
    // Snapshot for the journal's per-visit stats delta: everything
    // this job adds to the tally lands between here and its terminal
    // arm.
    let before = stats.clone();
    // A per-site world — its own DNS cache and latency stream, like a
    // dedicated VM — built once per job and reused across that job's
    // retries. Site fates are installed from (domain, seed) alone, so
    // a single-site world observes exactly what a whole-population
    // world would.
    let mut world = World::build(std::slice::from_ref(job.site), config.os, config.seed);
    let mut attempt: u32 = 0;
    loop {
        wait_online(checker, wall_ms, stats);
        let end = attempt_visit(&mut world, config, job.site, attempt);
        *wall_ms += VISIT_WALL_MS;
        match end {
            AttemptEnd::Crashed(events) => {
                // Quarantine immediately: a crash is a measurement
                // artifact, not a website failure — no retries.
                stats.record_crash();
                let record = make_record(
                    config,
                    job,
                    job.site.domain.as_str().to_string(),
                    LoadOutcome::Crashed,
                    0,
                    events,
                );
                append_record(store, stats, config, &record, attempt);
                journal_visit(
                    journal,
                    config,
                    stats,
                    &before,
                    &record,
                    *wall_ms - job_start_ms,
                    FLAG_FINAL,
                    attempt,
                );
                visit_span(
                    ring.as_deref_mut(),
                    worker_id,
                    job_start_ms,
                    *wall_ms,
                    &record.domain,
                    "crashed",
                );
                return PoolJobEnd {
                    record,
                    cost_ms: *wall_ms - job_start_ms,
                    parked: false,
                    status: "crashed",
                };
            }
            AttemptEnd::Outcome(PageLoadOutcome::Loaded { at_ms }, domain, events) => {
                stats.record_success();
                if attempt > 0 {
                    stats.recovered += 1;
                }
                let record = make_record(config, job, domain, LoadOutcome::Success, at_ms, events);
                append_record(store, stats, config, &record, attempt);
                journal_visit(
                    journal,
                    config,
                    stats,
                    &before,
                    &record,
                    *wall_ms - job_start_ms,
                    FLAG_FINAL,
                    attempt,
                );
                visit_span(
                    ring.as_deref_mut(),
                    worker_id,
                    job_start_ms,
                    *wall_ms,
                    &record.domain,
                    "success",
                );
                return PoolJobEnd {
                    record,
                    cost_ms: *wall_ms - job_start_ms,
                    parked: false,
                    status: "success",
                };
            }
            AttemptEnd::Outcome(PageLoadOutcome::Failed(err), domain, events) => {
                let transient = is_transient(err);
                if transient && attempt + 1 < config.retry.max_attempts {
                    stats.retries += 1;
                    if let Some(ring) = ring.as_deref_mut() {
                        ring.event(EventRecord {
                            name: "retry",
                            worker: worker_id as u32,
                            at_ms: *wall_ms,
                            target: domain.clone(),
                            detail: err.name().to_string(),
                        });
                    }
                    *wall_ms += config.retry.backoff_ms(config.seed, &domain, attempt + 1);
                    attempt += 1;
                    continue;
                }
                let record = make_record(config, job, domain, LoadOutcome::Error(err), 0, events);
                append_record(store, stats, config, &record, attempt);
                let parked = transient && config.retry.recrawl;
                if !parked {
                    stats.record_failure(err);
                }
                // A parked site's frame is non-final (flags 0):
                // resume sends it straight to the recrawl queue.
                journal_visit(
                    journal,
                    config,
                    stats,
                    &before,
                    &record,
                    *wall_ms - job_start_ms,
                    if parked { 0 } else { FLAG_FINAL },
                    attempt,
                );
                let status = if parked { "parked" } else { "error" };
                visit_span(
                    ring.as_deref_mut(),
                    worker_id,
                    job_start_ms,
                    *wall_ms,
                    &record.domain,
                    status,
                );
                return PoolJobEnd {
                    record,
                    cost_ms: *wall_ms - job_start_ms,
                    parked,
                    status,
                };
            }
        }
    }
}

/// One worker's loop: claim jobs off the shared ticket until the queue
/// drains. Returns the worker's private stats tally (merged by the
/// supervisor at join) plus, when `spans` is on, its span ring — one
/// simulated-clock span per terminal visit, one event per in-place
/// retry, recorded lock-free into worker-owned memory. Sites whose
/// transient failures exhausted their in-place retries are parked on
/// the shared `injector` for the end-of-campaign recrawl pass (their
/// stats verdict is deferred to that pass).
#[allow(clippy::too_many_arguments)]
fn crawl_worker(
    jobs: &[CrawlJob<'_>],
    order: &[usize],
    ticket: &JobTicket,
    injector: &PendingInjector,
    costs: &[AtomicU64],
    config: &CrawlConfig,
    store: &TelemetryStore,
    journal: Option<&JournalWriter>,
    worker_id: u64,
    workers: u64,
    spans: bool,
) -> (CrawlStats, Option<SpanRing>) {
    let mut checker = ConnectivityChecker::with_outages(config.outages.clone());
    let mut ring = spans.then(|| SpanRing::new(SPAN_RING_CAP));
    let mut stats = CrawlStats::new();
    // Staggered start: spread workers evenly across one visit's
    // wall-clock span. The old `wall_ms = worker_id` start (offsets of
    // 0, 1, 2… *milliseconds*) parked every worker's clock inside the
    // same outage windows.
    let mut wall_ms: u64 = worker_id * VISIT_WALL_MS / workers.max(1);
    // Startup connectivity check, before touching the queue: keeps the
    // outage accounting independent of claim races — worker 0's ping
    // at wall zero happens whether or not it wins a single job.
    wait_online(&mut checker, &mut wall_ms, &mut stats);
    while let Some(t) = ticket.claim() {
        // The process "died" mid-frame: stop claiming. Peers observe
        // the same latch; the campaign is abandoned for `resume`.
        if journal.is_some_and(|j| j.killed()) {
            break;
        }
        let i = order[t];
        let job = &jobs[i];
        let end = run_pool_job(
            job,
            config,
            store,
            journal,
            &mut checker,
            &mut stats,
            &mut wall_ms,
            worker_id,
            ring.as_mut(),
        );
        if end.parked {
            // Verdict deferred: the recrawl pass decides whether this
            // becomes a Table 1 error. The failure record already in
            // the store stands until (unless) that pass overwrites it.
            injector.push(i);
        }
        // The job's simulated cost — visits, backoffs, outage waits —
        // feeds the supervisor's deterministic schedule replay.
        costs[i].store(end.cost_ms, Ordering::Relaxed);
    }
    // The worker's contribution to the simulated campaign duration is
    // where its wall clock ended up; under a static chunk assignment
    // (the chunked scheduler) this *is* the schedule. `run_crawl`
    // overrides the merged value with its deterministic greedy replay.
    stats.makespan_ms = wall_ms;
    (stats, ring)
}

/// Record one terminal visit span into a worker's ring (if tracing).
fn visit_span(
    ring: Option<&mut SpanRing>,
    worker_id: u64,
    start_ms: u64,
    end_ms: u64,
    target: &str,
    status: &'static str,
) {
    if let Some(ring) = ring {
        ring.span(SpanRecord {
            name: "visit",
            worker: worker_id as u32,
            start_ms,
            end_ms,
            target: target.to_string(),
            status,
        });
    }
}

/// One site's final recrawl visit — the unit of work the
/// end-of-campaign pass (and the campaign service's recrawl phase)
/// performs. The visit is attempt number `max_attempts`: the first
/// fresh fault/backoff draw past the in-place attempts. The caller
/// owns the pass-wide [`World`] (the recrawl builds one world over its
/// whole queue, unlike the pool's per-site worlds) and the restarted
/// wall clock. Returns the terminal record for streaming consumers;
/// the store and journal already hold it.
#[allow(clippy::too_many_arguments)]
pub fn run_recrawl_job(
    job: &CrawlJob<'_>,
    config: &CrawlConfig,
    store: &TelemetryStore,
    journal: Option<&JournalWriter>,
    world: &mut World,
    checker: &mut ConnectivityChecker,
    stats: &mut CrawlStats,
    wall_ms: &mut u64,
    ring: Option<&mut SpanRing>,
) -> VisitRecord {
    let attempt = config.retry.max_attempts;
    let before = stats.clone();
    stats.recrawled += 1;
    wait_online(checker, wall_ms, stats);
    let (record, status) = match attempt_visit(world, config, job.site, attempt) {
        AttemptEnd::Crashed(events) => {
            stats.record_crash();
            (
                make_record(
                    config,
                    job,
                    job.site.domain.as_str().to_string(),
                    LoadOutcome::Crashed,
                    0,
                    events,
                ),
                "crashed",
            )
        }
        AttemptEnd::Outcome(PageLoadOutcome::Loaded { at_ms }, domain, events) => {
            stats.record_success();
            stats.recovered += 1;
            // Overwrites the pass-one failure record: the store is
            // last-write-wins per (crawl, domain, os).
            (
                make_record(config, job, domain, LoadOutcome::Success, at_ms, events),
                "recovered",
            )
        }
        AttemptEnd::Outcome(PageLoadOutcome::Failed(err), domain, events) => {
            stats.record_failure(err);
            stats.gave_up += 1;
            (
                make_record(config, job, domain, LoadOutcome::Error(err), 0, events),
                "gave_up",
            )
        }
    };
    append_record(store, stats, config, &record, attempt);
    // Each recrawl visit costs exactly one wall slot (the pass is
    // serial and outage waits are schedule-, not site-, owned), so
    // the journaled cost is the constant — resume adds one slot
    // back per surviving recrawl frame.
    journal_visit(
        journal,
        config,
        stats,
        &before,
        &record,
        VISIT_WALL_MS,
        FLAG_FINAL | FLAG_RECRAWL,
        attempt,
    );
    if let Some(ring) = ring {
        ring.span(SpanRecord {
            name: "recrawl",
            worker: u32::MAX,
            start_ms: *wall_ms,
            end_ms: *wall_ms + VISIT_WALL_MS,
            target: record.domain.clone(),
            status,
        });
    }
    *wall_ms += VISIT_WALL_MS;
    record
}

/// The end-of-campaign recrawl: transiently-failing sites get one
/// final visit before their errors are allowed into Table 1.
/// Single-threaded, in domain order, with a fresh world and a wall
/// clock restarted at zero — all independent of the original worker
/// layout, so results stay stable across worker counts. Recrawl spans
/// report as worker `u32::MAX` (the pass is the supervisor's, not any
/// pool worker's).
#[allow(clippy::too_many_arguments)]
fn recrawl_pass(
    jobs: &[CrawlJob<'_>],
    queue: &[usize],
    config: &CrawlConfig,
    store: &TelemetryStore,
    stats: &mut CrawlStats,
    journal: Option<&JournalWriter>,
    mut ring: Option<&mut SpanRing>,
) {
    let sites: Vec<WebSite> = queue.iter().map(|&i| jobs[i].site.clone()).collect();
    let mut world = World::build(&sites, config.os, config.seed);
    let mut checker = ConnectivityChecker::with_outages(config.outages.clone());
    let mut wall_ms: u64 = 0;
    // The recrawl visit is attempt number `max_attempts`: the first
    // fresh fault/backoff draw past the in-place attempts.
    for &index in queue {
        if journal.is_some_and(|j| j.killed()) {
            break;
        }
        let job = &jobs[index];
        run_recrawl_job(
            job,
            config,
            store,
            journal,
            &mut world,
            &mut checker,
            stats,
            &mut wall_ms,
            ring.as_deref_mut(),
        );
    }
    // The recrawl is a serial coda after the parallel phase: it
    // extends the campaign rather than overlapping it.
    stats.makespan_ms += wall_ms;
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_netbase::DomainName;
    use kt_netlog::NetError;
    use kt_webgen::{Availability, WebSite};

    fn sites(n: usize) -> Vec<WebSite> {
        (0..n)
            .map(|i| {
                let mut s = WebSite::plain(
                    DomainName::parse(&format!("site{i}.example")).unwrap(),
                    Some(i as u32 + 1),
                    3,
                );
                if i % 10 == 9 {
                    s.set_availability_all(Availability::NxDomain);
                }
                s
            })
            .collect()
    }

    fn jobs(sites: &[WebSite]) -> Vec<CrawlJob<'_>> {
        sites
            .iter()
            .map(|site| CrawlJob {
                site,
                malicious_category: None,
            })
            .collect()
    }

    #[test]
    fn crawl_visits_every_site() {
        let population = sites(40);
        let store = TelemetryStore::new();
        let config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 5);
        let stats = run_crawl(&jobs(&population), &config, &store);
        assert_eq!(stats.attempted, 40);
        assert_eq!(stats.failed(), 4, "every 10th site is NXDOMAIN");
        assert_eq!(store.len(), 40);
        assert_eq!(stats.failure_count(NetError::NameNotResolved), 4);
    }

    #[test]
    fn stats_are_stable_across_worker_counts() {
        let population = sites(30);
        let mut baseline = None;
        for workers in [1, 2, 4, 8] {
            let store = TelemetryStore::new();
            let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Windows, 5);
            config.workers = workers;
            let stats = run_crawl(&jobs(&population), &config, &store);
            match &baseline {
                None => baseline = Some(stats),
                Some(b) => {
                    assert_eq!(&stats.attempted, &b.attempted, "workers={workers}");
                    assert_eq!(&stats.failures, &b.failures, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn faulty_stats_and_store_are_stable_across_worker_counts() {
        // The acceptance bar for the fault layer: a fixed seed and a
        // fixed fault plan give byte-identical stats (including the
        // resilience counters) and store contents whatever the worker
        // count, because every draw is keyed by site identity and
        // attempt number.
        let population = sites(30);
        let plan = FaultPlan::none(7)
            .with_rate(Fault::DnsFlap, 0.2)
            .with_rate(Fault::ConnectionReset, 0.2)
            .with_rate(Fault::TruncatedCapture, 0.15)
            .with_rate(Fault::StoreAppendFailure, 0.15)
            .with_rate(Fault::WorkerPanic, 0.1);
        let mut baseline: Option<(CrawlStats, Vec<VisitRecord>)> = None;
        for workers in [1, 2, 4, 8] {
            let store = TelemetryStore::new();
            let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Windows, 7);
            config.workers = workers;
            config.faults = plan.clone();
            let mut stats = run_crawl(&jobs(&population), &config, &store);
            // Worker staggering interacts with outage windows and the
            // makespan measures the schedule itself, so those two are
            // the only legitimately schedule-dependent numbers.
            stats.connectivity_retries = 0;
            stats.makespan_ms = 0;
            let mut records = store.crawl_records_on(&CrawlId::top2020(), Os::Windows);
            records.sort_by(|a, b| a.domain.cmp(&b.domain));
            assert_eq!(records.len(), 30, "workers={workers}");
            match &baseline {
                None => baseline = Some((stats, records)),
                Some((b_stats, b_records)) => {
                    assert_eq!(&stats, b_stats, "workers={workers}");
                    assert_eq!(&records, b_records, "workers={workers}");
                }
            }
        }
        let (stats, _) = baseline.unwrap();
        assert!(stats.retries > 0, "the plan should exercise retries");
        assert!(stats.crashed > 0, "the plan should exercise quarantine");
    }

    #[test]
    fn store_bytes_are_identical_across_worker_counts() {
        // The PR's determinism bar, at the byte level: 1, 3, and 8
        // workers produce encoded records that compare equal byte for
        // byte, and identical stats — claim order never leaks into
        // telemetry.
        let population = sites(24);
        let plan = FaultPlan::none(9)
            .with_rate(Fault::ConnectionReset, 0.25)
            .with_rate(Fault::WorkerPanic, 0.1);
        let mut baseline: Option<(CrawlStats, Vec<Vec<u8>>)> = None;
        for workers in [1, 3, 8] {
            let store = TelemetryStore::new();
            let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::MacOs, 9);
            config.workers = workers;
            config.faults = plan.clone();
            let mut stats = run_crawl(&jobs(&population), &config, &store);
            stats.connectivity_retries = 0;
            stats.makespan_ms = 0;
            // `crawl_records` already returns (domain, os)-sorted rows,
            // so the byte streams line up positionally.
            let bytes: Vec<Vec<u8>> = store
                .crawl_records(&CrawlId::top2020())
                .iter()
                .map(|r| kt_store::codec::encode(r).as_ref().to_vec())
                .collect();
            assert_eq!(bytes.len(), 24, "workers={workers}");
            match &baseline {
                None => baseline = Some((stats, bytes)),
                Some((b_stats, b_bytes)) => {
                    assert_eq!(&stats, b_stats, "workers={workers}");
                    assert_eq!(&bytes, b_bytes, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn chunked_and_stealing_schedulers_produce_identical_results() {
        // The ablation baseline must stay result-equivalent: only the
        // wall-clock schedule may differ between static chunking and
        // work stealing.
        let population = sites(20);
        let plan = FaultPlan::none(3)
            .with_rate(Fault::DnsFlap, 0.2)
            .with_rate(Fault::ConnectionReset, 0.2);
        let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 3);
        config.faults = plan;
        let run = |f: fn(&[CrawlJob<'_>], &CrawlConfig, &TelemetryStore) -> CrawlStats| {
            let store = TelemetryStore::new();
            let mut stats = f(&jobs(&population), &config, &store);
            stats.connectivity_retries = 0;
            stats.makespan_ms = 0;
            (stats, store.crawl_records(&CrawlId::top2020()))
        };
        assert_eq!(run(run_crawl), run(run_crawl_chunked));
    }

    #[test]
    fn work_stealing_halves_the_makespan_on_a_skewed_population() {
        // The scheduler's reason to exist: heavy sites (every attempt
        // draws a reset, so each burns max_attempts visits plus
        // backoffs) sorted contiguously at the front land in one
        // static chunk and gate the whole campaign; work stealing
        // spreads them. Outcome counters stay identical — only the
        // simulated makespan may differ, and it must differ by ≥2×.
        let plan = FaultPlan::none(13).with_rate(Fault::ConnectionReset, 0.5);
        let mut heavy = Vec::new();
        let mut light = Vec::new();
        let mut candidate = 0;
        while heavy.len() < 8 || light.len() < 56 {
            let name = format!("skew{candidate}.example");
            candidate += 1;
            let first_two = plan.injects(Fault::ConnectionReset, &name, 0)
                && plan.injects(Fault::ConnectionReset, &name, 1);
            let bucket = if first_two { &mut heavy } else { &mut light };
            let target = if first_two { 8 } else { 56 };
            if bucket.len() < target {
                bucket.push(WebSite::plain(
                    DomainName::parse(&name).unwrap(),
                    Some(bucket.len() as u32 + 1),
                    3,
                ));
            }
        }
        heavy.extend(light);
        let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 13);
        config.workers = 8;
        config.faults = plan;
        config.retry = RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 5_000,
            max_backoff_ms: 60_000,
            recrawl: false,
        };
        let population = jobs(&heavy);
        let steal_store = TelemetryStore::new();
        let stealing = run_crawl(&population, &config, &steal_store);
        let chunk_store = TelemetryStore::new();
        let chunked = run_crawl_chunked(&population, &config, &chunk_store);
        assert_eq!(stealing.attempted, chunked.attempted);
        assert_eq!(stealing.failures, chunked.failures);
        assert_eq!(
            steal_store.crawl_records(&CrawlId::top2020()),
            chunk_store.crawl_records(&CrawlId::top2020())
        );
        assert!(
            stealing.makespan_ms * 2 <= chunked.makespan_ms,
            "stealing {} ms vs chunked {} ms",
            stealing.makespan_ms,
            chunked.makespan_ms
        );
    }

    #[test]
    fn records_are_keyed_by_crawl_and_os() {
        let population = sites(5);
        let store = TelemetryStore::new();
        for os in [Os::Windows, Os::Linux] {
            let config = CrawlConfig::paper(CrawlId::top2020(), os, 5);
            run_crawl(&jobs(&population), &config, &store);
        }
        assert_eq!(store.len(), 10);
        assert!(store
            .get(&CrawlId::top2020(), "site0.example", Os::Windows)
            .is_some());
        assert!(store
            .get(&CrawlId::top2020(), "site0.example", Os::MacOs)
            .is_none());
    }

    #[test]
    fn outages_delay_but_do_not_fail() {
        let population = sites(10);
        let store = TelemetryStore::new();
        let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 5);
        config.workers = 1;
        config.outages = vec![Outage {
            start: 0,
            end: 50_000,
        }];
        let stats = run_crawl(&jobs(&population), &config, &store);
        assert!(stats.connectivity_retries > 0);
        assert_eq!(stats.attempted, 10, "every site still crawled");
        assert_eq!(stats.failed(), 1, "only the genuine NXDOMAIN fails");
    }

    #[test]
    fn staggered_workers_do_not_share_outage_windows() {
        // Workers used to start at wall_ms = worker_id — offsets of
        // 0, 1, 2, 3 *milliseconds*, so one outage at the crawl's
        // start stalled all four workers. The stagger now spreads
        // starts across a visit span (0 / 5250 / 10500 / 15750 ms for
        // four workers): an outage over [0, 5000) catches only
        // worker 0's first ping.
        let population = sites(8);
        let store = TelemetryStore::new();
        let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 5);
        config.outages = vec![Outage {
            start: 0,
            end: 5_000,
        }];
        let stats = run_crawl(&jobs(&population), &config, &store);
        assert_eq!(
            stats.connectivity_retries, 1,
            "only worker 0 starts inside the outage"
        );
        assert_eq!(stats.attempted, 8);
        assert_eq!(stats.failed(), 0);
    }

    #[test]
    fn outage_starting_mid_backoff_is_waited_out() {
        // Attempt 0 ends at 21 s; the backoff pushes the retry past
        // 26 s; an outage opening at 22 s must be caught by the
        // pre-retry ping rather than crawled through.
        let site = WebSite::plain(DomainName::parse("flaky.example").unwrap(), Some(1), 3);
        let store = TelemetryStore::new();
        let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 5);
        config.workers = 1;
        config.faults = FaultPlan::none(5).with_first_attempts(Fault::ConnectionReset, 1);
        config.outages = vec![Outage {
            start: 22_000,
            end: 600_000,
        }];
        let job = [CrawlJob {
            site: &site,
            malicious_category: None,
        }];
        let stats = run_crawl(&job, &config, &store);
        assert_eq!(stats.retries, 1);
        assert!(
            stats.connectivity_retries >= 1,
            "the retry pinged into the outage"
        );
        assert_eq!(
            stats.successful, 1,
            "retry succeeded once the outage lifted"
        );
        assert_eq!(stats.recovered, 1);
    }

    #[test]
    fn injected_panics_never_abort_the_campaign() {
        // Every visit panics: all six are quarantined as Crashed
        // records, the workers keep going, and the campaign accounts
        // for every job.
        let population = sites(6);
        let store = TelemetryStore::new();
        let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 5);
        config.workers = 2;
        config.faults = FaultPlan::none(5).with_rate(Fault::WorkerPanic, 1.0);
        let stats = run_crawl(&jobs(&population), &config, &store);
        assert_eq!(stats.attempted, 6, "no job lost to a panic");
        assert_eq!(stats.crashed, 6, "every visit quarantined");
        assert_eq!(store.len(), 6);
        let records = store.crawl_records_on(&CrawlId::top2020(), Os::Linux);
        assert!(records.iter().all(|r| r.outcome.is_crashed()));
    }

    #[test]
    fn transient_failure_recovers_in_place() {
        // A single reset on attempt 0; the in-place retry (attempt 1)
        // succeeds, so the site never reaches the recrawl queue and
        // the store holds a success.
        let site = WebSite::plain(DomainName::parse("wobbly.example").unwrap(), Some(1), 3);
        let store = TelemetryStore::new();
        let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 11);
        config.workers = 1;
        config.faults = FaultPlan::none(11).with_first_attempts(Fault::ConnectionReset, 1);
        let job = [CrawlJob {
            site: &site,
            malicious_category: None,
        }];
        let stats = run_crawl(&job, &config, &store);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.recrawled, 0);
        assert_eq!(stats.recovered, 1);
        assert_eq!(stats.successful, 1);
        assert_eq!(stats.failed(), 0);
        let record = store
            .get(&CrawlId::top2020(), "wobbly.example", Os::Linux)
            .unwrap();
        assert!(record.outcome.is_success());
    }

    #[test]
    fn exhausted_transients_go_to_the_recrawl_queue() {
        // Resets on attempts 0 and 1 exhaust the paper policy's
        // in-place budget (max_attempts = 2); the recrawl pass
        // (attempt 2) is clean and overwrites the failure record.
        let site = WebSite::plain(DomainName::parse("stubborn.example").unwrap(), Some(1), 3);
        let store = TelemetryStore::new();
        let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 11);
        config.workers = 1;
        config.faults = FaultPlan::none(11).with_first_attempts(Fault::ConnectionReset, 2);
        let job = [CrawlJob {
            site: &site,
            malicious_category: None,
        }];
        let stats = run_crawl(&job, &config, &store);
        assert_eq!(stats.retries, 1, "one in-place retry before parking");
        assert_eq!(stats.recrawled, 1);
        assert_eq!(stats.recovered, 1);
        assert_eq!(stats.gave_up, 0);
        assert_eq!(stats.attempted, 1, "the site still counts exactly once");
        assert_eq!(stats.failed(), 0, "no Table 1 error for a recovered site");
        let record = store
            .get(&CrawlId::top2020(), "stubborn.example", Os::Linux)
            .unwrap();
        assert!(record.outcome.is_success(), "recrawl overwrote the failure");
    }

    #[test]
    fn permanently_failing_transients_give_up() {
        // Resets on every attempt including the recrawl: the site ends
        // as a genuine CONN_RESET row in Table 1 with gave_up = 1.
        let site = WebSite::plain(DomainName::parse("dead.example").unwrap(), Some(1), 3);
        let store = TelemetryStore::new();
        let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 11);
        config.workers = 1;
        config.faults = FaultPlan::none(11).with_first_attempts(Fault::ConnectionReset, 3);
        let job = [CrawlJob {
            site: &site,
            malicious_category: None,
        }];
        let stats = run_crawl(&job, &config, &store);
        assert_eq!(stats.recrawled, 1);
        assert_eq!(stats.gave_up, 1);
        assert_eq!(stats.recovered, 0);
        assert_eq!(stats.failure_count(NetError::ConnectionReset), 1);
        assert_eq!(stats.failed(), 1);
        let record = store
            .get(&CrawlId::top2020(), "dead.example", Os::Linux)
            .unwrap();
        assert_eq!(
            record.outcome,
            LoadOutcome::Error(NetError::ConnectionReset)
        );
    }

    #[test]
    fn store_append_faults_are_retried_and_counted() {
        let population = sites(4);
        let store = TelemetryStore::new();
        let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 5);
        config.workers = 1;
        config.faults = FaultPlan::none(5).with_first_attempts(Fault::StoreAppendFailure, 1);
        let stats = run_crawl(&jobs(&population), &config, &store);
        assert_eq!(stats.store_retries, 4, "every site's first append retried");
        assert_eq!(store.len(), 4, "no record lost");
    }

    #[test]
    fn empty_job_list_is_fine() {
        let store = TelemetryStore::new();
        let config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 5);
        let stats = run_crawl(&[], &config, &store);
        assert_eq!(stats.attempted, 0);
        assert!(store.is_empty());
    }

    // ---- write-ahead journal integration ----

    use crate::resume::split_campaigns;
    use kt_store::journal::{replay, JournalWriter, KillMode, KillSpec};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "kt-crawl-journal-{name}-{}.ktj",
            std::process::id()
        ))
    }

    /// A fault plan that exercises retries, recrawls, quarantines, and
    /// store-append retries all at once.
    fn stormy_plan(seed: u64) -> FaultPlan {
        FaultPlan::none(seed)
            .with_rate(Fault::DnsFlap, 0.2)
            .with_rate(Fault::ConnectionReset, 0.25)
            .with_rate(Fault::WorkerPanic, 0.1)
            .with_rate(Fault::StoreAppendFailure, 0.15)
    }

    #[test]
    fn journaling_never_perturbs_results_and_replay_rebuilds_the_run() {
        let population = sites(24);
        let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Windows, 7);
        config.faults = stormy_plan(7);
        let baseline_store = TelemetryStore::new();
        let baseline = run_crawl(&jobs(&population), &config, &baseline_store);

        let path = tmp("no-perturb");
        let journal = JournalWriter::create(&path).unwrap();
        let live_store = TelemetryStore::new();
        let live = run_crawl_journaled(&jobs(&population), &config, &live_store, Some(&journal));
        journal.sync();
        assert!(!journal.killed());
        assert_eq!(live, baseline, "journalling must not perturb stats");
        assert_eq!(
            live_store.crawl_records(&CrawlId::top2020()),
            baseline_store.crawl_records(&CrawlId::top2020()),
        );

        // The journal alone rebuilds the store and (modulo the
        // schedule-owned fields) the whole tally.
        let report = replay(&path).unwrap();
        assert_eq!(report.corrupt_frames, 0);
        assert!(!report.truncated_tail);
        assert_eq!(
            report.store.crawl_records(&CrawlId::top2020()),
            baseline_store.crawl_records(&CrawlId::top2020()),
        );
        let campaigns = split_campaigns(&report.visits, &report.checkpoints);
        let key = ("top2020".to_string(), "Windows".to_string());
        let plan = campaigns[&key].plan(&jobs(&population));
        assert!(plan.nothing_to_run(), "every job has a final frame");
        let mut rebuilt = plan.prior.clone();
        rebuilt.makespan_ms = baseline.makespan_ms;
        assert_eq!(rebuilt, baseline, "deltas rebuild the Table 1 tally");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kill_at_any_frame_then_resume_reproduces_the_uninterrupted_run() {
        let population = sites(18);
        let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 11);
        config.faults = stormy_plan(11);
        let baseline_store = TelemetryStore::new();
        let baseline = run_crawl(&jobs(&population), &config, &baseline_store);
        let baseline_records = baseline_store.crawl_records(&CrawlId::top2020());
        let key = ("top2020".to_string(), "Linux".to_string());

        for at_frame in [0, 2, 5, 9, 14] {
            for mode in [KillMode::MidFrame, KillMode::PostFrame] {
                let path = tmp(&format!("kill-{at_frame}-{mode:?}"));
                let journal = JournalWriter::create(&path).unwrap();
                journal.set_kill(Some(KillSpec { at_frame, mode }));
                let dying_store = TelemetryStore::new();
                let _ =
                    run_crawl_journaled(&jobs(&population), &config, &dying_store, Some(&journal));
                assert!(journal.killed(), "frame {at_frame} must be reached");

                // Recovery: replay what survived, plan the remainder,
                // and run it on top of the replayed store.
                let report = replay(&path).unwrap();
                let campaigns = split_campaigns(&report.visits, &report.checkpoints);
                let plan = campaigns
                    .get(&key)
                    .map(|c| c.plan(&jobs(&population)))
                    .unwrap_or_else(|| ResumePlan::fresh(population.len()));
                let resumed_journal = JournalWriter::open_append(&path).unwrap();
                let resumed = run_crawl_resumed(
                    &jobs(&population),
                    &plan,
                    &config,
                    &report.store,
                    Some(&resumed_journal),
                );
                assert_eq!(
                    resumed, baseline,
                    "kill@{at_frame}/{mode:?}: stats must match, makespan included"
                );
                assert_eq!(
                    report.store.crawl_records(&CrawlId::top2020()),
                    baseline_records,
                    "kill@{at_frame}/{mode:?}: store must match byte for byte"
                );
                std::fs::remove_file(&path).ok();
            }
        }
    }

    #[test]
    fn injected_process_kill_tears_the_journal_and_resume_recovers() {
        let population = sites(12);
        let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::MacOs, 23);
        // The kill draw rides along with ordinary faults; the plain
        // baseline carries the same plan (ProcessKill only fires when
        // a journal is attached, like power loss needs a power cord).
        config.faults = stormy_plan(23).with_rate(Fault::ProcessKill, 0.15);
        let baseline_store = TelemetryStore::new();
        let baseline = run_crawl(&jobs(&population), &config, &baseline_store);

        let path = tmp("process-kill");
        let journal = JournalWriter::create(&path).unwrap();
        let dying_store = TelemetryStore::new();
        let _ = run_crawl_journaled(&jobs(&population), &config, &dying_store, Some(&journal));
        assert!(
            journal.killed(),
            "a 15% per-visit kill rate over 12 sites must fire"
        );

        // Resume without re-arming the kill: a real power loss does
        // not deterministically recur at the same visit.
        let mut resume_config = config.clone();
        resume_config.faults = stormy_plan(23);
        let report = replay(&path).unwrap();
        assert!(report.truncated_tail, "the kill tears a frame mid-write");
        let campaigns = split_campaigns(&report.visits, &report.checkpoints);
        let key = ("top2020".to_string(), "Mac".to_string());
        let plan = campaigns
            .get(&key)
            .map(|c| c.plan(&jobs(&population)))
            .unwrap_or_else(|| ResumePlan::fresh(population.len()));
        let resumed_journal = JournalWriter::open_append(&path).unwrap();
        let resumed = run_crawl_resumed(
            &jobs(&population),
            &plan,
            &resume_config,
            &report.store,
            Some(&resumed_journal),
        );
        assert_eq!(resumed, baseline);
        assert_eq!(
            report.store.crawl_records(&CrawlId::top2020()),
            baseline_store.crawl_records(&CrawlId::top2020()),
        );
        std::fs::remove_file(&path).ok();
    }
}
