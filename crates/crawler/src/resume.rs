//! Resume planning: turn a replayed journal back into crawl work.
//!
//! A journal replay yields a flat sequence of visit frames and
//! checkpoints across every campaign the study ran. This module
//! regroups them per campaign `(crawl, os)` and, given that campaign's
//! job list, derives a [`ResumePlan`]: which jobs are already done
//! (their stats deltas and scheduler costs are folded back in), which
//! were parked awaiting the recrawl pass, and which never produced a
//! frame and must be re-run. Because every visit outcome is a pure
//! function of `(seed, domain, attempt)`, re-running the missing jobs
//! reproduces exactly the records and stats the crash destroyed —
//! which is what makes resumed analysis tables byte-identical.

use std::collections::BTreeMap;

use kt_store::journal::{CheckpointFrame, ReplayedVisit, VisitDelta, FLAG_FINAL, FLAG_RECRAWL};

use crate::crawl::CrawlJob;
use crate::stats::CrawlStats;

/// What a resumed campaign must still do, plus everything the journal
/// already proves done.
#[derive(Debug, Default)]
pub struct ResumePlan {
    /// Job indices to run through the worker pool.
    pub todo: Vec<usize>,
    /// Job indices whose pool pass finished in a parked (transient,
    /// awaiting-recrawl) state: they skip the pool and go straight to
    /// the end-of-campaign recrawl queue.
    pub preparked: Vec<usize>,
    /// Stats reconstructed from the journaled deltas of finished work
    /// (no makespan or connectivity — those are schedule-owned and are
    /// rebuilt by the runner).
    pub prior: CrawlStats,
    /// Per-job pool costs recovered from the journal, for the greedy
    /// makespan replay over the full job vector.
    pub prior_costs: Vec<(usize, u64)>,
    /// Serial recrawl wall-clock already spent (sites whose recrawl
    /// frame survived).
    pub prior_recrawl_wall_ms: u64,
}

impl ResumePlan {
    /// The no-journal plan: everything is todo.
    pub fn fresh(jobs: usize) -> ResumePlan {
        ResumePlan {
            todo: (0..jobs).collect(),
            ..ResumePlan::default()
        }
    }

    /// True when the journal already covers the whole campaign.
    pub fn nothing_to_run(&self) -> bool {
        self.todo.is_empty() && self.preparked.is_empty()
    }
}

/// One campaign's worth of replayed frames, keyed by domain. Per
/// domain the *last* frame of each pass wins (earlier ones are crash
/// duplicates or superseded retries), mirroring the store's
/// last-write-wins append.
#[derive(Debug, Default)]
pub struct CampaignReplay {
    /// Last pool-pass frame per domain: (delta, was-final).
    pool: BTreeMap<String, (VisitDelta, bool)>,
    /// Last recrawl-pass frame per domain (always final).
    recrawl: BTreeMap<String, VisitDelta>,
    /// The campaign's checkpoint stats, when one was journaled: the
    /// exact merged tally of the uninterrupted campaign, connectivity
    /// and makespan included.
    pub checkpoint: Option<CrawlStats>,
    /// The domains the checkpoint claims completed.
    completed: Vec<String>,
}

impl CampaignReplay {
    /// True when a checkpoint frame marked this campaign complete
    /// *and* every domain it claims still has a surviving final frame.
    /// A checkpoint can outlive a corrupted visit frame (fsck reports
    /// this as a missing record); restoring it verbatim would then
    /// silently drop that visit from the store, so such campaigns fall
    /// back to frame-level replay and re-run the damaged sites.
    pub fn checkpointed(&self) -> bool {
        self.checkpoint.is_some()
            && self.completed.iter().all(|domain| {
                self.pool.get(domain).is_some_and(|(_, fin)| *fin)
                    || self.recrawl.contains_key(domain)
            })
    }

    /// Number of domains with any surviving frame.
    pub fn domains(&self) -> usize {
        self.pool.len().max(self.recrawl.len())
    }

    /// The checkpointed stats, but only when the checkpoint is
    /// trustworthy per [`CampaignReplay::checkpointed`] — the one
    /// accessor resume paths should restore from.
    pub fn restored_stats(&self) -> Option<CrawlStats> {
        if self.checkpointed() {
            self.checkpoint.clone()
        } else {
            None
        }
    }

    /// Derive the resume plan for this campaign's job list.
    pub fn plan(&self, jobs: &[CrawlJob<'_>]) -> ResumePlan {
        let mut plan = ResumePlan::default();
        for (i, job) in jobs.iter().enumerate() {
            let domain = job.site.domain.as_str();
            let pool = self.pool.get(domain);
            let recrawl = self.recrawl.get(domain);
            if let Some((delta, _)) = pool {
                plan.prior.apply_delta(delta);
                plan.prior_costs.push((i, delta.cost_ms));
            }
            match (pool, recrawl) {
                (_, Some(rdelta)) => {
                    // Recrawl verdict survived: fully done.
                    plan.prior.apply_delta(rdelta);
                    plan.prior_recrawl_wall_ms += rdelta.cost_ms;
                }
                (Some((_, true)), None) => {
                    // Final in the pool pass: done.
                }
                (Some((_, false)), None) => {
                    // Parked awaiting recrawl when the crash hit.
                    plan.preparked.push(i);
                }
                (None, None) => plan.todo.push(i),
            }
        }
        plan
    }
}

/// Group replayed frames by campaign `(crawl id, os name)`.
pub fn split_campaigns(
    visits: &[ReplayedVisit],
    checkpoints: &[CheckpointFrame],
) -> BTreeMap<(String, String), CampaignReplay> {
    let mut campaigns: BTreeMap<(String, String), CampaignReplay> = BTreeMap::new();
    for visit in visits {
        let key = (
            visit.record.crawl.as_str().to_string(),
            visit.record.os.name().to_string(),
        );
        let campaign = campaigns.entry(key).or_default();
        let domain = visit.record.domain.clone();
        if visit.flags & FLAG_RECRAWL != 0 {
            campaign.recrawl.insert(domain, visit.delta.clone());
        } else {
            campaign
                .pool
                .insert(domain, (visit.delta.clone(), visit.flags & FLAG_FINAL != 0));
        }
    }
    for cp in checkpoints {
        let key = (cp.crawl.clone(), cp.os.clone());
        let campaign = campaigns.entry(key).or_default();
        // A checkpoint whose stats blob fails to decode is treated as
        // absent: the campaign falls back to frame-level replay.
        campaign.checkpoint = CrawlStats::from_bytes(&cp.stats);
        campaign.completed = cp.completed.clone();
    }
    campaigns
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_netbase::{DomainName, Os};
    use kt_store::{CrawlId, LoadOutcome, VisitRecord};
    use kt_webgen::WebSite;

    fn visit(domain: &str, flags: u8, cost: u64, os: Os) -> ReplayedVisit {
        ReplayedVisit {
            record: VisitRecord {
                crawl: CrawlId::top2020(),
                domain: domain.to_string(),
                rank: Some(1),
                malicious_category: None,
                os,
                outcome: LoadOutcome::Success,
                loaded_at_ms: 7,
                events: Vec::new(),
            },
            delta: VisitDelta {
                cost_ms: cost,
                attempted: u64::from(flags & FLAG_FINAL != 0),
                successful: u64::from(flags & FLAG_FINAL != 0),
                ..VisitDelta::default()
            },
            flags,
        }
    }

    #[test]
    fn plan_partitions_done_parked_and_missing() {
        let sites: Vec<WebSite> = ["done.example", "parked.example", "missing.example"]
            .iter()
            .map(|d| WebSite::plain(DomainName::parse(d).unwrap(), Some(1), 3))
            .collect();
        let jobs: Vec<CrawlJob<'_>> = sites
            .iter()
            .map(|site| CrawlJob {
                site,
                malicious_category: None,
            })
            .collect();
        let visits = vec![
            visit("done.example", FLAG_FINAL, 21_000, Os::Linux),
            visit("parked.example", 0, 30_000, Os::Linux),
        ];
        let campaigns = split_campaigns(&visits, &[]);
        let campaign = &campaigns[&("top2020".to_string(), "Linux".to_string())];
        let plan = campaign.plan(&jobs);
        assert_eq!(plan.todo, vec![2]);
        assert_eq!(plan.preparked, vec![1]);
        assert_eq!(plan.prior.attempted, 1, "only the final frame counts");
        assert_eq!(
            plan.prior_costs,
            vec![(0, 21_000), (1, 30_000)],
            "both surviving pool frames contribute scheduler costs"
        );
        assert!(!plan.nothing_to_run());
    }

    #[test]
    fn recrawl_frames_complete_parked_sites() {
        let sites = [WebSite::plain(
            DomainName::parse("flaky.example").unwrap(),
            Some(1),
            3,
        )];
        let jobs = [CrawlJob {
            site: &sites[0],
            malicious_category: None,
        }];
        let visits = vec![
            visit("flaky.example", 0, 40_000, Os::Linux),
            visit(
                "flaky.example",
                FLAG_FINAL | FLAG_RECRAWL,
                21_000,
                Os::Linux,
            ),
        ];
        let campaigns = split_campaigns(&visits, &[]);
        let plan = campaigns[&("top2020".to_string(), "Linux".to_string())].plan(&jobs);
        assert!(plan.nothing_to_run());
        assert_eq!(plan.prior_recrawl_wall_ms, 21_000);
        assert_eq!(plan.prior_costs, vec![(0, 40_000)]);
    }

    #[test]
    fn duplicate_frames_collapse_last_wins() {
        let sites = [WebSite::plain(
            DomainName::parse("dup.example").unwrap(),
            Some(1),
            3,
        )];
        let jobs = [CrawlJob {
            site: &sites[0],
            malicious_category: None,
        }];
        // The same final frame journaled twice (crash between append
        // and checkpoint, then the resumed run re-ran the site).
        let visits = vec![
            visit("dup.example", FLAG_FINAL, 21_000, Os::Linux),
            visit("dup.example", FLAG_FINAL, 21_000, Os::Linux),
        ];
        let campaigns = split_campaigns(&visits, &[]);
        let plan = campaigns[&("top2020".to_string(), "Linux".to_string())].plan(&jobs);
        assert_eq!(plan.prior.attempted, 1, "idempotent despite duplicates");
        assert_eq!(plan.prior_costs.len(), 1);
    }

    #[test]
    fn campaigns_split_by_crawl_and_os() {
        let visits = vec![
            visit("a.example", FLAG_FINAL, 1, Os::Linux),
            visit("a.example", FLAG_FINAL, 1, Os::Windows),
        ];
        let campaigns = split_campaigns(&visits, &[]);
        assert_eq!(campaigns.len(), 2);
    }

    #[test]
    fn checkpoint_stats_ride_along() {
        let mut stats = CrawlStats::new();
        stats.record_success();
        stats.makespan_ms = 99_000;
        let cp = CheckpointFrame {
            crawl: "top2020".into(),
            os: "Linux".into(),
            completed: vec!["a.example".into()],
            stats: stats.to_bytes(),
        };
        let visits = vec![visit("a.example", FLAG_FINAL, 21_000, Os::Linux)];
        let campaigns = split_campaigns(&visits, &[cp]);
        let campaign = &campaigns[&("top2020".to_string(), "Linux".to_string())];
        assert!(campaign.checkpointed());
        assert_eq!(campaign.checkpoint, Some(stats));
    }

    #[test]
    fn checkpoint_outliving_a_lost_frame_is_not_trusted() {
        // Corruption destroyed b.example's visit frame but the
        // checkpoint survived (fsck's missing-record condition).
        // Restoring the checkpoint verbatim would drop the record from
        // the store forever, so the campaign must fall back to
        // frame-level replay and re-run the lost site.
        let sites: Vec<WebSite> = ["a.example", "b.example"]
            .iter()
            .map(|d| WebSite::plain(DomainName::parse(d).unwrap(), Some(1), 3))
            .collect();
        let jobs: Vec<CrawlJob<'_>> = sites
            .iter()
            .map(|site| CrawlJob {
                site,
                malicious_category: None,
            })
            .collect();
        let cp = CheckpointFrame {
            crawl: "top2020".into(),
            os: "Linux".into(),
            completed: vec!["a.example".into(), "b.example".into()],
            stats: CrawlStats::new().to_bytes(),
        };
        let visits = vec![visit("a.example", FLAG_FINAL, 21_000, Os::Linux)];
        let campaigns = split_campaigns(&visits, &[cp]);
        let campaign = &campaigns[&("top2020".to_string(), "Linux".to_string())];
        assert!(
            !campaign.checkpointed(),
            "missing record voids the checkpoint"
        );
        let plan = campaign.plan(&jobs);
        assert_eq!(plan.todo, vec![1], "only the lost site re-runs");
    }
}
