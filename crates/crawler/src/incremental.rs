//! Incremental recrawl planning for longitudinal snapshot series.
//!
//! Given the previous snapshot's list and the next one, an
//! [`IncrementalPlan`] splits the next list into the four longitudinal
//! site sets:
//!
//! * **carried** — listed in both snapshots with unchanged content:
//!   not crawled at all; the snapshot store links the new manifest row
//!   to the previous snapshot's chunk by reference;
//! * **changed** — listed in both but the content-churn oracle says
//!   the site changed: must be recrawled;
//! * **fresh** — newly listed (including domains returning after an
//!   absence): must be crawled — whether their bytes deduplicate
//!   against an old visit is the store's business, not the planner's;
//! * **dropped** — listed previously but absent now: no new visit, no
//!   new manifest row.
//!
//! Only `changed + fresh` cost visit work; on the paper-shaped series
//! (~20–25% churn, a few percent content churn) that is ≲30% of a full
//! recrawl, which is the whole point of the longitudinal engine.

use std::collections::HashSet;

use kt_netbase::DomainName;
use kt_weblists::TrancoSnapshot;

/// One snapshot-to-snapshot crawl plan (see module docs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IncrementalPlan {
    /// In both lists, content unchanged — link, don't crawl.
    pub carried: Vec<DomainName>,
    /// In both lists, content changed — recrawl.
    pub changed: Vec<DomainName>,
    /// Newly listed — crawl.
    pub fresh: Vec<DomainName>,
    /// No longer listed — drop.
    pub dropped: Vec<DomainName>,
}

impl IncrementalPlan {
    /// Plan the step from `prev` to `next`. `content_changed` is the
    /// churn oracle for domains present in both lists (in the
    /// synthetic engine, a pure function of the series seed, the
    /// domain, and the step). Output vectors keep `next`'s rank order
    /// (`dropped` keeps `prev`'s), so the plan is deterministic.
    pub fn between(
        prev: &TrancoSnapshot,
        next: &TrancoSnapshot,
        mut content_changed: impl FnMut(&DomainName) -> bool,
    ) -> IncrementalPlan {
        let prev_set: HashSet<&str> = prev.entries.iter().map(|e| e.domain.as_str()).collect();
        let next_set: HashSet<&str> = next.entries.iter().map(|e| e.domain.as_str()).collect();
        let mut plan = IncrementalPlan::default();
        for entry in &next.entries {
            if !prev_set.contains(entry.domain.as_str()) {
                plan.fresh.push(entry.domain.clone());
            } else if content_changed(&entry.domain) {
                plan.changed.push(entry.domain.clone());
            } else {
                plan.carried.push(entry.domain.clone());
            }
        }
        for entry in &prev.entries {
            if !next_set.contains(entry.domain.as_str()) {
                plan.dropped.push(entry.domain.clone());
            }
        }
        plan
    }

    /// The degenerate first-snapshot plan: everything is fresh.
    pub fn full(next: &TrancoSnapshot) -> IncrementalPlan {
        IncrementalPlan {
            fresh: next.entries.iter().map(|e| e.domain.clone()).collect(),
            ..IncrementalPlan::default()
        }
    }

    /// Domains that must actually be visited (changed + fresh), in
    /// next-snapshot rank order.
    pub fn to_visit(&self) -> Vec<&DomainName> {
        // `between` filled both vectors in one ordered walk over
        // `next`, so a merge by identity on that walk is unnecessary:
        // re-deriving order would need the snapshot. Callers that care
        // about rank order iterate the snapshot and test membership;
        // the crawl driver only needs the set.
        self.changed.iter().chain(self.fresh.iter()).collect()
    }

    /// Visit-work size: `changed + fresh`.
    pub fn visit_count(&self) -> usize {
        self.changed.len() + self.fresh.len()
    }

    /// Link-work size: carried rows that reuse the prior snapshot's
    /// chunks by reference.
    pub fn link_count(&self) -> usize {
        self.carried.len()
    }

    /// Fraction of full-recrawl visit work this plan avoids
    /// (`carried / next list size`); 0 for a full plan.
    pub fn savings(&self) -> f64 {
        let total = self.carried.len() + self.visit_count();
        if total == 0 {
            return 0.0;
        }
        self.carried.len() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(label: &str, n: usize, seed: u64) -> TrancoSnapshot {
        TrancoSnapshot::generate(label, n, seed)
    }

    #[test]
    fn full_plan_visits_everything() {
        let s = snap("snap00", 200, 5);
        let plan = IncrementalPlan::full(&s);
        assert_eq!(plan.visit_count(), 200);
        assert_eq!(plan.link_count(), 0);
        assert_eq!(plan.savings(), 0.0);
        assert!(plan.dropped.is_empty());
    }

    #[test]
    fn step_plan_partitions_the_next_list() {
        let a = snap("snap00", 500, 9);
        let b = a.successor("snap01", 0.75, 42);
        let plan = IncrementalPlan::between(&a, &b, |_| false);
        // Every next-list domain lands in exactly one bucket.
        assert_eq!(plan.carried.len() + plan.visit_count(), b.len());
        assert!(plan.changed.is_empty(), "oracle said nothing changed");
        // Dropped + carried covers the previous list.
        assert_eq!(plan.dropped.len() + plan.carried.len(), a.len());
        // ~75% overlap → ~25% of the next list is fresh.
        let fresh_frac = plan.fresh.len() as f64 / b.len() as f64;
        assert!((0.15..0.35).contains(&fresh_frac), "fresh {fresh_frac}");
        assert!(plan.savings() > 0.6, "savings {}", plan.savings());
    }

    #[test]
    fn content_churn_moves_carried_sites_into_changed() {
        let a = snap("snap00", 300, 9);
        let b = a.successor("snap01", 0.8, 7);
        let all = IncrementalPlan::between(&a, &b, |_| true);
        assert!(all.carried.is_empty());
        assert_eq!(all.visit_count(), b.len());
        // A domain-hash oracle flips a stable subset.
        let some = IncrementalPlan::between(&a, &b, |d| d.as_str().len() % 2 == 0);
        assert!(!some.changed.is_empty());
        assert!(!some.carried.is_empty());
        assert_eq!(
            some.changed.len() + some.carried.len(),
            all.visit_count() - all.fresh.len()
        );
    }

    #[test]
    fn plans_are_deterministic_and_ordered_by_rank() {
        let a = snap("snap00", 400, 3);
        let b = a.successor("snap01", 0.75, 11);
        let p1 = IncrementalPlan::between(&a, &b, |d| d.as_str().contains('3'));
        let p2 = IncrementalPlan::between(&a, &b, |d| d.as_str().contains('3'));
        assert_eq!(p1, p2);
        // carried/changed/fresh each preserve next-list rank order.
        let rank = |d: &DomainName| b.rank_of(d).expect("listed");
        for bucket in [&p1.carried, &p1.changed, &p1.fresh] {
            for w in bucket.windows(2) {
                assert!(rank(&w[0]) < rank(&w[1]));
            }
        }
        for w in p1.dropped.windows(2) {
            assert!(a.rank_of(&w[0]).unwrap() < a.rank_of(&w[1]).unwrap());
        }
    }
}
