//! Crawl-layer metrics: the bridge from [`CrawlStats`] to the kt-trace
//! registry.
//!
//! Counters are *derived from* the stats tally rather than incremented
//! alongside it, so the exported series can never drift from Table 1:
//! each worker's sink is built from its own private `CrawlStats` at
//! join, the resume path seeds a sink from the journal-replayed prior,
//! and the recrawl pass contributes the difference between the
//! supervisor tally before and after it ran. Summing those sinks
//! reproduces the final merged stats exactly — and the stats are
//! already proven worker-count- and resume-invariant, so the metrics
//! inherit both properties for free.
//!
//! Schedule-owned fields (`makespan_ms`, `connectivity_retries`) stay
//! out: they legitimately depend on how jobs were laid onto workers,
//! and exporting them would break the byte-identical guarantee the CI
//! observability gate enforces.

use kt_netbase::Os;
use kt_store::CrawlId;
use kt_trace::{names, Labels, Trace, WorkerSink};

use crate::stats::CrawlStats;

/// The `{crawl, os}` label set every crawl-layer series carries.
pub fn campaign_labels(crawl: &CrawlId, os: Os) -> Labels {
    Labels::new(&[("crawl", crawl.as_str()), ("os", os.name())])
}

/// Build a metrics sink holding one tally's schedule-invariant
/// counters. Zero-valued series are materialised too, so every
/// campaign exports the full schema even before (or without) any
/// matching event.
pub fn stats_sink(crawl: &CrawlId, os: Os, stats: &CrawlStats) -> WorkerSink {
    stats_sink_delta(crawl, os, stats, &CrawlStats::default())
}

/// [`stats_sink`] for the contribution between two supervisor
/// snapshots (`after` minus `before`) — how the serial recrawl pass
/// reports, since it mutates the merged tally in place.
pub fn stats_sink_delta(
    crawl: &CrawlId,
    os: Os,
    after: &CrawlStats,
    before: &CrawlStats,
) -> WorkerSink {
    let labels = campaign_labels(crawl, os);
    let mut sink = WorkerSink::new();
    let diff = |a: usize, b: usize| (a.saturating_sub(b)) as u64;
    for (name, a, b) in [
        (names::VISITS_TOTAL, after.attempted, before.attempted),
        (names::SUCCESS_TOTAL, after.successful, before.successful),
        (names::RETRIES_TOTAL, after.retries, before.retries),
        (names::RECRAWLED_TOTAL, after.recrawled, before.recrawled),
        (names::RECOVERED_TOTAL, after.recovered, before.recovered),
        (names::GAVE_UP_TOTAL, after.gave_up, before.gave_up),
        (names::CRASHED_TOTAL, after.crashed, before.crashed),
        (
            names::STORE_RETRIES_TOTAL,
            after.store_retries,
            before.store_retries,
        ),
    ] {
        let id = sink.counter(name, labels.clone());
        sink.add(id, diff(a, b));
    }
    for (err, &n) in &after.failures {
        let prior = before.failures.get(err).copied().unwrap_or(0);
        if n > prior {
            let labels = Labels::new(&[
                ("crawl", crawl.as_str()),
                ("os", os.name()),
                ("error", err.name()),
            ]);
            let id = sink.counter(names::FAILURES_TOTAL, labels);
            sink.add(id, (n - prior) as u64);
        }
    }
    sink
}

/// Set the campaign's derived gauges from its final tally.
pub fn set_stats_gauges(trace: &Trace, crawl: &CrawlId, os: Os, stats: &CrawlStats) {
    trace.set_gauge(
        names::CRAWL_SUCCESS_RATIO,
        campaign_labels(crawl, os),
        stats.success_rate(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_netlog::NetError;
    use kt_trace::Registry;

    fn tally() -> CrawlStats {
        let mut stats = CrawlStats::new();
        for _ in 0..9 {
            stats.record_success();
        }
        stats.record_failure(NetError::ConnectionReset);
        stats.record_crash();
        stats.retries = 4;
        stats.recrawled = 2;
        stats.recovered = 1;
        stats.gave_up = 1;
        stats.store_retries = 3;
        stats.connectivity_retries = 7; // schedule-owned: must not export
        stats.makespan_ms = 99_000; // schedule-owned: must not export
        stats
    }

    #[test]
    fn sink_mirrors_every_invariant_counter() {
        let crawl = CrawlId("T1".to_string());
        let mut reg = Registry::new();
        reg.merge_sink(&stats_sink(&crawl, Os::Linux, &tally()));
        let labels = campaign_labels(&crawl, Os::Linux);
        assert_eq!(reg.counter_value(names::VISITS_TOTAL, &labels), Some(11));
        assert_eq!(reg.counter_value(names::SUCCESS_TOTAL, &labels), Some(9));
        assert_eq!(reg.counter_value(names::RETRIES_TOTAL, &labels), Some(4));
        assert_eq!(reg.counter_value(names::RECRAWLED_TOTAL, &labels), Some(2));
        assert_eq!(reg.counter_value(names::RECOVERED_TOTAL, &labels), Some(1));
        assert_eq!(reg.counter_value(names::GAVE_UP_TOTAL, &labels), Some(1));
        assert_eq!(reg.counter_value(names::CRASHED_TOTAL, &labels), Some(1));
        assert_eq!(
            reg.counter_value(names::STORE_RETRIES_TOTAL, &labels),
            Some(3)
        );
        let err_labels = Labels::new(&[
            ("crawl", "T1"),
            ("os", "Linux"),
            ("error", "ERR_CONNECTION_RESET"),
        ]);
        assert_eq!(
            reg.counter_value(names::FAILURES_TOTAL, &err_labels),
            Some(1)
        );
        let text = reg.render_prometheus();
        assert!(
            !text.contains("connectivity"),
            "schedule-owned field leaked"
        );
        assert!(!text.contains("makespan"), "schedule-owned field leaked");
    }

    #[test]
    fn empty_tally_still_materialises_the_schema_at_zero() {
        let crawl = CrawlId("T2".to_string());
        let mut reg = Registry::new();
        reg.merge_sink(&stats_sink(&crawl, Os::MacOs, &CrawlStats::new()));
        let text = reg.render_prometheus();
        assert!(text.contains("visits_total{crawl=\"T2\",os=\"Mac\"} 0"));
        assert!(text.contains("success_total{crawl=\"T2\",os=\"Mac\"} 0"));
    }

    #[test]
    fn per_worker_sinks_sum_to_the_merged_tally_sink() {
        let crawl = CrawlId("T1".to_string());
        let mut w0 = CrawlStats::new();
        w0.record_success();
        w0.record_failure(NetError::TimedOut);
        let mut w1 = CrawlStats::new();
        w1.record_success();
        w1.retries = 2;

        let mut per_worker = Registry::new();
        per_worker.merge_sink(&stats_sink(&crawl, Os::Windows, &w0));
        per_worker.merge_sink(&stats_sink(&crawl, Os::Windows, &w1));

        let mut merged = w0.clone();
        merged.merge(&w1);
        let mut whole = Registry::new();
        whole.merge_sink(&stats_sink(&crawl, Os::Windows, &merged));

        assert_eq!(per_worker.render_prometheus(), whole.render_prometheus());
    }

    #[test]
    fn delta_sink_reports_only_the_recrawl_contribution() {
        let crawl = CrawlId("T1".to_string());
        let before = tally();
        let mut after = before.clone();
        after.recrawled += 1;
        after.record_success();
        after.recovered += 1;
        let mut reg = Registry::new();
        reg.merge_sink(&stats_sink_delta(&crawl, Os::Linux, &after, &before));
        let labels = campaign_labels(&crawl, Os::Linux);
        assert_eq!(reg.counter_value(names::VISITS_TOTAL, &labels), Some(1));
        assert_eq!(reg.counter_value(names::RECRAWLED_TOTAL, &labels), Some(1));
        assert_eq!(reg.counter_value(names::RETRIES_TOTAL, &labels), Some(0));
    }

    #[test]
    fn gauges_carry_the_success_ratio() {
        let trace = Trace::new();
        let crawl = CrawlId("T1".to_string());
        let mut stats = CrawlStats::new();
        for _ in 0..3 {
            stats.record_success();
        }
        stats.record_failure(NetError::Aborted);
        set_stats_gauges(&trace, &crawl, Os::Linux, &stats);
        assert!(trace
            .export_prometheus()
            .contains("crawl_success_ratio{crawl=\"T1\",os=\"Linux\"} 0.75"));
    }
}
