//! # kt-netlog
//!
//! A faithful model of Chrome's NetLog — the network logging system the
//! paper records during every page visit (§3.1, "Web Telemetry").
//!
//! NetLog captures are JSON documents of the shape
//!
//! ```json
//! { "constants": { "logEventTypes": {"...": 1}, "logSourceType": {"...": 1},
//!                  "logEventPhase": {"...": 0}, "netError": {"...": -105} },
//!   "events": [ { "time": "12345", "type": 2,
//!                 "source": {"id": 7, "type": 1},
//!                 "phase": 1, "params": {} } ] }
//! ```
//!
//! where `type`, `source.type` and `phase` are integers resolved through
//! the `constants` tables. This crate provides:
//!
//! * [`event`] — typed events ([`NetLogEvent`]) with the fields the
//!   paper enumerates: `time`, `type`, `source` (serial IDs grouping a
//!   flow), and `phase` (`BEGIN`/`END`/`NONE`);
//! * [`constants`] — Chrome's constant tables (event types, source
//!   types, phases, `net_error` codes such as `ERR_NAME_NOT_RESOLVED`);
//! * [`capture`] — reading and writing whole captures, including
//!   recovery on truncated files (Chrome appends events incrementally,
//!   so a crashed browser leaves a syntactically unterminated array);
//! * [`flow`] — reconstruction of logical request flows by source ID,
//!   which is how the analysis pipeline tells page-initiated requests
//!   apart from browser-internal traffic;
//! * [`logger`] — the handle a (simulated) browser uses to emit events
//!   with serial source IDs and monotonic timestamps;
//! * [`view`] — borrowed (`&str`-backed) event views and a clone-free
//!   flow reconstruction used by the zero-copy analysis hot path.

#![warn(missing_docs)]

pub mod capture;
pub mod constants;
pub mod event;
pub mod flow;
pub mod logger;
pub mod view;

pub use capture::{Capture, CaptureError};
pub use constants::{EventPhase, EventType, NetError, SourceType};
pub use event::{EventParams, NetLogEvent, SourceRef};
pub use flow::{Flow, FlowOutcome, FlowSet};
pub use logger::NetLogger;
pub use view::{EventView, FlowSetView, FlowView, ParamsView};
