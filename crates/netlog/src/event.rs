//! Typed NetLog events and their JSON wire form.
//!
//! Each event carries the four fields the paper's telemetry description
//! enumerates (§3.1): `time`, `type`, `source`, `phase` — plus
//! type-specific `params`. On the wire, `params` is a JSON object with
//! Chrome's key names (`url`, `method`, `net_error`, `address`, …).

use serde::{Deserialize, Serialize};
use serde_json::{json, Map, Value};

use crate::constants::{EventPhase, EventType, NetError, SourceType};

/// Milliseconds on the capture's virtual clock.
pub type TimeMs = u64;

/// Reference to the source (logical flow) that generated an event.
///
/// Chrome assigns source IDs serially as requests are created;
/// dependent events share the ID, which is what lets the analysis group
/// a flow together and attribute it to the page or the browser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SourceRef {
    /// Serial source ID.
    pub id: u64,
    /// What kind of entity this source is.
    #[serde(rename = "type")]
    pub kind: SourceType,
}

/// Typed parameters for each event type we model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EventParams {
    /// No parameters.
    #[default]
    None,
    /// `URL_REQUEST_START_JOB`: the request line.
    UrlRequestStart {
        /// Full request URL.
        url: String,
        /// HTTP method.
        method: String,
        /// Initiator origin (the document origin), if any.
        initiator: Option<String>,
        /// Load flags (Chrome bitmask; 0 for ordinary loads).
        load_flags: u32,
    },
    /// `URL_REQUEST_REDIRECTED`: where the request is going next.
    Redirect {
        /// The new location.
        location: String,
    },
    /// `HOST_RESOLVER_IMPL_JOB`: the name being resolved.
    DnsJob {
        /// Hostname.
        host: String,
    },
    /// `TCP_CONNECT_ATTEMPT` / `TCP_CONNECT`: the socket address.
    Connect {
        /// `ip:port` string.
        address: String,
    },
    /// `SSL_CONNECT`: TLS parameters.
    Ssl {
        /// Host used for SNI and certificate verification.
        host: String,
    },
    /// Response headers summary.
    ResponseHeaders {
        /// HTTP status code.
        status: u16,
    },
    /// `WEBSOCKET_*` handshake: the socket URL.
    WebSocket {
        /// Full `ws(s)://` URL.
        url: String,
    },
    /// A data frame on an established WebSocket.
    WebSocketFrame {
        /// Payload length in bytes.
        length: u64,
    },
    /// Any terminal failure: the Chrome net error.
    Failed {
        /// Chrome numeric error code (e.g. -105).
        net_error: i32,
    },
    /// `ICE_CANDIDATE_GATHERED`: a WebRTC ICE candidate surfaced to the
    /// page. `address` is either a raw `ip:port` or an mDNS-obfuscated
    /// `uuid.local:port` pair, per the candidate anonymisation policy.
    IceCandidate {
        /// `host:port` of the gathered candidate.
        address: String,
        /// Candidate type string (`host`, `srflx`, `relay`).
        candidate_type: String,
    },
}

impl EventParams {
    /// Serialise to the wire JSON object (Chrome key names).
    pub fn to_wire(&self) -> Value {
        match self {
            EventParams::None => Value::Object(Map::new()),
            EventParams::UrlRequestStart {
                url,
                method,
                initiator,
                load_flags,
            } => {
                let mut v = json!({ "url": url, "method": method, "load_flags": load_flags });
                if let Some(init) = initiator {
                    v["initiator"] = json!(init);
                }
                v
            }
            EventParams::Redirect { location } => json!({ "location": location }),
            EventParams::DnsJob { host } => json!({ "host": host }),
            EventParams::Connect { address } => json!({ "address": address }),
            EventParams::Ssl { host } => json!({ "host": host }),
            EventParams::ResponseHeaders { status } => json!({ "status": status }),
            EventParams::WebSocket { url } => json!({ "url": url }),
            EventParams::WebSocketFrame { length } => json!({ "length": length }),
            EventParams::Failed { net_error } => json!({ "net_error": net_error }),
            EventParams::IceCandidate {
                address,
                candidate_type,
            } => json!({ "address": address, "candidate_type": candidate_type }),
        }
    }

    /// Parse wire params given the event type that carries them.
    /// An empty (or non-object) params value is `None` regardless of
    /// event type: phase-END events often carry no parameters.
    pub fn from_wire(event_type: EventType, v: &Value) -> EventParams {
        if v.as_object().map(|m| m.is_empty()).unwrap_or(true) {
            return EventParams::None;
        }
        let s = |key: &str| v.get(key).and_then(Value::as_str).map(str::to_string);
        let n = |key: &str| v.get(key).and_then(Value::as_u64);
        match event_type {
            EventType::UrlRequestStartJob => EventParams::UrlRequestStart {
                url: s("url").unwrap_or_default(),
                method: s("method").unwrap_or_else(|| "GET".into()),
                initiator: s("initiator"),
                load_flags: n("load_flags").unwrap_or(0) as u32,
            },
            EventType::UrlRequestRedirected => EventParams::Redirect {
                location: s("location").unwrap_or_default(),
            },
            EventType::HostResolverImplJob => EventParams::DnsJob {
                host: s("host").unwrap_or_default(),
            },
            EventType::TcpConnectAttempt | EventType::TcpConnect => EventParams::Connect {
                address: s("address").unwrap_or_default(),
            },
            EventType::SslConnect => EventParams::Ssl {
                host: s("host").unwrap_or_default(),
            },
            EventType::HttpTransactionReadHeaders => EventParams::ResponseHeaders {
                status: n("status").unwrap_or(0) as u16,
            },
            EventType::WebSocketSendRequestHeaders | EventType::WebSocketReadResponseHeaders => {
                EventParams::WebSocket {
                    url: s("url").unwrap_or_default(),
                }
            }
            EventType::WebSocketSentFrame | EventType::WebSocketRecvFrame => {
                EventParams::WebSocketFrame {
                    length: n("length").unwrap_or(0),
                }
            }
            EventType::FailedRequest => EventParams::Failed {
                net_error: v.get("net_error").and_then(Value::as_i64).unwrap_or(0) as i32,
            },
            EventType::IceCandidateGathered => EventParams::IceCandidate {
                address: s("address").unwrap_or_default(),
                candidate_type: s("candidate_type").unwrap_or_else(|| "host".into()),
            },
            _ => EventParams::None,
        }
    }
}

/// A single NetLog event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetLogEvent {
    /// Timestamp on the capture clock, in milliseconds.
    pub time: TimeMs,
    /// What happened.
    pub event_type: EventType,
    /// Which flow it belongs to.
    pub source: SourceRef,
    /// Interval bracketing.
    pub phase: EventPhase,
    /// Type-specific details.
    pub params: EventParams,
}

impl NetLogEvent {
    /// Serialise to the capture wire format (integer codes, string time
    /// — matching `chrome://net-export` output).
    pub fn to_wire(&self) -> Value {
        json!({
            "time": self.time.to_string(),
            "type": self.event_type.code(),
            "source": { "id": self.source.id, "type": self.source.kind.code() },
            "phase": self.phase.code(),
            "params": self.params.to_wire(),
        })
    }

    /// Parse one wire event. Returns `None` for events whose type,
    /// source type or phase code is outside the modelled tables (a real
    /// Chrome capture contains hundreds of event types we don't need;
    /// skipping unknown ones matches how the paper's parser stores only
    /// the relevant telemetry).
    pub fn from_wire(v: &Value) -> Option<NetLogEvent> {
        let time: TimeMs = match v.get("time")? {
            Value::String(s) => s.parse().ok()?,
            Value::Number(n) => n.as_u64()?,
            _ => return None,
        };
        let event_type = EventType::from_code(v.get("type")?.as_u64()? as u32)?;
        let source_obj = v.get("source")?;
        let source = SourceRef {
            id: source_obj.get("id")?.as_u64()?,
            kind: SourceType::from_code(source_obj.get("type")?.as_u64()? as u32)?,
        };
        let phase = EventPhase::from_code(v.get("phase")?.as_u64()? as u32)?;
        let params = v
            .get("params")
            .map(|p| EventParams::from_wire(event_type, p))
            .unwrap_or(EventParams::None);
        Some(NetLogEvent {
            time,
            event_type,
            source,
            phase,
            params,
        })
    }

    /// The request URL carried by this event, if it has one.
    pub fn url(&self) -> Option<&str> {
        match &self.params {
            EventParams::UrlRequestStart { url, .. } => Some(url),
            EventParams::WebSocket { url } => Some(url),
            EventParams::Redirect { location } => Some(location),
            _ => None,
        }
    }

    /// The net error carried by this event, if it is a failure.
    pub fn net_error(&self) -> Option<NetError> {
        match &self.params {
            EventParams::Failed { net_error } => NetError::from_code(*net_error),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> NetLogEvent {
        NetLogEvent {
            time: 1234,
            event_type: EventType::UrlRequestStartJob,
            source: SourceRef {
                id: 7,
                kind: SourceType::UrlRequest,
            },
            phase: EventPhase::Begin,
            params: EventParams::UrlRequestStart {
                url: "wss://127.0.0.1:3389/".into(),
                method: "GET".into(),
                initiator: Some("https://ebay.com".into()),
                load_flags: 0,
            },
        }
    }

    #[test]
    fn wire_round_trip_preserves_event() {
        let ev = sample_event();
        let wire = ev.to_wire();
        assert_eq!(wire["time"], "1234");
        assert_eq!(wire["source"]["id"], 7);
        let back = NetLogEvent::from_wire(&wire).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn wire_round_trip_all_param_shapes() {
        let shapes = vec![
            (EventType::RequestAlive, EventParams::None),
            (
                EventType::UrlRequestRedirected,
                EventParams::Redirect {
                    location: "http://127.0.0.1/".into(),
                },
            ),
            (
                EventType::HostResolverImplJob,
                EventParams::DnsJob {
                    host: "example.com".into(),
                },
            ),
            (
                EventType::TcpConnect,
                EventParams::Connect {
                    address: "10.0.0.200:80".into(),
                },
            ),
            (
                EventType::SslConnect,
                EventParams::Ssl {
                    host: "example.com".into(),
                },
            ),
            (
                EventType::HttpTransactionReadHeaders,
                EventParams::ResponseHeaders { status: 403 },
            ),
            (
                EventType::WebSocketSendRequestHeaders,
                EventParams::WebSocket {
                    url: "ws://localhost:6463/?v=1".into(),
                },
            ),
            (
                EventType::WebSocketRecvFrame,
                EventParams::WebSocketFrame { length: 512 },
            ),
            (
                EventType::FailedRequest,
                EventParams::Failed { net_error: -105 },
            ),
            (
                EventType::IceCandidateGathered,
                EventParams::IceCandidate {
                    address: "f0ae4f9a-2d4c-4a91.local:9000".into(),
                    candidate_type: "host".into(),
                },
            ),
        ];
        for (ty, params) in shapes {
            let ev = NetLogEvent {
                time: 42,
                event_type: ty,
                source: SourceRef {
                    id: 1,
                    kind: SourceType::UrlRequest,
                },
                phase: EventPhase::None,
                params: params.clone(),
            };
            let back = NetLogEvent::from_wire(&ev.to_wire()).unwrap();
            assert_eq!(back.params, params, "{ty:?}");
        }
    }

    #[test]
    fn numeric_time_is_accepted() {
        let mut wire = sample_event().to_wire();
        wire["time"] = serde_json::json!(1234);
        assert_eq!(NetLogEvent::from_wire(&wire).unwrap().time, 1234);
    }

    #[test]
    fn unknown_codes_are_skipped() {
        let mut wire = sample_event().to_wire();
        wire["type"] = serde_json::json!(4242);
        assert!(NetLogEvent::from_wire(&wire).is_none());
        let mut wire = sample_event().to_wire();
        wire["phase"] = serde_json::json!(9);
        assert!(NetLogEvent::from_wire(&wire).is_none());
    }

    #[test]
    fn missing_params_default_to_none() {
        let mut wire = sample_event().to_wire();
        wire.as_object_mut().unwrap().remove("params");
        let ev = NetLogEvent::from_wire(&wire).unwrap();
        assert_eq!(ev.params, EventParams::None);
    }

    #[test]
    fn url_accessor() {
        assert_eq!(sample_event().url(), Some("wss://127.0.0.1:3389/"));
        let failed = NetLogEvent {
            time: 0,
            event_type: EventType::FailedRequest,
            source: SourceRef {
                id: 1,
                kind: SourceType::UrlRequest,
            },
            phase: EventPhase::None,
            params: EventParams::Failed { net_error: -105 },
        };
        assert_eq!(failed.url(), None);
        assert_eq!(failed.net_error(), Some(NetError::NameNotResolved));
    }
}
