//! The logging handle a (simulated) browser writes events through.
//!
//! `NetLogger` owns the serial source-ID counter — Chrome assigns
//! source IDs in creation order, a property the paper's flow grouping
//! depends on — and collects events into a capture.

use crate::capture::Capture;
use crate::constants::{EventPhase, EventType, NetError, SourceType};
use crate::event::{EventParams, NetLogEvent, SourceRef, TimeMs};

/// Collects NetLog events during one page visit.
#[derive(Debug, Default)]
pub struct NetLogger {
    events: Vec<NetLogEvent>,
    next_source_id: u64,
}

impl NetLogger {
    /// A fresh logger; source IDs start at 1 (Chrome reserves 0).
    pub fn new() -> NetLogger {
        NetLogger {
            events: Vec::new(),
            next_source_id: 1,
        }
    }

    /// Allocate a new serial source of the given kind.
    pub fn new_source(&mut self, kind: SourceType) -> SourceRef {
        let id = self.next_source_id;
        self.next_source_id += 1;
        SourceRef { id, kind }
    }

    /// Append one event.
    pub fn log(
        &mut self,
        time: TimeMs,
        source: SourceRef,
        event_type: EventType,
        phase: EventPhase,
        params: EventParams,
    ) {
        self.events.push(NetLogEvent {
            time,
            event_type,
            source,
            phase,
            params,
        });
    }

    /// Convenience: log the start of a URL request.
    pub fn log_request_start(
        &mut self,
        time: TimeMs,
        source: SourceRef,
        url: &str,
        initiator: Option<&str>,
    ) {
        self.log(
            time,
            source,
            EventType::RequestAlive,
            EventPhase::Begin,
            EventParams::None,
        );
        self.log(
            time,
            source,
            EventType::UrlRequestStartJob,
            EventPhase::Begin,
            EventParams::UrlRequestStart {
                url: url.to_string(),
                method: "GET".to_string(),
                initiator: initiator.map(str::to_string),
                load_flags: 0,
            },
        );
    }

    /// Convenience: log a terminal failure and close the request.
    pub fn log_failure(&mut self, time: TimeMs, source: SourceRef, error: NetError) {
        self.log(
            time,
            source,
            EventType::FailedRequest,
            EventPhase::None,
            EventParams::Failed {
                net_error: error.code(),
            },
        );
        self.log(
            time,
            source,
            EventType::RequestAlive,
            EventPhase::End,
            EventParams::None,
        );
    }

    /// Convenience: log a response and close the request.
    pub fn log_response(&mut self, time: TimeMs, source: SourceRef, status: u16) {
        self.log(
            time,
            source,
            EventType::HttpTransactionReadHeaders,
            EventPhase::None,
            EventParams::ResponseHeaders { status },
        );
        self.log(
            time,
            source,
            EventType::RequestAlive,
            EventPhase::End,
            EventParams::None,
        );
    }

    /// Events logged so far.
    pub fn events(&self) -> &[NetLogEvent] {
        &self.events
    }

    /// Number of events logged so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finish the visit and hand over the capture.
    pub fn into_capture(self) -> Capture {
        Capture::from_events(self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowOutcome, FlowSet};

    #[test]
    fn source_ids_are_serial_starting_at_one() {
        let mut log = NetLogger::new();
        let a = log.new_source(SourceType::UrlRequest);
        let b = log.new_source(SourceType::WebSocket);
        let c = log.new_source(SourceType::UrlRequest);
        assert_eq!((a.id, b.id, c.id), (1, 2, 3));
    }

    #[test]
    fn convenience_helpers_produce_complete_flows() {
        let mut log = NetLogger::new();
        let ok = log.new_source(SourceType::UrlRequest);
        log.log_request_start(100, ok, "https://a.com/", None);
        log.log_response(150, ok, 200);
        let bad = log.new_source(SourceType::UrlRequest);
        log.log_request_start(110, bad, "http://gone.example/", Some("https://a.com"));
        log.log_failure(120, bad, NetError::NameNotResolved);

        let flows = FlowSet::from_events(log.into_capture().events);
        assert_eq!(flows.len(), 2);
        assert_eq!(
            flows.get(ok.id).unwrap().outcome(),
            FlowOutcome::Success(200)
        );
        assert!(flows.get(ok.id).unwrap().is_closed());
        assert_eq!(
            flows.get(bad.id).unwrap().outcome(),
            FlowOutcome::Failed(NetError::NameNotResolved)
        );
    }

    #[test]
    fn capture_round_trip_via_logger() {
        let mut log = NetLogger::new();
        let s = log.new_source(SourceType::UrlRequest);
        log.log_request_start(5, s, "http://localhost:12071/v1/init.json", None);
        log.log_response(9, s, 200);
        assert_eq!(log.len(), 4);
        assert!(!log.is_empty());
        let capture = log.into_capture();
        let parsed = Capture::parse(&capture.to_json()).unwrap();
        assert_eq!(parsed.events, capture.events);
    }
}
