//! Flow reconstruction: grouping events by NetLog source ID.
//!
//! "When a new network request is initiated, it is assigned a new
//! source ID (in serial order). Subsequent dependent events (e.g.,
//! responses) are assigned the same source ID, allowing the events
//! within a network flow to be logically grouped together." (§3.1)
//!
//! The paper's pipeline relies on this grouping twice: to reassemble
//! request→response flows, and to *exclude* traffic whose source is the
//! browser itself rather than the page.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::constants::{EventPhase, EventType, NetError, SourceType};
use crate::event::{EventParams, NetLogEvent, SourceRef, TimeMs};

/// Terminal state of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowOutcome {
    /// An HTTP response (status) was read, or a WebSocket handshake
    /// completed.
    Success(u16),
    /// The flow failed with a Chrome net error.
    Failed(NetError),
    /// The capture ended (20-second window) before the flow did.
    InFlight,
}

impl FlowOutcome {
    /// True if the request got a readable terminal response.
    pub fn is_success(self) -> bool {
        matches!(self, FlowOutcome::Success(_))
    }
}

/// A reconstructed network flow: all events sharing one source ID.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// The shared source reference.
    pub source: SourceRef,
    /// Events of this flow, in time order.
    pub events: Vec<NetLogEvent>,
}

impl Flow {
    /// Timestamp of the first event.
    pub fn start_time(&self) -> TimeMs {
        self.events.first().map(|e| e.time).unwrap_or(0)
    }

    /// Timestamp of the last event.
    pub fn end_time(&self) -> TimeMs {
        self.events.last().map(|e| e.time).unwrap_or(0)
    }

    /// The request URL: the first `URL_REQUEST_START_JOB` or WebSocket
    /// handshake URL observed in the flow.
    pub fn url(&self) -> Option<&str> {
        self.events.iter().find_map(|e| match &e.params {
            EventParams::UrlRequestStart { url, .. } => Some(url.as_str()),
            EventParams::WebSocket { url } => Some(url.as_str()),
            _ => None,
        })
    }

    /// Every redirect location in order, including the final one. The
    /// paper counts sites that *redirect* to a local destination even
    /// though the response can never come back (§3.1).
    pub fn redirect_chain(&self) -> Vec<&str> {
        self.events
            .iter()
            .filter_map(|e| match &e.params {
                EventParams::Redirect { location } => Some(location.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Every gathered ICE candidate in order, as `(address,
    /// candidate_type)` pairs. WebRTC surfaces local addresses (raw or
    /// mDNS-obfuscated) through these without any HTTP request — a
    /// second local-discovery channel beside the fetch/WebSocket knocks.
    pub fn ice_candidates(&self) -> Vec<(&str, &str)> {
        self.events
            .iter()
            .filter_map(|e| match &e.params {
                EventParams::IceCandidate {
                    address,
                    candidate_type,
                } => Some((address.as_str(), candidate_type.as_str())),
                _ => None,
            })
            .collect()
    }

    /// True if this flow is a WebSocket channel.
    pub fn is_websocket(&self) -> bool {
        self.source.kind == SourceType::WebSocket
            || self
                .events
                .iter()
                .any(|e| matches!(e.event_type, EventType::WebSocketSendRequestHeaders))
    }

    /// Number of WebSocket data frames exchanged (both directions).
    pub fn websocket_frames(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e.event_type,
                    EventType::WebSocketSentFrame | EventType::WebSocketRecvFrame
                )
            })
            .count()
    }

    /// Terminal outcome of the flow.
    pub fn outcome(&self) -> FlowOutcome {
        // The last failure wins; otherwise the last response header.
        for e in self.events.iter().rev() {
            match &e.params {
                EventParams::Failed { net_error } => {
                    if let Some(err) = NetError::from_code(*net_error) {
                        return FlowOutcome::Failed(err);
                    }
                }
                EventParams::ResponseHeaders { status } => {
                    return FlowOutcome::Success(*status);
                }
                EventParams::WebSocket { .. }
                    if e.event_type == EventType::WebSocketReadResponseHeaders =>
                {
                    return FlowOutcome::Success(101);
                }
                _ => {}
            }
        }
        FlowOutcome::InFlight
    }

    /// True if the flow reached its `REQUEST_ALIVE` END (Chrome closed
    /// the request object).
    pub fn is_closed(&self) -> bool {
        self.events.iter().any(|e| {
            e.event_type == EventType::RequestAlive && e.phase == EventPhase::End
                || e.event_type == EventType::SocketClosed
        })
    }
}

/// All flows of a capture, indexed by source ID.
#[derive(Debug, Clone, Default)]
pub struct FlowSet {
    flows: BTreeMap<u64, Flow>,
}

impl FlowSet {
    /// Group a capture's events into flows. Events within a flow are
    /// sorted by time (stable for equal timestamps).
    pub fn from_events<I>(events: I) -> FlowSet
    where
        I: IntoIterator<Item = NetLogEvent>,
    {
        let mut flows: BTreeMap<u64, Flow> = BTreeMap::new();
        for ev in events {
            flows
                .entry(ev.source.id)
                .or_insert_with(|| Flow {
                    source: ev.source,
                    events: Vec::new(),
                })
                .events
                .push(ev);
        }
        for flow in flows.values_mut() {
            flow.events.sort_by_key(|e| e.time);
        }
        FlowSet { flows }
    }

    /// All flows in source-ID (creation) order.
    pub fn iter(&self) -> impl Iterator<Item = &Flow> {
        self.flows.values()
    }

    /// Only flows generated by the page (excludes `BROWSER_INTERNAL`
    /// sources — the filter the paper applies in §3.1).
    pub fn page_flows(&self) -> impl Iterator<Item = &Flow> {
        self.iter().filter(|f| f.source.kind.is_page_traffic())
    }

    /// Look up one flow by its source ID.
    pub fn get(&self, source_id: u64) -> Option<&Flow> {
        self.flows.get(&source_id)
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True if no flows are present.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SourceRef;

    fn mk(
        id: u64,
        kind: SourceType,
        time: TimeMs,
        event_type: EventType,
        phase: EventPhase,
        params: EventParams,
    ) -> NetLogEvent {
        NetLogEvent {
            time,
            event_type,
            source: SourceRef { id, kind },
            phase,
            params,
        }
    }

    fn http_flow_events(id: u64, url: &str, status: u16) -> Vec<NetLogEvent> {
        vec![
            mk(
                id,
                SourceType::UrlRequest,
                100,
                EventType::RequestAlive,
                EventPhase::Begin,
                EventParams::None,
            ),
            mk(
                id,
                SourceType::UrlRequest,
                101,
                EventType::UrlRequestStartJob,
                EventPhase::Begin,
                EventParams::UrlRequestStart {
                    url: url.into(),
                    method: "GET".into(),
                    initiator: None,
                    load_flags: 0,
                },
            ),
            mk(
                id,
                SourceType::UrlRequest,
                150,
                EventType::HttpTransactionReadHeaders,
                EventPhase::None,
                EventParams::ResponseHeaders { status },
            ),
            mk(
                id,
                SourceType::UrlRequest,
                160,
                EventType::RequestAlive,
                EventPhase::End,
                EventParams::None,
            ),
        ]
    }

    #[test]
    fn grouping_by_source_id() {
        let mut events = http_flow_events(1, "https://a.com/", 200);
        events.extend(http_flow_events(2, "http://localhost:4444/", 200));
        let set = FlowSet::from_events(events);
        assert_eq!(set.len(), 2);
        assert_eq!(set.get(1).unwrap().url(), Some("https://a.com/"));
        assert_eq!(set.get(2).unwrap().url(), Some("http://localhost:4444/"));
    }

    #[test]
    fn events_sorted_by_time_within_flow() {
        let mut events = http_flow_events(1, "https://a.com/", 200);
        events.reverse();
        let set = FlowSet::from_events(events);
        let flow = set.get(1).unwrap();
        assert!(flow.events.windows(2).all(|w| w[0].time <= w[1].time));
        assert_eq!(flow.start_time(), 100);
        assert_eq!(flow.end_time(), 160);
    }

    #[test]
    fn outcome_success_and_failure() {
        let set = FlowSet::from_events(http_flow_events(1, "https://a.com/", 403));
        assert_eq!(set.get(1).unwrap().outcome(), FlowOutcome::Success(403));

        let fail = vec![
            mk(
                5,
                SourceType::UrlRequest,
                10,
                EventType::UrlRequestStartJob,
                EventPhase::Begin,
                EventParams::UrlRequestStart {
                    url: "http://gone.example/".into(),
                    method: "GET".into(),
                    initiator: None,
                    load_flags: 0,
                },
            ),
            mk(
                5,
                SourceType::UrlRequest,
                12,
                EventType::FailedRequest,
                EventPhase::None,
                EventParams::Failed { net_error: -105 },
            ),
        ];
        let set = FlowSet::from_events(fail);
        assert_eq!(
            set.get(5).unwrap().outcome(),
            FlowOutcome::Failed(NetError::NameNotResolved)
        );
        assert!(!set.get(5).unwrap().outcome().is_success());
    }

    #[test]
    fn in_flight_flow_has_no_outcome() {
        let events = vec![mk(
            9,
            SourceType::UrlRequest,
            10,
            EventType::UrlRequestStartJob,
            EventPhase::Begin,
            EventParams::UrlRequestStart {
                url: "http://slow.example/".into(),
                method: "GET".into(),
                initiator: None,
                load_flags: 0,
            },
        )];
        let set = FlowSet::from_events(events);
        assert_eq!(set.get(9).unwrap().outcome(), FlowOutcome::InFlight);
        assert!(!set.get(9).unwrap().is_closed());
    }

    #[test]
    fn websocket_flow_detection_and_frames() {
        let events = vec![
            mk(
                3,
                SourceType::WebSocket,
                10,
                EventType::WebSocketSendRequestHeaders,
                EventPhase::Begin,
                EventParams::WebSocket {
                    url: "wss://127.0.0.1:3389/".into(),
                },
            ),
            mk(
                3,
                SourceType::WebSocket,
                15,
                EventType::WebSocketReadResponseHeaders,
                EventPhase::End,
                EventParams::WebSocket {
                    url: "wss://127.0.0.1:3389/".into(),
                },
            ),
            mk(
                3,
                SourceType::WebSocket,
                20,
                EventType::WebSocketSentFrame,
                EventPhase::None,
                EventParams::WebSocketFrame { length: 64 },
            ),
            mk(
                3,
                SourceType::WebSocket,
                25,
                EventType::WebSocketRecvFrame,
                EventPhase::None,
                EventParams::WebSocketFrame { length: 128 },
            ),
        ];
        let set = FlowSet::from_events(events);
        let flow = set.get(3).unwrap();
        assert!(flow.is_websocket());
        assert_eq!(flow.websocket_frames(), 2);
        assert_eq!(flow.outcome(), FlowOutcome::Success(101));
        assert_eq!(flow.url(), Some("wss://127.0.0.1:3389/"));
    }

    #[test]
    fn redirect_chain_collection() {
        let events = vec![
            mk(
                7,
                SourceType::UrlRequest,
                10,
                EventType::UrlRequestStartJob,
                EventPhase::Begin,
                EventParams::UrlRequestStart {
                    url: "http://romadecade.example/".into(),
                    method: "GET".into(),
                    initiator: None,
                    load_flags: 0,
                },
            ),
            mk(
                7,
                SourceType::UrlRequest,
                20,
                EventType::UrlRequestRedirected,
                EventPhase::None,
                EventParams::Redirect {
                    location: "http://127.0.0.1/".into(),
                },
            ),
        ];
        let set = FlowSet::from_events(events);
        assert_eq!(
            set.get(7).unwrap().redirect_chain(),
            vec!["http://127.0.0.1/"]
        );
    }

    #[test]
    fn browser_internal_flows_are_filtered() {
        let mut events = http_flow_events(1, "https://a.com/", 200);
        events.push(mk(
            99,
            SourceType::BrowserInternal,
            5,
            EventType::NetworkChangeNotifier,
            EventPhase::None,
            EventParams::None,
        ));
        let set = FlowSet::from_events(events);
        assert_eq!(set.len(), 2);
        assert_eq!(set.page_flows().count(), 1);
    }
}
