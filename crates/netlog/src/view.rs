//! Borrowed event views and clone-free flow reconstruction.
//!
//! The analysis hot path decodes a record, groups its events into
//! flows, and classifies every request URL. The owned types pay for
//! that with a heap `String` per event field and a full event clone per
//! flow insert. The view types here keep every string a `&str` into
//! the decoder's backing buffer and group flows by sorting one flat
//! vector — the only allocation on the whole path is that vector.
//!
//! [`FlowSetView`] reproduces [`FlowSet`](crate::flow::FlowSet)
//! exactly: the owned set groups events into a `BTreeMap` keyed by
//! source ID (a stable partition in insertion order) and then stably
//! sorts each flow by time, which is the same ordering as one stable
//! sort of the flat event sequence by `(source id, time)`. The view
//! sorts `(event, original index)` pairs with an unstable sort on the
//! full key `(source id, time, index)` — deterministic, equal to the
//! stable order, and allocation-free. Runs of equal source ID are the
//! flows, iterated in ascending ID order just like `BTreeMap::values`.

use crate::constants::{EventPhase, EventType, NetError, SourceType};
use crate::event::{EventParams, NetLogEvent, SourceRef, TimeMs};
use crate::flow::FlowOutcome;

/// Borrowed counterpart of [`EventParams`]: same shapes, `&str` fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParamsView<'a> {
    /// No parameters.
    #[default]
    None,
    /// `URL_REQUEST_START_JOB`: the request line.
    UrlRequestStart {
        /// Full request URL.
        url: &'a str,
        /// HTTP method.
        method: &'a str,
        /// Initiator origin (the document origin), if any.
        initiator: Option<&'a str>,
        /// Load flags (Chrome bitmask; 0 for ordinary loads).
        load_flags: u32,
    },
    /// `URL_REQUEST_REDIRECTED`: where the request is going next.
    Redirect {
        /// The new location.
        location: &'a str,
    },
    /// `HOST_RESOLVER_IMPL_JOB`: the name being resolved.
    DnsJob {
        /// Hostname.
        host: &'a str,
    },
    /// `TCP_CONNECT_ATTEMPT` / `TCP_CONNECT`: the socket address.
    Connect {
        /// `ip:port` string.
        address: &'a str,
    },
    /// `SSL_CONNECT`: TLS parameters.
    Ssl {
        /// Host used for SNI and certificate verification.
        host: &'a str,
    },
    /// Response headers summary.
    ResponseHeaders {
        /// HTTP status code.
        status: u16,
    },
    /// `WEBSOCKET_*` handshake: the socket URL.
    WebSocket {
        /// Full `ws(s)://` URL.
        url: &'a str,
    },
    /// A data frame on an established WebSocket.
    WebSocketFrame {
        /// Payload length in bytes.
        length: u64,
    },
    /// Any terminal failure: the Chrome net error.
    Failed {
        /// Chrome numeric error code (e.g. -105).
        net_error: i32,
    },
    /// `ICE_CANDIDATE_GATHERED`: a WebRTC ICE candidate.
    IceCandidate {
        /// `host:port` of the gathered candidate.
        address: &'a str,
        /// Candidate type string (`host`, `srflx`, `relay`).
        candidate_type: &'a str,
    },
}

impl<'a> ParamsView<'a> {
    /// Convert to the owned form (allocates the strings).
    pub fn to_owned(self) -> EventParams {
        match self {
            ParamsView::None => EventParams::None,
            ParamsView::UrlRequestStart {
                url,
                method,
                initiator,
                load_flags,
            } => EventParams::UrlRequestStart {
                url: url.to_string(),
                method: method.to_string(),
                initiator: initiator.map(str::to_string),
                load_flags,
            },
            ParamsView::Redirect { location } => EventParams::Redirect {
                location: location.to_string(),
            },
            ParamsView::DnsJob { host } => EventParams::DnsJob {
                host: host.to_string(),
            },
            ParamsView::Connect { address } => EventParams::Connect {
                address: address.to_string(),
            },
            ParamsView::Ssl { host } => EventParams::Ssl {
                host: host.to_string(),
            },
            ParamsView::ResponseHeaders { status } => EventParams::ResponseHeaders { status },
            ParamsView::WebSocket { url } => EventParams::WebSocket {
                url: url.to_string(),
            },
            ParamsView::WebSocketFrame { length } => EventParams::WebSocketFrame { length },
            ParamsView::Failed { net_error } => EventParams::Failed { net_error },
            ParamsView::IceCandidate {
                address,
                candidate_type,
            } => EventParams::IceCandidate {
                address: address.to_string(),
                candidate_type: candidate_type.to_string(),
            },
        }
    }
}

impl EventParams {
    /// A borrowed view of these params.
    pub fn view(&self) -> ParamsView<'_> {
        match self {
            EventParams::None => ParamsView::None,
            EventParams::UrlRequestStart {
                url,
                method,
                initiator,
                load_flags,
            } => ParamsView::UrlRequestStart {
                url,
                method,
                initiator: initiator.as_deref(),
                load_flags: *load_flags,
            },
            EventParams::Redirect { location } => ParamsView::Redirect { location },
            EventParams::DnsJob { host } => ParamsView::DnsJob { host },
            EventParams::Connect { address } => ParamsView::Connect { address },
            EventParams::Ssl { host } => ParamsView::Ssl { host },
            EventParams::ResponseHeaders { status } => {
                ParamsView::ResponseHeaders { status: *status }
            }
            EventParams::WebSocket { url } => ParamsView::WebSocket { url },
            EventParams::WebSocketFrame { length } => {
                ParamsView::WebSocketFrame { length: *length }
            }
            EventParams::Failed { net_error } => ParamsView::Failed {
                net_error: *net_error,
            },
            EventParams::IceCandidate {
                address,
                candidate_type,
            } => ParamsView::IceCandidate {
                address,
                candidate_type,
            },
        }
    }
}

/// Borrowed counterpart of [`NetLogEvent`]. `Copy`: moving one around
/// is a few machine words, not a heap traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventView<'a> {
    /// Timestamp on the capture clock, in milliseconds.
    pub time: TimeMs,
    /// What happened.
    pub event_type: EventType,
    /// Which flow it belongs to.
    pub source: SourceRef,
    /// Interval bracketing.
    pub phase: EventPhase,
    /// Type-specific details.
    pub params: ParamsView<'a>,
}

impl<'a> EventView<'a> {
    /// Convert to the owned form (allocates the param strings).
    pub fn to_owned(self) -> NetLogEvent {
        NetLogEvent {
            time: self.time,
            event_type: self.event_type,
            source: self.source,
            phase: self.phase,
            params: self.params.to_owned(),
        }
    }
}

impl NetLogEvent {
    /// A borrowed view of this event.
    pub fn view(&self) -> EventView<'_> {
        EventView {
            time: self.time,
            event_type: self.event_type,
            source: self.source,
            phase: self.phase,
            params: self.params.view(),
        }
    }
}

/// One reconstructed flow, borrowing its events from a [`FlowSetView`].
#[derive(Debug, Clone, Copy)]
pub struct FlowView<'s, 'a> {
    /// The shared source reference: as in the owned [`Flow`]
    /// (crate::flow::Flow), the source of the first event *appended*
    /// to the flow.
    pub source: SourceRef,
    entries: &'s [(EventView<'a>, u32)],
}

impl<'s, 'a> FlowView<'s, 'a> {
    fn from_run(entries: &'s [(EventView<'a>, u32)]) -> FlowView<'s, 'a> {
        // The owned FlowSet records the source of the first event it
        // saw for this ID; after sorting that is the entry with the
        // smallest original index, not necessarily the first of the run.
        let source = entries
            .iter()
            .min_by_key(|(_, idx)| *idx)
            .expect("runs are non-empty")
            .0
            .source;
        FlowView { source, entries }
    }

    /// Events of this flow, in time order (stable for equal times).
    pub fn events(&self) -> impl DoubleEndedIterator<Item = &'s EventView<'a>> {
        self.entries.iter().map(|(e, _)| e)
    }

    /// Number of events in this flow.
    pub fn event_count(&self) -> usize {
        self.entries.len()
    }

    /// Timestamp of the first event.
    pub fn start_time(&self) -> TimeMs {
        self.entries.first().map(|(e, _)| e.time).unwrap_or(0)
    }

    /// Timestamp of the last event.
    pub fn end_time(&self) -> TimeMs {
        self.entries.last().map(|(e, _)| e.time).unwrap_or(0)
    }

    /// The request URL: the first `URL_REQUEST_START_JOB` or WebSocket
    /// handshake URL observed in the flow.
    pub fn url(&self) -> Option<&'a str> {
        self.events().find_map(|e| match e.params {
            ParamsView::UrlRequestStart { url, .. } => Some(url),
            ParamsView::WebSocket { url } => Some(url),
            _ => None,
        })
    }

    /// Every redirect location in order, including the final one.
    /// Unlike the owned `redirect_chain`, no `Vec` is built.
    pub fn redirects(&self) -> impl Iterator<Item = &'a str> + use<'s, 'a> {
        self.events().filter_map(|e| match e.params {
            ParamsView::Redirect { location } => Some(location),
            _ => None,
        })
    }

    /// Every gathered ICE candidate in order, as `(address,
    /// candidate_type)` pairs. Unlike the owned `ice_candidates`, no
    /// `Vec` is built.
    pub fn ice_candidates(&self) -> impl Iterator<Item = (&'a str, &'a str)> + use<'s, 'a> {
        self.events().filter_map(|e| match e.params {
            ParamsView::IceCandidate {
                address,
                candidate_type,
            } => Some((address, candidate_type)),
            _ => None,
        })
    }

    /// True if this flow is a WebSocket channel.
    pub fn is_websocket(&self) -> bool {
        self.source.kind == SourceType::WebSocket
            || self
                .events()
                .any(|e| matches!(e.event_type, EventType::WebSocketSendRequestHeaders))
    }

    /// Number of WebSocket data frames exchanged (both directions).
    pub fn websocket_frames(&self) -> usize {
        self.events()
            .filter(|e| {
                matches!(
                    e.event_type,
                    EventType::WebSocketSentFrame | EventType::WebSocketRecvFrame
                )
            })
            .count()
    }

    /// Terminal outcome of the flow.
    pub fn outcome(&self) -> FlowOutcome {
        // The last failure wins; otherwise the last response header.
        for e in self.events().rev() {
            match e.params {
                ParamsView::Failed { net_error } => {
                    if let Some(err) = NetError::from_code(net_error) {
                        return FlowOutcome::Failed(err);
                    }
                }
                ParamsView::ResponseHeaders { status } => {
                    return FlowOutcome::Success(status);
                }
                ParamsView::WebSocket { .. }
                    if e.event_type == EventType::WebSocketReadResponseHeaders =>
                {
                    return FlowOutcome::Success(101);
                }
                _ => {}
            }
        }
        FlowOutcome::InFlight
    }

    /// True if the flow reached its `REQUEST_ALIVE` END (Chrome closed
    /// the request object).
    pub fn is_closed(&self) -> bool {
        self.events().any(|e| {
            e.event_type == EventType::RequestAlive && e.phase == EventPhase::End
                || e.event_type == EventType::SocketClosed
        })
    }
}

/// Clone-free counterpart of [`FlowSet`](crate::flow::FlowSet): one
/// flat sorted vector instead of a `BTreeMap` of per-flow vectors.
#[derive(Debug, Clone, Default)]
pub struct FlowSetView<'a> {
    /// `(event, original index)` sorted by `(source id, time, index)`.
    /// Runs of equal source ID are the flows.
    entries: Vec<(EventView<'a>, u32)>,
}

impl<'a> FlowSetView<'a> {
    /// Group a capture's events into flows. The single `Vec` below is
    /// the only allocation; the unstable sort on the full key
    /// `(id, time, original index)` reproduces the owned set's stable
    /// `(insertion partition, time sort)` order exactly.
    pub fn from_events<I>(events: I) -> FlowSetView<'a>
    where
        I: IntoIterator<Item = EventView<'a>>,
    {
        let mut entries: Vec<(EventView<'a>, u32)> = events
            .into_iter()
            .enumerate()
            .map(|(idx, e)| (e, idx as u32))
            .collect();
        entries.sort_unstable_by_key(|(e, idx)| (e.source.id, e.time, *idx));
        FlowSetView { entries }
    }

    /// All flows in source-ID order.
    pub fn iter(&self) -> Flows<'_, 'a> {
        Flows {
            rest: &self.entries,
        }
    }

    /// Only flows generated by the page (excludes `BROWSER_INTERNAL`
    /// sources — the filter the paper applies in §3.1).
    pub fn page_flows(&self) -> impl Iterator<Item = FlowView<'_, 'a>> {
        self.iter().filter(|f| f.source.kind.is_page_traffic())
    }

    /// Look up one flow by its source ID.
    pub fn get(&self, source_id: u64) -> Option<FlowView<'_, 'a>> {
        let start = self
            .entries
            .partition_point(|(e, _)| e.source.id < source_id);
        let run = self.entries[start..]
            .iter()
            .take_while(|(e, _)| e.source.id == source_id)
            .count();
        if run == 0 {
            return None;
        }
        Some(FlowView::from_run(&self.entries[start..start + run]))
    }

    /// Number of flows (counts ID runs; O(events)).
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// True if no flows are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Iterator over the flows of a [`FlowSetView`], in source-ID order.
#[derive(Debug, Clone)]
pub struct Flows<'s, 'a> {
    rest: &'s [(EventView<'a>, u32)],
}

impl<'s, 'a> Iterator for Flows<'s, 'a> {
    type Item = FlowView<'s, 'a>;

    fn next(&mut self) -> Option<FlowView<'s, 'a>> {
        let (first, _) = self.rest.first()?;
        let id = first.source.id;
        let run = self
            .rest
            .iter()
            .take_while(|(e, _)| e.source.id == id)
            .count();
        let (flow, rest) = self.rest.split_at(run);
        self.rest = rest;
        Some(FlowView::from_run(flow))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowSet;

    fn mk(id: u64, kind: SourceType, time: TimeMs, params: EventParams) -> NetLogEvent {
        let event_type = match &params {
            EventParams::UrlRequestStart { .. } => EventType::UrlRequestStartJob,
            EventParams::Redirect { .. } => EventType::UrlRequestRedirected,
            EventParams::ResponseHeaders { .. } => EventType::HttpTransactionReadHeaders,
            EventParams::WebSocket { .. } => EventType::WebSocketSendRequestHeaders,
            EventParams::WebSocketFrame { .. } => EventType::WebSocketRecvFrame,
            EventParams::Failed { .. } => EventType::FailedRequest,
            EventParams::IceCandidate { .. } => EventType::IceCandidateGathered,
            _ => EventType::RequestAlive,
        };
        NetLogEvent {
            time,
            event_type,
            source: SourceRef { id, kind },
            phase: EventPhase::Begin,
            params,
        }
    }

    fn url_start(url: &str) -> EventParams {
        EventParams::UrlRequestStart {
            url: url.into(),
            method: "GET".into(),
            initiator: None,
            load_flags: 0,
        }
    }

    /// Every accessor of every flow must agree between the owned and
    /// borrowed reconstructions of the same event sequence.
    fn assert_equivalent(events: &[NetLogEvent]) {
        let owned = FlowSet::from_events(events.iter().cloned());
        let view = FlowSetView::from_events(events.iter().map(NetLogEvent::view));
        assert_eq!(view.len(), owned.len());
        assert_eq!(view.is_empty(), owned.is_empty());
        for (of, vf) in owned.iter().zip(view.iter()) {
            assert_eq!(vf.source, of.source);
            assert_eq!(vf.event_count(), of.events.len());
            assert_eq!(vf.start_time(), of.start_time());
            assert_eq!(vf.end_time(), of.end_time());
            assert_eq!(vf.url(), of.url());
            assert_eq!(vf.redirects().collect::<Vec<_>>(), of.redirect_chain());
            assert_eq!(vf.ice_candidates().collect::<Vec<_>>(), of.ice_candidates());
            assert_eq!(vf.is_websocket(), of.is_websocket());
            assert_eq!(vf.websocket_frames(), of.websocket_frames());
            assert_eq!(vf.outcome(), of.outcome());
            assert_eq!(vf.is_closed(), of.is_closed());
            let roundtrip: Vec<NetLogEvent> = vf.events().map(|&e| e.to_owned()).collect();
            assert_eq!(roundtrip, of.events);
        }
        for of in owned.iter() {
            let vf = view.get(of.source.id).expect("flow present in view");
            assert_eq!(vf.source, of.source);
            assert_eq!(vf.event_count(), of.events.len());
        }
        assert!(view.get(u64::MAX).is_none() || owned.get(u64::MAX).is_some());
    }

    #[test]
    fn event_view_round_trips() {
        let ev = mk(
            7,
            SourceType::UrlRequest,
            42,
            EventParams::UrlRequestStart {
                url: "wss://localhost:3389/".into(),
                method: "GET".into(),
                initiator: Some("https://ebay.com".into()),
                load_flags: 5,
            },
        );
        assert_eq!(ev.view().to_owned(), ev);
    }

    #[test]
    fn interleaved_flows_group_identically() {
        let events = vec![
            mk(2, SourceType::UrlRequest, 30, url_start("https://b.com/")),
            mk(1, SourceType::UrlRequest, 10, url_start("https://a.com/")),
            mk(
                2,
                SourceType::UrlRequest,
                35,
                EventParams::ResponseHeaders { status: 200 },
            ),
            mk(
                1,
                SourceType::UrlRequest,
                20,
                EventParams::Failed { net_error: -105 },
            ),
            mk(
                3,
                SourceType::WebSocket,
                5,
                EventParams::WebSocket {
                    url: "ws://localhost:6463/?v=1".into(),
                },
            ),
        ];
        assert_equivalent(&events);
    }

    #[test]
    fn equal_timestamps_keep_insertion_order() {
        // Two same-time events in one flow: the stable time sort keeps
        // their original order, and so must the view's full-key sort.
        let events = vec![
            mk(
                1,
                SourceType::UrlRequest,
                10,
                url_start("https://first.com/"),
            ),
            mk(
                1,
                SourceType::UrlRequest,
                10,
                url_start("https://second.com/"),
            ),
            mk(
                1,
                SourceType::UrlRequest,
                10,
                EventParams::ResponseHeaders { status: 204 },
            ),
        ];
        assert_equivalent(&events);
        let view = FlowSetView::from_events(events.iter().map(NetLogEvent::view));
        assert_eq!(view.get(1).unwrap().url(), Some("https://first.com/"));
    }

    #[test]
    fn out_of_order_times_are_sorted_within_flow() {
        let events = vec![
            mk(
                1,
                SourceType::UrlRequest,
                50,
                EventParams::ResponseHeaders { status: 301 },
            ),
            mk(
                1,
                SourceType::UrlRequest,
                10,
                url_start("http://x.example/"),
            ),
            mk(
                1,
                SourceType::UrlRequest,
                60,
                EventParams::Redirect {
                    location: "http://127.0.0.1/".into(),
                },
            ),
        ];
        assert_equivalent(&events);
    }

    #[test]
    fn ice_candidate_flows_group_and_iterate_identically() {
        let events = vec![
            mk(
                4,
                SourceType::P2pSocket,
                12,
                EventParams::IceCandidate {
                    address: "f0ae4f9a-2d4c-4a91.local:9000".into(),
                    candidate_type: "host".into(),
                },
            ),
            mk(
                4,
                SourceType::P2pSocket,
                14,
                EventParams::IceCandidate {
                    address: "192.168.1.20:56100".into(),
                    candidate_type: "host".into(),
                },
            ),
            mk(1, SourceType::UrlRequest, 10, url_start("https://a.com/")),
        ];
        assert_equivalent(&events);
        let view = FlowSetView::from_events(events.iter().map(NetLogEvent::view));
        let flow = view.get(4).unwrap();
        assert_eq!(
            flow.ice_candidates().collect::<Vec<_>>(),
            vec![
                ("f0ae4f9a-2d4c-4a91.local:9000", "host"),
                ("192.168.1.20:56100", "host"),
            ]
        );
        // P2P sockets are page traffic: they must survive the
        // browser-internal filter like URL requests do.
        assert_eq!(view.page_flows().count(), 2);
    }

    #[test]
    fn browser_internal_flows_filtered_like_owned() {
        let events = vec![
            mk(1, SourceType::UrlRequest, 10, url_start("https://a.com/")),
            mk(9, SourceType::BrowserInternal, 5, EventParams::None),
        ];
        let view = FlowSetView::from_events(events.iter().map(NetLogEvent::view));
        assert_eq!(view.len(), 2);
        assert_eq!(view.page_flows().count(), 1);
        assert_equivalent(&events);
    }

    #[test]
    fn empty_set() {
        let view = FlowSetView::from_events(std::iter::empty());
        assert!(view.is_empty());
        assert_eq!(view.len(), 0);
        assert!(view.get(1).is_none());
        assert_equivalent(&[]);
    }
}
