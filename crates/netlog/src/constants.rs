//! Chrome NetLog constant tables.
//!
//! Real NetLog captures encode event types, source types and phases as
//! integers, shipping the name→integer tables in the capture's
//! `constants` object. We model the subset of constants the measurement
//! pipeline touches, using Chrome's actual names and (for `netError`)
//! Chrome's actual numeric values, so that captures we write are
//! recognisable to standard NetLog tooling and captures from a real
//! Chrome can be mapped back losslessly.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// NetLog event types (a curated subset of Chrome's `logEventTypes`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventType {
    /// A URL request object exists; brackets the whole request.
    RequestAlive,
    /// The request job started (has `url`, `method` params).
    UrlRequestStartJob,
    /// The request was redirected (`location` param).
    UrlRequestRedirected,
    /// DNS resolution job.
    HostResolverImplJob,
    /// TCP connect attempt (`address` param).
    TcpConnectAttempt,
    /// TCP connection established or failed.
    TcpConnect,
    /// TLS handshake.
    SslConnect,
    /// HTTP request headers sent.
    HttpTransactionSendRequest,
    /// HTTP response headers received.
    HttpTransactionReadHeaders,
    /// WebSocket handshake initiated (`url` param).
    WebSocketSendRequestHeaders,
    /// WebSocket handshake response.
    WebSocketReadResponseHeaders,
    /// A WebSocket frame was sent.
    WebSocketSentFrame,
    /// A WebSocket frame was received.
    WebSocketRecvFrame,
    /// Socket closed.
    SocketClosed,
    /// Request failed (`net_error` param).
    FailedRequest,
    /// Chrome-internal periodic work (e.g. connectivity probes).
    NetworkChangeNotifier,
    /// A WebRTC ICE candidate was gathered (`address`,
    /// `candidate_type` params). Host candidates carry either a raw
    /// local address or an mDNS-obfuscated `*.local` name.
    IceCandidateGathered,
}

impl EventType {
    /// All modelled event types in constant-table order. New kinds are
    /// appended at the tail: wire codes are positional.
    pub const ALL: [EventType; 17] = [
        EventType::RequestAlive,
        EventType::UrlRequestStartJob,
        EventType::UrlRequestRedirected,
        EventType::HostResolverImplJob,
        EventType::TcpConnectAttempt,
        EventType::TcpConnect,
        EventType::SslConnect,
        EventType::HttpTransactionSendRequest,
        EventType::HttpTransactionReadHeaders,
        EventType::WebSocketSendRequestHeaders,
        EventType::WebSocketReadResponseHeaders,
        EventType::WebSocketSentFrame,
        EventType::WebSocketRecvFrame,
        EventType::SocketClosed,
        EventType::FailedRequest,
        EventType::NetworkChangeNotifier,
        EventType::IceCandidateGathered,
    ];

    /// Chrome-style constant name.
    pub fn name(self) -> &'static str {
        match self {
            EventType::RequestAlive => "REQUEST_ALIVE",
            EventType::UrlRequestStartJob => "URL_REQUEST_START_JOB",
            EventType::UrlRequestRedirected => "URL_REQUEST_REDIRECTED",
            EventType::HostResolverImplJob => "HOST_RESOLVER_IMPL_JOB",
            EventType::TcpConnectAttempt => "TCP_CONNECT_ATTEMPT",
            EventType::TcpConnect => "TCP_CONNECT",
            EventType::SslConnect => "SSL_CONNECT",
            EventType::HttpTransactionSendRequest => "HTTP_TRANSACTION_SEND_REQUEST",
            EventType::HttpTransactionReadHeaders => "HTTP_TRANSACTION_READ_HEADERS",
            EventType::WebSocketSendRequestHeaders => "WEBSOCKET_SEND_REQUEST_HEADERS",
            EventType::WebSocketReadResponseHeaders => "WEBSOCKET_READ_RESPONSE_HEADERS",
            EventType::WebSocketSentFrame => "WEBSOCKET_SENT_FRAME",
            EventType::WebSocketRecvFrame => "WEBSOCKET_RECV_FRAME",
            EventType::SocketClosed => "SOCKET_CLOSED",
            EventType::FailedRequest => "FAILED_REQUEST",
            EventType::NetworkChangeNotifier => "NETWORK_CHANGE_NOTIFIER",
            EventType::IceCandidateGathered => "ICE_CANDIDATE_GATHERED",
        }
    }

    /// Integer code used on the wire (index in the constant table).
    pub fn code(self) -> u32 {
        EventType::ALL
            .iter()
            .position(|t| *t == self)
            .expect("in ALL") as u32
    }

    /// Reverse lookup from a wire code.
    pub fn from_code(code: u32) -> Option<EventType> {
        EventType::ALL.get(code as usize).copied()
    }
}

/// NetLog source types — the entity that generated an event. The paper
/// filters out browser-generated traffic "based on the network event
/// source" (§3.1); source types are how that filter works.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SourceType {
    /// A URL request initiated by renderer (page) activity.
    UrlRequest,
    /// A raw socket.
    Socket,
    /// A DNS resolution job.
    HostResolverImplJob,
    /// A WebSocket channel.
    WebSocket,
    /// Browser-internal activity (omnibox suggestions, update pings,
    /// connectivity probes…). Excluded from website accounting.
    BrowserInternal,
    /// No associated source (global events).
    None,
    /// A WebRTC peer-connection socket gathering ICE candidates.
    /// Page-initiated, like `UrlRequest` and `WebSocket`.
    P2pSocket,
}

impl SourceType {
    /// All modelled source types in constant-table order. New kinds
    /// are appended at the tail: wire codes are positional.
    pub const ALL: [SourceType; 7] = [
        SourceType::UrlRequest,
        SourceType::Socket,
        SourceType::HostResolverImplJob,
        SourceType::WebSocket,
        SourceType::BrowserInternal,
        SourceType::None,
        SourceType::P2pSocket,
    ];

    /// Chrome-style constant name.
    pub fn name(self) -> &'static str {
        match self {
            SourceType::UrlRequest => "URL_REQUEST",
            SourceType::Socket => "SOCKET",
            SourceType::HostResolverImplJob => "HOST_RESOLVER_IMPL_JOB",
            SourceType::WebSocket => "WEBSOCKET",
            SourceType::BrowserInternal => "BROWSER_INTERNAL",
            SourceType::None => "NONE",
            SourceType::P2pSocket => "P2P_SOCKET",
        }
    }

    /// Integer code used on the wire.
    pub fn code(self) -> u32 {
        SourceType::ALL
            .iter()
            .position(|t| *t == self)
            .expect("in ALL") as u32
    }

    /// Reverse lookup from a wire code.
    pub fn from_code(code: u32) -> Option<SourceType> {
        SourceType::ALL.get(code as usize).copied()
    }

    /// True for sources that represent page-visible network activity
    /// (as opposed to the browser's own housekeeping traffic).
    pub fn is_page_traffic(self) -> bool {
        matches!(
            self,
            SourceType::UrlRequest
                | SourceType::WebSocket
                | SourceType::Socket
                | SourceType::P2pSocket
        )
    }
}

/// Event phase: `BEGIN`/`END` bracket an interval, `NONE` is a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventPhase {
    /// Point event.
    None,
    /// Interval start.
    Begin,
    /// Interval end.
    End,
}

impl EventPhase {
    /// Chrome-style constant name.
    pub fn name(self) -> &'static str {
        match self {
            EventPhase::None => "PHASE_NONE",
            EventPhase::Begin => "PHASE_BEGIN",
            EventPhase::End => "PHASE_END",
        }
    }

    /// Wire code (Chrome uses 0/1/2 in this order).
    pub fn code(self) -> u32 {
        match self {
            EventPhase::None => 0,
            EventPhase::Begin => 1,
            EventPhase::End => 2,
        }
    }

    /// Reverse lookup from a wire code.
    pub fn from_code(code: u32) -> Option<EventPhase> {
        match code {
            0 => Some(EventPhase::None),
            1 => Some(EventPhase::Begin),
            2 => Some(EventPhase::End),
            _ => None,
        }
    }
}

/// Chrome `net_error` codes, with Chrome's real numeric values.
///
/// Table 1 of the paper breaks crawl failures down by exactly these
/// errors (plus an "Others" bucket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NetError {
    /// `net::OK` — no error.
    Ok,
    /// `ERR_CONNECTION_RESET` (-101).
    ConnectionReset,
    /// `ERR_CONNECTION_REFUSED` (-102).
    ConnectionRefused,
    /// `ERR_NAME_NOT_RESOLVED` (-105).
    NameNotResolved,
    /// `ERR_TIMED_OUT` (-7).
    TimedOut,
    /// `ERR_CERT_COMMON_NAME_INVALID` (-200).
    CertCommonNameInvalid,
    /// `ERR_CERT_DATE_INVALID` (-201).
    CertDateInvalid,
    /// `ERR_CERT_AUTHORITY_INVALID` (-202).
    CertAuthorityInvalid,
    /// `ERR_SSL_PROTOCOL_ERROR` (-107).
    SslProtocolError,
    /// `ERR_EMPTY_RESPONSE` (-324).
    EmptyResponse,
    /// `ERR_ABORTED` (-3) — e.g. the 20-second window closed first.
    Aborted,
}

impl NetError {
    /// All modelled error codes.
    pub const ALL: [NetError; 11] = [
        NetError::Ok,
        NetError::ConnectionReset,
        NetError::ConnectionRefused,
        NetError::NameNotResolved,
        NetError::TimedOut,
        NetError::CertCommonNameInvalid,
        NetError::CertDateInvalid,
        NetError::CertAuthorityInvalid,
        NetError::SslProtocolError,
        NetError::EmptyResponse,
        NetError::Aborted,
    ];

    /// Chrome's numeric code.
    pub fn code(self) -> i32 {
        match self {
            NetError::Ok => 0,
            NetError::ConnectionReset => -101,
            NetError::ConnectionRefused => -102,
            NetError::NameNotResolved => -105,
            NetError::TimedOut => -7,
            NetError::CertCommonNameInvalid => -200,
            NetError::CertDateInvalid => -201,
            NetError::CertAuthorityInvalid => -202,
            NetError::SslProtocolError => -107,
            NetError::EmptyResponse => -324,
            NetError::Aborted => -3,
        }
    }

    /// Chrome's constant name.
    pub fn name(self) -> &'static str {
        match self {
            NetError::Ok => "OK",
            NetError::ConnectionReset => "ERR_CONNECTION_RESET",
            NetError::ConnectionRefused => "ERR_CONNECTION_REFUSED",
            NetError::NameNotResolved => "ERR_NAME_NOT_RESOLVED",
            NetError::TimedOut => "ERR_TIMED_OUT",
            NetError::CertCommonNameInvalid => "ERR_CERT_COMMON_NAME_INVALID",
            NetError::CertDateInvalid => "ERR_CERT_DATE_INVALID",
            NetError::CertAuthorityInvalid => "ERR_CERT_AUTHORITY_INVALID",
            NetError::SslProtocolError => "ERR_SSL_PROTOCOL_ERROR",
            NetError::EmptyResponse => "ERR_EMPTY_RESPONSE",
            NetError::Aborted => "ERR_ABORTED",
        }
    }

    /// Reverse lookup from Chrome's numeric code.
    pub fn from_code(code: i32) -> Option<NetError> {
        NetError::ALL.iter().copied().find(|e| e.code() == code)
    }

    /// True if this value represents a failure.
    pub fn is_error(self) -> bool {
        self != NetError::Ok
    }
}

/// The `constants` object of a capture, as name→code tables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstantTables {
    /// Event type name → code.
    #[serde(rename = "logEventTypes")]
    pub log_event_types: BTreeMap<String, u32>,
    /// Source type name → code.
    #[serde(rename = "logSourceType")]
    pub log_source_type: BTreeMap<String, u32>,
    /// Phase name → code.
    #[serde(rename = "logEventPhase")]
    pub log_event_phase: BTreeMap<String, u32>,
    /// Error name → numeric code.
    #[serde(rename = "netError")]
    pub net_error: BTreeMap<String, i32>,
}

impl ConstantTables {
    /// The tables for everything this crate models.
    pub fn standard() -> ConstantTables {
        ConstantTables {
            log_event_types: EventType::ALL
                .iter()
                .map(|t| (t.name().to_string(), t.code()))
                .collect(),
            log_source_type: SourceType::ALL
                .iter()
                .map(|t| (t.name().to_string(), t.code()))
                .collect(),
            log_event_phase: [EventPhase::None, EventPhase::Begin, EventPhase::End]
                .iter()
                .map(|p| (p.name().to_string(), p.code()))
                .collect(),
            net_error: NetError::ALL
                .iter()
                .map(|e| (e.name().to_string(), e.code()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_type_codes_round_trip() {
        for t in EventType::ALL {
            assert_eq!(EventType::from_code(t.code()), Some(t));
        }
        assert_eq!(EventType::from_code(999), None);
    }

    #[test]
    fn source_type_codes_round_trip() {
        for t in SourceType::ALL {
            assert_eq!(SourceType::from_code(t.code()), Some(t));
        }
        assert_eq!(SourceType::from_code(999), None);
    }

    #[test]
    fn phase_codes_match_chrome() {
        assert_eq!(EventPhase::None.code(), 0);
        assert_eq!(EventPhase::Begin.code(), 1);
        assert_eq!(EventPhase::End.code(), 2);
        for p in [EventPhase::None, EventPhase::Begin, EventPhase::End] {
            assert_eq!(EventPhase::from_code(p.code()), Some(p));
        }
        assert_eq!(EventPhase::from_code(3), None);
    }

    #[test]
    fn net_error_codes_match_chrome() {
        assert_eq!(NetError::NameNotResolved.code(), -105);
        assert_eq!(NetError::ConnectionRefused.code(), -102);
        assert_eq!(NetError::ConnectionReset.code(), -101);
        assert_eq!(NetError::CertCommonNameInvalid.code(), -200);
        assert_eq!(NetError::Aborted.code(), -3);
        for e in NetError::ALL {
            assert_eq!(NetError::from_code(e.code()), Some(e));
        }
        assert_eq!(NetError::from_code(-99999), None);
    }

    #[test]
    fn ok_is_not_an_error() {
        assert!(!NetError::Ok.is_error());
        assert!(NetError::TimedOut.is_error());
    }

    #[test]
    fn page_traffic_sources() {
        assert!(SourceType::UrlRequest.is_page_traffic());
        assert!(SourceType::WebSocket.is_page_traffic());
        assert!(SourceType::P2pSocket.is_page_traffic());
        assert!(!SourceType::BrowserInternal.is_page_traffic());
        assert!(!SourceType::None.is_page_traffic());
    }

    #[test]
    fn new_kinds_append_at_the_tail() {
        // Wire codes are positional, so the pre-ICE codes must never
        // shift: a capture written before the ICE kinds existed still
        // decodes every event to the same type.
        assert_eq!(EventType::NetworkChangeNotifier.code(), 15);
        assert_eq!(EventType::IceCandidateGathered.code(), 16);
        assert_eq!(SourceType::None.code(), 5);
        assert_eq!(SourceType::P2pSocket.code(), 6);
    }

    #[test]
    fn constant_tables_are_complete_and_injective() {
        let t = ConstantTables::standard();
        assert_eq!(t.log_event_types.len(), EventType::ALL.len());
        assert_eq!(t.log_source_type.len(), SourceType::ALL.len());
        assert_eq!(t.log_event_phase.len(), 3);
        assert_eq!(t.net_error.len(), NetError::ALL.len());
        let mut codes: Vec<_> = t.log_event_types.values().collect();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), EventType::ALL.len(), "event codes injective");
    }
}
