//! Whole-capture reading and writing.
//!
//! A capture is the JSON document Chrome's `chrome://net-export`
//! produces: a `constants` object followed by an `events` array.
//! Chrome appends events to the file as they happen, so a browser that
//! is killed mid-crawl (or a 20-second window that expires mid-flight)
//! leaves a file whose `events` array is never closed. The parser here
//! recovers every complete event from such truncated captures instead
//! of rejecting the file — at crawl scale, losing a whole page visit to
//! a truncated tail would bias the error statistics of Table 1.

use std::fmt;

use serde_json::Value;

use crate::constants::ConstantTables;
use crate::event::NetLogEvent;

/// A parsed or in-construction NetLog capture.
///
/// ```
/// use kt_netlog::Capture;
///
/// let doc = r#"{"constants": {}, "events": [
///   {"time": "5", "type": 1, "source": {"id": 3, "type": 0},
///    "phase": 1, "params": {"url": "http://localhost:4444/", "method": "GET"}}
/// ]}"#;
/// let capture = Capture::parse(doc).unwrap();
/// assert_eq!(capture.len(), 1);
/// assert_eq!(capture.events[0].url(), Some("http://localhost:4444/"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Capture {
    /// The constant tables shipped with the capture.
    pub constants: ConstantTables,
    /// Events in file order (which is time order for Chrome captures).
    pub events: Vec<NetLogEvent>,
    /// Number of wire events skipped because their type/source/phase
    /// codes were outside the modelled tables.
    pub skipped: usize,
    /// True if the capture was recovered from a truncated file.
    pub truncated: bool,
}

/// Errors when reading a capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaptureError {
    /// Input is not JSON and recovery found no event objects either.
    Unparseable(String),
    /// JSON parsed but lacked the `events` array.
    MissingEvents,
}

impl fmt::Display for CaptureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaptureError::Unparseable(msg) => write!(f, "unparseable capture: {msg}"),
            CaptureError::MissingEvents => write!(f, "capture has no events array"),
        }
    }
}

impl std::error::Error for CaptureError {}

impl Capture {
    /// A fresh, empty capture with the standard constant tables.
    pub fn new() -> Capture {
        Capture {
            constants: ConstantTables::standard(),
            events: Vec::new(),
            skipped: 0,
            truncated: false,
        }
    }

    /// Build a capture around already-collected events.
    pub fn from_events(events: Vec<NetLogEvent>) -> Capture {
        Capture {
            constants: ConstantTables::standard(),
            events,
            skipped: 0,
            truncated: false,
        }
    }

    /// Serialise to the `chrome://net-export` JSON document.
    pub fn to_json(&self) -> String {
        let doc = serde_json::json!({
            "constants": self.constants,
            "events": self.events.iter().map(NetLogEvent::to_wire).collect::<Vec<_>>(),
        });
        serde_json::to_string(&doc).expect("capture serialisation cannot fail")
    }

    /// Parse a capture document, recovering from truncation.
    pub fn parse(input: &str) -> Result<Capture, CaptureError> {
        match serde_json::from_str::<Value>(input) {
            Ok(doc) => {
                let events_val = doc.get("events").ok_or(CaptureError::MissingEvents)?;
                let arr = events_val.as_array().ok_or(CaptureError::MissingEvents)?;
                let mut events = Vec::with_capacity(arr.len());
                let mut skipped = 0;
                for v in arr {
                    match NetLogEvent::from_wire(v) {
                        Some(ev) => events.push(ev),
                        None => skipped += 1,
                    }
                }
                let constants = doc
                    .get("constants")
                    .and_then(|c| serde_json::from_value(c.clone()).ok())
                    .unwrap_or_else(ConstantTables::standard);
                Ok(Capture {
                    constants,
                    events,
                    skipped,
                    truncated: false,
                })
            }
            Err(_) => Capture::parse_truncated(input),
        }
    }

    /// Recovery path: scan for complete top-level JSON objects inside
    /// the `events` array of a truncated document and parse each one.
    fn parse_truncated(input: &str) -> Result<Capture, CaptureError> {
        let start = input
            .find("\"events\"")
            .and_then(|i| input[i..].find('[').map(|j| i + j + 1))
            .ok_or(CaptureError::MissingEvents)?;
        let mut events = Vec::new();
        let mut skipped = 0;
        let bytes = input.as_bytes();
        let mut i = start;
        while i < bytes.len() {
            // Find the next object start.
            match bytes[i] {
                b'{' => {
                    if let Some(end) = balanced_object_end(input, i) {
                        let slice = &input[i..=end];
                        match serde_json::from_str::<Value>(slice) {
                            Ok(v) => match NetLogEvent::from_wire(&v) {
                                Some(ev) => events.push(ev),
                                None => skipped += 1,
                            },
                            Err(_) => skipped += 1,
                        }
                        i = end + 1;
                    } else {
                        // Incomplete trailing object: stop.
                        break;
                    }
                }
                b']' => break,
                _ => i += 1,
            }
        }
        if events.is_empty() && skipped == 0 {
            return Err(CaptureError::Unparseable(
                "no complete events recovered".into(),
            ));
        }
        Ok(Capture {
            constants: ConstantTables::standard(),
            events,
            skipped,
            truncated: true,
        })
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the capture holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Default for Capture {
    fn default() -> Self {
        Capture::new()
    }
}

/// Find the index of the `}` closing the object that starts at `start`,
/// honouring nesting and JSON string escapes. Returns `None` if the
/// object is not closed within the input.
fn balanced_object_end(input: &str, start: usize) -> Option<usize> {
    let bytes = input.as_bytes();
    debug_assert_eq!(bytes[start], b'{');
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (offset, &b) in bytes[start..].iter().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(start + offset);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::{EventPhase, EventType, SourceType};
    use crate::event::{EventParams, SourceRef};

    fn ev(id: u64, time: u64, url: &str) -> NetLogEvent {
        NetLogEvent {
            time,
            event_type: EventType::UrlRequestStartJob,
            source: SourceRef {
                id,
                kind: SourceType::UrlRequest,
            },
            phase: EventPhase::Begin,
            params: EventParams::UrlRequestStart {
                url: url.into(),
                method: "GET".into(),
                initiator: None,
                load_flags: 0,
            },
        }
    }

    #[test]
    fn json_round_trip() {
        let capture = Capture::from_events(vec![
            ev(1, 10, "https://example.com/"),
            ev(2, 20, "wss://127.0.0.1:3389/"),
        ]);
        let text = capture.to_json();
        let parsed = Capture::parse(&text).unwrap();
        assert_eq!(parsed.events, capture.events);
        assert_eq!(parsed.skipped, 0);
        assert!(!parsed.truncated);
        assert_eq!(parsed.constants, ConstantTables::standard());
    }

    #[test]
    fn truncated_capture_recovers_complete_events() {
        let capture = Capture::from_events(vec![
            ev(1, 10, "https://example.com/"),
            ev(2, 20, "http://localhost:4444/"),
            ev(3, 30, "http://10.0.0.200/x.jpg"),
        ]);
        let text = capture.to_json();
        // Cut the file in the middle of the third event.
        let third_start = text.rfind("{\"params\"").unwrap_or(text.len() - 40);
        let cut = &text[..third_start + 15];
        let parsed = Capture::parse(cut).unwrap();
        assert!(parsed.truncated);
        assert!(parsed.len() >= 2, "recovered {} events", parsed.len());
        assert_eq!(parsed.events[0].url(), Some("https://example.com/"));
    }

    #[test]
    fn garbage_input_is_an_error() {
        assert!(matches!(
            Capture::parse("not json at all"),
            Err(CaptureError::Unparseable(_)) | Err(CaptureError::MissingEvents)
        ));
        assert_eq!(
            Capture::parse("{\"constants\": {}}"),
            Err(CaptureError::MissingEvents)
        );
    }

    #[test]
    fn unknown_event_types_are_counted_not_fatal() {
        let mut doc: Value = serde_json::from_str(
            &Capture::from_events(vec![ev(1, 10, "https://example.com/")]).to_json(),
        )
        .unwrap();
        doc["events"]
            .as_array_mut()
            .unwrap()
            .push(serde_json::json!({
                "time": "99", "type": 5000,
                "source": {"id": 9, "type": 0}, "phase": 0, "params": {}
            }));
        let parsed = Capture::parse(&doc.to_string()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed.skipped, 1);
    }

    #[test]
    fn balanced_object_end_handles_nesting_and_strings() {
        let s = r#"{"a": {"b": "}"}, "c": 1}"#;
        assert_eq!(balanced_object_end(s, 0), Some(s.len() - 1));
        let unterminated = r#"{"a": {"b": 1}"#;
        assert_eq!(balanced_object_end(unterminated, 0), None);
        let escaped = r#"{"a": "\"}"}"#;
        assert_eq!(balanced_object_end(escaped, 0), Some(escaped.len() - 1));
    }

    #[test]
    fn empty_capture() {
        let c = Capture::new();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        let parsed = Capture::parse(&c.to_json()).unwrap();
        assert!(parsed.is_empty());
    }
}
