//! Property tests: capture serialisation round-trips and truncation
//! recovery never loses already-complete events.

use kt_netlog::{
    Capture, EventParams, EventPhase, EventType, FlowSet, FlowSetView, NetLogEvent, SourceRef,
    SourceType,
};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = (EventType, EventParams)> {
    prop_oneof![
        Just((EventType::RequestAlive, EventParams::None)),
        ("[a-z]{1,8}", "[a-z.]{1,16}").prop_map(|(m, u)| (
            EventType::UrlRequestStartJob,
            EventParams::UrlRequestStart {
                url: format!("http://{u}/"),
                method: m.to_uppercase(),
                initiator: None,
                load_flags: 0,
            }
        )),
        "[a-z.]{1,20}".prop_map(|h| (
            EventType::HostResolverImplJob,
            EventParams::DnsJob { host: h }
        )),
        (any::<u16>()).prop_map(|s| (
            EventType::HttpTransactionReadHeaders,
            EventParams::ResponseHeaders { status: s }
        )),
        (any::<i16>()).prop_map(|e| (
            EventType::FailedRequest,
            EventParams::Failed {
                net_error: e as i32
            }
        )),
        (any::<u32>()).prop_map(|l| (
            EventType::WebSocketRecvFrame,
            EventParams::WebSocketFrame { length: l as u64 }
        )),
    ]
}

fn arb_event() -> impl Strategy<Value = NetLogEvent> {
    (any::<u32>(), 1u64..10_000, 0u32..6, 0u32..3, arb_params()).prop_map(
        |(time, id, src, phase, (event_type, params))| NetLogEvent {
            time: time as u64,
            event_type,
            source: SourceRef {
                id,
                kind: SourceType::from_code(src).unwrap(),
            },
            phase: EventPhase::from_code(phase).unwrap(),
            params,
        },
    )
}

proptest! {
    #[test]
    fn capture_json_round_trip(events in proptest::collection::vec(arb_event(), 0..40)) {
        let capture = Capture::from_events(events.clone());
        let parsed = Capture::parse(&capture.to_json()).unwrap();
        // Failed params with unknown codes still round-trip as raw ints.
        prop_assert_eq!(parsed.events, events);
        prop_assert_eq!(parsed.skipped, 0);
        prop_assert!(!parsed.truncated);
    }

    #[test]
    fn truncation_recovery_is_prefix_monotone(
        events in proptest::collection::vec(arb_event(), 2..20),
        cut_frac in 0.3f64..0.999,
    ) {
        let capture = Capture::from_events(events);
        let text = capture.to_json();
        let cut = (text.len() as f64 * cut_frac) as usize;
        // Don't cut inside the constants header: ensure we're past "events".
        if let Some(events_at) = text.find("\"events\"") {
            let cut = cut.max(events_at + 12).min(text.len());
            if let Ok(parsed) = Capture::parse(&text[..cut]) {
                // Every recovered event must be a prefix of the original list.
                prop_assert!(parsed.events.len() <= capture.events.len());
                for (a, b) in parsed.events.iter().zip(capture.events.iter()) {
                    prop_assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "\\PC{0,400}") {
        let _ = Capture::parse(&input);
    }

    /// The clone-free `FlowSetView` must reconstruct exactly the flows
    /// the owned `FlowSet` does: same grouping, same order, same
    /// per-flow accessors — on arbitrary interleavings, duplicate
    /// timestamps, and mixed source kinds per ID.
    #[test]
    fn flow_set_view_matches_owned_flow_set(
        events in proptest::collection::vec(arb_event(), 0..60),
    ) {
        let owned = FlowSet::from_events(events.iter().cloned());
        let view = FlowSetView::from_events(events.iter().map(NetLogEvent::view));
        prop_assert_eq!(view.len(), owned.len());
        prop_assert_eq!(view.is_empty(), owned.is_empty());
        prop_assert_eq!(view.page_flows().count(), owned.page_flows().count());
        for (of, vf) in owned.iter().zip(view.iter()) {
            prop_assert_eq!(vf.source, of.source);
            prop_assert_eq!(vf.start_time(), of.start_time());
            prop_assert_eq!(vf.end_time(), of.end_time());
            prop_assert_eq!(vf.url(), of.url());
            prop_assert_eq!(vf.redirects().collect::<Vec<_>>(), of.redirect_chain());
            prop_assert_eq!(vf.is_websocket(), of.is_websocket());
            prop_assert_eq!(vf.websocket_frames(), of.websocket_frames());
            prop_assert_eq!(vf.outcome(), of.outcome());
            prop_assert_eq!(vf.is_closed(), of.is_closed());
            let roundtrip: Vec<NetLogEvent> = vf.events().map(|&e| e.to_owned()).collect();
            prop_assert_eq!(&roundtrip, &of.events);
            let looked_up = view.get(of.source.id).expect("flow present by id");
            prop_assert_eq!(looked_up.event_count(), of.events.len());
        }
    }
}
