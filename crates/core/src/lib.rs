//! # knock-talk
//!
//! A Rust reproduction of *"Knock and Talk: Investigating Local
//! Network Communications on Websites"* (Kuchhal & Li, IMC 2021).
//!
//! The crate wires the workspace together behind one facade:
//!
//! ```no_run
//! use knock_talk::{Study, StudyConfig};
//!
//! let study = Study::run(StudyConfig::quick(42));
//! println!("{}", study.experiment("T5").unwrap());
//! ```
//!
//! * [`Study`] — generate the synthetic web, run all eight crawls
//!   (top-100K 2020 on three OSes, top-100K 2021 on two, malicious on
//!   three), store telemetry, and expose analysis views;
//! * [`experiments`] — one regeneration function per table and figure
//!   of the paper (T1–T11, F2–F9), each returning rendered text.
//!
//! Everything below the facade is public too: `kt-netbase` (URLs, IP
//! locality, Same-Origin Policy), `kt-netlog` (Chrome NetLog model),
//! `kt-simnet` (simulated internet), `kt-weblists`/`kt-webgen`
//! (populations), `kt-browser` (the instrumented browser),
//! `kt-faults` (deterministic fault injection + retry policy),
//! `kt-crawler` (supervised orchestration), `kt-store` (telemetry
//! store), `kt-scanner` (active local-network probing) and
//! `kt-analysis` (detection, classification, reports).

#![warn(missing_docs)]

pub mod experiments;
pub mod snapshot;
pub mod study;

pub use snapshot::{
    content_changed, content_version, per_snapshot_logical_bytes, synth_site, SnapshotStudy,
    SnapshotStudyConfig, SnapshotWork, SNAPSHOT_OSES,
};
pub use study::{profile_study, record_journal_stats, record_save_report, Study, StudyConfig};

pub use kt_analysis as analysis;
pub use kt_browser as browser;
pub use kt_crawler as crawler;
pub use kt_faults as faults;
pub use kt_netbase as netbase;
pub use kt_netlog as netlog;
pub use kt_scanner as scanner;
pub use kt_service as service;
pub use kt_simnet as simnet;
pub use kt_store as store;
pub use kt_trace as trace;
pub use kt_webgen as webgen;
pub use kt_weblists as weblists;
