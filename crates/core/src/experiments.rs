//! One regeneration function per table and figure of the paper.
//!
//! Each function takes a completed [`Study`] and renders the artefact
//! as text. Absolute numbers are simulation-scale; the *shape* (who
//! wins, by what factor, where the skews are) is what reproduces the
//! paper — see EXPERIMENTS.md for the side-by-side.

use kt_analysis::cdf::Ecdf;
use kt_analysis::detect::SiteLocalActivity;
use kt_analysis::report;
use kt_analysis::venn::OsVenn;
use kt_netbase::{Os, ServiceRegistry};
use kt_store::CrawlId;

use crate::study::Study;

/// Every experiment id, in paper order.
pub const ALL_IDS: [&str; 19] = [
    "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10", "T11", "F2", "F3", "F4", "F5",
    "F6", "F7", "F8", "F9",
];

/// Extension experiments beyond the paper's artefacts: the §5
/// discussion quantified (Private Network Access impact, Appendix-B
/// developer-error breakdown, §5.2 fingerprinting entropy).
pub const EXTENDED_IDS: [&str; 5] = ["X1", "X2", "X3", "X4", "X5"];

/// Dispatch by experiment id.
pub fn run(study: &Study, id: &str) -> Option<String> {
    match id {
        "T1" => Some(table1(study)),
        "T2" => Some(table2(study)),
        "T3" => Some(table3(study)),
        "T4" => Some(table4()),
        "T5" => Some(table5(study)),
        "T6" => Some(table6(study)),
        "T7" => Some(table7(study)),
        "T8" => Some(table8(study)),
        "T9" => Some(table9(study)),
        "T10" => Some(table10(study)),
        "T11" => Some(table11(study)),
        "F2" => Some(figure2(study)),
        "F3" => Some(figure3(study)),
        "F4" => Some(figure4(study)),
        "F5" => Some(figure5(study)),
        "F6" => Some(figure6(study)),
        "F7" => Some(figure7(study)),
        "F8" => Some(figure8(study)),
        "F9" => Some(figure9(study)),
        "X1" => Some(x1_defense_impact(study)),
        "X2" => Some(x2_dev_error_breakdown(study)),
        "X3" => Some(x3_fingerprint_entropy(study)),
        "X4" => Some(x4_longitudinal(study)),
        "X5" => Some(x5_deep_crawl(study)),
        _ => None,
    }
}

/// X1 — replay the 2020 telemetry under the WICG Private Network
/// Access proposal, per adoption scenario (§5.3). The verdicts were
/// computed during the single-decode pass; this just renders them.
pub fn x1_defense_impact(study: &Study) -> String {
    format!(
        "Sites whose local traffic still works vs is fully blocked under PNA:\n{}",
        study.analysis(&CrawlId::top2020()).defense.render()
    )
}

/// X2 — Appendix-B breakdown of the 2020 developer errors.
pub fn x2_dev_error_breakdown(study: &Study) -> String {
    let sites = study.activities(&CrawlId::top2020());
    let breakdown = kt_analysis::dev_error::breakdown(sites);
    let mut out = String::from("Developer-error sub-classes (2020 crawl):\n");
    for (kind, n) in breakdown {
        out.push_str(&format!("  {:<24} {n}\n", kind.label()));
    }
    out
}

/// X3 — fingerprinting entropy (§5.2): how identifying would each
/// observed scan be across a population of visitor machines?
pub fn x3_fingerprint_entropy(study: &Study) -> String {
    use kt_netbase::services::{BIGIP_PORTS, THREATMETRIX_PORTS};
    let seed = study.config.population.seed;
    let mut out =
        String::from("Shannon entropy harvested by each scan over 1,000 visitor machines:\n");
    let mut wide: Vec<u16> = THREATMETRIX_PORTS.to_vec();
    wide.extend_from_slice(&BIGIP_PORTS);
    wide.extend_from_slice(&[6463, 3000, 5900]);
    for (label, ports) in [
        ("ThreatMetrix (14 ports)", THREATMETRIX_PORTS.to_vec()),
        ("BIG-IP ASM (7 ports)", BIGIP_PORTS.to_vec()),
        ("combined + app ports", wide),
    ] {
        for os in [Os::Windows, Os::Linux, Os::MacOs] {
            let report = kt_analysis::entropy::scan_entropy(os, &ports, 1_000, seed);
            out.push_str(&format!(
                "  {label:<24} {:<8} {:.2} bits ({} distinct profiles, modal share {:.0}%)\n",
                os.name(),
                report.shannon_bits,
                report.distinct,
                report.modal_share * 100.0
            ));
        }
    }
    out
}

/// X4 — the 2020→2021 transition matrix: which behaviour classes
/// carried, stopped, started or were reclassified between crawls.
pub fn x4_longitudinal(study: &Study) -> String {
    let m = kt_analysis::longitudinal::transitions(
        study.activities(&CrawlId::top2020()),
        study.activities(&CrawlId::top2021()),
    );
    format!(
        "2020 → 2021 localhost-behaviour transitions:\n{}",
        m.render()
    )
}

/// X5 — deep-crawl mode (§3.3): re-crawl the 2020 population on
/// Windows with internal pages visited too, and compare the localhost
/// detection counts. The paper calls its landing-page numbers "a lower
/// bound"; this quantifies the gap for the synthetic population, where
/// some e-commerce sites deploy ThreatMetrix only on login pages.
pub fn x5_deep_crawl(study: &Study) -> String {
    use kt_crawler::{run_crawl, CrawlConfig, CrawlJob};
    use kt_store::TelemetryStore;

    let landing = study
        .activities(&CrawlId::top2020())
        .iter()
        .filter(|s| s.localhost_os.contains(Os::Windows))
        .count();
    let deep_id = kt_store::CrawlId("top2020-deep".to_string());

    let jobs: Vec<CrawlJob> = study
        .population
        .sites2020
        .iter()
        .map(|site| CrawlJob {
            site,
            malicious_category: None,
        })
        .collect();
    let store = TelemetryStore::new();
    let mut config = CrawlConfig::paper(deep_id.clone(), Os::Windows, study.config.population.seed);
    config.crawl_internal = true;
    config.workers = study.config.workers;
    run_crawl(&jobs, &config, &store);
    let deep = kt_analysis::par::analyze_crawl_par(&store, &deep_id, study.config.workers)
        .sites
        .iter()
        .filter(|s| s.localhost_os.contains(Os::Windows))
        .count();
    format!(
        "Windows localhost-active sites, 2020 population:\n\
         \x20 landing pages only (the paper's method): {landing}\n\
         \x20 landing + internal pages (deep crawl):   {deep}\n\
         \x20 → {} sites deploy local probing only behind the landing page,\n\
         \x20   confirming §3.3's lower-bound caveat.\n",
        deep.saturating_sub(landing)
    )
}

/// Table 1 — crawl statistics for every campaign/OS.
pub fn table1(study: &Study) -> String {
    let mut rows: Vec<(&str, Os, &kt_crawler::CrawlStats)> = Vec::new();
    let pairs = [
        ("Top 100K: 2020", "top2020", Os::Windows),
        ("Top 100K: 2020", "top2020", Os::Linux),
        ("Top 100K: 2020", "top2020", Os::MacOs),
        ("Top 100K: 2021", "top2021", Os::Windows),
        ("Top 100K: 2021", "top2021", Os::Linux),
        ("Malicious", "malicious", Os::Windows),
        ("Malicious", "malicious", Os::Linux),
        ("Malicious", "malicious", Os::MacOs),
    ];
    for (label, crawl, os) in pairs {
        if let Some(stats) = study.stats.get(&(crawl.to_string(), os)) {
            rows.push((label, os, stats));
        }
    }
    report::table1(&rows).0
}

/// The crawl health report — resilience counters (retries, recrawls,
/// recoveries, quarantines) for every campaign/OS.
pub fn health_report(study: &Study) -> String {
    let mut rows: Vec<(&str, Os, &kt_crawler::CrawlStats)> = Vec::new();
    let pairs = [
        ("Top 100K: 2020", "top2020", Os::Windows),
        ("Top 100K: 2020", "top2020", Os::Linux),
        ("Top 100K: 2020", "top2020", Os::MacOs),
        ("Top 100K: 2021", "top2021", Os::Windows),
        ("Top 100K: 2021", "top2021", Os::Linux),
        ("Malicious", "malicious", Os::Windows),
        ("Malicious", "malicious", Os::Linux),
        ("Malicious", "malicious", Os::MacOs),
    ];
    for (label, crawl, os) in pairs {
        if let Some(stats) = study.stats.get(&(crawl.to_string(), os)) {
            rows.push((label, os, stats));
        }
    }
    report::health_table(&rows).0
}

/// Table 2 — malicious crawl summary, from the single-decode tallies.
pub fn table2(study: &Study) -> String {
    let analysis = study.analysis(&CrawlId::malicious());
    report::table2_tallied(
        &study.population.blocklist,
        &analysis.outcomes,
        &analysis.sites,
    )
}

/// Table 3 — top-10 localhost-active domains, 2020.
pub fn table3(study: &Study) -> String {
    let sites = study.activities(&CrawlId::top2020());
    report::table3(sites, 10)
}

/// Table 4 — port/service registry.
pub fn table4() -> String {
    report::table4(&ServiceRegistry::standard())
}

/// Table 5 — 2020 localhost requests by reason.
pub fn table5(study: &Study) -> String {
    let sites = study.activities(&CrawlId::top2020());
    report::localhost_table(sites).0
}

/// Table 6 — 2020 LAN requests.
pub fn table6(study: &Study) -> String {
    let sites = study.activities(&CrawlId::top2020());
    report::lan_table(sites).0
}

/// Table 7 — localhost requests new in 2021.
pub fn table7(study: &Study) -> String {
    let sites2020 = study.activities(&CrawlId::top2020());
    let sites2021 = study.activities(&CrawlId::top2021());
    let diff = report::activity_diff(sites2020, sites2021);
    let new_sites: Vec<SiteLocalActivity> = sites2021
        .iter()
        .filter(|s| diff.new.contains(&s.domain))
        .cloned()
        .collect();
    let (table, _) = report::localhost_table(&new_sites);
    format!(
        "{table}\n(carried from 2020: {}, stopped since 2020: {}, new in 2021: {})\n",
        diff.carried.len(),
        diff.stopped.len(),
        diff.new.len()
    )
}

/// Table 8 — malicious localhost requests.
pub fn table8(study: &Study) -> String {
    let sites = study.activities(&CrawlId::malicious());
    report::localhost_table(sites).0
}

/// Table 9 — malicious LAN requests.
pub fn table9(study: &Study) -> String {
    let sites = study.activities(&CrawlId::malicious());
    report::lan_table(sites).0
}

/// Table 10 — 2021 LAN requests.
pub fn table10(study: &Study) -> String {
    let sites = study.activities(&CrawlId::top2021());
    report::lan_table(sites).0
}

/// Table 11 — 2020 developer-error localhost requests.
pub fn table11(study: &Study) -> String {
    let sites = study.activities(&CrawlId::top2020());
    report::table11(sites).0
}

/// Figure 2 — OS overlap Venn diagrams (2020 top + malicious).
pub fn figure2(study: &Study) -> String {
    let top = study.activities(&CrawlId::top2020());
    let top_venn = OsVenn::from_sets(
        top.iter()
            .filter(|s| s.has_localhost())
            .map(|s| s.localhost_os),
    );
    let mal = study.activities(&CrawlId::malicious());
    let mal_venn = OsVenn::from_sets(
        mal.iter()
            .filter(|s| s.has_localhost())
            .map(|s| s.localhost_os),
    );
    format!(
        "(a) 2020 top-100K localhost sites\n{}\n\n(b) Malicious localhost sites\n{}\n",
        top_venn.render(),
        mal_venn.render()
    )
}

/// Render an ECDF curve as a unicode sparkline: each column is F(x)
/// at an evenly-spaced x, so a uniform distribution draws a ramp.
fn sparkline(ecdf: &Ecdf) -> String {
    const BARS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    ecdf.curve(39)
        .into_iter()
        .map(|(_, f)| BARS[((f * (BARS.len() - 1) as f64).round() as usize).min(BARS.len() - 1)])
        .collect()
}

/// Rank-CDF rendering helper shared by Figures 3 and 9.
fn rank_cdf(sites: &[SiteLocalActivity], oses: &[Os]) -> String {
    let mut out = String::new();
    for os in oses {
        let ranks: Vec<f64> = sites
            .iter()
            .filter(|s| s.localhost_os.contains(*os))
            .filter_map(|s| s.rank)
            .map(|r| r as f64)
            .collect();
        let ecdf = Ecdf::new(ranks);
        out.push_str(&format!("{} (total #: {})\n", os.name(), ecdf.len()));
        if !ecdf.is_empty() {
            for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
                out.push_str(&format!(
                    "  p{:<2.0} rank {:>8.0}\n",
                    q * 100.0,
                    ecdf.quantile(q).unwrap()
                ));
            }
            out.push_str(&format!("  F(rank): {}\n", sparkline(&ecdf)));
        }
    }
    out
}

/// Figure 3 — rank CDFs of localhost-active sites, 2020.
pub fn figure3(study: &Study) -> String {
    let sites = study.activities(&CrawlId::top2020());
    rank_cdf(sites, &[Os::Windows, Os::Linux, Os::MacOs])
}

/// Figure 4 — protocol/port rings, 2020 top crawl (tallied during the
/// single-decode pass).
pub fn figure4(study: &Study) -> String {
    study.analysis(&CrawlId::top2020()).rings.render()
}

/// Timing-CDF rendering helper shared by Figures 5–7.
fn timing_cdf(sites: &[SiteLocalActivity], oses: &[Os]) -> String {
    let mut out = String::new();
    for (label, loopback) in [("localhost", true), ("LAN", false)] {
        out.push_str(&format!("Requests to {label}:\n"));
        for os in oses {
            let delays: Vec<f64> = sites
                .iter()
                .filter_map(|s| s.first_delay_on(*os, loopback))
                .map(|d| d as f64 / 1000.0)
                .collect();
            let ecdf = Ecdf::new(delays);
            if ecdf.is_empty() {
                out.push_str(&format!("  {:<8} (no sites)\n", os.name()));
                continue;
            }
            out.push_str(&format!(
                "  {:<8} n={:<4} median {:>5.1}s  p90 {:>5.1}s  max {:>5.1}s  {}\n",
                os.name(),
                ecdf.len(),
                ecdf.median().unwrap(),
                ecdf.quantile(0.9).unwrap(),
                ecdf.max().unwrap(),
                sparkline(&ecdf)
            ));
        }
    }
    out
}

/// Figure 5 — time-to-first-local-request CDFs, 2020.
pub fn figure5(study: &Study) -> String {
    let sites = study.activities(&CrawlId::top2020());
    timing_cdf(sites, &[Os::Windows, Os::Linux, Os::MacOs])
}

/// Figure 6 — timing CDFs, 2021.
pub fn figure6(study: &Study) -> String {
    let sites = study.activities(&CrawlId::top2021());
    timing_cdf(sites, &[Os::Windows, Os::Linux])
}

/// Figure 7 — timing CDFs, malicious crawl.
pub fn figure7(study: &Study) -> String {
    let sites = study.activities(&CrawlId::malicious());
    timing_cdf(sites, &[Os::Windows, Os::Linux, Os::MacOs])
}

/// Figure 8 — protocol/port rings, 2021 (tallied during the
/// single-decode pass).
pub fn figure8(study: &Study) -> String {
    study.analysis(&CrawlId::top2021()).rings.render()
}

/// Figure 9 — rank CDFs, 2021.
pub fn figure9(study: &Study) -> String {
    let sites = study.activities(&CrawlId::top2021());
    rank_cdf(sites, &[Os::Windows, Os::Linux])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{campaigns, StudyConfig};

    #[test]
    fn parallel_analysis_reproduces_sequential_tables_verbatim() {
        // The single-decode parallel driver must be invisible in the
        // output: every cached aggregate equals its sequential
        // recomputation, and the rendered tables match byte for byte.
        let study = Study::run(StudyConfig::quick(7));
        for (crawl, _) in campaigns() {
            let records = study.store.crawl_records(&crawl);
            let analysis = study.analysis(&crawl);
            assert_eq!(
                analysis.sites,
                kt_analysis::detect::aggregate_sites(&records),
                "{crawl:?} sites"
            );
            let observations: Vec<_> = records
                .iter()
                .flat_map(kt_analysis::detect::detect_local)
                .collect();
            assert_eq!(
                analysis.rings,
                kt_analysis::rings::PortRings::from_observations(&observations),
                "{crawl:?} rings"
            );
            assert_eq!(
                analysis.defense,
                kt_analysis::defense::evaluate(&records),
                "{crawl:?} defense"
            );
            assert_eq!(analysis.visits, records.len(), "{crawl:?} visits");
        }
        // Table 2 through the tally path vs the record-level renderer.
        let records = study.store.crawl_records(&CrawlId::malicious());
        let sites = kt_analysis::detect::aggregate_sites(&records);
        assert_eq!(
            table2(&study),
            report::table2(&study.population.blocklist, &records, &sites)
        );
    }

    #[test]
    fn every_experiment_renders() {
        let study = Study::run(StudyConfig::quick(11));
        for id in ALL_IDS.iter().chain(EXTENDED_IDS.iter()) {
            let text = run(&study, id).unwrap_or_else(|| panic!("{id} missing"));
            assert!(!text.trim().is_empty(), "{id} rendered empty");
        }
        assert!(run(&study, "T99").is_none());
    }
}
