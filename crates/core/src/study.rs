//! The full study: population → eight crawls → telemetry → analysis.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use kt_analysis::detect::SiteLocalActivity;
use kt_analysis::par::{analyze_crawl_traced, CrawlAnalysis};
use kt_crawler::{
    run_crawl_resumed_observed, set_stats_gauges, split_campaigns, stats_sink, CrawlConfig,
    CrawlJob, CrawlStats, ResumePlan,
};
use kt_netbase::Os;
use kt_store::{
    replay, CheckpointFrame, CrawlId, JournalError, JournalMeta, JournalStats, JournalWriter,
    TelemetryStore,
};
use kt_trace::{names, Labels, Trace};
use kt_webgen::{PopulationConfig, WebPopulation};

/// Study configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudyConfig {
    /// Population parameters (scale + seed).
    pub population: PopulationConfig,
    /// Crawl worker threads.
    pub workers: usize,
}

impl StudyConfig {
    /// Full paper scale (100K top list, ~145K malicious). Heavy:
    /// nearly a million simulated page visits.
    pub fn paper(seed: u64) -> StudyConfig {
        StudyConfig {
            population: PopulationConfig::paper_scale(seed),
            workers: 8,
        }
    }

    /// A fast configuration for examples and tests: every behaviour is
    /// planted at full count, but the quiet background population is
    /// smaller.
    pub fn quick(seed: u64) -> StudyConfig {
        StudyConfig {
            population: PopulationConfig::test_scale(seed),
            workers: 4,
        }
    }

    /// A mid-size configuration: large enough for the rate statistics
    /// of Tables 1–2 to stabilise, small enough to run in seconds.
    pub fn standard(seed: u64) -> StudyConfig {
        StudyConfig {
            population: PopulationConfig {
                seed,
                top_size: 10_000,
                malicious_size: 14_500,
                sensors: false,
            },
            workers: 8,
        }
    }
}

/// The paper's crawl campaigns: (crawl id, OSes crawled).
pub fn campaigns() -> Vec<(CrawlId, Vec<Os>)> {
    vec![
        (CrawlId::top2020(), vec![Os::Windows, Os::Linux, Os::MacOs]),
        // Logistics prevented the 2021 Mac crawl (§3.2, fn. 3).
        (CrawlId::top2021(), vec![Os::Windows, Os::Linux]),
        (
            CrawlId::malicious(),
            vec![Os::Windows, Os::Linux, Os::MacOs],
        ),
    ]
}

/// A completed study.
pub struct Study {
    /// Configuration used.
    pub config: StudyConfig,
    /// The generated populations.
    pub population: WebPopulation,
    /// All telemetry.
    pub store: TelemetryStore,
    /// Per-(crawl, OS) crawl statistics.
    pub stats: BTreeMap<(String, Os), CrawlStats>,
    /// Per-campaign analysis, computed once by the parallel
    /// single-decode driver — every table and figure reads from here
    /// instead of re-decoding the store.
    pub analyses: BTreeMap<String, CrawlAnalysis>,
}

/// The job list of one campaign over a generated population.
fn campaign_jobs<'a>(population: &'a WebPopulation, crawl: &CrawlId) -> Vec<CrawlJob<'a>> {
    match crawl.as_str() {
        "top2020" => population
            .sites2020
            .iter()
            .map(|site| CrawlJob {
                site,
                malicious_category: None,
            })
            .collect(),
        "top2021" => population
            .sites2021
            .iter()
            .map(|site| CrawlJob {
                site,
                malicious_category: None,
            })
            .collect(),
        _ => population
            .malicious_sites
            .iter()
            .zip(&population.blocklist.entries)
            .map(|(site, entry)| CrawlJob {
                site,
                malicious_category: Some(kt_analysis::report::category_code(entry.category)),
            })
            .collect(),
    }
}

/// Record a journal writer's durability counters into the metrics
/// registry. Journal counters are *writer-owned*: a resumed study
/// reports only the frames its own process appended, so — unlike the
/// crawl counters — these legitimately differ between a baseline run
/// and a kill/resume cycle.
pub fn record_journal_stats(trace: &Trace, stats: &JournalStats) {
    let none = Labels::new(&[]);
    trace.inc_counter(names::JOURNAL_FRAMES_TOTAL, none.clone(), stats.frames);
    trace.inc_counter(names::JOURNAL_VISITS_TOTAL, none.clone(), stats.visits);
    trace.inc_counter(
        names::JOURNAL_CHECKPOINTS_TOTAL,
        none.clone(),
        stats.checkpoints,
    );
    trace.inc_counter(names::JOURNAL_BYTES_TOTAL, none.clone(), stats.bytes);
    trace.inc_counter(names::JOURNAL_FSYNCS_TOTAL, none.clone(), stats.fsyncs);
    trace.inc_counter(
        names::JOURNAL_GROUP_COMMITS_TOTAL,
        none.clone(),
        stats.group_commits,
    );
    trace.inc_counter(
        names::JOURNAL_GROUPED_FRAMES_TOTAL,
        none.clone(),
        stats.grouped_frames,
    );
    trace.set_gauge(
        names::JOURNAL_FRAMES_PER_FSYNC,
        none,
        stats.frames_per_fsync(),
    );
}

/// Run a full study under a [`StageProfiler`]: population generation,
/// each (campaign, OS) crawl, and each campaign analysis become
/// separate profiled stages with element counts (sites crawled /
/// records analysed) and, for crawls, the simulated makespan alongside
/// real wall time. Profiling changes nothing about the study itself —
/// the returned `Study` is the same one [`Study::run_observed`]
/// produces.
pub fn profile_study(
    config: StudyConfig,
    profiler: &mut kt_trace::StageProfiler,
    trace: Option<&Trace>,
) -> Study {
    let population = profiler.run("population", || WebPopulation::generate(config.population));
    profiler.annotate_elements(
        (population.sites2020.len() + population.sites2021.len() + population.malicious_sites.len())
            as u64,
    );
    let store = TelemetryStore::new();
    let mut stats = BTreeMap::new();
    let seed = config.population.seed;
    for (crawl, oses) in campaigns() {
        let jobs = campaign_jobs(&population, &crawl);
        for os in oses {
            let mut cfg = CrawlConfig::paper(crawl.clone(), os, seed);
            cfg.workers = config.workers;
            let plan = ResumePlan::fresh(jobs.len());
            let name = format!("crawl:{}/{}", crawl.as_str(), os.name());
            let s = profiler.run(&name, || {
                run_crawl_resumed_observed(&jobs, &plan, &cfg, &store, None, trace)
            });
            profiler.annotate_elements(s.attempted as u64);
            profiler.annotate_sim_ms(s.makespan_ms);
            stats.insert((crawl.as_str().to_string(), os), s);
        }
    }
    let analyses = campaigns()
        .into_iter()
        .map(|(crawl, _)| {
            let name = format!("analyze:{}", crawl.as_str());
            let analysis = profiler.run(&name, || {
                analyze_crawl_traced(&store, &crawl, config.workers, trace)
            });
            profiler.annotate_elements(analysis.visits as u64);
            (crawl.as_str().to_string(), analysis)
        })
        .collect();
    Study {
        config,
        population,
        store,
        stats,
        analyses,
    }
}

/// Record a snapshot save's [`kt_store::SaveReport`] as gauges.
pub fn record_save_report(trace: &Trace, report: &kt_store::SaveReport) {
    let none = Labels::new(&[]);
    trace.set_gauge(names::SAVE_RECORDS, none.clone(), report.records as f64);
    trace.set_gauge(names::SAVE_BYTES, none.clone(), report.bytes as f64);
    trace.set_gauge(names::SAVE_FSYNCS, none, report.fsyncs as f64);
}

impl Study {
    /// Generate the population and run every campaign.
    pub fn run(config: StudyConfig) -> Study {
        Study::run_journaled(config, None)
    }

    /// [`Study::run`] through the resident campaign service: all eight
    /// `(crawl, OS)` campaigns are submitted to one
    /// [`kt_service::CampaignService`] as a single unbounded tenant
    /// and multiplexed over the service scheduler, with tables built
    /// by the online incremental aggregator instead of the end-of-run
    /// batch analyzer. Produces a `Study` whose stats, store, and
    /// analyses are identical to [`Study::run`] — the equivalence the
    /// service tests pin.
    pub fn run_service(config: StudyConfig) -> Study {
        use kt_service::{CampaignService, CampaignSpec, OverflowPolicy, ServiceJob, TenantQuota};

        let population = WebPopulation::generate(config.population);
        let mut svc_config = kt_service::ServiceConfig::new(config.population.seed);
        svc_config.workers = config.workers.max(1);
        let mut service = CampaignService::new(svc_config);
        service.register_tenant("paper", TenantQuota::unbounded(), OverflowPolicy::Block);

        let mut handles = Vec::new();
        for (crawl, oses) in campaigns() {
            let jobs = campaign_jobs(&population, &crawl);
            for os in oses {
                let spec = CampaignSpec {
                    crawl: crawl.clone(),
                    os,
                    jobs: jobs
                        .iter()
                        .map(|job| ServiceJob {
                            site: job.site.clone(),
                            malicious_category: job.malicious_category,
                        })
                        .collect(),
                    deadline_ms: None,
                    nominal_workers: config.workers,
                };
                let handle = service.submit("paper", spec).expect("unbounded tenant");
                handles.push((crawl.as_str().to_string(), os, handle));
            }
        }
        service.run();

        let mut stats = BTreeMap::new();
        for (crawl, os, handle) in &handles {
            stats.insert(
                (crawl.clone(), *os),
                service.campaign_stats(*handle).expect("admitted campaign"),
            );
        }
        // One crawl's analysis is the merge of its per-OS campaign
        // partials — the online path all the way to the tables.
        let analyses = campaigns()
            .into_iter()
            .map(|(crawl, _)| {
                let mut merged = kt_analysis::OnlinePartial::new();
                for (name, _, handle) in &handles {
                    if name == crawl.as_str() {
                        merged.merge(service.partial(*handle).expect("completed campaign"));
                    }
                }
                (crawl.as_str().to_string(), merged.assemble())
            })
            .collect();
        Study {
            config,
            population,
            store: service.into_store(),
            stats,
            analyses,
        }
    }

    /// [`Study::run`] reporting metrics, spans, and events into a
    /// [`Trace`].
    pub fn run_observed(config: StudyConfig, trace: Option<&Trace>) -> Study {
        Study::run_journaled_observed(config, None, trace)
    }

    /// [`Study::run`] with an optional write-ahead journal: campaign
    /// parameters are framed up front, every visit verdict as it
    /// lands, and a checkpoint (completed domains + the exact merged
    /// stats) after each `(crawl, OS)` campaign. If the journal's kill
    /// switch fires mid-study the remaining campaigns are skipped —
    /// the returned `Study` then describes a dead process's partial
    /// world and exists only so test harnesses can drop it;
    /// [`Study::resume`] is the real continuation.
    pub fn run_journaled(config: StudyConfig, journal: Option<&JournalWriter>) -> Study {
        Study::run_journaled_observed(config, journal, None)
    }

    /// [`Study::run_journaled`] reporting into a [`Trace`].
    pub fn run_journaled_observed(
        config: StudyConfig,
        journal: Option<&JournalWriter>,
        trace: Option<&Trace>,
    ) -> Study {
        if let Some(j) = journal {
            j.append_meta(&JournalMeta {
                seed: config.population.seed,
                top_size: config.population.top_size as u64,
                malicious_size: config.population.malicious_size as u64,
                workers: config.workers as u64,
            });
        }
        let population = WebPopulation::generate(config.population);
        let store = TelemetryStore::new();
        let stats = Study::run_campaigns(
            &config,
            &population,
            &store,
            journal,
            &BTreeMap::new(),
            trace,
        );
        if let Some(j) = journal {
            j.sync();
            if let Some(t) = trace {
                record_journal_stats(t, &j.stats());
            }
        }
        Study::finish(config, population, store, stats, trace)
    }

    /// Resume a crashed [`Study::run_journaled`] from its journal.
    ///
    /// Replays the surviving frames, regenerates the identical
    /// deterministic population from the journaled parameters,
    /// restores checkpointed campaigns verbatim, re-runs only the
    /// missing visits of partial ones (appending to the same journal),
    /// and recomputes the analyses. For outage-free configurations the
    /// result — stats, store bytes, every table — is identical to the
    /// run that never crashed.
    pub fn resume(path: &Path) -> Result<Study, JournalError> {
        Study::resume_observed(path, None)
    }

    /// [`Study::resume`] reporting into a [`Trace`]. Counters for
    /// checkpoint-restored campaigns are seeded from their restored
    /// stats, so `visits_total` and friends match the run that never
    /// crashed; journal counters are writer-owned and count only this
    /// process's appends.
    pub fn resume_observed(path: &Path, trace: Option<&Trace>) -> Result<Study, JournalError> {
        let report = replay(path)?;
        let meta = report.meta.ok_or_else(|| {
            JournalError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                "journal has no campaign-parameters frame (not a study journal)",
            ))
        })?;
        let config = StudyConfig {
            population: PopulationConfig {
                seed: meta.seed,
                top_size: meta.top_size as usize,
                malicious_size: meta.malicious_size as usize,
                sensors: false,
            },
            workers: (meta.workers as usize).max(1),
        };
        let population = WebPopulation::generate(config.population);
        let journal = JournalWriter::open_append(path)?;
        let replayed = split_campaigns(&report.visits, &report.checkpoints);
        // Frame-rebuilt resume plans per campaign; checkpointed
        // campaigns restore their exact stats instead.
        let store = report.store;
        let stats = Study::run_campaigns(
            &config,
            &population,
            &store,
            Some(&journal),
            &replayed,
            trace,
        );
        journal.sync();
        if let Some(t) = trace {
            record_journal_stats(t, &journal.stats());
        }
        Ok(Study::finish(config, population, store, stats, trace))
    }

    /// Run (or resume) every campaign, checkpointing completions.
    fn run_campaigns(
        config: &StudyConfig,
        population: &WebPopulation,
        store: &TelemetryStore,
        journal: Option<&JournalWriter>,
        replayed: &BTreeMap<(String, String), kt_crawler::CampaignReplay>,
        trace: Option<&Trace>,
    ) -> BTreeMap<(String, Os), CrawlStats> {
        let mut stats = BTreeMap::new();
        let seed = config.population.seed;
        'campaigns: for (crawl, oses) in campaigns() {
            let jobs = campaign_jobs(population, &crawl);
            for os in oses {
                if journal.is_some_and(|j| j.killed()) {
                    break 'campaigns;
                }
                let key = (crawl.as_str().to_string(), os.name().to_string());
                let campaign = replayed.get(&key);
                if let Some(done) = campaign.and_then(|c| c.restored_stats()) {
                    // The checkpoint *is* the campaign's merged tally,
                    // makespan and connectivity included; its records
                    // arrived with the replayed store. A checkpoint
                    // that outlived a corrupted visit frame is not
                    // restorable — those campaigns fall through to the
                    // frame-level plan and re-run the lost sites.
                    if let Some(t) = trace {
                        // Seed counters from the restored tally, the
                        // same derivation the crawl itself would have
                        // reported — resume-invariance by construction.
                        t.merge_sink(&stats_sink(&crawl, os, &done));
                        set_stats_gauges(t, &crawl, os, &done);
                    }
                    stats.insert((crawl.as_str().to_string(), os), done);
                    continue;
                }
                let plan = campaign
                    .map(|c| c.plan(&jobs))
                    .unwrap_or_else(|| ResumePlan::fresh(jobs.len()));
                let mut cfg = CrawlConfig::paper(crawl.clone(), os, seed);
                cfg.workers = config.workers;
                let s = run_crawl_resumed_observed(&jobs, &plan, &cfg, store, journal, trace);
                if let Some(j) = journal {
                    if j.killed() {
                        break 'campaigns;
                    }
                    j.append_checkpoint(&CheckpointFrame {
                        crawl: crawl.as_str().to_string(),
                        os: os.name().to_string(),
                        completed: jobs
                            .iter()
                            .map(|job| job.site.domain.as_str().to_string())
                            .collect(),
                        stats: s.to_bytes(),
                    });
                }
                stats.insert((crawl.as_str().to_string(), os), s);
            }
        }
        stats
    }

    /// Analyse the store and assemble the `Study`.
    fn finish(
        config: StudyConfig,
        population: WebPopulation,
        store: TelemetryStore,
        stats: BTreeMap<(String, Os), CrawlStats>,
        trace: Option<&Trace>,
    ) -> Study {
        let analyses = campaigns()
            .into_iter()
            .map(|(crawl, _)| {
                let analysis = analyze_crawl_traced(&store, &crawl, config.workers, trace);
                (crawl.as_str().to_string(), analysis)
            })
            .collect();
        Study {
            config,
            population,
            store,
            stats,
            analyses,
        }
    }

    /// The precomputed analysis for one campaign.
    pub fn analysis(&self, crawl: &CrawlId) -> &CrawlAnalysis {
        self.analyses
            .get(crawl.as_str())
            .expect("campaign crawl analysed at Study::run")
    }

    /// Per-site local activity for one crawl (all OSes merged).
    pub fn activities(&self, crawl: &CrawlId) -> &[SiteLocalActivity] {
        &self.analysis(crawl).sites
    }

    /// Crawl stats for one (crawl, OS).
    pub fn stats_for(&self, crawl: &CrawlId, os: Os) -> Option<&CrawlStats> {
        self.stats.get(&(crawl.as_str().to_string(), os))
    }

    /// Run one named experiment (`"T1"`–`"T11"`, `"F2"`–`"F9"`).
    pub fn experiment(&self, id: &str) -> Option<String> {
        crate::experiments::run(self, id)
    }

    /// Every experiment, in paper order: `(id, rendered text)`.
    pub fn all_experiments(&self) -> Vec<(&'static str, String)> {
        crate::experiments::ALL_IDS
            .iter()
            .map(|id| (*id, crate::experiments::run(self, id).expect("known id")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_runs_every_campaign() {
        let study = Study::run(StudyConfig::quick(7));
        // 3 + 2 + 3 campaign/OS pairs.
        assert_eq!(study.stats.len(), 8);
        // Telemetry for each (site, crawl, os) triple.
        let expected = study.population.sites2020.len() * 3
            + study.population.sites2021.len() * 2
            + study.population.malicious_sites.len() * 3;
        assert_eq!(study.store.len(), expected);
    }

    #[test]
    fn activities_recover_planted_sites_2020() {
        let study = Study::run(StudyConfig::quick(7));
        let sites = study.activities(&CrawlId::top2020());
        let localhost = sites.iter().filter(|s| s.has_localhost()).count();
        let lan = sites.iter().filter(|s| s.has_lan()).count();
        assert_eq!(localhost, 107, "the paper's 107 localhost sites");
        assert_eq!(lan, 9, "the paper's 9 LAN sites");
    }

    #[test]
    fn killed_study_resumes_to_identical_tables() {
        use kt_store::{KillMode, KillSpec};

        let config = StudyConfig::quick(7);
        let baseline = Study::run(config);
        let path = std::env::temp_dir().join(format!("kt-study-resume-{}.ktj", std::process::id()));
        let journal = JournalWriter::create(&path).unwrap();
        // Die mid-frame about a third of the way through the study —
        // inside a campaign, past at least one checkpoint.
        let kill_at = (baseline.store.len() as u64) / 3;
        journal.set_kill(Some(KillSpec {
            at_frame: kill_at,
            mode: KillMode::MidFrame,
        }));
        let _ = Study::run_journaled(config, Some(&journal));
        assert!(journal.killed(), "the study must die at frame {kill_at}");

        let resumed = Study::resume(&path).unwrap();
        assert_eq!(resumed.stats, baseline.stats, "per-campaign stats match");
        for (crawl, _) in campaigns() {
            assert_eq!(
                resumed.store.crawl_records(&crawl),
                baseline.store.crawl_records(&crawl),
                "store records for {} match byte for byte",
                crawl.as_str()
            );
        }
        for id in ["T1", "T2", "T5"] {
            assert_eq!(
                resumed.experiment(id),
                baseline.experiment(id),
                "table {id} regenerates identically after resume"
            );
        }

        // Resuming a *finished* journal is a pure checkpoint restore:
        // nothing re-runs and the results still match.
        let restored = Study::resume(&path).unwrap();
        assert_eq!(restored.stats, baseline.stats);
        assert_eq!(restored.store.len(), baseline.store.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn profiled_study_matches_plain_run() {
        let config = StudyConfig::quick(7);
        let baseline = Study::run(config);
        let mut profiler = kt_trace::StageProfiler::new();
        let profiled = profile_study(config, &mut profiler, None);
        assert_eq!(profiled.stats, baseline.stats, "profiling changes nothing");
        // population + 8 campaign/OS crawls + 3 analyses.
        assert_eq!(profiler.stages().len(), 12);
        let names: Vec<&str> = profiler.stages().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names[0], "population");
        assert!(names.contains(&"crawl:top2020/Windows"));
        assert!(names.contains(&"analyze:malicious"));
        let table = profiler.render_table();
        assert!(table.lines().last().unwrap().starts_with("total"));
    }

    #[test]
    fn metrics_are_worker_count_invariant() {
        // Same population, different schedules: every exported series
        // — counters, gauges, sim-cost histograms — must come out byte
        // for byte identical. This is the registry-level face of the
        // CrawlStats invariance the crawler already guarantees.
        let export_with = |workers: usize| {
            let mut config = StudyConfig::quick(7);
            config.workers = workers;
            let trace = Trace::new();
            let _ = Study::run_observed(config, Some(&trace));
            trace.export_prometheus()
        };
        let baseline = export_with(1);
        assert!(baseline.contains("visits_total{"), "core series present");
        assert!(baseline.contains("analysis_stage_seconds_bucket{"));
        for workers in [2, 4, 8] {
            assert_eq!(
                export_with(workers),
                baseline,
                "{workers}-worker export differs from single-worker"
            );
        }
    }

    #[test]
    fn resumed_metrics_match_baseline_counters() {
        use kt_store::{KillMode, KillSpec};

        let config = StudyConfig::quick(11);
        let base_trace = Trace::new();
        let _ = Study::run_observed(config, Some(&base_trace));

        let path = std::env::temp_dir().join(format!(
            "kt-study-metrics-resume-{}.ktj",
            std::process::id()
        ));
        let journal = JournalWriter::create(&path).unwrap();
        let kill_at = 900;
        journal.set_kill(Some(KillSpec {
            at_frame: kill_at,
            mode: KillMode::MidFrame,
        }));
        let _ = Study::run_journaled(config, Some(&journal));
        assert!(journal.killed());

        let resumed_trace = Trace::new();
        let _ = Study::resume_observed(&path, Some(&resumed_trace)).unwrap();

        // Crawl-derived counters and analysis counters must match the
        // never-crashed run exactly; journal counters are writer-owned
        // and may not.
        for (crawl, oses) in campaigns() {
            for os in oses {
                let labels = kt_crawler::campaign_labels(&crawl, os);
                for name in [
                    names::VISITS_TOTAL,
                    names::SUCCESS_TOTAL,
                    names::RETRIES_TOTAL,
                ] {
                    let base = base_trace.with_registry(|r| r.counter_value(name, &labels));
                    let resumed = resumed_trace.with_registry(|r| r.counter_value(name, &labels));
                    assert_eq!(
                        resumed,
                        base,
                        "{name} for ({}, {}) differs after resume",
                        crawl.as_str(),
                        os.name()
                    );
                }
            }
            let labels = Labels::new(&[("crawl", crawl.as_str())]);
            let base = base_trace
                .with_registry(|r| r.counter_value(names::LOCAL_OBSERVATIONS_TOTAL, &labels));
            let resumed = resumed_trace
                .with_registry(|r| r.counter_value(names::LOCAL_OBSERVATIONS_TOTAL, &labels));
            assert_eq!(resumed, base, "local observations differ after resume");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn service_study_matches_batch_study() {
        let config = StudyConfig::quick(7);
        let batch = Study::run(config);
        let service = Study::run_service(config);
        assert_eq!(service.stats, batch.stats, "per-campaign stats match");
        assert_eq!(service.store.len(), batch.store.len());
        for (crawl, _) in campaigns() {
            assert_eq!(
                service.store.crawl_records(&crawl),
                batch.store.crawl_records(&crawl),
                "store records for {} match byte for byte",
                crawl.as_str()
            );
            assert_eq!(
                service.analyses[crawl.as_str()],
                batch.analyses[crawl.as_str()],
                "online-aggregated analysis for {} matches the batch analyzer",
                crawl.as_str()
            );
        }
        for id in ["T1", "T2", "T5"] {
            assert_eq!(
                service.experiment(id),
                batch.experiment(id),
                "table {id} renders identically through the service"
            );
        }
    }

    #[test]
    fn no_mac_records_for_2021() {
        let study = Study::run(StudyConfig::quick(7));
        let records = study.store.crawl_records(&CrawlId::top2021());
        assert!(records.iter().all(|r| r.os != Os::MacOs));
        assert!(study.stats_for(&CrawlId::top2021(), Os::MacOs).is_none());
        assert!(study.stats_for(&CrawlId::top2021(), Os::Windows).is_some());
    }
}
