//! The full study: population → eight crawls → telemetry → analysis.

use std::collections::BTreeMap;

use kt_analysis::detect::SiteLocalActivity;
use kt_analysis::par::{analyze_crawl_par, CrawlAnalysis};
use kt_crawler::{run_crawl, CrawlConfig, CrawlJob, CrawlStats};
use kt_netbase::Os;
use kt_store::{CrawlId, TelemetryStore};
use kt_webgen::{PopulationConfig, WebPopulation};

/// Study configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudyConfig {
    /// Population parameters (scale + seed).
    pub population: PopulationConfig,
    /// Crawl worker threads.
    pub workers: usize,
}

impl StudyConfig {
    /// Full paper scale (100K top list, ~145K malicious). Heavy:
    /// nearly a million simulated page visits.
    pub fn paper(seed: u64) -> StudyConfig {
        StudyConfig {
            population: PopulationConfig::paper_scale(seed),
            workers: 8,
        }
    }

    /// A fast configuration for examples and tests: every behaviour is
    /// planted at full count, but the quiet background population is
    /// smaller.
    pub fn quick(seed: u64) -> StudyConfig {
        StudyConfig {
            population: PopulationConfig::test_scale(seed),
            workers: 4,
        }
    }

    /// A mid-size configuration: large enough for the rate statistics
    /// of Tables 1–2 to stabilise, small enough to run in seconds.
    pub fn standard(seed: u64) -> StudyConfig {
        StudyConfig {
            population: PopulationConfig {
                seed,
                top_size: 10_000,
                malicious_size: 14_500,
            },
            workers: 8,
        }
    }
}

/// The paper's crawl campaigns: (crawl id, OSes crawled).
pub fn campaigns() -> Vec<(CrawlId, Vec<Os>)> {
    vec![
        (CrawlId::top2020(), vec![Os::Windows, Os::Linux, Os::MacOs]),
        // Logistics prevented the 2021 Mac crawl (§3.2, fn. 3).
        (CrawlId::top2021(), vec![Os::Windows, Os::Linux]),
        (
            CrawlId::malicious(),
            vec![Os::Windows, Os::Linux, Os::MacOs],
        ),
    ]
}

/// A completed study.
pub struct Study {
    /// Configuration used.
    pub config: StudyConfig,
    /// The generated populations.
    pub population: WebPopulation,
    /// All telemetry.
    pub store: TelemetryStore,
    /// Per-(crawl, OS) crawl statistics.
    pub stats: BTreeMap<(String, Os), CrawlStats>,
    /// Per-campaign analysis, computed once by the parallel
    /// single-decode driver — every table and figure reads from here
    /// instead of re-decoding the store.
    pub analyses: BTreeMap<String, CrawlAnalysis>,
}

impl Study {
    /// Generate the population and run every campaign.
    pub fn run(config: StudyConfig) -> Study {
        let population = WebPopulation::generate(config.population);
        let store = TelemetryStore::new();
        let mut stats = BTreeMap::new();
        let seed = config.population.seed;
        for (crawl, oses) in campaigns() {
            let jobs: Vec<CrawlJob<'_>> = match crawl.as_str() {
                "top2020" => population
                    .sites2020
                    .iter()
                    .map(|site| CrawlJob {
                        site,
                        malicious_category: None,
                    })
                    .collect(),
                "top2021" => population
                    .sites2021
                    .iter()
                    .map(|site| CrawlJob {
                        site,
                        malicious_category: None,
                    })
                    .collect(),
                _ => population
                    .malicious_sites
                    .iter()
                    .zip(&population.blocklist.entries)
                    .map(|(site, entry)| CrawlJob {
                        site,
                        malicious_category: Some(kt_analysis::report::category_code(
                            entry.category,
                        )),
                    })
                    .collect(),
            };
            for os in oses {
                let mut cfg = CrawlConfig::paper(crawl.clone(), os, seed);
                cfg.workers = config.workers;
                let s = run_crawl(&jobs, &cfg, &store);
                stats.insert((crawl.as_str().to_string(), os), s);
            }
        }
        let analyses = campaigns()
            .into_iter()
            .map(|(crawl, _)| {
                let analysis = analyze_crawl_par(&store, &crawl, config.workers);
                (crawl.as_str().to_string(), analysis)
            })
            .collect();
        Study {
            config,
            population,
            store,
            stats,
            analyses,
        }
    }

    /// The precomputed analysis for one campaign.
    pub fn analysis(&self, crawl: &CrawlId) -> &CrawlAnalysis {
        self.analyses
            .get(crawl.as_str())
            .expect("campaign crawl analysed at Study::run")
    }

    /// Per-site local activity for one crawl (all OSes merged).
    pub fn activities(&self, crawl: &CrawlId) -> &[SiteLocalActivity] {
        &self.analysis(crawl).sites
    }

    /// Crawl stats for one (crawl, OS).
    pub fn stats_for(&self, crawl: &CrawlId, os: Os) -> Option<&CrawlStats> {
        self.stats.get(&(crawl.as_str().to_string(), os))
    }

    /// Run one named experiment (`"T1"`–`"T11"`, `"F2"`–`"F9"`).
    pub fn experiment(&self, id: &str) -> Option<String> {
        crate::experiments::run(self, id)
    }

    /// Every experiment, in paper order: `(id, rendered text)`.
    pub fn all_experiments(&self) -> Vec<(&'static str, String)> {
        crate::experiments::ALL_IDS
            .iter()
            .map(|id| (*id, crate::experiments::run(self, id).expect("known id")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_runs_every_campaign() {
        let study = Study::run(StudyConfig::quick(7));
        // 3 + 2 + 3 campaign/OS pairs.
        assert_eq!(study.stats.len(), 8);
        // Telemetry for each (site, crawl, os) triple.
        let expected = study.population.sites2020.len() * 3
            + study.population.sites2021.len() * 2
            + study.population.malicious_sites.len() * 3;
        assert_eq!(study.store.len(), expected);
    }

    #[test]
    fn activities_recover_planted_sites_2020() {
        let study = Study::run(StudyConfig::quick(7));
        let sites = study.activities(&CrawlId::top2020());
        let localhost = sites.iter().filter(|s| s.has_localhost()).count();
        let lan = sites.iter().filter(|s| s.has_lan()).count();
        assert_eq!(localhost, 107, "the paper's 107 localhost sites");
        assert_eq!(lan, 9, "the paper's 9 LAN sites");
    }

    #[test]
    fn no_mac_records_for_2021() {
        let study = Study::run(StudyConfig::quick(7));
        let records = study.store.crawl_records(&CrawlId::top2021());
        assert!(records.iter().all(|r| r.os != Os::MacOs));
        assert!(study.stats_for(&CrawlId::top2021(), Os::MacOs).is_none());
        assert!(study.stats_for(&CrawlId::top2021(), Os::Windows).is_some());
    }
}
