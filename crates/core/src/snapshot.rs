//! The longitudinal snapshot engine: N rolling top-list snapshots
//! crawled incrementally into a content-addressed store.
//!
//! The paper pays for two full crawls and compares them (§4.1); this
//! engine generalises to a [`SnapshotSeries`] of N lists without
//! paying N× crawl time or N× store space:
//!
//! * **synthetic longitudinal web** — every site is a pure function of
//!   `(series seed, domain, content version)` ([`synth_site`]), and a
//!   site's content version advances by deterministic per-step draws
//!   ([`content_version`]). Combined with the crawler's determinism
//!   (visit events depend only on the site, OS, and seed — never on
//!   the crawl id), a site whose version didn't change produces
//!   byte-identical canonical records in every snapshot;
//! * **incremental recrawl** — each step's [`IncrementalPlan`] splits
//!   the next list into carried / changed / fresh / dropped; only
//!   changed + fresh sites are visited, and carried sites' manifest
//!   rows are linked to the previous snapshot's chunks by reference
//!   ([`SnapshotStore::link_from`]);
//! * **durability** — the run journals through the same `KTSTORE2`
//!   machinery as [`Study`]: one campaign per (snapshot, OS) with its
//!   own crawl id (`snap00`, `snap01`, …), checkpoints at campaign
//!   boundaries, kill-switch crash injection, and
//!   [`SnapshotStudy::resume`] that replays, re-runs only missing
//!   visits, and rebuilds the snapshot store deterministically. Work
//!   counters and `snapshot_*` metrics derive from the *plans*, not
//!   from which process executed a visit, so the export is identical
//!   across worker counts and kill/resume.
//!
//! [`Study`]: crate::study::Study
//! [`SnapshotStore::link_from`]: kt_store::snapshot::SnapshotStore::link_from

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use kt_analysis::diff::{diff_snapshots_traced, SnapshotDiff};
use kt_crawler::{
    run_crawl_resumed_observed, set_stats_gauges, split_campaigns, stats_sink, CrawlConfig,
    CrawlJob, CrawlStats, IncrementalPlan, ResumePlan,
};
use kt_netbase::{DomainName, Os, OsSet, Scheme};
use kt_store::snapshot::SnapshotStore;
use kt_store::{
    replay, CheckpointFrame, CrawlId, JournalError, JournalMeta, JournalWriter, SpillConfig,
    TelemetryStore,
};
use kt_trace::{names, Labels, Trace};
use kt_webgen::{Availability, Behavior, DevError, NativeApp, PlantedBehavior, WebSite};
use kt_weblists::{SeriesConfig, SnapshotSeries};

use crate::study::record_journal_stats;

/// The OSes each snapshot is crawled on. Two, like the paper's 2021
/// campaign — Windows carries the fraud/bot-detection signal, Linux
/// the cross-OS behaviours.
pub const SNAPSHOT_OSES: [Os; 2] = [Os::Windows, Os::Linux];

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn site_hash(seed: u64, domain: &str) -> u64 {
    mix(seed ^ fnv(domain))
}

/// Whether a site's content changed at exactly step `step` (≥ 1): one
/// deterministic draw against the per-step content-churn rate.
pub fn content_changed(seed: u64, domain: &str, step: usize, content_churn: f64) -> bool {
    let draw = (mix(site_hash(seed, domain) ^ mix(step as u64)) >> 11) as f64 / (1u64 << 53) as f64;
    draw < content_churn
}

/// A site's content version as of snapshot `step`: the number of
/// change draws that hit in steps `1..=step`. Version 0 is the
/// site's state in the first snapshot.
pub fn content_version(seed: u64, domain: &str, step: usize, content_churn: f64) -> u32 {
    (1..=step)
        .filter(|s| content_changed(seed, domain, *s, content_churn))
        .count() as u32
}

/// Synthesise one site of the longitudinal web — a pure function of
/// `(seed, domain, version)`, which is what makes unchanged sites
/// produce byte-identical visit records across snapshots.
///
/// Hash bands plant the paper's behaviour classes: ~5% ThreatMetrix,
/// ~3% BIG-IP, ~8% live-reload developer errors, ~10% native apps,
/// and a ~6% "mover" band whose class flips with the content version
/// (the source of `reclassified` cells in the churn matrix). The
/// version perturbs resource counts and behaviour delays, so *any*
/// content change alters the visit bytes.
pub fn synth_site(seed: u64, domain: &DomainName, version: u32) -> WebSite {
    let h = site_hash(seed, domain.as_str());
    let hv = mix(h ^ (version as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut site = WebSite::plain(domain.clone(), None, 1 + (hv % 3) as u8);
    let band = h % 1000;
    let delay = |base: u64| base + (hv % 8) * 250;
    let live_reload = |d: u64| PlantedBehavior {
        behavior: Behavior::DevError(DevError::LiveReload {
            scheme: Scheme::Ws,
            port: 35729,
        }),
        os_set: OsSet::ALL,
        base_delay_ms: d,
    };
    if band < 50 {
        site.behaviors.push(PlantedBehavior {
            behavior: Behavior::ThreatMetrix {
                vendor: DomainName::parse("online-metrix.net").expect("static domain"),
            },
            os_set: OsSet::ALL,
            base_delay_ms: delay(9_000),
        });
    } else if band < 80 {
        site.behaviors.push(PlantedBehavior {
            behavior: Behavior::BigIpBotDefense,
            os_set: OsSet::ALL,
            base_delay_ms: delay(8_000),
        });
    } else if band < 160 {
        site.behaviors.push(live_reload(delay(2_000)));
    } else if band < 260 {
        site.behaviors.push(PlantedBehavior {
            behavior: Behavior::NativeApp(if h & 1 == 0 {
                NativeApp::Discord
            } else {
                NativeApp::Faceit
            }),
            os_set: OsSet::ALL,
            base_delay_ms: delay(3_000),
        });
    } else if band >= 940 {
        // Movers: the classifier's verdict flips with the version.
        if version.is_multiple_of(2) {
            site.behaviors.push(live_reload(delay(2_500)));
        } else {
            site.behaviors.push(PlantedBehavior {
                behavior: Behavior::NativeApp(NativeApp::Discord),
                os_set: OsSet::ALL,
                base_delay_ms: delay(3_500),
            });
        }
    }
    site.set_availability_all(Availability::Up);
    site
}

/// Longitudinal run configuration.
#[derive(Debug, Clone)]
pub struct SnapshotStudyConfig {
    /// The rolling list series (size, snapshot count, churn, seed).
    pub series: SeriesConfig,
    /// Per-step probability that a carried site's content changed
    /// (forcing a recrawl of that site).
    pub content_churn: f64,
    /// Crawl and diff worker threads.
    pub workers: usize,
    /// When false, every snapshot is fully recrawled — no links, no
    /// incremental plans. The baseline the equivalence tests and the
    /// perf bin compare against.
    pub incremental: bool,
    /// Optional disk spill for the telemetry store (sealed segments
    /// through the mmap path).
    pub spill: Option<SpillConfig>,
}

impl SnapshotStudyConfig {
    /// Small fast series for tests and the CI smoke: 4 snapshots.
    pub fn quick(seed: u64) -> SnapshotStudyConfig {
        SnapshotStudyConfig {
            series: SeriesConfig {
                size: 150,
                snapshots: 4,
                churn: 0.25,
                relist_fraction: 0.85,
                seed,
            },
            content_churn: 0.05,
            workers: 4,
            incremental: true,
            spill: None,
        }
    }

    /// The acceptance-target series: 12 snapshots at ~20% churn.
    pub fn bench(seed: u64) -> SnapshotStudyConfig {
        SnapshotStudyConfig {
            series: SeriesConfig {
                size: 600,
                snapshots: 12,
                churn: 0.2,
                relist_fraction: 0.85,
                seed,
            },
            content_churn: 0.03,
            workers: 8,
            incremental: true,
            spill: None,
        }
    }
}

/// Visit-work accounting for one longitudinal run, derived from the
/// incremental plans (not from which process executed a visit), so the
/// numbers are identical across worker counts and kill/resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotWork {
    /// Visits the engine executed (changed + fresh sites × OSes).
    pub executed_visits: u64,
    /// Visits a full per-snapshot recrawl would execute.
    pub full_visits: u64,
    /// Manifest rows linked by reference instead of crawled.
    pub linked_rows: u64,
    /// Chunks newly written to the snapshot store (deduplicated
    /// ingests excluded).
    pub fresh_chunks: u64,
}

impl SnapshotWork {
    /// executed / full — the incremental work fraction (≤ 1; the
    /// acceptance target is ≤ ~0.30 on the bench series).
    pub fn incremental_fraction(&self) -> f64 {
        if self.full_visits == 0 {
            return 0.0;
        }
        self.executed_visits as f64 / self.full_visits as f64
    }
}

/// A completed longitudinal run.
pub struct SnapshotStudy {
    /// Configuration used.
    pub config: SnapshotStudyConfig,
    /// The generated list series.
    pub series: SnapshotSeries,
    /// The content-addressed dedup store, one manifest per snapshot.
    pub snapshots: SnapshotStore,
    /// Raw visit telemetry (per-snapshot crawl ids).
    pub telemetry: TelemetryStore,
    /// Per-(snapshot, OS) campaign statistics.
    pub stats: BTreeMap<(String, Os), CrawlStats>,
    /// Plan-derived work accounting.
    pub work: SnapshotWork,
}

impl SnapshotStudy {
    /// Run the series.
    pub fn run(config: SnapshotStudyConfig) -> io::Result<SnapshotStudy> {
        SnapshotStudy::run_journaled_observed(config, None, None)
    }

    /// [`SnapshotStudy::run`] reporting `snapshot_*` metrics and crawl
    /// counters into a [`Trace`].
    pub fn run_observed(
        config: SnapshotStudyConfig,
        trace: Option<&Trace>,
    ) -> io::Result<SnapshotStudy> {
        SnapshotStudy::run_journaled_observed(config, None, trace)
    }

    /// Run with an optional write-ahead journal: one campaign per
    /// (snapshot, OS), checkpointed at campaign boundaries. If the
    /// journal's kill switch fires, remaining campaigns are skipped
    /// and the returned study describes a dead process's partial world
    /// — [`SnapshotStudy::resume`] is the continuation.
    pub fn run_journaled_observed(
        config: SnapshotStudyConfig,
        journal: Option<&JournalWriter>,
        trace: Option<&Trace>,
    ) -> io::Result<SnapshotStudy> {
        if let Some(j) = journal {
            j.append_meta(&JournalMeta {
                seed: config.series.seed,
                top_size: config.series.size as u64,
                malicious_size: config.series.snapshots as u64,
                workers: config.workers as u64,
            });
        }
        let telemetry = match &config.spill {
            Some(spill) => TelemetryStore::with_spill(spill.clone())?,
            None => TelemetryStore::new(),
        };
        let study =
            SnapshotStudy::run_campaigns(config, telemetry, journal, &BTreeMap::new(), trace);
        if let Some(j) = journal {
            j.sync();
            if let Some(t) = trace {
                record_journal_stats(t, &j.stats());
            }
        }
        Ok(study)
    }

    /// Resume a crashed journaled run. The series parameters are
    /// re-derived from `config`, which must match the journaled meta
    /// frame (seed, list size, snapshot count). Checkpointed campaigns
    /// restore verbatim, partial ones re-run only their missing
    /// visits, and the snapshot store is rebuilt deterministically
    /// from the combined telemetry — diff tables come out identical
    /// to a run that never crashed.
    pub fn resume(
        path: &Path,
        config: SnapshotStudyConfig,
        trace: Option<&Trace>,
    ) -> Result<SnapshotStudy, JournalError> {
        let report = replay(path)?;
        let meta = report.meta.ok_or_else(|| {
            JournalError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                "journal has no campaign-parameters frame (not a snapshot journal)",
            ))
        })?;
        if meta.seed != config.series.seed
            || meta.top_size != config.series.size as u64
            || meta.malicious_size != config.series.snapshots as u64
        {
            return Err(JournalError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "journal meta (seed {}, size {}, snapshots {}) does not match the \
                     supplied series config",
                    meta.seed, meta.top_size, meta.malicious_size
                ),
            )));
        }
        let journal = JournalWriter::open_append(path)?;
        let replayed = split_campaigns(&report.visits, &report.checkpoints);
        let study =
            SnapshotStudy::run_campaigns(config, report.store, Some(&journal), &replayed, trace);
        journal.sync();
        if let Some(t) = trace {
            record_journal_stats(t, &journal.stats());
        }
        Ok(study)
    }

    fn run_campaigns(
        config: SnapshotStudyConfig,
        telemetry: TelemetryStore,
        journal: Option<&JournalWriter>,
        replayed: &BTreeMap<(String, String), kt_crawler::CampaignReplay>,
        trace: Option<&Trace>,
    ) -> SnapshotStudy {
        let series = SnapshotSeries::generate(&config.series);
        let seed = config.series.seed;
        let mut snapshots = SnapshotStore::new();
        let mut stats = BTreeMap::new();
        let mut work = SnapshotWork::default();
        let mut killed = false;

        'snapshots: for (k, snap) in series.snapshots.iter().enumerate() {
            let label = snap.label.clone();
            let plan = if k == 0 || !config.incremental {
                IncrementalPlan::full(snap)
            } else {
                IncrementalPlan::between(&series.snapshots[k - 1], snap, |d| {
                    content_changed(seed, d.as_str(), k, config.content_churn)
                })
            };
            work.full_visits += (snap.len() * SNAPSHOT_OSES.len()) as u64;
            work.executed_visits += (plan.visit_count() * SNAPSHOT_OSES.len()) as u64;

            let sites: Vec<WebSite> = plan
                .to_visit()
                .into_iter()
                .map(|d| {
                    synth_site(
                        seed,
                        d,
                        content_version(seed, d.as_str(), k, config.content_churn),
                    )
                })
                .collect();
            let jobs: Vec<CrawlJob<'_>> = sites
                .iter()
                .map(|site| CrawlJob {
                    site,
                    malicious_category: None,
                })
                .collect();
            let crawl = CrawlId(label.clone());
            for os in SNAPSHOT_OSES {
                if journal.is_some_and(|j| j.killed()) {
                    killed = true;
                    break 'snapshots;
                }
                let key = (label.clone(), os.name().to_string());
                let campaign = replayed.get(&key);
                if let Some(done) = campaign.and_then(|c| c.restored_stats()) {
                    if let Some(t) = trace {
                        t.merge_sink(&stats_sink(&crawl, os, &done));
                        set_stats_gauges(t, &crawl, os, &done);
                    }
                    stats.insert((label.clone(), os), done);
                    continue;
                }
                let resume_plan = campaign
                    .map(|c| c.plan(&jobs))
                    .unwrap_or_else(|| ResumePlan::fresh(jobs.len()));
                let mut cfg = CrawlConfig::paper(crawl.clone(), os, seed);
                cfg.workers = config.workers;
                let s = run_crawl_resumed_observed(
                    &jobs,
                    &resume_plan,
                    &cfg,
                    &telemetry,
                    journal,
                    trace,
                );
                if let Some(j) = journal {
                    if j.killed() {
                        killed = true;
                        break 'snapshots;
                    }
                    j.append_checkpoint(&CheckpointFrame {
                        crawl: label.clone(),
                        os: os.name().to_string(),
                        completed: jobs
                            .iter()
                            .map(|job| job.site.domain.as_str().to_string())
                            .collect(),
                        stats: s.to_bytes(),
                    });
                }
                stats.insert((label.clone(), os), s);
            }

            // Both OS campaigns done: fold this snapshot into the
            // content-addressed store. Ingest order is the telemetry
            // store's sorted (domain, OS) order — deterministic.
            let ranks: BTreeMap<&str, u32> = snap
                .entries
                .iter()
                .map(|e| (e.domain.as_str(), e.rank))
                .collect();
            for record in telemetry.crawl_records(&crawl) {
                let rank = ranks.get(record.domain.as_str()).copied();
                if snapshots.ingest(&label, &record, rank).fresh {
                    work.fresh_chunks += 1;
                }
            }
            let prev_label = format!("snap{:02}", k.saturating_sub(1));
            for domain in &plan.carried {
                let rank = ranks.get(domain.as_str()).copied();
                for os in SNAPSHOT_OSES {
                    let linked =
                        snapshots.link_from(&prev_label, &label, domain.as_str(), os, rank);
                    debug_assert!(linked, "carried site {domain:?} missing from {prev_label}");
                    work.linked_rows += 1;
                }
            }
        }

        let study = SnapshotStudy {
            config,
            series,
            snapshots,
            telemetry,
            stats,
            work,
        };
        if !killed {
            if let Some(t) = trace {
                study.record_metrics(t);
            }
        }
        study
    }

    /// Export the `snapshot_*` series for this run. Values derive from
    /// the plans and the final store, never from execution schedule.
    pub fn record_metrics(&self, trace: &Trace) {
        let none = Labels::new(&[]);
        trace.inc_counter(
            names::SNAPSHOT_VISITS_TOTAL,
            none.clone(),
            self.work.executed_visits,
        );
        trace.inc_counter(
            names::SNAPSHOT_FULL_VISITS_TOTAL,
            none.clone(),
            self.work.full_visits,
        );
        trace.inc_counter(
            names::SNAPSHOT_LINKED_TOTAL,
            none.clone(),
            self.work.linked_rows,
        );
        trace.inc_counter(
            names::SNAPSHOT_CHUNKS_TOTAL,
            none.clone(),
            self.work.fresh_chunks,
        );
        trace.set_gauge(
            names::SNAPSHOT_DEDUP_RATIO,
            none.clone(),
            self.snapshots.dedup_ratio(),
        );
        trace.set_gauge(
            names::SNAPSHOT_STORED_BYTES,
            none.clone(),
            self.snapshots.stored_bytes() as f64,
        );
        trace.set_gauge(
            names::SNAPSHOT_LOGICAL_BYTES,
            none.clone(),
            self.snapshots.logical_bytes() as f64,
        );
        trace.set_gauge(
            names::SNAPSHOT_INCREMENTAL_FRACTION,
            none,
            self.work.incremental_fraction(),
        );
    }

    /// Snapshot labels, oldest first.
    pub fn labels(&self) -> Vec<String> {
        self.series
            .snapshots
            .iter()
            .map(|s| s.label.clone())
            .collect()
    }

    /// The streaming longitudinal diff over every snapshot.
    pub fn diff(&self, workers: usize, trace: Option<&Trace>) -> SnapshotDiff {
        let labels = self.labels();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        diff_snapshots_traced(&self.snapshots, &refs, workers, trace)
    }
}

/// Average bytes one snapshot occupies logically (the "bytes of one"
/// denominator in the dedup acceptance target).
pub fn per_snapshot_logical_bytes(store: &SnapshotStore) -> f64 {
    let n = store.snapshot_count();
    if n == 0 {
        return 0.0;
    }
    store.logical_bytes() as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kt_store::{KillMode, KillSpec, SegmentMode};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("kt-snapshot-{name}-{}", std::process::id()))
    }

    #[test]
    fn incremental_run_does_a_fraction_of_full_work() {
        let study = SnapshotStudy::run(SnapshotStudyConfig::quick(7)).unwrap();
        assert_eq!(study.snapshots.snapshot_count(), 4);
        let fraction = study.work.incremental_fraction();
        // 4 snapshots at 25% churn: (1 + 3·~0.3)/4 ≈ 0.48.
        assert!(
            (0.30..0.60).contains(&fraction),
            "incremental fraction {fraction}"
        );
        assert!(study.work.linked_rows > 0);
        // N snapshots in well under N× (and under 2×·avg-snapshot ×2).
        assert!(
            study.snapshots.dedup_ratio() > 1.8,
            "dedup ratio {}",
            study.snapshots.dedup_ratio()
        );
        let stored = study.snapshots.stored_bytes() as f64;
        assert!(
            stored < 2.0 * per_snapshot_logical_bytes(&study.snapshots),
            "store holds 4 snapshots in {stored} bytes"
        );
        assert!(study.snapshots.verify().is_empty());
    }

    #[test]
    fn incremental_and_full_runs_diff_identically() {
        let incremental = SnapshotStudy::run(SnapshotStudyConfig::quick(13)).unwrap();
        let mut full_config = SnapshotStudyConfig::quick(13);
        full_config.incremental = false;
        let full = SnapshotStudy::run(full_config).unwrap();
        assert!(full.work.linked_rows == 0 && full.work.incremental_fraction() == 1.0);
        assert!(incremental.work.executed_visits < full.work.executed_visits);
        // The content-addressed store converges to the same chunks —
        // linking and recrawling an unchanged site are byte-equivalent.
        assert_eq!(
            incremental.snapshots.chunk_count(),
            full.snapshots.chunk_count()
        );
        assert_eq!(
            incremental.snapshots.logical_bytes(),
            full.snapshots.logical_bytes()
        );
        let a = incremental.diff(2, None);
        let b = full.diff(2, None);
        assert_eq!(a.adoption, b.adoption);
        assert_eq!(a.churn, b.churn);
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn diff_tables_move_with_the_series() {
        let study = SnapshotStudy::run(SnapshotStudyConfig::quick(7)).unwrap();
        let diff = study.diff(4, None);
        assert_eq!(diff.adoption.len(), 4);
        assert_eq!(diff.churn.len(), 3);
        // The planted bands guarantee a live local-traffic population.
        assert!(diff.adoption.iter().all(|row| row.localhost > 0));
        // Churn plus movers guarantee non-trivial flow at every step.
        assert!(diff
            .flows
            .iter()
            .any(|f| f.entered + f.exited > 0 && f.persisted > 0));
    }

    #[test]
    fn snapshot_metrics_are_worker_count_invariant() {
        let export_with = |workers: usize| {
            let mut config = SnapshotStudyConfig::quick(7);
            config.workers = workers;
            let trace = Trace::new();
            let study = SnapshotStudy::run_observed(config, Some(&trace)).unwrap();
            let _ = study.diff(workers, Some(&trace));
            trace.export_prometheus()
        };
        let baseline = export_with(1);
        assert!(baseline.contains("snapshot_visits_total"));
        assert!(baseline.contains("snapshot_dedup_ratio"));
        for workers in [2, 4, 8] {
            assert_eq!(
                export_with(workers),
                baseline,
                "{workers}-worker snapshot export differs"
            );
        }
    }

    #[test]
    fn killed_spilled_run_resumes_to_identical_diff_tables() {
        // Satellite: TelemetryStore::with_spill + journal resume at a
        // snapshot boundary. Kill mid-way through the series' later
        // incremental campaigns, resume, and every longitudinal output
        // must be byte-identical to the uninterrupted run.
        let spill_dir = tmp("spill");
        let _ = std::fs::remove_dir_all(&spill_dir);
        let mut config = SnapshotStudyConfig::quick(7);
        config.spill = Some(SpillConfig::mmap(&spill_dir));
        let baseline = SnapshotStudy::run(SnapshotStudyConfig::quick(7)).unwrap();
        let baseline_render = baseline.diff(2, None).render();
        let baseline_trace = Trace::new();
        baseline.record_metrics(&baseline_trace);

        let path = tmp("journal.ktj");
        let _ = std::fs::remove_file(&path);
        let journal = JournalWriter::create(&path).unwrap();
        // Two thirds in: inside snapshot k ≥ 1's incremental crawl.
        let kill_at = (baseline.work.executed_visits * 2) / 3;
        journal.set_kill(Some(KillSpec {
            at_frame: kill_at,
            mode: KillMode::MidFrame,
        }));
        let killed =
            SnapshotStudy::run_journaled_observed(config.clone(), Some(&journal), None).unwrap();
        assert!(journal.killed(), "run must die at frame {kill_at}");
        assert!(
            killed.snapshots.snapshot_count() < 4,
            "dead process should hold a partial store"
        );

        let resumed = SnapshotStudy::resume(&path, config, None).unwrap();
        assert_eq!(resumed.stats, baseline.stats, "campaign stats match");
        assert_eq!(resumed.work, baseline.work, "plan-derived work matches");
        assert_eq!(
            resumed.snapshots.stored_bytes(),
            baseline.snapshots.stored_bytes()
        );
        assert_eq!(resumed.diff(2, None).render(), baseline_render);
        let resumed_trace = Trace::new();
        resumed.record_metrics(&resumed_trace);
        assert_eq!(
            resumed_trace.export_prometheus(),
            baseline_trace.export_prometheus(),
            "snapshot_* export identical across kill/resume"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&spill_dir).ok();
    }

    #[test]
    fn resume_rejects_mismatched_series_config() {
        let path = tmp("mismatch.ktj");
        let _ = std::fs::remove_file(&path);
        let journal = JournalWriter::create(&path).unwrap();
        journal.set_kill(Some(KillSpec {
            at_frame: 40,
            mode: KillMode::MidFrame,
        }));
        let _ = SnapshotStudy::run_journaled_observed(
            SnapshotStudyConfig::quick(7),
            Some(&journal),
            None,
        )
        .unwrap();
        let err = SnapshotStudy::resume(&path, SnapshotStudyConfig::quick(8), None);
        assert!(err.is_err(), "wrong seed must not resume");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn saved_store_reloads_and_diffs_identically() {
        let study = SnapshotStudy::run(SnapshotStudyConfig::quick(7)).unwrap();
        let dir = tmp("store");
        let _ = std::fs::remove_dir_all(&dir);
        study.snapshots.save(&dir).unwrap();
        let loaded = SnapshotStore::open(&dir, SegmentMode::Mmap).unwrap();
        let labels = study.labels();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        assert_eq!(
            kt_analysis::diff_snapshots(&loaded, &refs, 2).render(),
            study.diff(2, None).render(),
            "mmap-reloaded store diffs identically"
        );
        assert!(kt_store::snapshot_fsck(&dir).unwrap().clean());
        std::fs::remove_dir_all(&dir).ok();
    }
}
