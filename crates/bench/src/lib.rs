//! # kt-bench
//!
//! Criterion benchmarks (one target per paper table and figure, plus
//! pipeline and ablation benches) and the `repro` binary that prints
//! every regenerated artefact.
//!
//! Shared infrastructure: a lazily-built study at a bench-friendly
//! scale, reused across benchmark functions so Criterion measures the
//! analysis, not repeated crawling.

#![warn(missing_docs)]

pub mod checks;
pub mod prom;

use std::sync::OnceLock;

use knock_talk::{Study, StudyConfig};

/// The shared study used by the table/figure benches.
pub fn bench_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::run(StudyConfig::quick(0xBE7C)))
}
