//! A strict checker for the Prometheus text exposition format, used by
//! `perf --check-prom` to gate the CI observability smoke job on
//! `knocktalk --metrics-out` output.
//!
//! The checker validates what a scraper would care about:
//!
//! * metric and label names are well-formed;
//! * every sample's family is declared with `# TYPE` *before* its
//!   first sample, with a known kind;
//! * label bodies are `name="value"` pairs with proper escaping;
//! * sample values parse (decimal, `+Inf`, `-Inf`, `NaN`);
//! * no series (name + label set) appears twice;
//! * histograms are internally consistent: every series has a `+Inf`
//!   bucket, bucket counts are cumulative (non-decreasing in `le`),
//!   and `_count` equals the `+Inf` bucket.
//!
//! Callers may also require specific families to be present with at
//! least one sample — the smoke job's "core series exist" assertion.

use std::collections::{BTreeMap, BTreeSet};

/// What a successful check saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromReport {
    /// Families declared with `# TYPE`.
    pub families: usize,
    /// Distinct (name, label set) series.
    pub series: usize,
    /// Total sample lines.
    pub samples: usize,
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()))
}

fn valid_value(v: &str) -> bool {
    matches!(v, "+Inf" | "-Inf" | "Inf" | "NaN") || v.parse::<f64>().is_ok()
}

/// Split `name{labels} value` into (name, label body, value), keeping
/// escape sequences inside quoted label values intact.
fn split_sample(line: &str) -> Option<(&str, Option<&str>, &str)> {
    if let Some(brace) = line.find('{') {
        let name = &line[..brace];
        let rest = &line[brace + 1..];
        // Scan for the closing brace outside quotes.
        let (mut in_quotes, mut escaped) = (false, false);
        for (i, c) in rest.char_indices() {
            match (in_quotes, escaped, c) {
                (true, true, _) => escaped = false,
                (true, false, '\\') => escaped = true,
                (true, false, '"') => in_quotes = false,
                (false, _, '"') => in_quotes = true,
                (false, _, '}') => {
                    let value = rest[i + 1..].trim();
                    return Some((name, Some(&rest[..i]), value));
                }
                _ => {}
            }
        }
        None
    } else {
        let (name, value) = line.split_once(' ')?;
        Some((name, None, value.trim()))
    }
}

/// Parse a label body into sorted `name="raw value"` pairs.
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label pair without '=': {rest:?}"))?;
        let name = &rest[..eq];
        if !valid_label_name(name) {
            return Err(format!("bad label name {name:?}"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("label {name} value is not quoted"));
        }
        let mut escaped = false;
        let mut end = None;
        for (i, c) in after[1..].char_indices() {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => {
                    end = Some(i + 1);
                    break;
                }
                _ => {}
            }
        }
        let end = end.ok_or_else(|| format!("label {name} value is unterminated"))?;
        pairs.push((name.to_string(), after[1..end].to_string()));
        rest = &after[end + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err(format!("label pairs not comma-separated near {rest:?}"));
        }
    }
    Ok(pairs)
}

/// The family a sample name belongs to, given the declared histogram
/// families: `foo_bucket`/`foo_sum`/`foo_count` fold into `foo`.
fn family_of<'a>(name: &'a str, histograms: &BTreeSet<String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if histograms.contains(base) {
                return base;
            }
        }
    }
    name
}

/// Validate `text` as Prometheus text exposition; `required` lists
/// family names that must be present with at least one sample. Returns
/// every problem found, or a summary when there are none.
pub fn check(text: &str, required: &[&str]) -> Result<PromReport, Vec<String>> {
    let mut errors: Vec<String> = Vec::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut histograms: BTreeSet<String> = BTreeSet::new();
    let mut sampled: BTreeSet<String> = BTreeSet::new();
    let mut seen_series: BTreeSet<(String, Vec<(String, String)>)> = BTreeSet::new();
    // (family, labels-without-le) → le → bucket value, plus _count.
    type SeriesKey = (String, Vec<(String, String)>);
    let mut buckets: BTreeMap<SeriesKey, Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<SeriesKey, f64> = BTreeMap::new();
    let mut samples = 0usize;

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                    errors.push(format!("line {n}: malformed TYPE line"));
                    continue;
                };
                if !valid_metric_name(name) {
                    errors.push(format!("line {n}: bad metric name {name:?} in TYPE"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    errors.push(format!("line {n}: unknown TYPE kind {kind:?}"));
                }
                if sampled.contains(name) {
                    errors.push(format!("line {n}: TYPE for {name} after its samples"));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    errors.push(format!("line {n}: duplicate TYPE for {name}"));
                }
                if kind == "histogram" {
                    histograms.insert(name.to_string());
                }
            }
            // HELP and free comments need no validation beyond UTF-8,
            // which `str` already guarantees.
            continue;
        }
        if line.starts_with('#') {
            continue; // bare comment
        }
        let Some((name, label_body, value)) = split_sample(line) else {
            errors.push(format!("line {n}: unparseable sample line {line:?}"));
            continue;
        };
        if !valid_metric_name(name) {
            errors.push(format!("line {n}: bad metric name {name:?}"));
            continue;
        }
        let mut tokens = value.split_whitespace();
        let Some(value) = tokens.next() else {
            errors.push(format!("line {n}: sample {name} has no value"));
            continue;
        };
        if !valid_value(value) {
            errors.push(format!("line {n}: bad sample value {value:?} for {name}"));
        }
        if let Some(ts) = tokens.next() {
            if ts.parse::<i64>().is_err() {
                errors.push(format!("line {n}: bad timestamp {ts:?} for {name}"));
            }
        }
        if tokens.next().is_some() {
            errors.push(format!("line {n}: trailing tokens after {name} sample"));
        }
        let labels = match label_body.map(parse_labels).transpose() {
            Ok(labels) => labels.unwrap_or_default(),
            Err(e) => {
                errors.push(format!("line {n}: {e}"));
                continue;
            }
        };
        let family = family_of(name, &histograms).to_string();
        if !types.contains_key(&family) {
            errors.push(format!("line {n}: sample {name} has no # TYPE declaration"));
        }
        sampled.insert(family.clone());
        samples += 1;
        if !seen_series.insert((name.to_string(), labels.clone())) {
            errors.push(format!("line {n}: duplicate series {line:?}"));
        }
        if histograms.contains(&family) && name.ends_with("_bucket") {
            let le = labels.iter().find(|(k, _)| k == "le");
            let Some((_, le)) = le else {
                errors.push(format!("line {n}: {name} bucket without an le label"));
                continue;
            };
            let bound = match le.as_str() {
                "+Inf" => f64::INFINITY,
                other => match other.parse::<f64>() {
                    Ok(b) => b,
                    Err(_) => {
                        errors.push(format!("line {n}: bad le bound {le:?}"));
                        continue;
                    }
                },
            };
            let without_le: Vec<_> = labels.iter().filter(|(k, _)| k != "le").cloned().collect();
            buckets
                .entry((family.clone(), without_le))
                .or_default()
                .push((bound, value.parse().unwrap_or(f64::NAN)));
        } else if histograms.contains(&family) && name.ends_with("_count") {
            counts.insert((family, labels), value.parse().unwrap_or(f64::NAN));
        }
    }

    for ((family, labels), mut series) in buckets {
        series.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le bounds are not NaN"));
        let label_text = || {
            labels
                .iter()
                .map(|(k, v)| format!("{k}={v:?}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        let Some(&(last_bound, inf_count)) = series.last() else {
            continue;
        };
        if last_bound != f64::INFINITY {
            errors.push(format!(
                "histogram {family}{{{}}}: no +Inf bucket",
                label_text()
            ));
            continue;
        }
        if series.windows(2).any(|w| w[1].1 < w[0].1) {
            errors.push(format!(
                "histogram {family}{{{}}}: bucket counts are not cumulative",
                label_text()
            ));
        }
        match counts.get(&(family.clone(), labels.clone())) {
            Some(&count) if count == inf_count => {}
            Some(&count) => errors.push(format!(
                "histogram {family}{{{}}}: _count {count} != +Inf bucket {inf_count}",
                label_text()
            )),
            None => errors.push(format!(
                "histogram {family}{{{}}}: missing _count series",
                label_text()
            )),
        }
    }

    for name in required {
        if !sampled.contains(*name) {
            errors.push(format!("required series {name} has no samples"));
        }
    }

    if errors.is_empty() {
        Ok(PromReport {
            families: types.len(),
            series: seen_series.len(),
            samples,
        })
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# HELP visits_total Pages visited\n\
# TYPE visits_total counter\n\
visits_total{crawl=\"top2020\",os=\"Linux\"} 2000\n\
visits_total{crawl=\"top2020\",os=\"Windows\"} 2000\n\
# TYPE lat histogram\n\
lat_bucket{le=\"0.1\"} 1\n\
lat_bucket{le=\"+Inf\"} 3\n\
lat_sum 0.42\n\
lat_count 3\n\
# TYPE temp gauge\n\
temp 21.5\n";

    #[test]
    fn accepts_well_formed_exposition() {
        let report = check(GOOD, &["visits_total", "lat"]).expect("clean");
        assert_eq!(report.families, 3);
        assert_eq!(report.samples, 7);
    }

    #[test]
    fn rejects_missing_required_series() {
        let errs = check(GOOD, &["retries_total"]).unwrap_err();
        assert!(errs[0].contains("retries_total"), "{errs:?}");
    }

    #[test]
    fn rejects_duplicate_series_and_undeclared_samples() {
        let text = "# TYPE a counter\na 1\na 2\nb 1\n";
        let errs = check(text, &[]).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("duplicate series")),
            "{errs:?}"
        );
        assert!(errs.iter().any(|e| e.contains("no # TYPE")), "{errs:?}");
    }

    #[test]
    fn rejects_histogram_without_inf_bucket() {
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        let errs = check(text, &[]).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("+Inf")), "{errs:?}");
    }

    #[test]
    fn rejects_non_cumulative_buckets_and_count_mismatch() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n\
                    h_sum 1\nh_count 9\n";
        let errs = check(text, &[]).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("not cumulative")),
            "{errs:?}"
        );
        assert!(errs.iter().any(|e| e.contains("_count")), "{errs:?}");
    }

    #[test]
    fn rejects_bad_values_and_label_syntax() {
        let text = "# TYPE a counter\na{x=\"1\"} abc\na{y=1} 2\n";
        let errs = check(text, &[]).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("bad sample value")),
            "{errs:?}"
        );
        assert!(errs.iter().any(|e| e.contains("not quoted")), "{errs:?}");
    }

    #[test]
    fn escaped_quotes_in_label_values_parse() {
        let text = "# TYPE a counter\na{x=\"say \\\"hi\\\"\",y=\"b\\\\c\"} 1\n";
        let report = check(text, &[]).expect("escapes are legal");
        assert_eq!(report.samples, 1);
    }

    #[test]
    fn knocktalk_export_passes() {
        // End-to-end: a real registry export must satisfy the checker.
        let trace = knock_talk::trace::Trace::new();
        trace.inc_counter(
            knock_talk::trace::names::VISITS_TOTAL,
            knock_talk::trace::Labels::new(&[("crawl", "top2020"), ("os", "Linux")]),
            7,
        );
        trace.observe(
            &knock_talk::trace::names::ANALYSIS_STAGE_SECONDS,
            knock_talk::trace::Labels::new(&[("crawl", "top2020"), ("stage", "decode")]),
            1_500,
        );
        let text = trace.export_prometheus();
        let report = check(
            &text,
            &[
                "visits_total",
                "journal_frames_total",
                "analysis_stage_seconds",
            ],
        )
        .expect("registry export is valid exposition");
        assert!(report.series >= 3);
    }
}
