//! Regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p kt-bench --bin repro            # standard scale
//! KT_SCALE=quick    cargo run --release -p kt-bench --bin repro
//! KT_SCALE=paper    cargo run --release -p kt-bench --bin repro   # full 100K
//! KT_SEED=123       cargo run --release -p kt-bench --bin repro
//! ```
//!
//! Output: each experiment id (T1–T11, F2–F9) followed by the
//! regenerated artefact. EXPERIMENTS.md pairs this output with the
//! paper's published values.

use std::time::Instant;

use knock_talk::{Study, StudyConfig};

fn main() {
    let seed: u64 = std::env::var("KT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x00C0_FFEE);
    let scale = std::env::var("KT_SCALE").unwrap_or_else(|_| "standard".to_string());
    let config = match scale.as_str() {
        "quick" => StudyConfig::quick(seed),
        "paper" => StudyConfig::paper(seed),
        _ => StudyConfig::standard(seed),
    };
    eprintln!(
        "scale={scale} seed={seed}: top list {} sites, blocklist {} URLs",
        config.population.top_size, config.population.malicious_size
    );

    let t0 = Instant::now();
    let study = Study::run(config);
    eprintln!(
        "crawled {} visits in {:.1}s ({} bytes of telemetry)",
        study.store.len(),
        t0.elapsed().as_secs_f64(),
        study.store.byte_size()
    );

    let titles: &[(&str, &str)] = &[
        ("T1", "Table 1 — web crawl statistics"),
        ("T2", "Table 2 — malicious crawl summary"),
        ("T3", "Table 3 — top localhost-active domains (2020)"),
        (
            "T4",
            "Table 4 — scanned localhost ports: services and use cases",
        ),
        ("T5", "Table 5 — 2020 localhost requests by reason"),
        ("T6", "Table 6 — 2020 LAN requests"),
        ("T7", "Table 7 — localhost requests new in 2021"),
        ("T8", "Table 8 — malicious localhost requests"),
        ("T9", "Table 9 — malicious LAN requests"),
        ("T10", "Table 10 — 2021 LAN requests"),
        ("T11", "Table 11 — 2020 developer-error localhost requests"),
        ("F2", "Figure 2 — OS overlap of localhost-active sites"),
        (
            "F3",
            "Figure 3 — rank CDFs of localhost-active sites (2020)",
        ),
        (
            "F4",
            "Figure 4 — protocols and ports of localhost requests (2020)",
        ),
        ("F5", "Figure 5 — time to first local request (2020)"),
        ("F6", "Figure 6 — time to first local request (2021)"),
        ("F7", "Figure 7 — time to first local request (malicious)"),
        (
            "F8",
            "Figure 8 — protocols and ports of localhost requests (2021)",
        ),
        (
            "F9",
            "Figure 9 — rank CDFs of localhost-active sites (2021)",
        ),
        ("X1", "Extension X1 — Private Network Access impact (§5.3)"),
        (
            "X2",
            "Extension X2 — developer-error breakdown (Appendix B)",
        ),
        ("X3", "Extension X3 — fingerprinting entropy (§5.2)"),
        (
            "X4",
            "Extension X4 — 2020→2021 behaviour transitions (§4.1)",
        ),
        ("X5", "Extension X5 — deep crawl of internal pages (§3.3)"),
    ];
    for (id, title) in titles {
        println!("\n=============================================================");
        println!("[{id}] {title}");
        println!("=============================================================");
        match study.experiment(id) {
            Some(text) => println!("{text}"),
            None => println!("(unknown experiment id)"),
        }
    }
    eprintln!("done in {:.1}s total", t0.elapsed().as_secs_f64());
}
