//! Pipeline throughput benchmark: crawl → store scan → analysis.
//!
//! ```sh
//! cargo run --release -p kt-bench --bin perf                 # full sweep
//! cargo run --release -p kt-bench --bin perf -- --smoke      # CI-sized run
//! cargo run --release -p kt-bench --bin perf -- --smoke --check BENCH_pipeline.json
//! cargo run --release -p kt-bench --bin perf -- --check-prom metrics.prom \
//!     --require visits_total --require analysis_stage_seconds
//! ```
//!
//! `--check-prom` is a standalone mode: validate a Prometheus text
//! exposition file written by `knocktalk --metrics-out` (format +
//! histogram consistency + required series) and exit without running
//! any benchmark.
//!
//! Measures each pipeline stage at three population sizes, plus a
//! worker-scaling curve (1/2/4/8/16/32) comparing the work-stealing
//! scheduler ([`run_crawl`]) against the static-chunk ablation
//! baseline ([`run_crawl_chunked`]) on a *skewed* population: one
//! eighth of the sites are "heavy" — big pages (240 public resources
//! vs 2) whose first two attempts both draw an injected connection
//! reset, so each burns several 21 s visits plus backoffs — and they
//! are sorted contiguously at the front of the job list, so static
//! chunking hands the whole expensive block to worker 0 while its
//! peers idle.
//!
//! Two clocks are reported. *Real* elements/sec measures the
//! simulation's CPU cost. Scheduler quality is measured on the
//! *simulated* clock — `CrawlStats::makespan_ms`, the busiest
//! worker's final wall position — because that is the duration a real
//! campaign would take, and it is machine-independent: the headline
//! `stealing_vs_chunked_at_max_workers` speedup is the chunked
//! makespan over the stealing makespan at 8 workers.
//!
//! A service-mode section runs the same simulation through the
//! resident [`CampaignService`] scheduler — a multi-campaign fleet
//! over the bounded update queue — and reports events/sec plus the
//! p99 campaign completion time on the simulated clock.
//!
//! Results land in `BENCH_pipeline.json`. Every stage also records a
//! `relative` score — elements/sec multiplied by the run's calibration
//! time (a fixed single-worker crawl) — which cancels raw machine
//! speed so `--check` can compare runs across hosts: it fails (exit 1)
//! when any stage's relative throughput regressed more than 2× against
//! the checked-in baseline.
//!
//! The binary also installs a counting global allocator and runs the
//! decode+detect hot path twice over the same raw store bytes — once
//! through the owned path (`decode` to a `VisitRecord`, `detect_local`
//! over it) and once through the borrowed path (`decode_view` +
//! `detect_local_view`) — recording events/sec, allocations/event, and
//! heap bytes/event for each. `--alloc-ceiling <f64>` turns the view
//! path's allocations/event into a CI gate: exit 1 if any population
//! exceeds the checked-in ceiling.
//!
//! Two raw-speed-floor stages round out the sweep. *flat_memory*
//! crawls a bulk population (10× the largest sweep size) into a store
//! that spills sealed segments to mmap-backed files, then scans it all
//! back zero-copy while the counting allocator watches peak heap —
//! `--mem-ceiling` gates the peak-heap/store-bytes ratio. *journal*
//! streams visit frames through the group-commit writer and its
//! unbatched ablation, byte-compares the files, and reports frames per
//! fsync (`--fsync-floor` gates it) and frames per batched write.
//! `--eps-floor` gates the machine-normalized zero-copy decode
//! throughput from the population sweep.

use std::time::Instant;

use knock_talk::analysis::{detect_local_view, detect_local_with_page_owned};
use knock_talk::crawler::{run_crawl, run_crawl_chunked, CrawlConfig, CrawlJob};
use knock_talk::faults::{Fault, FaultPlan, RetryPolicy};
use knock_talk::netbase::{DomainName, Os};
use knock_talk::netlog::{EventParams, EventPhase, EventType, NetLogEvent, SourceRef, SourceType};
use knock_talk::service::{
    CampaignService, CampaignSpec, CampaignStatus, OverflowPolicy, ServiceConfig, ServiceJob,
    TenantQuota,
};
use knock_talk::store::codec::decode;
use knock_talk::store::journal::{JournalConfig, JournalWriter, VisitDelta, FLAG_FINAL};
use knock_talk::store::{
    decode_view, CrawlId, LoadOutcome, SpillConfig, TelemetryStore, VisitRecord,
};
use knock_talk::trace::{
    count_allocs, live_bytes, peak_bytes, reset_peak_bytes, CountingAllocator, StageProfiler,
};
use knock_talk::webgen::WebSite;
use knock_talk::{SnapshotStudy, SnapshotStudyConfig};

// The shared counting allocator from kt-trace: feeds the decode+detect
// allocs/event columns (via `count_allocs`) and the stage profiler's
// alloc_mb column. Replaces the hand-rolled copy this binary used to
// carry.
#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Fraction of the population that is heavy: exactly one chunk's worth
/// at the maximum worker count, so static chunking concentrates all of
/// it on one worker.
const MAX_WORKERS: usize = 8;

/// Resource counts: the CPU-cost skew between heavy and light pages.
const HEAVY_RESOURCES: u8 = 240;
const LIGHT_RESOURCES: u8 = 2;

/// Injection probability for the plan the heavy sites are drawn from.
const FAULT_RATE: f64 = 0.5;

struct Options {
    smoke: bool,
    check: Option<String>,
    check_prom: Option<String>,
    require: Vec<String>,
    alloc_ceiling: Option<f64>,
    eps_floor: Option<f64>,
    mem_ceiling: Option<f64>,
    fsync_floor: Option<f64>,
    dedup_floor: Option<f64>,
    incremental_floor: Option<f64>,
    out: String,
    seed: u64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        smoke: false,
        check: None,
        check_prom: None,
        require: Vec::new(),
        alloc_ceiling: None,
        eps_floor: None,
        mem_ceiling: None,
        fsync_floor: None,
        dedup_floor: None,
        incremental_floor: None,
        out: "BENCH_pipeline.json".to_string(),
        seed: 0xBE7C,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--check" => {
                opts.check = Some(args.next().ok_or("--check needs a baseline path")?);
            }
            "--check-prom" => {
                opts.check_prom = Some(args.next().ok_or("--check-prom needs a metrics path")?);
            }
            "--require" => {
                opts.require
                    .push(args.next().ok_or("--require needs a series name")?);
            }
            "--alloc-ceiling" => {
                opts.alloc_ceiling = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--alloc-ceiling needs a number (allocs/event)")?,
                );
            }
            "--eps-floor" => {
                opts.eps_floor = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--eps-floor needs a number (machine-normalized relative eps)")?,
                );
            }
            "--mem-ceiling" => {
                opts.mem_ceiling = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--mem-ceiling needs a ratio (peak heap / store bytes)")?,
                );
            }
            "--fsync-floor" => {
                opts.fsync_floor = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--fsync-floor needs a number (journal frames per fsync)")?,
                );
            }
            "--dedup-floor" => {
                opts.dedup_floor = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--dedup-floor needs a ratio (logical / stored bytes)")?,
                );
            }
            "--incremental-floor" => {
                opts.incremental_floor =
                    Some(args.next().and_then(|s| s.parse().ok()).ok_or(
                        "--incremental-floor needs a ratio (full-recrawl / executed visits)",
                    )?);
            }
            "--out" => opts.out = args.next().ok_or("--out needs a path")?,
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// The skewed population: `n` sites, the first `n / MAX_WORKERS` of
/// which are heavy (big pages whose first two attempts both fault
/// under `plan`, guaranteeing at least three visits each), the rest
/// light (no attempt-0 fault, so exactly one visit). Candidate domains
/// are probed against the plan's pure `injects` predicate so the heavy
/// block is exactly the set of sites the fault plan actually punishes.
fn skewed_population(n: usize, plan: &FaultPlan) -> Vec<WebSite> {
    let heavy_target = (n / MAX_WORKERS).max(1);
    let mut heavy = Vec::new();
    let mut light = Vec::new();
    let mut candidate = 0usize;
    while heavy.len() < heavy_target || light.len() < n - heavy_target {
        let name = format!("perf-site{candidate}.example");
        candidate += 1;
        let reset = |attempt| plan.injects(Fault::ConnectionReset, &name, attempt);
        let (bucket, target, resources) = if reset(0) && reset(1) {
            (&mut heavy, heavy_target, HEAVY_RESOURCES)
        } else if !reset(0) {
            (&mut light, n - heavy_target, LIGHT_RESOURCES)
        } else {
            continue; // middling fate — keep the skew bimodal
        };
        if bucket.len() < target {
            bucket.push(WebSite::plain(
                DomainName::parse(&name).expect("valid bench domain"),
                Some(bucket.len() as u32 + 1),
                resources,
            ));
        }
    }
    // Heavy block first: under static chunking it becomes chunk 0.
    heavy.extend(light);
    heavy
}

fn jobs(sites: &[WebSite]) -> Vec<CrawlJob<'_>> {
    sites
        .iter()
        .map(|site| CrawlJob {
            site,
            malicious_category: None,
        })
        .collect()
}

fn bench_config(seed: u64, workers: usize, plan: &FaultPlan) -> CrawlConfig {
    let mut config = CrawlConfig::paper(CrawlId("perf".to_string()), Os::Linux, seed);
    config.workers = workers;
    config.faults = plan.clone();
    // Four in-place attempts with paper-style backoff, no recrawl: a
    // serial end-of-campaign pass would cap the parallel speedup this
    // bench exists to measure, while the deep retry budget is what
    // makes the heavy sites expensive.
    config.retry = RetryPolicy {
        max_attempts: 4,
        base_backoff_ms: 5_000,
        max_backoff_ms: 60_000,
        recrawl: false,
    };
    config
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let value = f();
    (value, t0.elapsed().as_secs_f64().max(1e-9))
}

fn stage_json(elements: usize, secs: f64, calib_secs: f64) -> serde_json::Value {
    let eps = elements as f64 / secs;
    serde_json::json!({
        "elements": elements,
        "secs": secs,
        "eps": eps,
        "relative": eps * calib_secs,
    })
}

/// The calibration workload: a fixed-size single-worker clean crawl,
/// best of three. Its runtime scales with raw machine speed exactly
/// like the measured stages do, so `eps * calibration_secs` is
/// machine-portable.
fn calibrate(seed: u64) -> f64 {
    let plan = FaultPlan::none(seed);
    let sites: Vec<WebSite> = (0..48)
        .map(|i| {
            WebSite::plain(
                DomainName::parse(&format!("calib{i}.example")).expect("valid"),
                Some(i + 1),
                32,
            )
        })
        .collect();
    let config = bench_config(seed, 1, &plan);
    (0..3)
        .map(|_| {
            let store = TelemetryStore::new();
            time(|| run_crawl(&jobs(&sites), &config, &store)).1
        })
        .fold(f64::MAX, f64::min)
}

/// Crawl + scan + analyze one population size; returns the JSON entry.
fn bench_population(n: usize, seed: u64, plan: &FaultPlan, calib: f64) -> serde_json::Value {
    let sites = skewed_population(n, plan);
    let population_jobs = jobs(&sites);
    let config = bench_config(seed, MAX_WORKERS, plan);
    let crawl = CrawlId("perf".to_string());

    // Best of three per stage: these runs are milliseconds long, so a
    // single scheduling blip on a busy CI host could fake a 2×
    // "regression" for `--check`.
    let mut store = TelemetryStore::new();
    let (mut stats, mut crawl_secs) = time(|| run_crawl(&population_jobs, &config, &store));
    for _ in 0..2 {
        let rerun_store = TelemetryStore::new();
        let (rerun, secs) = time(|| run_crawl(&population_jobs, &config, &rerun_store));
        if secs < crawl_secs {
            (stats, crawl_secs, store) = (rerun, secs, rerun_store);
        }
    }
    assert_eq!(stats.attempted, n, "every site visited once");

    let (records, mut scan_secs) = time(|| store.crawl_records(&crawl));
    assert_eq!(records.len(), n);
    for _ in 0..2 {
        scan_secs = scan_secs.min(time(|| store.crawl_records(&crawl)).1);
    }

    let (analysis, mut analyze_secs) =
        time(|| knock_talk::analysis::par::analyze_crawl_par(&store, &crawl, MAX_WORKERS));
    assert_eq!(analysis.visits, n);
    for _ in 0..2 {
        analyze_secs = analyze_secs.min(
            time(|| knock_talk::analysis::par::analyze_crawl_par(&store, &crawl, MAX_WORKERS)).1,
        );
    }

    // Zero-copy decode+detect ablation: identical raw segment bytes
    // through the pre-refactor owned path (`decode` to a
    // `VisitRecord`, then the retained clone-per-event reference
    // detection) and the borrowed path (`decode_view` +
    // `detect_local_view`). Cloning a `Bytes` is an Arc refcount bump,
    // so the owned pass pays only what owned decode+detect itself
    // costs.
    let raws: Vec<_> = (0..store.shard_count())
        .flat_map(|shard| store.shard_raw_on(&crawl, shard, None))
        .collect();
    assert_eq!(raws.len(), n);
    let events: usize = raws
        .iter()
        .map(|raw| decode_view(raw).expect("store bytes decode").events.len())
        .sum();
    let owned_pass = || -> usize {
        raws.iter()
            .map(|raw| {
                let record = decode(raw.clone()).expect("store bytes decode");
                detect_local_with_page_owned(&record).0.len()
            })
            .sum()
    };
    let view_pass = || -> usize {
        raws.iter()
            .map(|raw| {
                let view = decode_view(raw).expect("store bytes decode");
                detect_local_view(&view).len()
            })
            .sum()
    };
    let (owned_obs, owned_allocs, owned_bytes) = count_allocs(owned_pass);
    let (view_obs, view_allocs, view_bytes) = count_allocs(view_pass);
    assert_eq!(owned_obs, view_obs, "both paths must agree on observations");
    let (_, mut owned_secs) = time(owned_pass);
    for _ in 0..2 {
        owned_secs = owned_secs.min(time(owned_pass).1);
    }
    let (_, mut view_secs) = time(view_pass);
    for _ in 0..2 {
        view_secs = view_secs.min(time(view_pass).1);
    }
    let per_event = |count: u64| count as f64 / events.max(1) as f64;

    eprintln!(
        "  n={n:>4}: crawl {:.2}s ({:.0}/s, sim {:.0}s), scan {:.3}s, analyze {:.3}s",
        crawl_secs,
        n as f64 / crawl_secs,
        stats.makespan_ms as f64 / 1e3,
        scan_secs,
        analyze_secs
    );
    eprintln!(
        "          decode+detect over {events} events: owned {:.0}/s ({:.2} allocs/ev), \
         view {:.0}/s ({:.3} allocs/ev) — {:.1}x faster, {:.0}x fewer allocs",
        events as f64 / owned_secs,
        per_event(owned_allocs),
        events as f64 / view_secs,
        per_event(view_allocs),
        owned_secs / view_secs,
        owned_allocs as f64 / view_allocs.max(1) as f64
    );
    let mut crawl_stage = stage_json(n, crawl_secs, calib);
    if let serde_json::Value::Object(map) = &mut crawl_stage {
        map.insert(
            "sim_makespan_ms".to_string(),
            serde_json::json!(stats.makespan_ms),
        );
    }
    let decode_stage = |secs: f64, allocs: u64, bytes: u64| {
        let mut stage = stage_json(events, secs, calib);
        if let serde_json::Value::Object(map) = &mut stage {
            map.insert(
                "allocs_per_event".to_string(),
                serde_json::json!(per_event(allocs)),
            );
            map.insert(
                "bytes_per_event".to_string(),
                serde_json::json!(per_event(bytes)),
            );
        }
        stage
    };
    serde_json::json!({
        "sites": n,
        "heavy_sites": (n / MAX_WORKERS).max(1),
        "stages": {
            "crawl": crawl_stage,
            "scan": stage_json(n, scan_secs, calib),
            "analyze": stage_json(n, analyze_secs, calib),
            "decode_detect_owned": decode_stage(owned_secs, owned_allocs, owned_bytes),
            "decode_detect_view": decode_stage(view_secs, view_allocs, view_bytes),
        },
        "zero_copy": {
            "speedup": owned_secs / view_secs,
            "alloc_reduction": owned_allocs as f64 / view_allocs.max(1) as f64,
        },
    })
}

/// The worker-scaling curve: stealing vs chunked crawl and parallel
/// analysis at 1/2/4/8 workers over one skewed population.
fn bench_scaling(
    n: usize,
    worker_counts: &[usize],
    seed: u64,
    plan: &FaultPlan,
) -> serde_json::Value {
    let sites = skewed_population(n, plan);
    let population_jobs = jobs(&sites);
    let crawl = CrawlId("perf".to_string());
    let mut stealing_makespan_s = Vec::new();
    let mut chunked_makespan_s = Vec::new();
    let mut stealing_vph = Vec::new();
    let mut chunked_vph = Vec::new();
    let mut analyze_eps = Vec::new();
    // Visits per simulated hour: the throughput of the worker pool on
    // the clock a real campaign pays for.
    let vph = |makespan_ms: u64| n as f64 / (makespan_ms as f64 / 3_600_000.0);
    for &workers in worker_counts {
        let config = bench_config(seed, workers, plan);
        let store = TelemetryStore::new();
        let steal = run_crawl(&population_jobs, &config, &store);
        let chunk_store = TelemetryStore::new();
        let chunk = run_crawl_chunked(&population_jobs, &config, &chunk_store);
        let (_, analyze_secs) =
            time(|| knock_talk::analysis::par::analyze_crawl_par(&store, &crawl, workers));
        stealing_makespan_s.push(steal.makespan_ms as f64 / 1e3);
        chunked_makespan_s.push(chunk.makespan_ms as f64 / 1e3);
        stealing_vph.push(vph(steal.makespan_ms));
        chunked_vph.push(vph(chunk.makespan_ms));
        analyze_eps.push(n as f64 / analyze_secs);
        eprintln!(
            "  workers={workers}: stealing {:.0} sim-s ({:.0} visits/h), \
             chunked {:.0} sim-s ({:.0} visits/h) — {:.2}x; analyze {:.0}/s real",
            steal.makespan_ms as f64 / 1e3,
            vph(steal.makespan_ms),
            chunk.makespan_ms as f64 / 1e3,
            vph(chunk.makespan_ms),
            chunk.makespan_ms as f64 / steal.makespan_ms as f64,
            n as f64 / analyze_secs
        );
    }
    let speedup =
        stealing_vph.last().expect("nonempty curve") / chunked_vph.last().expect("nonempty curve");
    serde_json::json!({
        "sites": n,
        "workers": worker_counts,
        "crawl_stealing_makespan_s": stealing_makespan_s,
        "crawl_chunked_makespan_s": chunked_makespan_s,
        "crawl_stealing_visits_per_sim_hour": stealing_vph,
        "crawl_chunked_visits_per_sim_hour": chunked_vph,
        "analyze_eps": analyze_eps,
        "stealing_vs_chunked_at_max_workers": speedup,
    })
}

/// Service-mode benchmark: a multi-tenant fleet of campaigns through
/// the resident [`CampaignService`] scheduler instead of one batch
/// `run_crawl`. Reports two numbers the batch stages cannot: visit
/// *events per second* through the bounded update queue (real clock,
/// machine-normalized the same way as the other stages), and the p99
/// campaign completion time on the *simulated* clock — the tail a
/// tenant would actually wait, and a deterministic function of the
/// seed, so regressions in scheduler fairness show up as exact-value
/// changes, not noise.
fn bench_service(
    campaigns: usize,
    sites_per_campaign: usize,
    seed: u64,
    plan: &FaultPlan,
    calib: f64,
) -> serde_json::Value {
    let fleet_sites: Vec<Vec<WebSite>> = (0..campaigns)
        .map(|c| {
            (0..sites_per_campaign)
                .map(|i| {
                    WebSite::plain(
                        DomainName::parse(&format!("svc{c}-site{i}.example")).expect("valid"),
                        Some(i as u32 + 1),
                        LIGHT_RESOURCES,
                    )
                })
                .collect()
        })
        .collect();
    let build = || {
        let mut config = ServiceConfig::new(seed);
        config.workers = MAX_WORKERS;
        config.faults = plan.clone();
        let mut service = CampaignService::new(config);
        service.register_tenant("bench", TenantQuota::unbounded(), OverflowPolicy::Block);
        let handles: Vec<_> = fleet_sites
            .iter()
            .enumerate()
            .map(|(c, sites)| {
                let spec = CampaignSpec {
                    crawl: CrawlId(format!("svc-bench-{c}")),
                    os: Os::ALL[c % Os::ALL.len()],
                    jobs: sites
                        .iter()
                        .map(|site| ServiceJob {
                            site: site.clone(),
                            malicious_category: None,
                        })
                        .collect(),
                    deadline_ms: None,
                    nominal_workers: MAX_WORKERS,
                };
                service.submit("bench", spec).expect("fleet admitted")
            })
            .collect();
        (service, handles)
    };

    // Best of three, like every other stage.
    let ((mut service, mut handles), mut secs) = time(|| {
        let (mut service, handles) = build();
        service.run();
        (service, handles)
    });
    for _ in 0..2 {
        let (rerun, rerun_secs) = time(|| {
            let (mut service, handles) = build();
            service.run();
            (service, handles)
        });
        if rerun_secs < secs {
            ((service, handles), secs) = (rerun, rerun_secs);
        }
    }

    let accounting = service.accounting();
    assert_eq!(accounting.len(), 1);
    assert!(accounting[0].reconciles(), "bench fleet must reconcile");
    assert_eq!(accounting[0].updates_shed, 0, "Block policy never sheds");
    let events = accounting[0].updates as usize;
    let mut completion_ms: Vec<u64> = handles
        .iter()
        .map(|&h| {
            assert_eq!(service.status(h), Some(CampaignStatus::Completed));
            service.campaign_stats(h).expect("stats").makespan_ms
        })
        .collect();
    completion_ms.sort_unstable();
    let p99_index = ((completion_ms.len() - 1) as f64 * 0.99).ceil() as usize;
    let p99_completion_ms = completion_ms[p99_index];
    let eps = events as f64 / secs;

    eprintln!(
        "  campaigns={campaigns}x{sites_per_campaign}: {events} events in {secs:.3}s \
         ({eps:.0}/s), p99 completion {:.0} sim-s",
        p99_completion_ms as f64 / 1e3
    );
    let mut entry = stage_json(events, secs, calib);
    if let serde_json::Value::Object(map) = &mut entry {
        map.insert("campaigns".to_string(), serde_json::json!(campaigns));
        map.insert(
            "sites_per_campaign".to_string(),
            serde_json::json!(sites_per_campaign),
        );
        map.insert(
            "p99_completion_ms".to_string(),
            serde_json::json!(p99_completion_ms),
        );
        map.insert(
            "queue_blocks".to_string(),
            serde_json::json!(accounting[0].queue_blocks),
        );
    }
    entry
}

/// The flat-memory stage: crawl a bulk population (10× the largest
/// population-sweep size) into a store that spills sealed segments to
/// mmap-backed files, then scan every record back through the
/// zero-copy decode path while watching the counting allocator's
/// live/peak gauges. The numbers this produces are the raw-speed-floor
/// memory gates: after `seal_all` the segment data must live in the
/// page cache, not the heap, so `resident_segment_bytes` collapses to
/// ~0 and the scan's peak heap delta stays a small fraction of the
/// store's logical size — however large the campaign grows.
fn bench_flat_memory(n: usize, seed: u64, calib: f64) -> serde_json::Value {
    let sites: Vec<WebSite> = (0..n)
        .map(|i| {
            WebSite::plain(
                DomainName::parse(&format!("bulk{i}.example")).expect("valid bench domain"),
                Some(i as u32 + 1),
                LIGHT_RESOURCES,
            )
        })
        .collect();
    let plan = FaultPlan::none(seed);
    let config = bench_config(seed, MAX_WORKERS, &plan);
    let dir = std::env::temp_dir().join(format!("kt-perf-spill-{}", std::process::id()));
    // Small segments so the spill path runs many times even in smoke
    // mode; the read side is slices of one mapping per segment either
    // way.
    let spill = SpillConfig::mmap(&dir).with_segment_target(128 << 10);
    let store = TelemetryStore::with_spill(spill).expect("spill store");
    let (stats, crawl_secs) = time(|| run_crawl(&jobs(&sites), &config, &store));
    assert_eq!(stats.attempted, n, "every bulk site visited once");
    store.seal_all();
    let store_bytes = store.byte_size();
    let resident = store.resident_segment_bytes();
    let spilled = store.spilled_segments();
    assert!(spilled > 0, "bulk population must exercise the spill path");

    let crawl = CrawlId("perf".to_string());
    let scan = || -> usize {
        (0..store.shard_count())
            .flat_map(|shard| store.shard_raw_on(&crawl, shard, None))
            .map(|raw| decode_view(&raw).expect("store bytes decode").events.len())
            .sum()
    };
    // Peak-heap accounting for the scan alone: pin the watermark to the
    // current live level, run the scan, and read how far it rose.
    let live0 = live_bytes();
    reset_peak_bytes();
    let (events, mut scan_secs) = time(scan);
    let peak_delta = peak_bytes().saturating_sub(live0);
    for _ in 0..2 {
        scan_secs = scan_secs.min(time(scan).1);
    }
    // Both the leftover resident segment bytes and the scan's transient
    // peak count against the flat-memory budget.
    let heap_over_store = (resident as u64 + peak_delta) as f64 / store_bytes.max(1) as f64;

    eprintln!(
        "  n={n}: crawl {crawl_secs:.2}s, {spilled} segments spilled ({:.1} MB on disk), \
         resident {resident} B; scan {events} events in {scan_secs:.3}s, \
         peak heap delta {:.2} MB ({:.4} of store)",
        store_bytes as f64 / 1e6,
        peak_delta as f64 / 1e6,
        heap_over_store
    );
    let mut scan_stage = stage_json(events, scan_secs, calib);
    if let serde_json::Value::Object(map) = &mut scan_stage {
        map.insert(
            "peak_heap_delta_bytes".to_string(),
            serde_json::json!(peak_delta),
        );
    }
    let entry = serde_json::json!({
        "sites": n,
        "crawl_secs": crawl_secs,
        "store_bytes": store_bytes,
        "spilled_segments": spilled,
        "resident_segment_bytes": resident,
        "heap_over_store_ratio": heap_over_store,
        "scan": scan_stage,
    });
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
    entry
}

/// The group-commit journal stage: stream synthetic visit frames
/// through a grouped writer and an unbatched one (`group_max_frames =
/// 1`, the pre-group-commit behavior), byte-compare the files to prove
/// batching never changes what lands on disk, and report throughput
/// plus the two amortization ratios — frames per fsync (the flush
/// cadence) and frames per group commit (the write-syscall batching).
fn bench_journal(frames: usize, seed: u64, calib: f64) -> serde_json::Value {
    let records: Vec<VisitRecord> = (0..frames)
        .map(|i| VisitRecord {
            crawl: CrawlId("perf-journal".to_string()),
            domain: format!("journal-site{i}.example"),
            rank: Some(i as u32 + 1),
            malicious_category: None,
            os: Os::ALL[i % Os::ALL.len()],
            outcome: LoadOutcome::Success,
            loaded_at_ms: 400 + (i as u64 % 700),
            events: vec![
                NetLogEvent {
                    time: 12,
                    event_type: EventType::UrlRequestStartJob,
                    source: SourceRef {
                        id: 1,
                        kind: SourceType::UrlRequest,
                    },
                    phase: EventPhase::Begin,
                    params: EventParams::UrlRequestStart {
                        url: format!("https://journal-site{i}.example/"),
                        method: "GET".to_string(),
                        initiator: None,
                        load_flags: 0,
                    },
                },
                NetLogEvent {
                    time: 90 + (i as u64 % 40),
                    event_type: EventType::FailedRequest,
                    source: SourceRef {
                        id: 1,
                        kind: SourceType::UrlRequest,
                    },
                    phase: EventPhase::None,
                    params: EventParams::Failed { net_error: -102 },
                },
            ],
        })
        .collect();
    let delta = VisitDelta {
        cost_ms: 21_000,
        attempted: 1,
        successful: 1,
        ..VisitDelta::default()
    };
    let dir = std::env::temp_dir().join(format!("kt-perf-journal-{}-{seed}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("journal bench dir");
    let run = |config: JournalConfig, path: &std::path::Path| {
        let writer = JournalWriter::create_with(path, config).expect("bench journal");
        let (_, secs) = time(|| {
            for record in &records {
                writer.append_visit(record, &delta, FLAG_FINAL, false);
            }
            writer.sync();
        });
        (writer.stats(), secs)
    };
    let grouped_path = dir.join("grouped.ktj");
    let unbatched_path = dir.join("unbatched.ktj");
    let (stats, mut grouped_secs) = run(JournalConfig::default(), &grouped_path);
    let (unbatched_stats, mut unbatched_secs) = run(JournalConfig::unbatched(), &unbatched_path);
    assert_eq!(
        std::fs::read(&grouped_path).expect("grouped journal"),
        std::fs::read(&unbatched_path).expect("unbatched journal"),
        "group commit must not change on-disk bytes"
    );
    assert_eq!(stats.visits, frames as u64);
    // Best of three, like every other stage.
    for _ in 0..2 {
        grouped_secs = grouped_secs.min(run(JournalConfig::default(), &grouped_path).1);
        unbatched_secs = unbatched_secs.min(run(JournalConfig::unbatched(), &unbatched_path).1);
    }
    let frames_per_fsync = stats.frames_per_fsync();
    let frames_per_group = stats.frames as f64 / stats.group_commits.max(1) as f64;
    eprintln!(
        "  {frames} frames: grouped {:.0}/s ({:.1} frames/fsync, {:.1} frames/write), \
         unbatched {:.0}/s ({:.1} frames/fsync) — {:.2}x",
        frames as f64 / grouped_secs,
        frames_per_fsync,
        frames_per_group,
        frames as f64 / unbatched_secs,
        unbatched_stats.frames_per_fsync(),
        unbatched_secs / grouped_secs
    );
    let mut grouped = stage_json(frames, grouped_secs, calib);
    if let serde_json::Value::Object(map) = &mut grouped {
        map.insert(
            "frames_per_group_commit".to_string(),
            serde_json::json!(frames_per_group),
        );
    }
    let entry = serde_json::json!({
        "frames": frames,
        "grouped": grouped,
        "unbatched": stage_json(frames, unbatched_secs, calib),
        "speedup": unbatched_secs / grouped_secs,
        "frames_per_fsync": frames_per_fsync,
        "fsyncs": stats.fsyncs,
    });
    std::fs::remove_dir_all(&dir).ok();
    entry
}

/// The active-scan stage: a full dual-stack sweep (TCP + UDP, v4 + v6,
/// loopback + LAN) plus two knock sequences under a seeded 20% fault
/// storm. Reports knocks/sec on the real clock (machine-normalized
/// like every other stage) and asserts the scanner's core guarantee
/// inline: the report at MAX_WORKERS renders byte-identical to the
/// single-worker run.
fn bench_port_scan(seed: u64, calib: f64) -> serde_json::Value {
    use knock_talk::scanner::{run_scan, PortState, ScanConfig};
    use knock_talk::simnet::{HostEnv, SimNet};

    let mut cfg = ScanConfig::new(seed);
    cfg.udp = true;
    cfg.ipv6 = true;
    cfg.sequences = vec![vec![6463, 6464, 6465], vec![80, 443, 8080]];
    cfg.faults = FaultPlan::none(seed)
        .with_rate(Fault::ProbeDrop, 0.2)
        .with_rate(Fault::ProbeDelay, 0.2)
        .with_rate(Fault::ConnectionReset, 0.2);
    let env = HostEnv::sampled(Os::Linux, seed);
    let net = SimNet::new(seed);

    cfg.workers = 1;
    let (serial_report, _) = time(|| run_scan(&env, &net, &cfg));
    cfg.workers = MAX_WORKERS;
    let (report, mut secs) = time(|| run_scan(&env, &net, &cfg));
    assert_eq!(
        report.render(),
        serial_report.render(),
        "scan must be worker-count-invariant"
    );
    // Best of three, like every other stage.
    for _ in 0..2 {
        secs = secs.min(time(|| run_scan(&env, &net, &cfg)).1);
    }
    let knocks = report.knocks() as usize;
    eprintln!(
        "  {} targets, {knocks} knocks in {secs:.3}s ({:.0} knocks/s), \
         open={} filtered={} skipped={} unprobed={}",
        report.targets_total,
        knocks as f64 / secs,
        report.open().count(),
        report.count(PortState::Filtered),
        report.skipped.len(),
        report.unprobed.len()
    );
    serde_json::json!({
        "targets": report.targets_total,
        "open_ports": report.open().count(),
        "breaker_trips": report.breaker_trips,
        "scan": stage_json(knocks, secs, calib),
    })
}

/// The longitudinal snapshot stages. One incremental 12-snapshot
/// ~20%-churn series through the full engine: rolling list, per-step
/// incremental plans (recrawl only changed + newly-listed sites, link
/// the rest by content reference), content-addressed ingest. Reports
/// two stage entries: `snapshot_store` — executed visits/sec through
/// the engine, plus the two economy ratios the floors gate
/// (`full_over_executed`, how much visit work linking saved over a
/// full per-snapshot recrawl; `dedup_ratio`, logical bytes over stored
/// bytes in the chunk store) — and `snapshot_diff`, manifest rows/sec
/// through the shard-parallel streaming diff, asserted byte-identical
/// between 1 and MAX_WORKERS workers inline.
fn bench_snapshot(smoke: bool, seed: u64, calib: f64) -> (serde_json::Value, serde_json::Value) {
    let mut config = SnapshotStudyConfig::bench(seed);
    if smoke {
        // Same series shape (12 snapshots, 20% churn) so the gated
        // ratios are comparable; fewer sites per snapshot.
        config.series.size = 120;
    }
    let (study, run_secs) = time(|| SnapshotStudy::run(config.clone()).expect("snapshot study"));
    let work = study.work;
    assert!(work.executed_visits > 0, "snapshot series must do work");
    let full_over_executed = work.full_visits as f64 / work.executed_visits as f64;
    let dedup_ratio = study.snapshots.dedup_ratio();

    let serial = study.diff(1, None).render();
    let (diff, mut diff_secs) = time(|| study.diff(MAX_WORKERS, None));
    assert_eq!(
        diff.render(),
        serial,
        "snapshot diff must be worker-count-invariant"
    );
    // Best of three, like every other stage.
    for _ in 0..2 {
        diff_secs = diff_secs.min(time(|| study.diff(MAX_WORKERS, None)).1);
    }

    eprintln!(
        "  {} snapshots x {} sites: {} visits in {run_secs:.2}s ({:.0}/s) — \
         {:.2}x fewer than full recrawl, {:.2}x dedup ({} chunks, {} linked rows)",
        config.series.snapshots,
        config.series.size,
        work.executed_visits,
        work.executed_visits as f64 / run_secs,
        full_over_executed,
        dedup_ratio,
        study.snapshots.chunk_count(),
        work.linked_rows,
    );
    eprintln!(
        "  diff: {} manifest rows in {diff_secs:.3}s ({:.0}/s), worker-count-invariant",
        diff.rows_walked,
        diff.rows_walked as f64 / diff_secs
    );

    let mut store_entry = stage_json(work.executed_visits as usize, run_secs, calib);
    if let serde_json::Value::Object(map) = &mut store_entry {
        map.insert(
            "snapshots".to_string(),
            serde_json::json!(config.series.snapshots),
        );
        map.insert("sites".to_string(), serde_json::json!(config.series.size));
        map.insert(
            "full_visits".to_string(),
            serde_json::json!(work.full_visits),
        );
        map.insert(
            "linked_rows".to_string(),
            serde_json::json!(work.linked_rows),
        );
        map.insert(
            "chunks".to_string(),
            serde_json::json!(study.snapshots.chunk_count()),
        );
        map.insert(
            "stored_bytes".to_string(),
            serde_json::json!(study.snapshots.stored_bytes()),
        );
        map.insert(
            "logical_bytes".to_string(),
            serde_json::json!(study.snapshots.logical_bytes()),
        );
        map.insert(
            "full_over_executed".to_string(),
            serde_json::json!(full_over_executed),
        );
        map.insert("dedup_ratio".to_string(), serde_json::json!(dedup_ratio));
    }
    let mut diff_entry = stage_json(diff.rows_walked as usize, diff_secs, calib);
    if let serde_json::Value::Object(map) = &mut diff_entry {
        map.insert(
            "snapshots".to_string(),
            serde_json::json!(diff.labels.len()),
        );
    }
    (store_entry, diff_entry)
}

/// Pretty-print a JSON value (the vendored serde_json shim only
/// renders compactly). Scalar-only arrays stay inline so the checked-in
/// baseline's eps curves read as one line each.
fn pretty(value: &serde_json::Value, indent: usize, out: &mut String) {
    use serde_json::Value;
    let pad = "  ".repeat(indent);
    match value {
        Value::Array(items) if !items.is_empty() => {
            let scalars = items
                .iter()
                .all(|v| !matches!(v, Value::Array(_) | Value::Object(_)));
            if scalars {
                out.push_str(&value.to_string());
            } else {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    pretty(item, indent + 1, out);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            let n = map.len();
            for (i, (key, item)) in map.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                out.push_str(&serde_json::Value::String(key.clone()).to_string());
                out.push_str(": ");
                pretty(item, indent + 1, out);
                out.push_str(if i + 1 < n { ",\n" } else { "\n" });
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

/// `--check-prom`: validate a Prometheus text exposition file (as
/// written by `knocktalk --metrics-out`) and require the named series.
/// Runs no benchmarks; exit 1 on any format violation or missing
/// series.
fn check_prom(path: &str, require: &[String]) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("perf: reading {path}: {e}");
            std::process::exit(2);
        }
    };
    let required: Vec<&str> = require.iter().map(String::as_str).collect();
    match kt_bench::prom::check(&text, &required) {
        Ok(report) => {
            eprintln!(
                "check-prom: {path} OK — {} families, {} series, {} samples{}",
                report.families,
                report.series,
                report.samples,
                if required.is_empty() {
                    String::new()
                } else {
                    format!("; required present: {}", required.join(", "))
                }
            );
            std::process::exit(0);
        }
        Err(errors) => {
            eprintln!("check-prom: {path} FAILED — {} problem(s):", errors.len());
            for e in &errors {
                eprintln!("  {e}");
            }
            std::process::exit(1);
        }
    }
}

/// The measurement-bias sweep: one crawl per crawler profile over the
/// sensor-planted population, each through the standard analysis. The
/// element count is total visits (profiles × sites), so the relative
/// throughput regresses if either the sensor gating in the browser or
/// the bias accounting gets slower.
fn bench_bias(seed: u64, calib: f64) -> serde_json::Value {
    use knock_talk::analysis::{run_bias_sweep, BiasConfig};
    let cfg = BiasConfig {
        seed,
        workers: MAX_WORKERS,
    };
    let (report, secs) = time(|| run_bias_sweep(&cfg));
    let visits = report.population_sites as usize * report.rows.len();
    let ratio = |row: Option<&knock_talk::analysis::ProfileBias>| {
        row.map(|r| r.observed_ratio()).unwrap_or(0.0)
    };
    eprintln!(
        "  {} profiles x {} sites in {:.2}s ({:.0} visits/s); \
         observed ratio {:.3} (naive) -> {:.3} (human-replay)",
        report.rows.len(),
        report.population_sites,
        secs,
        visits as f64 / secs,
        ratio(report.rows.first()),
        ratio(report.rows.last()),
    );
    let mut stage = stage_json(visits, secs, calib);
    if let serde_json::Value::Object(map) = &mut stage {
        map.insert("profiles".to_string(), serde_json::json!(report.rows.len()));
        map.insert(
            "naive_observed_ratio".to_string(),
            serde_json::json!(ratio(report.rows.first())),
        );
        map.insert(
            "suppressed_naive".to_string(),
            serde_json::json!(report.rows.first().map(|r| r.suppressed).unwrap_or(0)),
        );
    }
    stage
}

fn main() {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("perf: {e}");
            std::process::exit(2);
        }
    };
    if let Some(path) = &opts.check_prom {
        check_prom(path, &opts.require);
    }
    let plan = FaultPlan::none(opts.seed).with_rate(Fault::ConnectionReset, FAULT_RATE);
    // The scaling sweep runs past the population-shaping MAX_WORKERS
    // into many-core territory: 16 and 32 workers verify the stealing
    // scheduler keeps scaling where static chunking flattens out.
    let (population_sizes, scaling_n, worker_counts, bulk_n, journal_frames): (
        Vec<usize>,
        usize,
        Vec<usize>,
        usize,
        usize,
    ) = if opts.smoke {
        (vec![64], 64, vec![1, MAX_WORKERS, 16, 32], 640, 4_000)
    } else {
        (
            vec![64, 160, 320],
            256,
            vec![1, 2, 4, MAX_WORKERS, 16, 32],
            3_200,
            20_000,
        )
    };

    // The top-level phases run under the kt-trace stage profiler so the
    // bench binary prints the same stage/alloc breakdown `knocktalk
    // profile` does; the JSON schema below is unchanged.
    let mut profiler = StageProfiler::new();

    eprintln!("calibrating...");
    let calib = profiler.run("calibrate", || calibrate(opts.seed));
    eprintln!("calibration crawl: {calib:.3}s");

    eprintln!("population sweep:");
    let populations: Vec<serde_json::Value> = population_sizes
        .iter()
        .map(|&n| {
            let entry = profiler.run(&format!("population:{n}"), || {
                bench_population(n, opts.seed, &plan, calib)
            });
            profiler.annotate_elements(n as u64);
            entry
        })
        .collect();

    eprintln!("worker scaling at n={scaling_n}:");
    let scaling = profiler.run("scaling", || {
        bench_scaling(scaling_n, &worker_counts, opts.seed, &plan)
    });
    profiler.annotate_elements(scaling_n as u64);

    // Same fleet shape in smoke and full mode: the run is cheap (the
    // fleet is light sites on the simulated clock) and keeping the
    // shape fixed makes the p99 completion check compare
    // like-for-like — it is deterministic at a given seed.
    let (svc_campaigns, svc_sites) = (24, 16);
    eprintln!("service fleet ({svc_campaigns} campaigns x {svc_sites} sites):");
    let service = profiler.run("service", || {
        bench_service(svc_campaigns, svc_sites, opts.seed, &plan, calib)
    });
    profiler.annotate_elements((svc_campaigns * svc_sites) as u64);

    eprintln!("flat-memory bulk store (n={bulk_n}, mmap spill):");
    let flat_memory = profiler.run("flat_memory", || {
        bench_flat_memory(bulk_n, opts.seed, calib)
    });
    profiler.annotate_elements(bulk_n as u64);

    eprintln!("journal group commit ({journal_frames} frames):");
    let journal = profiler.run("journal", || {
        bench_journal(journal_frames, opts.seed, calib)
    });
    profiler.annotate_elements(journal_frames as u64);

    eprintln!("active port scan (dual-stack sweep + sequences, 20% faults):");
    let port_scan = profiler.run("port_scan", || bench_port_scan(opts.seed, calib));
    profiler.annotate_elements(port_scan["targets"].as_u64().unwrap_or(0));

    eprintln!("longitudinal snapshot engine (12-snapshot incremental series):");
    let (snapshot_store, snapshot_diff) =
        profiler.run("snapshot", || bench_snapshot(opts.smoke, opts.seed, calib));
    profiler.annotate_elements(snapshot_store["elements"].as_u64().unwrap_or(0));

    eprintln!("measurement-bias sweep (one crawl per crawler profile):");
    let bias_sweep = profiler.run("bias_sweep", || bench_bias(opts.seed, calib));
    profiler.annotate_elements(bias_sweep["elements"].as_u64().unwrap_or(0));
    eprintln!("stage breakdown:\n{}", profiler.render_table());

    let report = serde_json::json!({
        "schema": 2,
        "mode": if opts.smoke { "smoke" } else { "full" },
        "seed": opts.seed,
        "calibration_secs": calib,
        "populations": populations,
        "scaling": scaling,
        "service": service,
        "flat_memory": flat_memory,
        "journal": journal,
        "port_scan": port_scan,
        "snapshot_store": snapshot_store,
        "snapshot_diff": snapshot_diff,
        "bias_sweep": bias_sweep,
    });

    if let Some(baseline_path) = &opts.check {
        let text = match std::fs::read_to_string(baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("perf: reading baseline {baseline_path}: {e}");
                std::process::exit(2);
            }
        };
        let baseline: serde_json::Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("perf: parsing baseline {baseline_path}: {e}");
                std::process::exit(2);
            }
        };
        match kt_bench::checks::check_regressions(&report, &baseline) {
            Ok(failures) if failures.is_empty() => {
                eprintln!("check: no stage regressed more than 2x vs {baseline_path}");
            }
            Ok(failures) => {
                eprintln!("check: FAILED — stages regressed more than 2x:");
                for failure in &failures {
                    eprintln!("  {failure}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("perf: {e}");
                std::process::exit(2);
            }
        }
    }

    if let Some(ceiling) = opts.alloc_ceiling {
        let worst = report["populations"]
            .as_array()
            .into_iter()
            .flatten()
            .filter_map(|p| p["stages"]["decode_detect_view"]["allocs_per_event"].as_f64())
            .fold(0.0f64, f64::max);
        if worst > ceiling {
            eprintln!(
                "check: FAILED — decode_detect_view allocated {worst:.3}/event, \
                 ceiling is {ceiling}"
            );
            std::process::exit(1);
        }
        eprintln!("check: decode_detect_view allocs/event {worst:.3} within ceiling {ceiling}");
    }

    if let Some(floor) = opts.eps_floor {
        // Machine-normalized (relative) decode throughput, worst
        // population: raw eps would gate on CI host speed instead.
        let worst = report["populations"]
            .as_array()
            .into_iter()
            .flatten()
            .filter_map(|p| p["stages"]["decode_detect_view"]["relative"].as_f64())
            .fold(f64::MAX, f64::min);
        if worst < floor {
            eprintln!(
                "check: FAILED — decode_detect_view relative eps {worst:.2} under floor {floor}"
            );
            std::process::exit(1);
        }
        eprintln!("check: decode_detect_view relative eps {worst:.2} above floor {floor}");
    }

    if let Some(ceiling) = opts.mem_ceiling {
        let ratio = report["flat_memory"]["heap_over_store_ratio"]
            .as_f64()
            .unwrap_or(f64::MAX);
        if ratio > ceiling {
            eprintln!(
                "check: FAILED — flat-memory scan used {ratio:.4} of the store's bytes as \
                 heap, ceiling is {ceiling}"
            );
            std::process::exit(1);
        }
        eprintln!("check: flat-memory heap/store ratio {ratio:.4} within ceiling {ceiling}");
    }

    if let Some(floor) = opts.dedup_floor {
        let ratio = report["snapshot_store"]["dedup_ratio"]
            .as_f64()
            .unwrap_or(0.0);
        if ratio < floor {
            eprintln!(
                "check: FAILED — snapshot store deduplicated {ratio:.2}x \
                 (logical/stored bytes), floor is {floor}"
            );
            std::process::exit(1);
        }
        eprintln!("check: snapshot dedup ratio {ratio:.2}x above floor {floor}");
    }

    if let Some(floor) = opts.incremental_floor {
        let ratio = report["snapshot_store"]["full_over_executed"]
            .as_f64()
            .unwrap_or(0.0);
        if ratio < floor {
            eprintln!(
                "check: FAILED — incremental recrawl saved only {ratio:.2}x \
                 (full/executed visits), floor is {floor}"
            );
            std::process::exit(1);
        }
        eprintln!("check: incremental visit savings {ratio:.2}x above floor {floor}");
    }

    if let Some(floor) = opts.fsync_floor {
        let fpf = report["journal"]["frames_per_fsync"]
            .as_f64()
            .unwrap_or(0.0);
        if fpf < floor {
            eprintln!("check: FAILED — journal wrote {fpf:.1} frames/fsync, floor is {floor}");
            std::process::exit(1);
        }
        eprintln!("check: journal frames/fsync {fpf:.1} above floor {floor}");
    }

    let out = if opts.check.is_some() && opts.out == "BENCH_pipeline.json" {
        // Don't clobber the checked-in baseline from a check run.
        "BENCH_pipeline.current.json".to_string()
    } else {
        opts.out
    };
    let mut rendered = String::new();
    pretty(&report, 0, &mut rendered);
    rendered.push('\n');
    std::fs::write(&out, rendered).expect("write bench report");
    let speedup = report["scaling"]["stealing_vs_chunked_at_max_workers"]
        .as_f64()
        .unwrap_or(0.0);
    let top_workers = worker_counts.last().copied().unwrap_or(MAX_WORKERS);
    println!("wrote {out}; stealing vs chunked at {top_workers} workers: {speedup:.2}x");
}
