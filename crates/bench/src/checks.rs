//! The `--check` regression comparator for the perf binary.
//!
//! Kept in the library (rather than the binary) so the
//! missing-stage-fails contract is unit-tested: `--check` must fail
//! not only when a stage got slower, but when a stage the baseline
//! measured is absent from the current run — a silently dropped stage
//! would otherwise pass forever.

/// Compare each stage's machine-normalized throughput against the
/// baseline file; collect every stage that regressed more than 2×.
pub fn check_regressions(
    current: &serde_json::Value,
    baseline: &serde_json::Value,
) -> Result<Vec<String>, String> {
    let rel = |entry: &serde_json::Value, stage: &str| -> Option<f64> {
        entry.get("stages")?.get(stage)?.get("relative")?.as_f64()
    };
    let baseline_pops = baseline
        .get("populations")
        .and_then(|p| p.as_array())
        .ok_or("baseline has no populations array")?;
    let current_pops = current
        .get("populations")
        .and_then(|p| p.as_array())
        .ok_or("current run has no populations array")?;
    let mut failures = Vec::new();
    for cur in current_pops {
        let sites = cur.get("sites").and_then(|s| s.as_u64());
        let Some(base) = baseline_pops
            .iter()
            .find(|b| b.get("sites").and_then(|s| s.as_u64()) == sites)
        else {
            continue; // no baseline at this size — nothing to compare
        };
        for stage in [
            "crawl",
            "scan",
            "analyze",
            "decode_detect_owned",
            "decode_detect_view",
        ] {
            // A stage the baseline measured but the current run did not
            // produce is a hard failure: a silently dropped stage would
            // otherwise pass `--check` forever (a baseline without the
            // stage is fine — it predates the stage).
            match (rel(base, stage), rel(cur, stage)) {
                (Some(b), Some(c)) => {
                    if c <= 0.0 || b / c > 2.0 {
                        failures.push(format!(
                            "{stage} @ {} sites: relative {b:.2} -> {c:.2} ({:.2}x slower)",
                            sites.unwrap_or(0),
                            b / c.max(1e-9)
                        ));
                    }
                }
                (Some(_), None) => failures.push(format!(
                    "{stage} @ {} sites: in baseline but missing from current run",
                    sites.unwrap_or(0)
                )),
                (None, _) => {}
            }
        }
    }
    // Service mode: machine-normalized events/sec regresses like any
    // other stage; the p99 completion tail is on the simulated clock,
    // so a >2x change means the scheduler itself got less fair, not
    // that the host was busy. Skip silently against pre-service
    // baselines.
    let field = |entry: &serde_json::Value, key: &str| -> Option<f64> {
        entry.get("service")?.get(key)?.as_f64()
    };
    match (field(baseline, "relative"), field(current, "relative")) {
        (Some(b), Some(c)) => {
            if c <= 0.0 || b / c > 2.0 {
                failures.push(format!(
                    "service events/sec: relative {b:.2} -> {c:.2} ({:.2}x slower)",
                    b / c.max(1e-9)
                ));
            }
        }
        (Some(_), None) => {
            failures.push("service stage: in baseline but missing from current run".to_string());
        }
        (None, _) => {}
    }
    if let (Some(b), Some(c)) = (
        field(baseline, "p99_completion_ms"),
        field(current, "p99_completion_ms"),
    ) {
        if b > 0.0 && c / b > 2.0 {
            failures.push(format!(
                "service p99 campaign completion: {b:.0}ms -> {c:.0}ms ({:.2}x slower, simulated)",
                c / b
            ));
        }
    }
    // Raw-speed-floor stages: the mmap'd-store scan and the grouped
    // journal writer regress on their machine-normalized throughput
    // like any other stage. Skip silently against older baselines.
    let path = |entry: &serde_json::Value, keys: &[&str]| -> Option<f64> {
        let mut v = entry;
        for key in keys {
            v = v.get(key)?;
        }
        v.as_f64()
    };
    let top_level: [(&str, &[&str]); 6] = [
        ("flat-memory scan", &["flat_memory", "scan", "relative"]),
        ("journal grouped", &["journal", "grouped", "relative"]),
        ("port scan", &["port_scan", "scan", "relative"]),
        ("snapshot store", &["snapshot_store", "relative"]),
        ("snapshot diff", &["snapshot_diff", "relative"]),
        ("bias sweep", &["bias_sweep", "relative"]),
    ];
    for (label, keys) in top_level {
        match (path(baseline, keys), path(current, keys)) {
            (Some(b), Some(c)) => {
                if c <= 0.0 || b / c > 2.0 {
                    failures.push(format!(
                        "{label}: relative {b:.2} -> {c:.2} ({:.2}x slower)",
                        b / c.max(1e-9)
                    ));
                }
            }
            (Some(_), None) => {
                failures.push(format!("{label}: in baseline but missing from current run"))
            }
            (None, _) => {}
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::check_regressions;

    /// A minimal report with every stage family present.
    fn report(relative: f64) -> serde_json::Value {
        serde_json::json!({
            "populations": [{
                "sites": 64,
                "stages": {
                    "crawl": { "relative": relative },
                    "scan": { "relative": relative },
                    "analyze": { "relative": relative },
                    "decode_detect_owned": { "relative": relative },
                    "decode_detect_view": { "relative": relative },
                },
            }],
            "service": { "relative": relative, "p99_completion_ms": 1000.0 },
            "flat_memory": { "scan": { "relative": relative } },
            "journal": { "grouped": { "relative": relative } },
            "port_scan": { "scan": { "relative": relative } },
            "snapshot_store": { "relative": relative },
            "snapshot_diff": { "relative": relative },
            "bias_sweep": { "relative": relative },
        })
    }

    #[test]
    fn identical_runs_pass() {
        let failures = check_regressions(&report(100.0), &report(100.0)).expect("comparable");
        assert!(failures.is_empty(), "unexpected failures: {failures:?}");
    }

    #[test]
    fn regressions_over_2x_fail() {
        let failures = check_regressions(&report(40.0), &report(100.0)).expect("comparable");
        assert!(!failures.is_empty());
        assert!(failures.iter().any(|f| f.contains("crawl @ 64 sites")));
        assert!(failures.iter().any(|f| f.contains("snapshot store")));
    }

    #[test]
    fn stage_missing_from_current_run_fails() {
        let baseline = report(100.0);
        let mut current = report(100.0);
        // Drop one population stage and one top-level stage from the
        // current run; the baseline still measures both.
        if let serde_json::Value::Object(map) = &mut current {
            map.remove("snapshot_diff");
            if let Some(serde_json::Value::Array(pops)) = map.get_mut("populations") {
                if let Some(serde_json::Value::Object(pop)) = pops.get_mut(0) {
                    if let Some(serde_json::Value::Object(stages)) = pop.get_mut("stages") {
                        stages.remove("analyze");
                    }
                }
            }
        }
        let failures = check_regressions(&current, &baseline).expect("comparable");
        assert!(
            failures
                .iter()
                .any(|f| f.contains("analyze @ 64 sites") && f.contains("missing")),
            "population stage loss must fail: {failures:?}"
        );
        assert!(
            failures
                .iter()
                .any(|f| f.contains("snapshot diff") && f.contains("missing")),
            "top-level stage loss must fail: {failures:?}"
        );
    }

    #[test]
    fn stage_missing_from_baseline_is_skipped() {
        // An old baseline that predates a stage compares clean: only
        // the current run losing a stage is an error.
        let mut baseline = report(100.0);
        if let serde_json::Value::Object(map) = &mut baseline {
            map.remove("snapshot_store");
            map.remove("snapshot_diff");
            map.remove("port_scan");
        }
        let failures = check_regressions(&report(100.0), &baseline).expect("comparable");
        assert!(failures.is_empty(), "unexpected failures: {failures:?}");
    }
}
