//! One Criterion target per figure of the paper (F2–F9).

use criterion::{criterion_group, criterion_main, Criterion};
use kt_bench::bench_study;
use std::hint::black_box;

fn bench_figure(c: &mut Criterion, id: &'static str, name: &str) {
    let study = bench_study();
    c.bench_function(name, |b| {
        b.iter(|| {
            let text = study.experiment(black_box(id)).expect("known id");
            black_box(text.len())
        })
    });
}

fn bench_f2_os_venn(c: &mut Criterion) {
    bench_figure(c, "F2", "bench_f2_os_venn");
}

fn bench_f3_rank_cdf_2020(c: &mut Criterion) {
    bench_figure(c, "F3", "bench_f3_rank_cdf_2020");
}

fn bench_f4_port_rings(c: &mut Criterion) {
    bench_figure(c, "F4", "bench_f4_port_rings");
}

fn bench_f5_timing_2020(c: &mut Criterion) {
    bench_figure(c, "F5", "bench_f5_timing_2020");
}

fn bench_f6_timing_2021(c: &mut Criterion) {
    bench_figure(c, "F6", "bench_f6_timing_2021");
}

fn bench_f7_timing_malicious(c: &mut Criterion) {
    bench_figure(c, "F7", "bench_f7_timing_malicious");
}

fn bench_f8_port_rings_2021(c: &mut Criterion) {
    bench_figure(c, "F8", "bench_f8_port_rings_2021");
}

fn bench_f9_rank_cdf_2021(c: &mut Criterion) {
    bench_figure(c, "F9", "bench_f9_rank_cdf_2021");
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        bench_f2_os_venn,
        bench_f3_rank_cdf_2020,
        bench_f4_port_rings,
        bench_f5_timing_2020,
        bench_f6_timing_2021,
        bench_f7_timing_malicious,
        bench_f8_port_rings_2021,
        bench_f9_rank_cdf_2021
);
criterion_main!(figures);
