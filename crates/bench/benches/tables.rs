//! One Criterion target per table of the paper (T1–T11): each bench
//! regenerates the artefact from stored telemetry, so the numbers
//! measure the analysis path a real deployment would run repeatedly.

use criterion::{criterion_group, criterion_main, Criterion};
use kt_bench::bench_study;
use std::hint::black_box;

fn bench_table(c: &mut Criterion, id: &'static str, name: &str) {
    let study = bench_study();
    c.bench_function(name, |b| {
        b.iter(|| {
            let text = study.experiment(black_box(id)).expect("known id");
            black_box(text.len())
        })
    });
}

fn bench_t1_crawl_stats(c: &mut Criterion) {
    bench_table(c, "T1", "bench_t1_crawl_stats");
}

fn bench_t2_malicious_summary(c: &mut Criterion) {
    bench_table(c, "T2", "bench_t2_malicious_summary");
}

fn bench_t3_top_domains(c: &mut Criterion) {
    bench_table(c, "T3", "bench_t3_top_domains");
}

fn bench_t4_port_registry(c: &mut Criterion) {
    bench_table(c, "T4", "bench_t4_port_registry");
}

fn bench_t5_localhost_2020(c: &mut Criterion) {
    bench_table(c, "T5", "bench_t5_localhost_2020");
}

fn bench_t6_lan_2020(c: &mut Criterion) {
    bench_table(c, "T6", "bench_t6_lan_2020");
}

fn bench_t7_localhost_2021(c: &mut Criterion) {
    bench_table(c, "T7", "bench_t7_localhost_2021");
}

fn bench_t8_malicious_localhost(c: &mut Criterion) {
    bench_table(c, "T8", "bench_t8_malicious_localhost");
}

fn bench_t9_malicious_lan(c: &mut Criterion) {
    bench_table(c, "T9", "bench_t9_malicious_lan");
}

fn bench_t10_lan_2021(c: &mut Criterion) {
    bench_table(c, "T10", "bench_t10_lan_2021");
}

fn bench_t11_dev_errors(c: &mut Criterion) {
    bench_table(c, "T11", "bench_t11_dev_errors");
}

criterion_group!(
    name = tables;
    config = Criterion::default().sample_size(10);
    targets =
        bench_t1_crawl_stats,
        bench_t2_malicious_summary,
        bench_t3_top_domains,
        bench_t4_port_registry,
        bench_t5_localhost_2020,
        bench_t6_lan_2020,
        bench_t7_localhost_2021,
        bench_t8_malicious_localhost,
        bench_t9_malicious_lan,
        bench_t10_lan_2021,
        bench_t11_dev_errors
);
criterion_main!(tables);
