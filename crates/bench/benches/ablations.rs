//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. source-ID flow grouping vs a flat event scan in detection;
//! 2. indexed store lookups vs a full segment scan;
//! 3. parallel (crossbeam) vs serial crawling;
//! 4. SOP-aware request-side accounting vs response-only accounting.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use knock_talk::analysis::detect::detect_local;
use knock_talk::crawler::{run_crawl, CrawlConfig, CrawlJob};
use knock_talk::netbase::{DomainName, Os, OsSet, Url};
use knock_talk::netlog::{FlowOutcome, FlowSet};
use knock_talk::store::{CrawlId, TelemetryStore, VisitRecord};
use knock_talk::webgen::{Behavior, NativeApp, PlantedBehavior, WebSite};
use std::hint::black_box;

fn population(n: usize) -> Vec<WebSite> {
    (0..n)
        .map(|i| {
            let mut site = WebSite::plain(
                DomainName::parse(&format!("abl{i}.example")).unwrap(),
                Some(i as u32 + 1),
                5,
            );
            if i % 5 == 0 {
                site.behaviors.push(PlantedBehavior {
                    behavior: Behavior::NativeApp(NativeApp::Discord),
                    os_set: OsSet::ALL,
                    base_delay_ms: 1_500,
                });
            }
            site
        })
        .collect()
}

fn crawled_store(sites: &[WebSite], workers: usize) -> TelemetryStore {
    let jobs: Vec<CrawlJob> = sites
        .iter()
        .map(|site| CrawlJob {
            site,
            malicious_category: None,
        })
        .collect();
    let store = TelemetryStore::new();
    let mut config = CrawlConfig::paper(CrawlId::top2020(), Os::Linux, 1);
    config.workers = workers;
    run_crawl(&jobs, &config, &store);
    store
}

/// Ablation 1: detection via flow grouping (the paper's method, which
/// can filter by source and see redirects) vs a naive flat scan over
/// URL-bearing events.
fn ablation_flow_grouping(c: &mut Criterion) {
    let sites = population(64);
    let store = crawled_store(&sites, 4);
    let records = store.crawl_records(&CrawlId::top2020());
    let mut group = c.benchmark_group("ablation_detection");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("flow_grouped", |b| {
        b.iter(|| {
            let n: usize = records.iter().map(|r| detect_local(r).len()).sum();
            black_box(n)
        })
    });
    group.bench_function("flat_event_scan", |b| {
        b.iter(|| {
            // The naive alternative: scan events for URLs without
            // grouping. Cannot filter browser sources by flow or pair
            // redirects with initiators — kept for cost comparison.
            let mut n = 0usize;
            for record in &records {
                for ev in &record.events {
                    if let Some(u) = ev.url() {
                        if Url::parse(u).map(|u| u.is_local()).unwrap_or(false) {
                            n += 1;
                        }
                    }
                }
            }
            black_box(n)
        })
    });
    group.finish();
}

/// Ablation 2: indexed point lookups vs full store scans.
fn ablation_store_index(c: &mut Criterion) {
    let sites = population(256);
    let store = crawled_store(&sites, 4);
    let domains: Vec<String> = sites
        .iter()
        .map(|s| s.domain.as_str().to_string())
        .collect();
    let mut group = c.benchmark_group("ablation_store");
    group.bench_function("indexed_lookup_64", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for d in domains.iter().take(64) {
                if store.get(&CrawlId::top2020(), d, Os::Linux).is_some() {
                    found += 1;
                }
            }
            black_box(found)
        })
    });
    group.bench_function("full_scan_filter_64", |b| {
        b.iter(|| {
            let all = store.scan_all().unwrap();
            let mut found = 0usize;
            for d in domains.iter().take(64) {
                if all.iter().any(|r: &VisitRecord| &r.domain == d) {
                    found += 1;
                }
            }
            black_box(found)
        })
    });
    group.finish();
}

/// Ablation 3: crawl worker-pool scaling.
fn ablation_parallel_crawl(c: &mut Criterion) {
    let sites = population(128);
    let mut group = c.benchmark_group("ablation_crawl_workers");
    group.throughput(Throughput::Elements(sites.len() as u64));
    for workers in [1usize, 4, 8] {
        group.bench_function(format!("workers_{workers}"), |b| {
            b.iter(|| {
                let store = crawled_store(&sites, workers);
                black_box(store.len())
            })
        });
    }
    group.finish();
}

/// Ablation 4: request-side accounting (what the paper does — a probe
/// counts even when the response is opaque or absent) vs counting only
/// flows that produced a readable response. The latter misses most
/// anti-abuse scans, which is the *correctness* half of the ablation;
/// the bench records the cost of each.
fn ablation_sop_accounting(c: &mut Criterion) {
    let mut site = WebSite::plain(DomainName::parse("shop.example").unwrap(), Some(104), 5);
    site.behaviors.push(PlantedBehavior {
        behavior: Behavior::ThreatMetrix {
            vendor: DomainName::parse("shop-metrics.example").unwrap(),
        },
        os_set: OsSet::WINDOWS_ONLY,
        base_delay_ms: 9_000,
    });
    let store = {
        let jobs = [CrawlJob {
            site: &site,
            malicious_category: None,
        }];
        let store = TelemetryStore::new();
        run_crawl(
            &jobs,
            &CrawlConfig::paper(CrawlId::top2020(), Os::Windows, 1),
            &store,
        );
        store
    };
    let record = store
        .get(&CrawlId::top2020(), "shop.example", Os::Windows)
        .unwrap();
    let mut group = c.benchmark_group("ablation_sop");
    group.bench_function("request_side_accounting", |b| {
        b.iter(|| black_box(detect_local(black_box(&record)).len()))
    });
    group.bench_function("response_only_accounting", |b| {
        b.iter(|| {
            let flows = FlowSet::from_events(record.events.iter().cloned());
            let n = flows
                .page_flows()
                .filter(|f| matches!(f.outcome(), FlowOutcome::Success(_)))
                .filter(|f| {
                    f.url()
                        .and_then(|u| Url::parse(u).ok())
                        .map(|u| u.is_local())
                        .unwrap_or(false)
                })
                .count();
            black_box(n)
        })
    });
    group.finish();
    // Correctness side of the ablation, asserted once outside timing:
    let request_side = detect_local(&record).len();
    let flows = FlowSet::from_events(record.events.iter().cloned());
    let response_only = flows
        .page_flows()
        .filter(|f| matches!(f.outcome(), FlowOutcome::Success(_)))
        .filter(|f| {
            f.url()
                .and_then(|u| Url::parse(u).ok())
                .map(|u| u.is_local())
                .unwrap_or(false)
        })
        .count();
    assert!(
        request_side > response_only,
        "request-side sees probes ({request_side}) the response-only view misses ({response_only})"
    );
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets =
        ablation_flow_grouping,
        ablation_store_index,
        ablation_parallel_crawl,
        ablation_sop_accounting
);
criterion_main!(ablations);
