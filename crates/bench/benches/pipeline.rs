//! Pipeline throughput benchmarks: the stages a real crawl pays for —
//! page visits, NetLog JSON parsing, binary codec, detection.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use knock_talk::analysis::detect::detect_local;
use knock_talk::browser::{Browser, BrowserConfig, World};
use knock_talk::crawler::{run_crawl, CrawlConfig, CrawlJob};
use knock_talk::netbase::{DomainName, Os, OsSet};
use knock_talk::netlog::Capture;
use knock_talk::store::{codec, CrawlId, LoadOutcome, TelemetryStore, VisitRecord};
use knock_talk::webgen::{Behavior, NativeApp, PlantedBehavior, WebSite};
use std::hint::black_box;

fn behaviour_site(i: usize) -> WebSite {
    let mut site = WebSite::plain(
        DomainName::parse(&format!("bench{i}.example")).unwrap(),
        Some(i as u32 + 1),
        6,
    );
    if i.is_multiple_of(4) {
        site.behaviors.push(PlantedBehavior {
            behavior: Behavior::NativeApp(NativeApp::Discord),
            os_set: OsSet::ALL,
            base_delay_ms: 2_000,
        });
    }
    site
}

fn bench_page_visits(c: &mut Criterion) {
    let sites: Vec<WebSite> = (0..64).map(behaviour_site).collect();
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(sites.len() as u64));
    group.bench_function("page_visits_64", |b| {
        b.iter(|| {
            let mut world = World::build(&sites, Os::Linux, 1);
            let mut browser = Browser::new(&mut world, BrowserConfig::paper(Os::Linux), 1);
            let mut events = 0usize;
            for site in &sites {
                events += browser.visit(site).capture.len();
            }
            black_box(events)
        })
    });
    group.finish();
}

fn bench_crawl_pool(c: &mut Criterion) {
    let sites: Vec<WebSite> = (0..128).map(behaviour_site).collect();
    let jobs: Vec<CrawlJob> = sites
        .iter()
        .map(|site| CrawlJob {
            site,
            malicious_category: None,
        })
        .collect();
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(jobs.len() as u64));
    group.bench_function("crawl_pool_128_sites", |b| {
        b.iter(|| {
            let store = TelemetryStore::new();
            let config = CrawlConfig::paper(CrawlId::top2020(), Os::Windows, 1);
            let stats = run_crawl(&jobs, &config, &store);
            black_box(stats.attempted)
        })
    });
    group.finish();
}

fn capture_fixture() -> (String, VisitRecord) {
    let site = behaviour_site(0);
    let mut world = World::build(std::slice::from_ref(&site), Os::Linux, 1);
    let mut browser = Browser::new(&mut world, BrowserConfig::paper(Os::Linux), 1);
    let result = browser.visit(&site);
    let record = VisitRecord {
        crawl: CrawlId::top2020(),
        domain: result.domain.clone(),
        rank: Some(1),
        malicious_category: None,
        os: Os::Linux,
        outcome: LoadOutcome::Success,
        loaded_at_ms: 300,
        events: result.capture.events.clone(),
    };
    (result.capture.to_json(), record)
}

fn bench_netlog_json_parse(c: &mut Criterion) {
    let (json, _) = capture_fixture();
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Bytes(json.len() as u64));
    group.bench_function("netlog_json_parse", |b| {
        b.iter(|| {
            let capture = Capture::parse(black_box(&json)).unwrap();
            black_box(capture.len())
        })
    });
    group.finish();
}

fn bench_binary_codec(c: &mut Criterion) {
    let (_, record) = capture_fixture();
    let encoded = codec::encode(&record);
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("record_encode", |b| {
        b.iter(|| black_box(codec::encode(black_box(&record)).len()))
    });
    group.bench_function("record_decode", |b| {
        b.iter(|| {
            let rec = codec::decode(black_box(encoded.clone())).unwrap();
            black_box(rec.events.len())
        })
    });
    group.finish();
}

fn bench_detection(c: &mut Criterion) {
    let (_, record) = capture_fixture();
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(record.events.len() as u64));
    group.bench_function("detect_local_per_record", |b| {
        b.iter(|| black_box(detect_local(black_box(&record)).len()))
    });
    group.finish();
}

criterion_group!(
    name = pipeline;
    config = Criterion::default().sample_size(10);
    targets =
        bench_page_visits,
        bench_crawl_pool,
        bench_netlog_json_parse,
        bench_binary_codec,
        bench_detection
);
criterion_main!(pipeline);
