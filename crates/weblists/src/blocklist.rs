//! Malicious-URL blocklists shaped like the paper's sources.
//!
//! Table 2 gives the ground truth this module reproduces:
//!
//! | Category | # Sites  | Sources (% contribution)        |
//! |----------|----------|---------------------------------|
//! | Malware  | 103,541  | Abuse.ch URLHaus 99%, SURBL 1%  |
//! | Abuse    | 24,958   | SURBL 100%                      |
//! | Phishing | 16,426   | PhishTank 85%, SURBL 15%        |
//!
//! "As these blocklists often list multiple malicious URLs mapping to
//! the same domain, we only select one malicious URL per domain" (§3.1)
//! — the generator enforces that invariant by construction and
//! [`Blocklist::dedup_by_domain`] enforces it for arbitrary inputs.

use kt_netbase::DomainName;
use serde::{Deserialize, Serialize};

use crate::names::NameForge;

/// Which blocklist supplied an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BlocklistSource {
    /// SURBL URI reputation data (abuse, malware, phishing).
    Surbl,
    /// Abuse.ch URLHaus (malware).
    UrlHaus,
    /// PhishTank (phishing).
    PhishTank,
}

impl BlocklistSource {
    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            BlocklistSource::Surbl => "SURBL",
            BlocklistSource::UrlHaus => "Abuse.ch",
            BlocklistSource::PhishTank => "PhishTank",
        }
    }
}

/// Malicious site category (Table 2 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MaliciousCategory {
    /// Malware-distribution sites.
    Malware,
    /// Abuse (spam-advertised etc.) sites.
    Abuse,
    /// Phishing sites.
    Phishing,
}

impl MaliciousCategory {
    /// All categories in Table 2 order.
    pub const ALL: [MaliciousCategory; 3] = [
        MaliciousCategory::Malware,
        MaliciousCategory::Abuse,
        MaliciousCategory::Phishing,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            MaliciousCategory::Malware => "Malware",
            MaliciousCategory::Abuse => "Abuse",
            MaliciousCategory::Phishing => "Phishing",
        }
    }

    /// The paper's full-scale population size for this category.
    pub fn paper_count(self) -> usize {
        match self {
            MaliciousCategory::Malware => 103_541,
            MaliciousCategory::Abuse => 24_958,
            MaliciousCategory::Phishing => 16_426,
        }
    }

    /// Source mix `(source, weight)` summing to 1.0, per Table 2.
    pub fn source_mix(self) -> &'static [(BlocklistSource, f64)] {
        match self {
            MaliciousCategory::Malware => &[
                (BlocklistSource::UrlHaus, 0.99),
                (BlocklistSource::Surbl, 0.01),
            ],
            MaliciousCategory::Abuse => &[(BlocklistSource::Surbl, 1.0)],
            MaliciousCategory::Phishing => &[
                (BlocklistSource::PhishTank, 0.85),
                (BlocklistSource::Surbl, 0.15),
            ],
        }
    }
}

/// One blocklisted URL.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlocklistEntry {
    /// The registrable domain (one entry per domain).
    pub domain: DomainName,
    /// The specific listed URL (may have a path).
    pub url: String,
    /// Category.
    pub category: MaliciousCategory,
    /// Which list supplied it.
    pub source: BlocklistSource,
}

/// A deduplicated malicious-URL list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Blocklist {
    /// Entries, one per domain.
    pub entries: Vec<BlocklistEntry>,
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Blocklist {
    /// Generate a blocklist of `total` domains with the paper's
    /// category proportions and per-category source mixes.
    pub fn generate(total: usize, seed: u64) -> Blocklist {
        let paper_total: usize = MaliciousCategory::ALL.iter().map(|c| c.paper_count()).sum();
        let forge = NameForge::new(seed ^ 0xb10c);
        let mut entries = Vec::with_capacity(total);
        let mut index = 0u64;
        for category in MaliciousCategory::ALL {
            let count = (total * category.paper_count()) / paper_total;
            for i in 0..count {
                let h = mix(seed ^ mix(index));
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                let source = pick_source(category.source_mix(), u);
                let domain = forge.themed(
                    match category {
                        MaliciousCategory::Malware => 4,
                        MaliciousCategory::Abuse => 7,
                        MaliciousCategory::Phishing => 1,
                    },
                    index,
                );
                let url = match category {
                    MaliciousCategory::Malware => {
                        format!("http://{domain}/files/payload{}.exe", i % 97)
                    }
                    MaliciousCategory::Abuse => format!("http://{domain}/"),
                    MaliciousCategory::Phishing => {
                        format!("https://{domain}/login/verify")
                    }
                };
                entries.push(BlocklistEntry {
                    domain,
                    url,
                    category,
                    source,
                });
                index += 1;
            }
        }
        Blocklist { entries }
    }

    /// Keep the first entry per registrable domain (the paper's
    /// coverage-maximising dedup).
    pub fn dedup_by_domain(&mut self) {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        self.entries
            .retain(|e| seen.insert(e.domain.registrable().to_string()));
    }

    /// Entries of one category.
    pub fn of_category(
        &self,
        category: MaliciousCategory,
    ) -> impl Iterator<Item = &BlocklistEntry> {
        self.entries.iter().filter(move |e| e.category == category)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Per-category `(source, fraction)` contribution, for Table 2.
    pub fn source_contribution(&self, category: MaliciousCategory) -> Vec<(BlocklistSource, f64)> {
        use std::collections::BTreeMap;
        let mut counts: BTreeMap<BlocklistSource, usize> = BTreeMap::new();
        let mut total = 0usize;
        for e in self.of_category(category) {
            *counts.entry(e.source).or_default() += 1;
            total += 1;
        }
        counts
            .into_iter()
            .map(|(s, c)| (s, c as f64 / total.max(1) as f64))
            .collect()
    }
}

fn pick_source(mix: &[(BlocklistSource, f64)], u: f64) -> BlocklistSource {
    let mut acc = 0.0;
    for (source, w) in mix {
        acc += w;
        if u < acc {
            return *source;
        }
    }
    mix.last().expect("non-empty mix").0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_proportions_match_table2() {
        let list = Blocklist::generate(14_500, 1);
        let malware = list.of_category(MaliciousCategory::Malware).count() as f64;
        let abuse = list.of_category(MaliciousCategory::Abuse).count() as f64;
        let phishing = list.of_category(MaliciousCategory::Phishing).count() as f64;
        let total = list.len() as f64;
        assert!(
            (malware / total - 0.714).abs() < 0.01,
            "{}",
            malware / total
        );
        assert!((abuse / total - 0.172).abs() < 0.01, "{}", abuse / total);
        assert!(
            (phishing / total - 0.113).abs() < 0.01,
            "{}",
            phishing / total
        );
    }

    #[test]
    fn source_mix_matches_table2() {
        let list = Blocklist::generate(50_000, 2);
        let malware = list.source_contribution(MaliciousCategory::Malware);
        let urlhaus = malware
            .iter()
            .find(|(s, _)| *s == BlocklistSource::UrlHaus)
            .map(|(_, f)| *f)
            .unwrap_or(0.0);
        assert!((urlhaus - 0.99).abs() < 0.01, "{urlhaus}");
        let abuse = list.source_contribution(MaliciousCategory::Abuse);
        assert_eq!(abuse.len(), 1);
        assert_eq!(abuse[0].0, BlocklistSource::Surbl);
        let phishing = list.source_contribution(MaliciousCategory::Phishing);
        let phishtank = phishing
            .iter()
            .find(|(s, _)| *s == BlocklistSource::PhishTank)
            .map(|(_, f)| *f)
            .unwrap_or(0.0);
        assert!((phishtank - 0.85).abs() < 0.03, "{phishtank}");
    }

    #[test]
    fn one_url_per_domain_by_construction() {
        use std::collections::HashSet;
        let list = Blocklist::generate(20_000, 3);
        let domains: HashSet<_> = list.entries.iter().map(|e| e.domain.as_str()).collect();
        assert_eq!(domains.len(), list.len());
    }

    #[test]
    fn dedup_removes_repeat_domains() {
        let mut list = Blocklist::generate(100, 4);
        // Integer division across the three categories may drop a few.
        let n = list.len();
        let dup = list.entries[0].clone();
        list.entries.push(dup);
        assert_eq!(list.len(), n + 1);
        list.dedup_by_domain();
        assert_eq!(list.len(), n);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(Blocklist::generate(5_000, 9), Blocklist::generate(5_000, 9));
        assert_ne!(
            Blocklist::generate(5_000, 9),
            Blocklist::generate(5_000, 10)
        );
    }

    #[test]
    fn paper_counts() {
        assert_eq!(MaliciousCategory::Malware.paper_count(), 103_541);
        assert_eq!(MaliciousCategory::Abuse.paper_count(), 24_958);
        assert_eq!(MaliciousCategory::Phishing.paper_count(), 16_426);
        let total: usize = MaliciousCategory::ALL.iter().map(|c| c.paper_count()).sum();
        assert_eq!(total, 144_925, "~145K malicious URLs (§1)");
    }

    #[test]
    fn source_names() {
        assert_eq!(BlocklistSource::Surbl.name(), "SURBL");
        assert_eq!(BlocklistSource::UrlHaus.name(), "Abuse.ch");
        assert_eq!(BlocklistSource::PhishTank.name(), "PhishTank");
    }
}
