//! Tranco-like top-list snapshots.
//!
//! The paper crawls two Tranco top-100K snapshots taken ~9 months apart
//! (2020-06-03 and 2021-03-11) and reports ~75% domain overlap between
//! them (§3.2). [`TrancoSnapshot::generate`] builds the first list;
//! [`TrancoSnapshot::successor`] derives a later snapshot that keeps a
//! configurable fraction of domains (with rank churn) and replaces the
//! rest with fresh domains — reproducing the paper's "19 sites newly
//! active / 21 sites newly listed" dynamics.

use kt_netbase::DomainName;
use serde::{Deserialize, Serialize};

use crate::names::NameForge;

/// One list entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankedDomain {
    /// 1-based Tranco rank.
    pub rank: u32,
    /// The domain.
    pub domain: DomainName,
}

/// A ranked snapshot of the top `n` domains.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrancoSnapshot {
    /// Label, e.g. `"2020-06-03"`.
    pub label: String,
    /// Entries ordered by rank (entry `i` has rank `i+1`).
    pub entries: Vec<RankedDomain>,
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TrancoSnapshot {
    /// Generate a snapshot of `n` domains.
    pub fn generate(label: &str, n: usize, seed: u64) -> TrancoSnapshot {
        let forge = NameForge::new(seed);
        let entries = (0..n)
            .map(|i| RankedDomain {
                rank: (i + 1) as u32,
                domain: forge.generic(i as u64),
            })
            .collect();
        TrancoSnapshot {
            label: label.to_string(),
            entries,
        }
    }

    /// Derive a later snapshot: each domain survives with probability
    /// `overlap`; survivors get a mild deterministic rank perturbation;
    /// vacated slots are filled with fresh domains. The result has the
    /// same size as `self`.
    pub fn successor(&self, label: &str, overlap: f64, seed: u64) -> TrancoSnapshot {
        assert!((0.0..=1.0).contains(&overlap));
        let n = self.entries.len();
        let forge = NameForge::new(seed ^ 0xdead_beef);
        // Decide survival per domain.
        let mut survivors: Vec<&RankedDomain> = self
            .entries
            .iter()
            .filter(|e| {
                let h = mix(seed ^ mix(e.rank as u64));
                (h >> 11) as f64 / (1u64 << 53) as f64 >= 1.0 - overlap
            })
            .collect();
        // Rank churn: stable sort by old rank + bounded jitter keeps
        // the list plausible (top sites stay near the top).
        survivors.sort_by_key(|e| {
            let jitter = (mix(seed ^ 0x5a5a ^ e.rank as u64) % 2001) as i64 - 1000;
            (e.rank as i64 * 10 + jitter).max(0)
        });
        let fresh_needed = n - survivors.len();
        let mut fresh: Vec<DomainName> = (0..fresh_needed)
            .map(|i| forge.generic(1_000_000 + i as u64))
            .collect();
        // Interleave fresh domains throughout the rank space
        // deterministically, so new domains are not all low-ranked.
        let mut entries = Vec::with_capacity(n);
        let mut s = survivors.into_iter();
        let mut f = fresh.drain(..);
        for i in 0..n {
            let take_fresh = fresh_needed > 0 && (i * fresh_needed) % n < fresh_needed
                // deterministic mixing decision
                && mix(seed ^ 0x77 ^ i as u64) % (n as u64) < fresh_needed as u64;
            let domain = if take_fresh {
                f.next().or_else(|| s.next().map(|e| e.domain.clone()))
            } else {
                s.next().map(|e| e.domain.clone()).or_else(|| f.next())
            };
            match domain {
                Some(d) => entries.push(RankedDomain {
                    rank: (i + 1) as u32,
                    domain: d,
                }),
                None => break,
            }
        }
        TrancoSnapshot {
            label: label.to_string(),
            entries,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rank of a domain in this snapshot, if present.
    pub fn rank_of(&self, domain: &DomainName) -> Option<u32> {
        self.entries
            .iter()
            .find(|e| &e.domain == domain)
            .map(|e| e.rank)
    }

    /// Fraction of `other`'s domains also present in `self`.
    pub fn overlap_with(&self, other: &TrancoSnapshot) -> f64 {
        use std::collections::HashSet;
        let mine: HashSet<&str> = self.entries.iter().map(|e| e.domain.as_str()).collect();
        let shared = other
            .entries
            .iter()
            .filter(|e| mine.contains(e.domain.as_str()))
            .count();
        shared as f64 / other.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_ranked() {
        let a = TrancoSnapshot::generate("2020", 500, 1);
        let b = TrancoSnapshot::generate("2020", 500, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        for (i, e) in a.entries.iter().enumerate() {
            assert_eq!(e.rank, (i + 1) as u32);
        }
    }

    #[test]
    fn domains_are_unique() {
        use std::collections::HashSet;
        let snap = TrancoSnapshot::generate("2020", 2000, 2);
        let set: HashSet<_> = snap.entries.iter().map(|e| e.domain.as_str()).collect();
        assert_eq!(set.len(), 2000);
    }

    #[test]
    fn successor_hits_requested_overlap() {
        let snap = TrancoSnapshot::generate("2020", 5000, 3);
        let next = snap.successor("2021", 0.75, 99);
        assert_eq!(next.len(), 5000);
        let overlap = snap.overlap_with(&next);
        assert!((0.70..0.80).contains(&overlap), "overlap {overlap}");
    }

    #[test]
    fn successor_full_overlap_keeps_everyone() {
        let snap = TrancoSnapshot::generate("2020", 300, 4);
        let next = snap.successor("2021", 1.0, 5);
        assert!((snap.overlap_with(&next) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn successor_zero_overlap_replaces_everyone() {
        let snap = TrancoSnapshot::generate("2020", 300, 4);
        let next = snap.successor("2021", 0.0, 5);
        assert_eq!(snap.overlap_with(&next), 0.0);
        assert_eq!(next.len(), 300);
    }

    #[test]
    fn fresh_domains_spread_over_rank_space() {
        let snap = TrancoSnapshot::generate("2020", 10_000, 6);
        let next = snap.successor("2021", 0.75, 7);
        use std::collections::HashSet;
        let old: HashSet<_> = snap.entries.iter().map(|e| e.domain.as_str()).collect();
        let fresh_ranks: Vec<u32> = next
            .entries
            .iter()
            .filter(|e| !old.contains(e.domain.as_str()))
            .map(|e| e.rank)
            .collect();
        assert!(!fresh_ranks.is_empty());
        // Some fresh domain must land in the top half.
        assert!(fresh_ranks.iter().any(|&r| r < 5_000));
        assert!(fresh_ranks.iter().any(|&r| r >= 5_000));
    }

    #[test]
    fn rank_of_lookup() {
        let snap = TrancoSnapshot::generate("2020", 100, 8);
        let fifth = snap.entries[4].domain.clone();
        assert_eq!(snap.rank_of(&fifth), Some(5));
        let absent = DomainName::parse("not-in-list.example").unwrap();
        assert_eq!(snap.rank_of(&absent), None);
    }
}
