//! Deterministic synthetic domain-name generation.
//!
//! The forge produces plausible, collision-free domain names for each
//! population: generic sites, category-flavoured sites (shops, banks,
//! games…), and phishing names that impersonate a target brand the way
//! the paper's cloned phishing pages did (`customer-ebay.com` for
//! `ebay.com`, Table 8).

use kt_netbase::DomainName;

/// Deterministic name generator. All methods are pure functions of the
/// forge seed and the caller-supplied index, so names are stable across
/// runs and independent of generation order.
#[derive(Debug, Clone, Copy)]
pub struct NameForge {
    seed: u64,
}

const SYLLABLES: [&str; 24] = [
    "ka", "lo", "mi", "ter", "ven", "sol", "pra", "net", "dex", "ful", "gor", "han", "qui", "ras",
    "tek", "ulm", "vio", "wex", "yon", "zet", "bri", "cam", "dro", "fen",
];

const GENERIC_TLDS: [&str; 10] = [
    "com", "net", "org", "info", "io", "co", "biz", "xyz", "online", "site",
];

const COUNTRY_TLDS: [&str; 12] = [
    "de", "fr", "co.uk", "com.au", "it", "ca", "ru", "ir", "cn", "com.br", "co.kr", "ac.id",
];

const CATEGORY_PREFIXES: [(&str, &str); 8] = [
    ("shop", "store"),
    ("bank", "pay"),
    ("game", "play"),
    ("news", "daily"),
    ("media", "stream"),
    ("gov", "portal"),
    ("edu", "academy"),
    ("blog", "hub"),
];

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl NameForge {
    /// A forge for a run seed.
    pub fn new(seed: u64) -> NameForge {
        NameForge { seed }
    }

    fn h(&self, salt: u64, index: u64) -> u64 {
        mix(mix(self.seed ^ salt) ^ index)
    }

    /// A generic second-level label of 2–4 syllables for index `i`.
    fn label(&self, salt: u64, i: u64) -> String {
        let h = self.h(salt, i);
        let n = 2 + (h % 3) as usize;
        let mut s = String::new();
        for k in 0..n {
            s.push_str(SYLLABLES[((h >> (8 * k)) % SYLLABLES.len() as u64) as usize]);
        }
        // Suffix the index in base36 to guarantee uniqueness.
        s.push_str(&to_base36(i));
        s
    }

    /// A generic domain (`ventersol7k.com`) for index `i`.
    pub fn generic(&self, i: u64) -> DomainName {
        let h = self.h(0x01, i);
        let tld = if h.is_multiple_of(5) {
            COUNTRY_TLDS[(h >> 16) as usize % COUNTRY_TLDS.len()]
        } else {
            GENERIC_TLDS[(h >> 16) as usize % GENERIC_TLDS.len()]
        };
        DomainName::parse(&format!("{}.{tld}", self.label(0x01, i))).expect("generated name valid")
    }

    /// A category-flavoured domain (`shopkalo3.com`, `bankwex9.io`).
    pub fn themed(&self, category: usize, i: u64) -> DomainName {
        let (a, b) = CATEGORY_PREFIXES[category % CATEGORY_PREFIXES.len()];
        let h = self.h(0x02 ^ category as u64, i);
        let prefix = if h.is_multiple_of(2) { a } else { b };
        let tld = GENERIC_TLDS[(h >> 16) as usize % GENERIC_TLDS.len()];
        DomainName::parse(&format!("{prefix}{}.{tld}", self.label(0x02, i)))
            .expect("generated name valid")
    }

    /// A phishing domain impersonating `target` — the paper observed
    /// shapes like `customer-ebay.com` and `signin01.kauf-eday.de`.
    pub fn phishing_of(&self, target: &DomainName, i: u64) -> DomainName {
        let h = self.h(0x03, i);
        let brand = target.labels().next().unwrap_or("site");
        let name = match h % 4 {
            0 => format!("customer-{brand}{}.com", to_base36(i)),
            1 => format!("{brand}-secure{}.xyz", to_base36(i)),
            2 => format!("signin{}.{brand}-account.net", h % 100),
            _ => format!("www.{brand}.verify{}.info", to_base36(i)),
        };
        DomainName::parse(&name).expect("generated name valid")
    }

    /// A vendor-controlled domain hosting a third-party script, the way
    /// ThreatMetrix serves from look-alike domains (`ebay-us.com`) or
    /// customer subdomains (`regstat.betfair.com`).
    pub fn vendor_for(&self, customer: &DomainName, i: u64) -> DomainName {
        let h = self.h(0x04, i);
        let brand = customer.labels().next().unwrap_or("site");
        let name = if h.is_multiple_of(2) {
            format!("{brand}-metrics{}.com", to_base36(i))
        } else {
            format!("regstat.{}", customer.as_str())
        };
        DomainName::parse(&name).expect("generated name valid")
    }
}

/// Lower-case base-36 rendering (for unique, short suffixes).
fn to_base36(mut n: u64) -> String {
    const DIGITS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    if n == 0 {
        return "0".to_string();
    }
    let mut out = Vec::new();
    while n > 0 {
        out.push(DIGITS[(n % 36) as usize]);
        n /= 36;
    }
    out.reverse();
    String::from_utf8(out).expect("base36 is ascii")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_are_deterministic() {
        let a = NameForge::new(7);
        let b = NameForge::new(7);
        for i in 0..50 {
            assert_eq!(a.generic(i), b.generic(i));
        }
    }

    #[test]
    fn names_are_unique_across_indices() {
        let forge = NameForge::new(7);
        let names: HashSet<_> = (0..10_000).map(|i| forge.generic(i)).collect();
        assert_eq!(names.len(), 10_000);
    }

    #[test]
    fn names_differ_across_seeds() {
        let a = NameForge::new(1);
        let b = NameForge::new(2);
        let differs = (0..20).any(|i| a.generic(i) != b.generic(i));
        assert!(differs);
    }

    #[test]
    fn phishing_names_reference_brand() {
        let forge = NameForge::new(3);
        let target = DomainName::parse("ebay.com").unwrap();
        for i in 0..20 {
            let p = forge.phishing_of(&target, i);
            assert!(p.as_str().contains("ebay"), "{p}");
            assert_ne!(p, target);
        }
    }

    #[test]
    fn vendor_names_are_plausible() {
        let forge = NameForge::new(3);
        let customer = DomainName::parse("betfair.com").unwrap();
        let mut saw_subdomain = false;
        let mut saw_lookalike = false;
        for i in 0..32 {
            let v = forge.vendor_for(&customer, i);
            if v.as_str() == "regstat.betfair.com" {
                saw_subdomain = true;
            }
            if v.as_str().starts_with("betfair-metrics") {
                saw_lookalike = true;
            }
        }
        assert!(saw_subdomain && saw_lookalike);
    }

    #[test]
    fn base36_encoding() {
        assert_eq!(to_base36(0), "0");
        assert_eq!(to_base36(35), "z");
        assert_eq!(to_base36(36), "10");
        assert_eq!(to_base36(36 * 36 + 1), "101");
    }

    #[test]
    fn all_generated_names_are_valid_domains() {
        // DomainName::parse inside the forge already asserts validity;
        // exercise a broad index range to be sure.
        let forge = NameForge::new(11);
        for i in (0..5_000).step_by(7) {
            let _ = forge.generic(i);
            let _ = forge.themed(i as usize % 8, i);
        }
    }
}
