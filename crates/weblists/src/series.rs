//! Rolling snapshot series for longitudinal studies.
//!
//! The paper compares exactly two Tranco snapshots (~75% overlap);
//! [`SnapshotSeries`] generalises that to N rolling lists by chaining
//! [`TrancoSnapshot::successor`] with a fixed per-step churn. One twist
//! matters for the longitudinal store: real top lists *recycle*
//! domains. A site that drops off the list in March is often back in
//! June (the paper's "newly active" sites versus its "newly listed"
//! ones, §4.3), so most slots vacated at step k are refilled from the
//! pool of previously-listed domains rather than from never-seen
//! names. [`SeriesConfig::relist_fraction`] controls that split; it is
//! what keeps the unique-domain population — and therefore the
//! content-addressed store ([`kt-store`'s `SnapshotStore`]) — growing
//! far slower than N× one snapshot.
//!
//! Relisted domains are only drawn from lists *older than the
//! immediately preceding snapshot*, so consecutive-pair overlap stays
//! at `1 - churn` exactly as `successor` alone would produce.

use std::collections::HashSet;

use kt_netbase::DomainName;

use crate::tranco::TrancoSnapshot;

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Configuration for a rolling snapshot series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesConfig {
    /// Domains per snapshot.
    pub size: usize,
    /// Number of snapshots (≥ 1).
    pub snapshots: usize,
    /// Per-step fraction of domains replaced (consecutive snapshots
    /// overlap by `1 - churn`; the paper's pair shows churn ≈ 0.25).
    pub churn: f64,
    /// Fraction of each step's incoming slots refilled from
    /// previously-listed (now dropped) domains instead of never-seen
    /// ones. 0 reduces to plain `successor` chaining.
    pub relist_fraction: f64,
    /// Generation seed; the whole series is a pure function of it.
    pub seed: u64,
}

impl SeriesConfig {
    /// The paper-shaped default: ~75% consecutive overlap with most
    /// returning slots drawn from previously-listed domains.
    pub fn paper(size: usize, snapshots: usize, seed: u64) -> SeriesConfig {
        SeriesConfig {
            size,
            snapshots,
            churn: 0.25,
            relist_fraction: 0.85,
            seed,
        }
    }
}

/// N rolling Tranco-like snapshots, oldest first.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotSeries {
    /// The snapshots, labelled `snap00`, `snap01`, … in order.
    pub snapshots: Vec<TrancoSnapshot>,
}

impl SnapshotSeries {
    /// Generate the series. Panics if `snapshots == 0`, `size == 0`,
    /// or a fraction is outside `[0, 1]`.
    pub fn generate(config: &SeriesConfig) -> SnapshotSeries {
        assert!(config.snapshots >= 1, "need at least one snapshot");
        assert!(config.size >= 1, "need at least one domain");
        assert!((0.0..=1.0).contains(&config.churn), "churn in [0, 1]");
        assert!(
            (0.0..=1.0).contains(&config.relist_fraction),
            "relist_fraction in [0, 1]"
        );
        let mut snapshots = vec![TrancoSnapshot::generate("snap00", config.size, config.seed)];
        // Every domain ever listed, in first-listing order — the
        // deterministic recycling pool.
        let mut ever_listed: Vec<DomainName> = snapshots[0]
            .entries
            .iter()
            .map(|e| e.domain.clone())
            .collect();
        let mut ever_set: HashSet<String> =
            ever_listed.iter().map(|d| d.as_str().to_string()).collect();
        for step in 1..config.snapshots {
            let label = format!("snap{step:02}");
            let prev = snapshots.last().expect("non-empty");
            let step_seed = config.seed ^ mix(step as u64);
            let mut next = prev.successor(&label, 1.0 - config.churn, step_seed);
            // Recycle: a `relist_fraction` share of the genuinely-new
            // slots gets a previously-listed domain back instead.
            // Candidates must be absent from the *previous* snapshot
            // (so consecutive overlap is untouched) and from the one
            // being built (no duplicate rows).
            let prev_set: HashSet<&str> = prev.entries.iter().map(|e| e.domain.as_str()).collect();
            let mut current: HashSet<String> = next
                .entries
                .iter()
                .map(|e| e.domain.as_str().to_string())
                .collect();
            let mut pool = ever_listed
                .iter()
                .filter(|d| !prev_set.contains(d.as_str()) && !current.contains(d.as_str()))
                .cloned()
                .collect::<Vec<_>>()
                .into_iter();
            for entry in &mut next.entries {
                if prev_set.contains(entry.domain.as_str()) {
                    continue; // carried over, not an incoming slot
                }
                let draw = (mix(step_seed ^ 0x5e11 ^ mix(entry.rank as u64)) >> 11) as f64
                    / (1u64 << 53) as f64;
                let relist = draw < config.relist_fraction;
                if !relist {
                    continue;
                }
                let Some(recycled) = pool.next() else { break };
                current.remove(entry.domain.as_str());
                current.insert(recycled.as_str().to_string());
                entry.domain = recycled;
            }
            for entry in &next.entries {
                if ever_set.insert(entry.domain.as_str().to_string()) {
                    ever_listed.push(entry.domain.clone());
                }
            }
            snapshots.push(next);
        }
        SnapshotSeries { snapshots }
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// True if the series is empty (never produced by `generate`).
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Count of distinct domains across the whole series.
    pub fn unique_domains(&self) -> usize {
        let mut seen = HashSet::new();
        for snap in &self.snapshots {
            for e in &snap.entries {
                seen.insert(e.domain.as_str());
            }
        }
        seen.len()
    }

    /// Overlap of each consecutive pair: `overlap[i]` is the fraction
    /// of snapshot `i+1`'s domains already present in snapshot `i`.
    pub fn pairwise_overlaps(&self) -> Vec<f64> {
        self.snapshots
            .windows(2)
            .map(|w| w[0].overlap_with(&w[1]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn series_has_requested_shape() {
        let config = SeriesConfig::paper(400, 6, 11);
        let series = SnapshotSeries::generate(&config);
        assert_eq!(series.len(), 6);
        for (i, snap) in series.snapshots.iter().enumerate() {
            assert_eq!(snap.len(), 400, "snapshot {i}");
            assert_eq!(snap.label, format!("snap{i:02}"));
            // No duplicate domains within one snapshot.
            let set: HashSet<&str> = snap.entries.iter().map(|e| e.domain.as_str()).collect();
            assert_eq!(set.len(), snap.len(), "snapshot {i} has duplicates");
        }
    }

    #[test]
    fn pairwise_overlap_pins_near_the_papers_75_percent() {
        let config = SeriesConfig::paper(4_000, 8, 3);
        let series = SnapshotSeries::generate(&config);
        for (i, overlap) in series.pairwise_overlaps().into_iter().enumerate() {
            assert!(
                (0.70..0.80).contains(&overlap),
                "pair {i}/{}: overlap {overlap}",
                i + 1
            );
        }
    }

    #[test]
    fn relisting_bounds_the_unique_domain_population() {
        // With 85% of incoming slots recycled, twelve 20%-churn
        // snapshots list far fewer distinct domains than plain
        // successor chaining (which mints fresh names for every
        // vacated slot).
        let n = 1_000;
        let recycled = SnapshotSeries::generate(&SeriesConfig {
            size: n,
            snapshots: 12,
            churn: 0.2,
            relist_fraction: 0.85,
            seed: 17,
        });
        let minted = SnapshotSeries::generate(&SeriesConfig {
            size: n,
            snapshots: 12,
            churn: 0.2,
            relist_fraction: 0.0,
            seed: 17,
        });
        assert!(
            recycled.unique_domains() < n + n / 2,
            "recycled series lists {} distinct domains (> 1.5n)",
            recycled.unique_domains()
        );
        assert!(
            minted.unique_domains() > n * 2,
            "fresh-only series lists {} distinct domains",
            minted.unique_domains()
        );
    }

    #[test]
    fn relisted_domains_do_not_inflate_consecutive_overlap() {
        // Recycling pulls only from lists older than the previous
        // snapshot, so consecutive overlap matches the no-recycling
        // series' to within sampling noise.
        let base = SeriesConfig {
            size: 3_000,
            snapshots: 6,
            churn: 0.2,
            relist_fraction: 0.0,
            seed: 29,
        };
        let plain = SnapshotSeries::generate(&base);
        let recycled = SnapshotSeries::generate(&SeriesConfig {
            relist_fraction: 0.9,
            ..base
        });
        for (a, b) in plain
            .pairwise_overlaps()
            .into_iter()
            .zip(recycled.pairwise_overlaps())
        {
            assert!((a - b).abs() < 0.03, "overlap drifted: {a} vs {b}");
        }
    }

    #[test]
    fn single_snapshot_series_is_just_generate() {
        let config = SeriesConfig::paper(100, 1, 5);
        let series = SnapshotSeries::generate(&config);
        assert_eq!(series.len(), 1);
        assert_eq!(
            series.snapshots[0],
            TrancoSnapshot::generate("snap00", 100, 5)
        );
    }

    proptest! {
        #[test]
        fn generation_is_seed_deterministic(
            seed in any::<u64>(),
            size in 50usize..300,
            snapshots in 1usize..6,
        ) {
            let config = SeriesConfig {
                size,
                snapshots,
                churn: 0.25,
                relist_fraction: 0.85,
                seed,
            };
            let a = SnapshotSeries::generate(&config);
            let b = SnapshotSeries::generate(&config);
            prop_assert_eq!(&a, &b);
            // And a different seed moves at least one domain (sizes
            // this small make collisions astronomically unlikely).
            let other = SnapshotSeries::generate(&SeriesConfig {
                seed: seed ^ 0x1234_5678,
                ..config
            });
            prop_assert!(a.snapshots[0] != other.snapshots[0]);
        }
    }
}
