//! Zipf-distributed sampling over ranks.
//!
//! Web popularity is famously heavy-tailed; the population generator
//! uses a Zipf law when it needs to weight activity toward higher
//! ranks (e.g. how many third-party resources a page embeds).

/// A Zipf distribution over `1..=n` with exponent `s`, sampled by
/// inverse CDF over precomputed cumulative weights.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build the distribution for `n ≥ 1` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        // Normalise to [0, 1].
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Map a uniform `u ∈ [0, 1)` to a rank in `1..=n`.
    pub fn rank_for(&self, u: f64) -> usize {
        debug_assert!((0.0..1.0).contains(&u));
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i + 1,
            Err(i) => i + 1,
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false: `new` requires n ≥ 1.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_one_dominates() {
        let z = Zipf::new(1000, 1.0);
        let hits_rank1 = (0..10_000)
            .map(|i| i as f64 / 10_000.0)
            .filter(|&u| z.rank_for(u) == 1)
            .count();
        // Rank 1 mass for n=1000, s=1 is 1/H_1000 ≈ 0.133.
        assert!((1_200..1_500).contains(&hits_rank1), "{hits_rank1}");
    }

    #[test]
    fn ranks_are_in_bounds() {
        let z = Zipf::new(50, 1.2);
        for i in 0..1000 {
            let r = z.rank_for(i as f64 / 1000.0);
            assert!((1..=50).contains(&r), "{r}");
        }
        assert_eq!(z.rank_for(0.0), 1);
        assert!(z.rank_for(0.9999) <= 50);
    }

    #[test]
    fn single_rank_distribution() {
        let z = Zipf::new(1, 1.0);
        assert_eq!(z.rank_for(0.0), 1);
        assert_eq!(z.rank_for(0.99), 1);
        assert_eq!(z.len(), 1);
    }

    #[test]
    fn monotone_in_u() {
        let z = Zipf::new(100, 1.0);
        let mut prev = 0;
        for i in 0..100 {
            let r = z.rank_for(i as f64 / 100.0);
            assert!(r >= prev);
            prev = r;
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
