//! # kt-weblists
//!
//! Synthesisers for the two website populations the paper crawls:
//!
//! * a **Tranco-like top list** ([`tranco`]) — ranked domains, with
//!   support for generating a second snapshot that overlaps the first
//!   by a configurable fraction (the paper's 2020 and 2021 snapshots
//!   overlapped ~75%, §3.2);
//! * **blocklists** ([`blocklist`]) — malicious URLs in the paper's
//!   category mix (Table 2: malware 103,541 / abuse 24,958 / phishing
//!   16,426) drawn from SURBL-, URLHaus- and PhishTank-shaped sources,
//!   deduplicated to one URL per domain as the paper does.
//!
//! All generation is seed-deterministic: the same seed yields the same
//! lists, so every downstream table is reproducible byte-for-byte.

#![warn(missing_docs)]

pub mod blocklist;
pub mod names;
pub mod series;
pub mod tranco;
pub mod zipf;

pub use blocklist::{Blocklist, BlocklistEntry, BlocklistSource, MaliciousCategory};
pub use names::NameForge;
pub use series::{SeriesConfig, SnapshotSeries};
pub use tranco::{RankedDomain, TrancoSnapshot};
pub use zipf::Zipf;
