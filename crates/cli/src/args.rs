//! Minimal hand-rolled option parsing: `--key value` flags plus bare
//! positional arguments, collected in order.

use std::collections::BTreeMap;

/// Parsed command-line options.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Options {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
}

impl Options {
    /// Parse an argument list. Every `--key` consumes the following
    /// token as its value; everything else is positional.
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut opts = Options::default();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty flag name".to_string());
                }
                let value = iter
                    .next()
                    .ok_or_else(|| format!("flag --{key} needs a value"))?;
                if opts.flags.insert(key.to_string(), value.clone()).is_some() {
                    return Err(format!("flag --{key} given twice"));
                }
            } else {
                opts.positional.push(arg.clone());
            }
        }
        Ok(opts)
    }

    /// A string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A parsed numeric flag, with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{key} expects an integer, got {v:?}")),
        }
    }

    /// Positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn flags_and_positionals() {
        let opts = Options::parse(&argv("file.json --seed 42 --scale quick extra")).unwrap();
        assert_eq!(opts.get("seed"), Some("42"));
        assert_eq!(opts.get("scale"), Some("quick"));
        assert_eq!(opts.positional(), &["file.json", "extra"]);
        assert_eq!(opts.get_u64("seed", 0).unwrap(), 42);
        assert_eq!(opts.get_u64("missing", 7).unwrap(), 7);
    }

    #[test]
    fn errors() {
        assert!(Options::parse(&argv("--seed")).is_err(), "missing value");
        assert!(Options::parse(&argv("--seed 1 --seed 2")).is_err(), "dup");
        assert!(
            Options::parse(&argv("--seed abc"))
                .unwrap()
                .get_u64("seed", 0)
                .is_err(),
            "non-numeric"
        );
    }

    #[test]
    fn empty_input() {
        let opts = Options::parse(&[]).unwrap();
        assert!(opts.positional().is_empty());
        assert_eq!(opts.get("anything"), None);
    }
}
