//! Subcommand implementations.

use knock_talk::analysis::classify::{classify_site, native_app_name};
use knock_talk::analysis::detect::aggregate_sites;
use knock_talk::analysis::entropy::scan_entropy;
use knock_talk::netbase::services::{BIGIP_PORTS, THREATMETRIX_PORTS};
use knock_talk::netbase::Os;
use knock_talk::netlog::Capture;
use knock_talk::store::{CrawlId, LoadOutcome, VisitRecord};
use knock_talk::{Study, StudyConfig};

use crate::args::Options;

/// Print usage.
pub fn help() {
    println!(
        "knocktalk — reproduce 'Knock and Talk' (IMC 2021)\n\
         \n\
         USAGE:\n\
           knocktalk repro    [--scale quick|standard|paper] [--seed N] [--id T5]\n\
           knocktalk crawl    [--os windows|linux|mac] [--scale ...] [--seed N] [--save FILE]\n\
           knocktalk analyze  <store.ktstore>\n\
           knocktalk classify <netlog.json> [--loaded-at MS] [--domain NAME]\n\
           knocktalk entropy  [--machines N] [--seed N]\n\
           knocktalk health   [--scale quick|standard|paper] [--seed N]\n\
           knocktalk help\n\
         \n\
         COMMANDS:\n\
           repro     regenerate the paper's tables and figures (all, or one --id)\n\
           crawl     run one campaign on one OS and print Table-1 statistics\n\
           analyze   load a saved telemetry snapshot and report local activity\n\
           classify  analyse a Chrome NetLog JSON capture for local traffic\n\
           entropy   measure the fingerprinting entropy of the observed scans\n\
           health    run the study and print the crawl health report\n\
                     (retries, recrawls, recoveries, quarantines per campaign/OS)"
    );
}

fn study_config(opts: &Options) -> Result<StudyConfig, String> {
    let seed = opts.get_u64("seed", 0x00C0_FFEE)?;
    Ok(match opts.get("scale").unwrap_or("quick") {
        "quick" => StudyConfig::quick(seed),
        "standard" => StudyConfig::standard(seed),
        "paper" => StudyConfig::paper(seed),
        other => return Err(format!("unknown --scale {other:?}")),
    })
}

/// `knocktalk repro`.
pub fn repro(opts: &Options) -> Result<(), String> {
    let study = Study::run(study_config(opts)?);
    match opts.get("id") {
        Some(id) => {
            let text = study
                .experiment(id)
                .ok_or_else(|| format!("unknown experiment id {id:?}"))?;
            println!("{text}");
        }
        None => {
            for (id, text) in study.all_experiments() {
                println!("=== [{id}] ===\n{text}");
            }
            for id in knock_talk::experiments::EXTENDED_IDS {
                if let Some(text) = study.experiment(id) {
                    println!("=== [{id}] (extension) ===\n{text}");
                }
            }
        }
    }
    Ok(())
}

fn parse_os(s: &str) -> Result<Os, String> {
    match s.to_ascii_lowercase().as_str() {
        "windows" | "w" => Ok(Os::Windows),
        "linux" | "l" => Ok(Os::Linux),
        "mac" | "macos" | "m" => Ok(Os::MacOs),
        other => Err(format!("unknown --os {other:?}")),
    }
}

/// `knocktalk crawl`.
pub fn crawl(opts: &Options) -> Result<(), String> {
    use knock_talk::crawler::{run_crawl, CrawlConfig, CrawlJob};
    use knock_talk::store::TelemetryStore;
    use knock_talk::webgen::WebPopulation;

    let config = study_config(opts)?;
    let os = parse_os(opts.get("os").unwrap_or("linux"))?;
    let population = WebPopulation::generate(config.population);
    let jobs: Vec<CrawlJob> = population
        .sites2020
        .iter()
        .map(|site| CrawlJob {
            site,
            malicious_category: None,
        })
        .collect();
    let store = TelemetryStore::new();
    let crawl_config = CrawlConfig::paper(CrawlId::top2020(), os, config.population.seed);
    let stats = run_crawl(&jobs, &crawl_config, &store);
    println!(
        "crawled {} pages on {}: {} ok ({:.1}%), {} failed",
        stats.attempted,
        os.name(),
        stats.successful,
        stats.success_rate() * 100.0,
        stats.failed()
    );
    for (name, count) in stats.table1_errors() {
        println!("  {name:<18} {count}");
    }
    let analysis = knock_talk::analysis::par::analyze_crawl_par(
        &store,
        &CrawlId::top2020(),
        crawl_config.workers,
    );
    println!(
        "locally-active sites: {} localhost, {} LAN",
        analysis.sites.iter().filter(|s| s.has_localhost()).count(),
        analysis.sites.iter().filter(|s| s.has_lan()).count()
    );
    if let Some(path) = opts.get("save") {
        let n = knock_talk::store::save(&store, std::path::Path::new(path))
            .map_err(|e| e.to_string())?;
        println!("saved {n} visit records to {path}");
    }
    Ok(())
}

/// `knocktalk analyze <store.ktstore>`.
pub fn analyze(opts: &Options) -> Result<(), String> {
    let path = opts
        .positional()
        .first()
        .ok_or("analyze needs a snapshot file path")?;
    let report = knock_talk::store::load(std::path::Path::new(path)).map_err(|e| e.to_string())?;
    if report.truncated || report.corrupt > 0 {
        eprintln!(
            "note: loaded {} records ({} corrupt skipped, truncated: {})",
            report.loaded, report.corrupt, report.truncated
        );
    }
    // One parallel single-decode pass per crawl in the snapshot.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    for crawl in report.store.crawl_ids() {
        let analysis = knock_talk::analysis::par::analyze_crawl_par(&report.store, &crawl, workers);
        let active: Vec<_> = analysis
            .sites
            .iter()
            .filter(|s| s.has_localhost() || s.has_lan())
            .collect();
        println!(
            "[{}] {} visits, {} locally-active sites:",
            crawl.as_str(),
            analysis.visits,
            active.len()
        );
        for site in active {
            println!(
                "  {:<40} {:<20} localhost on {}, LAN on {}",
                site.domain,
                classify_site(site).label(),
                site.localhost_os,
                site.lan_os
            );
        }
    }
    Ok(())
}

/// `knocktalk classify <netlog.json>`.
pub fn classify(opts: &Options) -> Result<(), String> {
    let path = opts
        .positional()
        .first()
        .ok_or("classify needs a capture file path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let capture = Capture::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    if capture.truncated {
        eprintln!(
            "note: capture was truncated; recovered {} events ({} skipped)",
            capture.len(),
            capture.skipped
        );
    }
    let record = VisitRecord {
        crawl: CrawlId(("cli").to_string()),
        domain: opts.get("domain").unwrap_or("capture").to_string(),
        rank: None,
        malicious_category: None,
        os: parse_os(opts.get("os").unwrap_or("linux"))?,
        outcome: LoadOutcome::Success,
        loaded_at_ms: opts.get_u64("loaded-at", 0)?,
        events: capture.events,
    };
    let sites = aggregate_sites(std::slice::from_ref(&record));
    if sites.is_empty() {
        println!("no locally-destined requests found");
        return Ok(());
    }
    for site in &sites {
        let app = native_app_name(site)
            .map(|n| format!(" ({n})"))
            .unwrap_or_default();
        println!(
            "{}: {} local request(s), class: {}{app}",
            site.domain,
            site.observations.len(),
            classify_site(site).label()
        );
        for obs in &site.observations {
            println!(
                "  t={:>6}ms  {:<6} {:<40} [{}{}]",
                obs.time_ms,
                obs.scheme.to_string(),
                obs.url.to_string(),
                obs.locality.label(),
                if obs.via_redirect {
                    ", via redirect"
                } else {
                    ""
                },
            );
        }
    }
    Ok(())
}

/// `knocktalk health`.
pub fn health(opts: &Options) -> Result<(), String> {
    let study = Study::run(study_config(opts)?);
    println!("{}", knock_talk::experiments::health_report(&study));
    Ok(())
}

/// `knocktalk entropy`.
pub fn entropy(opts: &Options) -> Result<(), String> {
    let machines = opts.get_u64("machines", 1_000)? as usize;
    let seed = opts.get_u64("seed", 0xF1)?;
    println!("fingerprinting entropy over {machines} simulated machines:");
    for (label, ports) in [
        ("ThreatMetrix", THREATMETRIX_PORTS.as_slice()),
        ("BIG-IP ASM", BIGIP_PORTS.as_slice()),
    ] {
        for os in Os::ALL {
            let r = scan_entropy(os, ports, machines, seed);
            println!(
                "  {label:<14} {:<8} {:.2} bits, {} distinct profiles",
                os.name(),
                r.shannon_bits,
                r.distinct
            );
        }
    }
    Ok(())
}
