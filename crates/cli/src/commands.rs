//! Subcommand implementations.

use knock_talk::analysis::classify::{classify_site, native_app_name};
use knock_talk::analysis::detect::aggregate_sites;
use knock_talk::analysis::entropy::scan_entropy;
use knock_talk::netbase::services::{BIGIP_PORTS, THREATMETRIX_PORTS};
use knock_talk::netbase::Os;
use knock_talk::netlog::Capture;
use knock_talk::store::{
    CrawlId, FsckOptions, JournalConfig, JournalWriter, KillMode, KillSpec, LoadOutcome,
    SegmentMode, SnapshotStore, SpillConfig, VisitRecord,
};
use knock_talk::trace::Trace;
use knock_talk::{SnapshotStudy, SnapshotStudyConfig, Study, StudyConfig};

use crate::args::Options;

/// Print usage.
pub fn help() {
    println!(
        "knocktalk — reproduce 'Knock and Talk' (IMC 2021)\n\
         \n\
         USAGE:\n\
           knocktalk repro    [--scale quick|standard|paper] [--seed N] [--id T5]\n\
                              [--journal FILE] [--kill-frames N] [--kill-mode mid-frame|post-frame]\n\
                              [--flush-every BYTES] [--group-frames N]\n\
           knocktalk crawl    [--os windows|linux|mac] [--scale ...] [--seed N] [--save FILE]\n\
                              [--profile naive|headless-patched|stealth|human-replay]\n\
                              [--journal FILE] [--kill-frames N] [--kill-mode mid-frame|post-frame]\n\
                              [--flush-every BYTES] [--group-frames N]\n\
           knocktalk bias     [--seed N] [--workers N] [--out FILE] [--metrics-out FILE]\n\
           knocktalk resume   <study.ktj> [--id T5]\n\
           knocktalk fsck     <journal.ktj> [--repair yes]\n\
           knocktalk analyze  <store.ktstore|journal.ktj>\n\
           knocktalk classify <netlog.json> [--loaded-at MS] [--domain NAME]\n\
           knocktalk entropy  [--machines N] [--seed N]\n\
           knocktalk scan     [--os windows|linux|mac] [--seed N] [--ports P,P,...]\n\
                              [--sequence P,P,P] [--payload HEX] [--udp yes] [--ipv6 yes]\n\
                              [--lan no] [--concurrency N] [--timeout-ms N] [--retries N]\n\
                              [--breaker-threshold N] [--breaker-cooldown-ms N]\n\
                              [--deadline-ms N] [--fault-rate R] [--agreement yes]\n\
                              [--sites N] [--metrics-out FILE]\n\
           knocktalk serve    [--tenants N] [--campaigns N] [--sites N] [--seed N]\n\
                              [--workers N] [--queue-capacity N] [--policy block|shed]\n\
                              [--max-campaigns N] [--max-visits N] [--deadline-ms N]\n\
                              [--storm yes] [--check invariants,tables] [--metrics-out FILE]\n\
                              [--journal-dir DIR] [--flush-every BYTES] [--group-frames N]\n\
           knocktalk snapshot crawl [--snapshots N] [--size N] [--churn R] [--relist R]\n\
                              [--content-churn R] [--seed N] [--workers N] [--full yes]\n\
                              [--store DIR] [--spill DIR] [--journal FILE] [--resume yes]\n\
                              [--kill-frames N] [--kill-mode mid-frame|post-frame]\n\
                              [--metrics-out FILE]\n\
           knocktalk snapshot diff --store DIR [--mode mmap|resident] [--workers N]\n\
                              [--snapshots L1,L2,...] [--out FILE] [--metrics-out FILE]\n\
           knocktalk snapshot gc --store DIR [--keep N]\n\
           knocktalk snapshot fsck --store DIR\n\
           knocktalk health   [--scale quick|standard|paper] [--seed N]\n\
           knocktalk profile  [--scale quick|standard|paper] [--seed N] [--workers N]\n\
           knocktalk help\n\
         \n\
         repro, crawl, and resume also accept:\n\
           --workers N        override the worker-thread count\n\
           --flush-every B    bytes of visit payload between journal FLUSH fsyncs\n\
           --group-frames N   journal frames per group-commit write (1 = unbatched)\n\
           --metrics-out FILE write the campaign's metrics registry in Prometheus\n\
                              text exposition format (worker-count-invariant)\n\
           --trace-out FILE   write the span/event trace (simulated clock) as JSONL\n\
         \n\
         COMMANDS:\n\
           repro     regenerate the paper's tables and figures (all, or one --id);\n\
                     --journal writes a checksummed write-ahead log (KTSTORE2) so a\n\
                     crash can be resumed; --kill-frames N simulates `kill -9` while\n\
                     writing frame N (mid-frame tears it, post-frame dies just after)\n\
           crawl     run one campaign on one OS and print Table-1 statistics\n\
                     (--journal/--kill-frames work here too; resume is study-level);\n\
                     --profile selects how the crawler presents to anti-bot sensors\n\
           bias      crawl the sensor-planted population once per crawler profile and\n\
                     print observed-vs-true local-activity rates with per-archetype\n\
                     confusion cells — the measurement bias a detectable crawler\n\
                     suffers; the table is byte-identical for any --workers\n\
           resume    replay a study journal, re-run only what the crash lost, and\n\
                     print the tables — byte-identical to a run that never crashed\n\
           fsck      store doctor: scan a journal for torn tails, bad CRCs, duplicate\n\
                     and orphan records; --repair yes quarantines the damage and\n\
                     rewrites a clean journal (fsync-before-rename)\n\
           analyze   load a telemetry snapshot (KTSTORE1) or journal (KTSTORE2)\n\
                     and report local activity\n\
           classify  analyse a Chrome NetLog JSON capture for local traffic\n\
           entropy   measure the fingerprinting entropy of the observed scans\n\
           scan      actively knock loopback (and LAN) ports on a simulated machine:\n\
                     TCP plus optional UDP and IPv6 sweeps, ordered knock sequences,\n\
                     shared retry/backoff policy, per-host circuit breakers, and a\n\
                     total deadline budget that degrades to an explicit unprobed set;\n\
                     results are byte-identical for any --concurrency; --fault-rate R\n\
                     arms a seeded fault storm; --agreement yes cross-validates the\n\
                     active scan against the passive 20 s capture window and prints\n\
                     the per-class agreement matrix\n\
           serve     run a synthetic multi-tenant fleet through the resident campaign\n\
                     service (admission control, bounded queues, deadline budgets);\n\
                     --storm yes arms a deterministic fault storm, --check fails the\n\
                     exit code unless degradation was deterministic and accounted\n\
           snapshot  the longitudinal engine. `crawl` runs an N-snapshot series over a\n\
                     churning top list: snapshot 0 is crawled in full, later snapshots\n\
                     recrawl only changed or newly-listed sites and link unchanged rows\n\
                     by content reference (--full yes forces full recrawls). --store DIR\n\
                     persists the content-addressed dedup store: sealed chunks-NNNN.ktc\n\
                     segment files (KTSNAP1 frames: hash, length, canonical record\n\
                     bytes) plus a refcounted MANIFEST.json mapping each snapshot's\n\
                     (domain, os) rows to chunk hashes — identical content across\n\
                     snapshots is stored once. `diff` streams N manifests shard-parallel\n\
                     (zero-copy mmap by default) and prints adoption curves, behaviour\n\
                     churn matrices, and population flows, byte-identical for any\n\
                     --workers. `gc` drops all but the newest --keep snapshots, sweeps\n\
                     unreferenced chunks, and rewrites the store compacted. `fsck`\n\
                     re-hashes every chunk and reconciles refcounts; a damaged store\n\
                     fails the exit code\n\
           health    run the study and print the crawl health report\n\
                     (retries, recrawls, recoveries, quarantines per campaign/OS)\n\
           profile   run the study under the stage profiler and print per-stage\n\
                     real time, simulated time, and allocator traffic"
    );
}

fn study_config(opts: &Options) -> Result<StudyConfig, String> {
    let seed = opts.get_u64("seed", 0x00C0_FFEE)?;
    let mut config = match opts.get("scale").unwrap_or("quick") {
        "quick" => StudyConfig::quick(seed),
        "standard" => StudyConfig::standard(seed),
        "paper" => StudyConfig::paper(seed),
        other => return Err(format!("unknown --scale {other:?}")),
    };
    if let Some(workers) = opts.get("workers") {
        config.workers = workers
            .parse::<usize>()
            .ok()
            .filter(|&w| w >= 1)
            .ok_or_else(|| format!("flag --workers expects a positive integer, got {workers:?}"))?;
    }
    Ok(config)
}

/// Build a [`Trace`] when `--metrics-out` or `--trace-out` asks for
/// one; campaigns run unobserved otherwise.
fn trace_from_opts(opts: &Options) -> Option<Trace> {
    (opts.get("metrics-out").is_some() || opts.get("trace-out").is_some()).then(Trace::new)
}

/// Write the requested observability artefacts: Prometheus text
/// exposition to `--metrics-out`, the JSONL span/event trace to
/// `--trace-out`.
fn write_trace_outputs(opts: &Options, trace: Option<&Trace>) -> Result<(), String> {
    let Some(trace) = trace else { return Ok(()) };
    if let Some(path) = opts.get("metrics-out") {
        std::fs::write(path, trace.export_prometheus())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("metrics written to {path}");
    }
    if let Some(path) = opts.get("trace-out") {
        std::fs::write(path, trace.export_trace_jsonl())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("trace written to {path}");
    }
    Ok(())
}

/// Build a [`JournalConfig`] from `--flush-every` (bytes of visit
/// payload between FLUSH-marker fsyncs) and `--group-frames` (buffered
/// frames per batched write; 1 disables group commit). Defaults leave
/// the writer's stock cadence untouched.
fn journal_config_from_opts(opts: &Options) -> Result<JournalConfig, String> {
    let mut config = JournalConfig::default();
    if let Some(bytes) = opts.get("flush-every") {
        let bytes: u64 = bytes
            .parse()
            .map_err(|_| format!("flag --flush-every expects bytes, got {bytes:?}"))?;
        if bytes == 0 {
            return Err("--flush-every must be positive".to_string());
        }
        config.flush_every_bytes = bytes;
    }
    if let Some(frames) = opts.get("group-frames") {
        let frames: u64 = frames
            .parse()
            .map_err(|_| format!("flag --group-frames expects an integer, got {frames:?}"))?;
        if frames == 0 {
            return Err("--group-frames must be positive (1 disables batching)".to_string());
        }
        config.group_max_frames = frames;
    }
    Ok(config)
}

/// Build a journal writer from `--journal`, arming `--kill-frames` /
/// `--kill-mode` when given. `Ok(None)` when no journal was requested.
fn journal_from_opts(opts: &Options) -> Result<Option<JournalWriter>, String> {
    let config = journal_config_from_opts(opts)?;
    let Some(path) = opts.get("journal") else {
        if opts.get("kill-frames").is_some() || opts.get("kill-mode").is_some() {
            return Err("--kill-frames/--kill-mode need --journal".to_string());
        }
        return Ok(None);
    };
    let journal = JournalWriter::create_with(std::path::Path::new(path), config)
        .map_err(|e| e.to_string())?;
    if let Some(at) = opts.get("kill-frames") {
        let at_frame: u64 = at
            .parse()
            .map_err(|_| format!("flag --kill-frames expects an integer, got {at:?}"))?;
        let mode = match opts.get("kill-mode").unwrap_or("mid-frame") {
            "mid-frame" => KillMode::MidFrame,
            "post-frame" => KillMode::PostFrame,
            other => return Err(format!("unknown --kill-mode {other:?}")),
        };
        journal.set_kill(Some(KillSpec { at_frame, mode }));
    } else if opts.get("kill-mode").is_some() {
        return Err("--kill-mode needs --kill-frames".to_string());
    }
    Ok(Some(journal))
}

/// Report a simulated crash and how to recover from it. Returns true
/// when the journal was killed (the caller should stop printing).
fn report_if_killed(journal: &JournalWriter) -> bool {
    if !journal.killed() {
        return false;
    }
    let stats = journal.stats();
    eprintln!(
        "simulated crash: process died while journaling (frame {}, {} bytes on disk)",
        stats.frames, stats.bytes
    );
    eprintln!(
        "recover with: knocktalk resume {} (or inspect with: knocktalk fsck {})",
        journal.path().display(),
        journal.path().display()
    );
    true
}

/// `knocktalk repro`.
pub fn repro(opts: &Options) -> Result<(), String> {
    let config = study_config(opts)?;
    let journal = journal_from_opts(opts)?;
    let trace = trace_from_opts(opts);
    let study = Study::run_journaled_observed(config, journal.as_ref(), trace.as_ref());
    write_trace_outputs(opts, trace.as_ref())?;
    if let Some(journal) = &journal {
        if report_if_killed(journal) {
            return Ok(());
        }
        let stats = journal.stats();
        eprintln!(
            "journaled {} visit frames, {} checkpoints, {} bytes, {} fsyncs to {}",
            stats.visits,
            stats.checkpoints,
            stats.bytes,
            stats.fsyncs,
            journal.path().display()
        );
    }
    match opts.get("id") {
        Some(id) => {
            let text = study
                .experiment(id)
                .ok_or_else(|| format!("unknown experiment id {id:?}"))?;
            println!("{text}");
        }
        None => {
            for (id, text) in study.all_experiments() {
                println!("=== [{id}] ===\n{text}");
            }
            for id in knock_talk::experiments::EXTENDED_IDS {
                if let Some(text) = study.experiment(id) {
                    println!("=== [{id}] (extension) ===\n{text}");
                }
            }
        }
    }
    Ok(())
}

fn parse_os(s: &str) -> Result<Os, String> {
    match s.to_ascii_lowercase().as_str() {
        "windows" | "w" => Ok(Os::Windows),
        "linux" | "l" => Ok(Os::Linux),
        "mac" | "macos" | "m" => Ok(Os::MacOs),
        other => Err(format!("unknown --os {other:?}")),
    }
}

/// `knocktalk crawl`.
pub fn crawl(opts: &Options) -> Result<(), String> {
    use knock_talk::crawler::{CrawlConfig, CrawlJob, ResumePlan};
    use knock_talk::store::TelemetryStore;
    use knock_talk::webgen::WebPopulation;

    let config = study_config(opts)?;
    let os = parse_os(opts.get("os").unwrap_or("linux"))?;
    let population = WebPopulation::generate(config.population);
    let jobs: Vec<CrawlJob> = population
        .sites2020
        .iter()
        .map(|site| CrawlJob {
            site,
            malicious_category: None,
        })
        .collect();
    let store = TelemetryStore::new();
    let mut crawl_config = CrawlConfig::paper(CrawlId::top2020(), os, config.population.seed);
    crawl_config.workers = config.workers;
    if let Some(name) = opts.get("profile") {
        crawl_config.profile =
            knock_talk::webgen::CrawlerProfile::parse(name).ok_or_else(|| {
                format!("unknown --profile {name:?} (naive|headless-patched|stealth|human-replay)")
            })?;
    }
    let journal = journal_from_opts(opts)?;
    let trace = trace_from_opts(opts);
    let stats = knock_talk::crawler::run_crawl_resumed_observed(
        &jobs,
        &ResumePlan::fresh(jobs.len()),
        &crawl_config,
        &store,
        journal.as_ref(),
        trace.as_ref(),
    );
    if let Some(journal) = &journal {
        journal.sync();
        if let Some(t) = trace.as_ref() {
            knock_talk::record_journal_stats(t, &journal.stats());
        }
        if report_if_killed(journal) {
            write_trace_outputs(opts, trace.as_ref())?;
            return Ok(());
        }
        let jstats = journal.stats();
        eprintln!(
            "journaled {} visit frames ({} bytes, {} fsyncs) to {}",
            jstats.visits,
            jstats.bytes,
            jstats.fsyncs,
            journal.path().display()
        );
    }
    println!(
        "crawled {} pages on {}: {} ok ({:.1}%), {} failed",
        stats.attempted,
        os.name(),
        stats.successful,
        stats.success_rate() * 100.0,
        stats.failed()
    );
    for (name, count) in stats.table1_errors() {
        println!("  {name:<18} {count}");
    }
    let analysis = knock_talk::analysis::par::analyze_crawl_traced(
        &store,
        &CrawlId::top2020(),
        crawl_config.workers,
        trace.as_ref(),
    );
    println!(
        "locally-active sites: {} localhost, {} LAN",
        analysis.sites.iter().filter(|s| s.has_localhost()).count(),
        analysis.sites.iter().filter(|s| s.has_lan()).count()
    );
    if let Some(path) = opts.get("save") {
        let report = knock_talk::store::save(&store, std::path::Path::new(path))
            .map_err(|e| e.to_string())?;
        if let Some(t) = trace.as_ref() {
            knock_talk::record_save_report(t, &report);
        }
        println!(
            "saved {} visit records ({} bytes, {} fsyncs) to {path}",
            report.records, report.bytes, report.fsyncs
        );
    }
    write_trace_outputs(opts, trace.as_ref())?;
    Ok(())
}

/// `knocktalk bias`: crawl the sensor-planted population once per
/// crawler profile and print the observed-vs-true bias table.
pub fn bias(opts: &Options) -> Result<(), String> {
    use knock_talk::analysis::{record_bias_metrics, run_bias_sweep, BiasConfig};
    use knock_talk::trace::metrics::Registry;
    use knock_talk::trace::names::describe_defaults;

    let seed = opts.get_u64("seed", 0x00C0_FFEE)?;
    let workers = opts.get_u64("workers", 4)?.max(1) as usize;
    let report = run_bias_sweep(&BiasConfig { seed, workers });
    let rendered = report.render();
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("bias table written to {path}");
        }
        None => print!("{rendered}"),
    }
    if let Some(path) = opts.get("metrics-out") {
        let mut reg = Registry::new();
        describe_defaults(&mut reg);
        record_bias_metrics(&report, &mut reg);
        std::fs::write(path, reg.render_prometheus())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("metrics written to {path}");
    }
    Ok(())
}

/// `knocktalk analyze <store.ktstore>`.
pub fn analyze(opts: &Options) -> Result<(), String> {
    let path = opts
        .positional()
        .first()
        .ok_or("analyze needs a snapshot file path")?;
    let report =
        knock_talk::store::load_any(std::path::Path::new(path)).map_err(|e| e.to_string())?;
    if report.truncated || report.corrupt > 0 {
        eprintln!(
            "note: loaded {} records ({} corrupt skipped, truncated: {})",
            report.loaded, report.corrupt, report.truncated
        );
    }
    // One parallel single-decode pass per crawl in the snapshot.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    for crawl in report.store.crawl_ids() {
        let analysis = knock_talk::analysis::par::analyze_crawl_par(&report.store, &crawl, workers);
        let active: Vec<_> = analysis
            .sites
            .iter()
            .filter(|s| s.has_localhost() || s.has_lan())
            .collect();
        println!(
            "[{}] {} visits, {} locally-active sites:",
            crawl.as_str(),
            analysis.visits,
            active.len()
        );
        for site in active {
            println!(
                "  {:<40} {:<20} localhost on {}, LAN on {}",
                site.domain,
                classify_site(site).label(),
                site.localhost_os,
                site.lan_os
            );
        }
    }
    Ok(())
}

/// `knocktalk classify <netlog.json>`.
pub fn classify(opts: &Options) -> Result<(), String> {
    let path = opts
        .positional()
        .first()
        .ok_or("classify needs a capture file path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let capture = Capture::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    if capture.truncated {
        eprintln!(
            "note: capture was truncated; recovered {} events ({} skipped)",
            capture.len(),
            capture.skipped
        );
    }
    let record = VisitRecord {
        crawl: CrawlId(("cli").to_string()),
        domain: opts.get("domain").unwrap_or("capture").to_string(),
        rank: None,
        malicious_category: None,
        os: parse_os(opts.get("os").unwrap_or("linux"))?,
        outcome: LoadOutcome::Success,
        loaded_at_ms: opts.get_u64("loaded-at", 0)?,
        events: capture.events,
    };
    let sites = aggregate_sites(std::slice::from_ref(&record));
    if sites.is_empty() {
        println!("no locally-destined requests found");
        return Ok(());
    }
    for site in &sites {
        let app = native_app_name(site)
            .map(|n| format!(" ({n})"))
            .unwrap_or_default();
        println!(
            "{}: {} local request(s), class: {}{app}",
            site.domain,
            site.observations.len(),
            classify_site(site).label()
        );
        for obs in &site.observations {
            println!(
                "  t={:>6}ms  {:<6} {:<40} [{}{}]",
                obs.time_ms,
                obs.scheme.to_string(),
                obs.url.to_string(),
                obs.locality.label(),
                if obs.via_redirect {
                    ", via redirect"
                } else {
                    ""
                },
            );
        }
    }
    Ok(())
}

/// `knocktalk resume <study.ktj>`.
pub fn resume(opts: &Options) -> Result<(), String> {
    let path = opts
        .positional()
        .first()
        .ok_or("resume needs a journal file path")?;
    let path = std::path::Path::new(path);
    // Damage summary first, so the operator sees what the crash cost
    // before the re-run starts.
    let replayed = knock_talk::store::replay(path).map_err(|e| e.to_string())?;
    let durability = knock_talk::analysis::report::DurabilityReport::from_replay(&replayed);
    eprint!("{}", durability.render());
    drop(replayed);
    let trace = trace_from_opts(opts);
    let study = Study::resume_observed(path, trace.as_ref()).map_err(|e| e.to_string())?;
    write_trace_outputs(opts, trace.as_ref())?;
    match opts.get("id") {
        Some(id) => {
            let text = study
                .experiment(id)
                .ok_or_else(|| format!("unknown experiment id {id:?}"))?;
            println!("{text}");
        }
        None => {
            for (id, text) in study.all_experiments() {
                println!("=== [{id}] ===\n{text}");
            }
        }
    }
    Ok(())
}

/// `knocktalk fsck <journal.ktj> [--repair yes]`.
pub fn fsck(opts: &Options) -> Result<(), String> {
    let path = opts
        .positional()
        .first()
        .ok_or("fsck needs a journal file path")?;
    let repair = matches!(opts.get("repair"), Some("yes" | "true" | "1"));
    let report = knock_talk::store::fsck(
        std::path::Path::new(path),
        FsckOptions {
            repair,
            ..FsckOptions::default()
        },
    )
    .map_err(|e| e.to_string())?;
    println!(
        "{path}: {} frames ({} visits, {} checkpoints)",
        report.frames, report.visits, report.checkpoints
    );
    if report.clean() {
        println!("  clean: every frame CRC-valid, tail complete, no duplicate or orphan records");
        return Ok(());
    }
    println!(
        "  damage: {} corrupt frame(s) / {} byte(s), torn tail: {} ({} tail byte(s))",
        report.corrupt_frames, report.corrupt_bytes, report.truncated_tail, report.tail_bytes
    );
    println!(
        "  records: {} duplicate final(s), {} orphan(s), {} missing vs checkpoints",
        report.duplicate_finals, report.orphan_records, report.missing_records
    );
    match (&report.repaired_path, &report.quarantine_path) {
        (Some(clean), Some(quarantine)) => {
            println!(
                "  repaired: clean journal rewritten in place ({}); {} damaged byte(s) quarantined to {}",
                clean.display(),
                report.quarantined_bytes,
                quarantine.display()
            );
        }
        (Some(clean), None) => {
            println!(
                "  repaired: clean journal rewritten in place ({})",
                clean.display()
            );
        }
        _ => println!("  run with --repair yes to quarantine damage and rewrite a clean journal"),
    }
    Ok(())
}

/// `knocktalk health`.
pub fn health(opts: &Options) -> Result<(), String> {
    let study = Study::run(study_config(opts)?);
    println!("{}", knock_talk::experiments::health_report(&study));
    Ok(())
}

/// `knocktalk profile`: run the full study under the stage profiler
/// and print the per-stage time/allocation breakdown.
pub fn profile(opts: &Options) -> Result<(), String> {
    let config = study_config(opts)?;
    let trace = trace_from_opts(opts);
    let mut profiler = knock_talk::trace::StageProfiler::new();
    let study = knock_talk::profile_study(config, &mut profiler, trace.as_ref());
    write_trace_outputs(opts, trace.as_ref())?;
    println!(
        "profiled study: seed {}, {} workers, {} visit records",
        study.config.population.seed,
        study.config.workers,
        study.store.len()
    );
    print!("{}", profiler.render_table());
    Ok(())
}

/// `knocktalk serve`: run a synthetic multi-tenant fleet through the
/// resident campaign service and report how it degraded.
///
/// The fleet is entirely deterministic: `--tenants` tenants each
/// submit `--campaigns` campaigns of `--sites` sites, with optional
/// per-tenant quotas creating admission pressure and `--storm yes`
/// arming every service and crawl fault class at once (including
/// [`knock_talk::faults::Fault::TenantBurst`], which deterministically
/// picks tenant submission slots to double-submit). `--check
/// invariants` re-runs the identical fleet single-threaded and fails
/// unless the shed set, accounting, and metrics come out byte-equal;
/// `--check tables` replays every completed campaign through the batch
/// pipeline and fails unless the service's online-aggregated tables
/// match. `--check invariants,tables` does both.
pub fn serve(opts: &Options) -> Result<(), String> {
    use knock_talk::analysis::analyze_crawl_par;
    use knock_talk::crawler::{run_crawl, CrawlConfig, CrawlJob};
    use knock_talk::faults::{Fault, FaultPlan};
    use knock_talk::service::{
        CampaignHandle, CampaignService, CampaignSpec, CampaignStatus, OverflowPolicy,
        ServiceConfig, ServiceJob, TenantQuota,
    };
    use knock_talk::store::TelemetryStore;
    use knock_talk::webgen::{PopulationConfig, WebPopulation, WebSite};

    let seed = opts.get_u64("seed", 0x00C0_FFEE)?;
    let tenants = opts.get_u64("tenants", 3)?.max(1) as usize;
    let campaigns = opts.get_u64("campaigns", 3)?.max(1) as usize;
    let sites_per = opts.get_u64("sites", 6)?.max(1) as usize;
    let workers = opts.get_u64("workers", 4)?.max(1) as usize;
    let queue_capacity = opts.get_u64("queue-capacity", 2)?.max(1) as usize;
    let deadline_ms = opts.get_u64("deadline-ms", 0)?;
    let max_campaigns = opts.get_u64("max-campaigns", 0)? as usize;
    let max_visits = opts.get_u64("max-visits", 0)? as usize;
    let policy = match opts.get("policy").unwrap_or("shed") {
        "block" => OverflowPolicy::Block,
        "shed" => OverflowPolicy::Shed,
        other => return Err(format!("unknown --policy {other:?} (block|shed)")),
    };
    let storm = matches!(
        opts.get("storm").unwrap_or("no"),
        "yes" | "on" | "true" | "1"
    );
    let journal_dir = opts.get("journal-dir").map(std::path::PathBuf::from);
    let journal_config = journal_config_from_opts(opts)?;
    let quota = TenantQuota {
        max_campaigns: if max_campaigns == 0 {
            usize::MAX
        } else {
            max_campaigns
        },
        max_inflight_visits: if max_visits == 0 {
            usize::MAX
        } else {
            max_visits
        },
    };
    let mut faults = FaultPlan::none(seed);
    if storm {
        faults = faults
            .with_rate(Fault::QueueOverflow, 0.35)
            .with_rate(Fault::SlowConsumer, 0.35)
            .with_rate(Fault::TenantBurst, 0.50)
            .with_rate(Fault::DnsFlap, 0.25)
            .with_rate(Fault::ConnectionReset, 0.20)
            .with_rate(Fault::WorkerPanic, 0.15);
    }

    let population = WebPopulation::generate(PopulationConfig::test_scale(seed));
    let pool = &population.sites2020;
    let slice = |index: usize| -> Vec<WebSite> {
        let start = (index * sites_per) % pool.len().saturating_sub(sites_per).max(1);
        pool[start..(start + sites_per).min(pool.len())].to_vec()
    };
    let spec_for = |tenant: usize, campaign: usize, burst: bool| -> CampaignSpec {
        let suffix = if burst { "-burst" } else { "" };
        CampaignSpec {
            crawl: CrawlId(format!("t{tenant}-c{campaign}{suffix}")),
            os: Os::ALL[(tenant + campaign) % Os::ALL.len()],
            jobs: slice(
                tenant * campaigns + campaign + if burst { tenants * campaigns } else { 0 },
            )
            .into_iter()
            .map(|site| ServiceJob {
                site,
                malicious_category: None,
            })
            .collect(),
            deadline_ms: (deadline_ms > 0).then_some(deadline_ms),
            nominal_workers: workers,
        }
    };
    // The whole fleet, parameterised on executor width so `--check
    // invariants` can replay it single-threaded and byte-compare.
    let run_fleet = |executors: usize| -> (CampaignService, Vec<(String, CampaignHandle)>) {
        let mut config = ServiceConfig::new(seed);
        config.workers = executors;
        config.queue_capacity = queue_capacity;
        config.drain_ms_per_update = 60_000;
        config.slow_consumer_stall_ms = 120_000;
        config.faults = faults.clone();
        config.journal_dir = journal_dir.clone();
        config.journal_config = journal_config;
        let mut service = CampaignService::new(config);
        for t in 0..tenants {
            service.register_tenant(&format!("tenant-{t}"), quota, policy);
        }
        let mut handles = Vec::new();
        for t in 0..tenants {
            let tenant = format!("tenant-{t}");
            for c in 0..campaigns {
                let spec = spec_for(t, c, false);
                let name = spec.crawl.as_str().to_string();
                if let Ok(handle) = service.submit(&tenant, spec) {
                    handles.push((name, handle));
                }
                // A bursting tenant double-submits this slot — keyed
                // on (tenant identity, slot), not on timing.
                if faults.injects(Fault::TenantBurst, &tenant, c as u32) {
                    let spec = spec_for(t, c, true);
                    let name = spec.crawl.as_str().to_string();
                    if let Ok(handle) = service.submit(&tenant, spec) {
                        handles.push((name, handle));
                    }
                }
            }
        }
        service.run();
        (service, handles)
    };
    let fingerprint = |service: &CampaignService, handles: &[(String, CampaignHandle)]| -> String {
        let trace = Trace::new();
        service.record_metrics(&trace);
        let statuses: Vec<String> = handles
            .iter()
            .map(|(name, h)| {
                format!(
                    "{name}:{:?}/{}",
                    service.status(*h).expect("known handle"),
                    service.campaign_updates_shed(*h)
                )
            })
            .collect();
        format!(
            "{statuses:?}\n{:?}\n{}",
            service.accounting(),
            trace.export_prometheus()
        )
    };

    let (service, handles) = run_fleet(workers);
    println!(
        "fleet: {tenants} tenants x {campaigns} campaigns x {sites_per} sites, \
         {workers} executors, queue {queue_capacity}, policy {policy:?}, storm {storm}"
    );
    let mut violations = Vec::new();
    for acc in service.accounting() {
        let rejected: u64 = acc.rejected.values().sum();
        println!(
            "  {:<10} admitted {:>3}  completed {:>3}  deadline-shed {:>2}  drained {:>2}  \
             rejected {:>2}  updates {:>4} (-{} shed)  blocks {:>3}  depth<= {}",
            acc.tenant,
            acc.admitted,
            acc.completed,
            acc.shed,
            acc.drained,
            rejected,
            acc.updates,
            acc.updates_shed,
            acc.queue_blocks,
            acc.queue_high_water
        );
        if !acc.reconciles() {
            violations.push(format!(
                "{}: admitted {} != completed {} + shed {} + drained {} + in-flight {}",
                acc.tenant, acc.admitted, acc.completed, acc.shed, acc.drained, acc.in_flight
            ));
        }
        if acc.in_flight != 0 {
            violations.push(format!(
                "{}: {} campaigns never drained",
                acc.tenant, acc.in_flight
            ));
        }
    }

    if let Some(path) = opts.get("metrics-out") {
        let trace = Trace::new();
        service.record_metrics(&trace);
        std::fs::write(path, trace.export_prometheus())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("metrics written to {path}");
    }

    let checks: Vec<&str> = opts
        .get("check")
        .map(|c| c.split(',').collect())
        .unwrap_or_default();
    for check in &checks {
        match *check {
            "invariants" => {
                let baseline = fingerprint(&service, &handles);
                let replay_workers = if workers == 1 { 2 } else { 1 };
                let (replayed, replayed_handles) = run_fleet(replay_workers);
                if fingerprint(&replayed, &replayed_handles) != baseline {
                    violations.push(format!(
                        "shed set / accounting / metrics differ between {workers} and \
                         {replay_workers} executors"
                    ));
                } else {
                    println!(
                        "check invariants: ok ({workers} vs {replay_workers} executors byte-equal)"
                    );
                }
            }
            "tables" => {
                let mut compared = 0usize;
                for t in 0..tenants {
                    for c in 0..campaigns {
                        let spec = spec_for(t, c, false);
                        let Some(handle) = handles
                            .iter()
                            .find(|(name, _)| name == spec.crawl.as_str())
                            .map(|(_, h)| *h)
                        else {
                            continue;
                        };
                        if service.status(handle) != Some(CampaignStatus::Completed) {
                            continue;
                        }
                        let sites: Vec<WebSite> =
                            spec.jobs.iter().map(|j| j.site.clone()).collect();
                        let jobs: Vec<CrawlJob<'_>> = sites
                            .iter()
                            .map(|site| CrawlJob {
                                site,
                                malicious_category: None,
                            })
                            .collect();
                        let mut cfg = CrawlConfig::paper(spec.crawl.clone(), spec.os, seed);
                        cfg.workers = spec.nominal_workers;
                        cfg.faults = faults.clone();
                        let batch_store = TelemetryStore::new();
                        run_crawl(&jobs, &cfg, &batch_store);
                        let batch = analyze_crawl_par(&batch_store, &spec.crawl, workers);
                        if service.final_analysis(handle).as_ref() != Some(&batch) {
                            violations.push(format!(
                                "{} tables differ from the batch pipeline",
                                spec.crawl.as_str()
                            ));
                        }
                        compared += 1;
                    }
                }
                println!("check tables: {compared} completed campaigns vs batch pipeline");
            }
            other => return Err(format!("unknown --check {other:?} (invariants|tables)")),
        }
    }
    if violations.is_empty() {
        println!("service degraded cleanly: all tenants reconcile");
        Ok(())
    } else {
        for v in &violations {
            eprintln!("violation: {v}");
        }
        Err(format!("{} invariant violation(s)", violations.len()))
    }
}

/// Parse a comma-separated port list.
fn parse_port_list(list: &str) -> Result<Vec<u16>, String> {
    let ports: Vec<u16> = list
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.parse::<u16>()
                .map_err(|_| format!("bad port {p:?} (expect 1-65535)"))
        })
        .collect::<Result<_, _>>()?;
    if ports.is_empty() {
        return Err("empty port list".to_string());
    }
    Ok(ports)
}

/// A `--flag yes|no` switch with a default.
fn parse_switch(opts: &Options, key: &str, default: bool) -> Result<bool, String> {
    match opts.get(key) {
        None => Ok(default),
        Some("yes") => Ok(true),
        Some("no") => Ok(false),
        Some(other) => Err(format!("flag --{key} expects yes|no, got {other:?}")),
    }
}

/// `knocktalk scan`.
pub fn scan(opts: &Options) -> Result<(), String> {
    use knock_talk::analysis::{
        crossval_population, record_agreement_metrics, run_cross_validation,
    };
    use knock_talk::faults::{Fault, FaultPlan};
    use knock_talk::scanner::{record_scan_metrics, run_scan, Payload, ScanConfig};
    use knock_talk::simnet::{HostEnv, SimNet};
    use knock_talk::trace::metrics::Registry;
    use knock_talk::trace::names::describe_defaults;

    let seed = opts.get_u64("seed", 0x5CA9)?;
    let os = parse_os(opts.get("os").unwrap_or("windows"))?;

    let mut cfg = ScanConfig::new(seed);
    if let Some(list) = opts.get("ports") {
        cfg.ports = parse_port_list(list).map_err(|e| format!("flag --ports: {e}"))?;
    }
    if let Some(list) = opts.get("sequence") {
        cfg.sequences
            .push(parse_port_list(list).map_err(|e| format!("flag --sequence: {e}"))?);
    }
    if let Some(hex) = opts.get("payload") {
        cfg.payload = Some(Payload::from_hex(hex).map_err(|e| format!("flag --payload: {e}"))?);
    }
    cfg.udp = parse_switch(opts, "udp", false)?;
    cfg.ipv6 = parse_switch(opts, "ipv6", false)?;
    cfg.lan = parse_switch(opts, "lan", true)?;
    cfg.workers = opts.get_u64("concurrency", cfg.workers as u64)?.max(1) as usize;
    cfg.timeout_ms = opts.get_u64("timeout-ms", cfg.timeout_ms)?.max(1);
    let default_retries = u64::from(cfg.retry.max_attempts.saturating_sub(1));
    cfg.retry.max_attempts = opts.get_u64("retries", default_retries)? as u32 + 1;
    cfg.breaker.threshold =
        opts.get_u64("breaker-threshold", u64::from(cfg.breaker.threshold))? as u32;
    cfg.breaker.cooldown_ms = opts.get_u64("breaker-cooldown-ms", cfg.breaker.cooldown_ms)?;
    cfg.deadline_ms = opts.get_u64("deadline-ms", cfg.deadline_ms)?.max(1);
    if let Some(rate) = opts.get("fault-rate") {
        let rate: f64 = rate
            .parse()
            .ok()
            .filter(|r| (0.0..=1.0).contains(r))
            .ok_or_else(|| format!("flag --fault-rate expects a number in [0, 1], got {rate:?}"))?;
        cfg.faults = FaultPlan::none(seed)
            .with_rate(Fault::ProbeDrop, rate)
            .with_rate(Fault::ProbeDelay, rate)
            .with_rate(Fault::ConnectionReset, rate)
            .with_rate(Fault::DnsFlap, rate)
            .with_rate(Fault::TruncatedCapture, rate);
    }

    let env = HostEnv::sampled(os, seed ^ os.letter() as u64);
    let net = SimNet::new(seed);
    let mut reg = Registry::new();
    describe_defaults(&mut reg);

    if parse_switch(opts, "agreement", false)? {
        let sites = opts.get_u64("sites", 24)?.max(1) as usize;
        let population = crossval_population(seed, sites);
        let cv = run_cross_validation(&env, &net, &population, &cfg);
        print!("{}", cv.scan.render());
        print!("{}", cv.render());
        record_scan_metrics(&cv.scan, &mut reg);
        record_agreement_metrics(&cv, &mut reg);
    } else {
        let report = run_scan(&env, &net, &cfg);
        print!("{}", report.render());
        record_scan_metrics(&report, &mut reg);
    }

    if let Some(path) = opts.get("metrics-out") {
        std::fs::write(path, reg.render_prometheus())
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("metrics written to {path}");
    }
    Ok(())
}

/// `knocktalk entropy`.
pub fn entropy(opts: &Options) -> Result<(), String> {
    let machines = opts.get_u64("machines", 1_000)? as usize;
    let seed = opts.get_u64("seed", 0xF1)?;
    println!("fingerprinting entropy over {machines} simulated machines:");
    for (label, ports) in [
        ("ThreatMetrix", THREATMETRIX_PORTS.as_slice()),
        ("BIG-IP ASM", BIGIP_PORTS.as_slice()),
    ] {
        for os in Os::ALL {
            let r = scan_entropy(os, ports, machines, seed);
            println!(
                "  {label:<14} {:<8} {:.2} bits, {} distinct profiles",
                os.name(),
                r.shannon_bits,
                r.distinct
            );
        }
    }
    Ok(())
}

/// Parse a fractional flag in `[0, 1]`, with a default.
fn get_fraction(opts: &Options, key: &str, default: f64) -> Result<f64, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse::<f64>()
            .ok()
            .filter(|f| (0.0..=1.0).contains(f))
            .ok_or_else(|| format!("flag --{key} expects a fraction in [0, 1], got {v:?}")),
    }
}

fn snapshot_study_config(opts: &Options) -> Result<SnapshotStudyConfig, String> {
    let seed = opts.get_u64("seed", 0x00C0_FFEE)?;
    let mut config = SnapshotStudyConfig::quick(seed);
    config.series.size = opts.get_u64("size", config.series.size as u64)? as usize;
    config.series.snapshots = opts.get_u64("snapshots", config.series.snapshots as u64)? as usize;
    config.series.churn = get_fraction(opts, "churn", config.series.churn)?;
    config.series.relist_fraction = get_fraction(opts, "relist", config.series.relist_fraction)?;
    config.content_churn = get_fraction(opts, "content-churn", config.content_churn)?;
    config.workers = opts.get_u64("workers", config.workers as u64)?.max(1) as usize;
    config.incremental = !parse_switch(opts, "full", false)?;
    if config.series.size == 0 || config.series.snapshots == 0 {
        return Err("--size and --snapshots must be positive".to_string());
    }
    if let Some(dir) = opts.get("spill") {
        config.spill = Some(SpillConfig::mmap(std::path::Path::new(dir)));
    }
    Ok(config)
}

/// `knocktalk snapshot` — dispatch on the subcommand positional.
pub fn snapshot(opts: &Options) -> Result<(), String> {
    match opts.positional().first().map(String::as_str) {
        Some("crawl") => snapshot_crawl(opts),
        Some("diff") => snapshot_diff(opts),
        Some("gc") => snapshot_gc(opts),
        Some("fsck") => snapshot_fsck_cmd(opts),
        Some(other) => Err(format!(
            "unknown snapshot subcommand {other:?}; expected crawl | diff | gc | fsck"
        )),
        None => Err("snapshot needs a subcommand: crawl | diff | gc | fsck".to_string()),
    }
}

/// `knocktalk snapshot crawl`.
fn snapshot_crawl(opts: &Options) -> Result<(), String> {
    let config = snapshot_study_config(opts)?;
    let trace = trace_from_opts(opts);
    let study = if parse_switch(opts, "resume", false)? {
        let path = opts
            .get("journal")
            .ok_or("--resume yes needs --journal FILE")?;
        SnapshotStudy::resume(std::path::Path::new(path), config, trace.as_ref())
            .map_err(|e| e.to_string())?
    } else {
        let journal = journal_from_opts(opts)?;
        let study = SnapshotStudy::run_journaled_observed(config, journal.as_ref(), trace.as_ref())
            .map_err(|e| e.to_string())?;
        if let Some(j) = &journal {
            if report_if_killed(j) {
                write_trace_outputs(opts, trace.as_ref())?;
                return Ok(());
            }
        }
        study
    };
    println!(
        "longitudinal series: {} snapshots x {} sites ({}% churn)",
        study.series.len(),
        study.config.series.size,
        (study.config.series.churn * 100.0).round()
    );
    println!(
        "  visit work: {} executed / {} full-recrawl ({:.1}% incremental fraction)",
        study.work.executed_visits,
        study.work.full_visits,
        study.work.incremental_fraction() * 100.0
    );
    println!(
        "  store: {} chunks, {} linked rows, {} stored bytes vs {} logical ({:.2}x dedup)",
        study.snapshots.chunk_count(),
        study.work.linked_rows,
        study.snapshots.stored_bytes(),
        study.snapshots.logical_bytes(),
        study.snapshots.dedup_ratio()
    );
    if let Some(dir) = opts.get("store") {
        let report = study
            .snapshots
            .save(std::path::Path::new(dir))
            .map_err(|e| format!("saving snapshot store to {dir}: {e}"))?;
        println!(
            "  saved: {} segment file(s), {} chunk(s), {} manifest row(s) -> {dir}",
            report.segments, report.chunks, report.manifest_entries
        );
    }
    write_trace_outputs(opts, trace.as_ref())
}

/// Open an on-disk snapshot store for `snapshot diff|gc`.
fn open_snapshot_store(opts: &Options) -> Result<(String, SnapshotStore), String> {
    let dir = opts
        .get("store")
        .ok_or("--store DIR is required")?
        .to_string();
    let mode = match opts.get("mode").unwrap_or("mmap") {
        "mmap" => SegmentMode::Mmap,
        "resident" => SegmentMode::Resident,
        other => {
            return Err(format!(
                "unknown --mode {other:?}; expected mmap | resident"
            ))
        }
    };
    let store = SnapshotStore::open(std::path::Path::new(&dir), mode)
        .map_err(|e| format!("opening snapshot store {dir}: {e}"))?;
    Ok((dir, store))
}

/// `knocktalk snapshot diff`.
fn snapshot_diff(opts: &Options) -> Result<(), String> {
    let (_, store) = open_snapshot_store(opts)?;
    let workers = opts.get_u64("workers", 4)?.max(1) as usize;
    let labels: Vec<String> = match opts.get("snapshots") {
        Some(list) => list.split(',').map(str::to_string).collect(),
        None => store.labels().iter().map(|l| l.to_string()).collect(),
    };
    for label in &labels {
        if store.manifest(label).is_none() {
            return Err(format!("snapshot {label:?} not in store"));
        }
    }
    let trace = trace_from_opts(opts);
    let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let diff = knock_talk::analysis::diff_snapshots_traced(&store, &refs, workers, trace.as_ref());
    let rendered = diff.render();
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("diff tables written to {path}");
        }
        None => print!("{rendered}"),
    }
    write_trace_outputs(opts, trace.as_ref())
}

/// `knocktalk snapshot gc`.
fn snapshot_gc(opts: &Options) -> Result<(), String> {
    let (dir, mut store) = open_snapshot_store(opts)?;
    let keep = opts.get_u64("keep", u64::MAX)? as usize;
    if keep == 0 {
        return Err("--keep must be at least 1".to_string());
    }
    let labels: Vec<String> = store.labels().iter().map(|l| l.to_string()).collect();
    let drop_count = labels.len().saturating_sub(keep);
    for label in &labels[..drop_count] {
        store.remove_snapshot(label);
        println!("dropped snapshot {label}");
    }
    let report = store.gc();
    println!(
        "gc: {} chunk(s) reclaimed, {} byte(s); {} snapshot(s) remain",
        report.chunks_dropped,
        report.bytes_reclaimed,
        store.snapshot_count()
    );
    store
        .save(std::path::Path::new(&dir))
        .map_err(|e| format!("rewriting snapshot store {dir}: {e}"))?;
    println!("store rewritten compacted -> {dir}");
    Ok(())
}

/// `knocktalk snapshot fsck`.
fn snapshot_fsck_cmd(opts: &Options) -> Result<(), String> {
    let dir = opts.get("store").ok_or("--store DIR is required")?;
    let report = knock_talk::store::snapshot_fsck(std::path::Path::new(dir))
        .map_err(|e| format!("fsck of snapshot store {dir}: {e}"))?;
    println!(
        "{dir}: {} segment(s), {} chunk(s), {} manifest row(s)",
        report.segments, report.chunks, report.manifest_entries
    );
    if report.clean() {
        println!(
            "  clean: every chunk re-hashes, refcounts reconcile, no dangling or duplicate references"
        );
        return Ok(());
    }
    println!(
        "  damage: {} dangling ref(s), {} duplicate chunk(s), {} hash mismatch(es)",
        report.dangling_refs, report.duplicate_chunks, report.hash_mismatches
    );
    println!(
        "  refcounts: {} mismatch(es), {} orphan chunk(s), {} out-of-bounds entr(ies)",
        report.refcount_mismatches, report.orphan_chunks, report.out_of_bounds
    );
    Err("snapshot store is not clean".to_string())
}
