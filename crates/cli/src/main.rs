//! `knocktalk` — the command-line interface.
//!
//! ```text
//! knocktalk repro    [--scale quick|standard|paper] [--seed N] [--id T5]
//!                    [--journal FILE] [--kill-frames N] [--kill-mode mid-frame|post-frame]
//! knocktalk crawl    [--os windows|linux|mac] [--scale ...] [--seed N] [--save FILE]
//!                    [--profile naive|headless-patched|stealth|human-replay]
//!                    [--journal FILE] [--kill-frames N] [--kill-mode mid-frame|post-frame]
//! knocktalk bias     [--seed N] [--workers N] [--out FILE] [--metrics-out FILE]
//! knocktalk resume   <study.ktj> [--id T5]
//! knocktalk fsck     <journal.ktj> [--repair yes]
//! knocktalk analyze  <store.ktstore|journal.ktj>
//! knocktalk classify <netlog.json> [--loaded-at MS]
//! knocktalk entropy  [--machines N] [--seed N]
//! knocktalk scan     [--os windows|linux|mac] [--seed N] [--ports P,P,...]
//!                    [--sequence P,P,P] [--udp yes] [--ipv6 yes] [--concurrency N]
//!                    [--timeout-ms N] [--retries N] [--breaker-threshold N]
//!                    [--deadline-ms N] [--fault-rate R] [--agreement yes]
//!                    [--metrics-out FILE]
//! knocktalk serve    [--tenants N] [--campaigns N] [--sites N] [--seed N] [--workers N]
//!                    [--queue-capacity N] [--policy block|shed] [--max-campaigns N]
//!                    [--max-visits N] [--deadline-ms N] [--storm yes]
//!                    [--check invariants,tables] [--metrics-out FILE]
//! knocktalk snapshot crawl [--snapshots N] [--size N] [--churn R] [--content-churn R]
//!                    [--seed N] [--workers N] [--full yes] [--store DIR] [--spill DIR]
//!                    [--journal FILE] [--resume yes] [--kill-frames N] [--metrics-out FILE]
//! knocktalk snapshot diff --store DIR [--mode mmap|resident] [--workers N] [--out FILE]
//! knocktalk snapshot gc   --store DIR [--keep N]
//! knocktalk snapshot fsck --store DIR
//! knocktalk health   [--scale quick|standard|paper] [--seed N]
//! knocktalk profile  [--scale quick|standard|paper] [--seed N] [--workers N]
//! knocktalk help
//! ```
//!
//! `repro`, `crawl`, and `resume` additionally accept `--workers N`,
//! `--metrics-out FILE` (Prometheus text exposition of the campaign's
//! metrics registry) and `--trace-out FILE` (JSONL span/event trace
//! over the simulated clock).
//!
//! `classify` is the downstream-facing subcommand: point it at a JSON
//! capture from `chrome://net-export` (or from this library) and it
//! prints every locally-destined request plus the behaviour class the
//! site's traffic matches — the paper's §4 analysis, one file at a
//! time. Argument parsing is hand-rolled (the workspace's dependency
//! policy keeps the tree small).

use std::process::ExitCode;

mod args;
mod commands;

// Feeds `knocktalk profile`'s per-stage allocation columns; a
// pass-through to the system allocator everywhere else.
#[global_allocator]
static GLOBAL: knock_talk::trace::CountingAllocator = knock_talk::trace::CountingAllocator;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        commands::help();
        return ExitCode::SUCCESS;
    };
    let opts = match args::Options::parse(rest) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "repro" => commands::repro(&opts),
        "crawl" => commands::crawl(&opts),
        "bias" => commands::bias(&opts),
        "resume" => commands::resume(&opts),
        "fsck" => commands::fsck(&opts),
        "analyze" => commands::analyze(&opts),
        "classify" => commands::classify(&opts),
        "entropy" => commands::entropy(&opts),
        "scan" => commands::scan(&opts),
        "serve" => commands::serve(&opts),
        "snapshot" => commands::snapshot(&opts),
        "health" => commands::health(&opts),
        "profile" => commands::profile(&opts),
        "help" | "--help" | "-h" => {
            commands::help();
            Ok(())
        }
        other => Err(format!("unknown command {other:?}; try `knocktalk help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
