//! # kt-store
//!
//! The embedded telemetry store standing in for the paper's 11 TB
//! crawl database (§3.2: "We parse and store the network logs in a
//! database for efficient querying").
//!
//! * [`codec`] — a compact varint-based binary encoding for visit
//!   records (a NetLog event costs a handful of bytes instead of the
//!   ~200 bytes of its JSON form);
//! * [`record`] — the [`VisitRecord`]: one (crawl, domain, OS) visit
//!   with its load outcome and events;
//! * [`store`] — [`TelemetryStore`]: append-only segments plus an
//!   in-memory index by crawl/domain/OS, safe for concurrent append
//!   from crawl workers, with full-scan and indexed query paths (the
//!   ablation benches compare the two);
//! * [`persist`] — dump/load the store to a length-prefixed snapshot
//!   file, with truncation recovery and corrupt-record skipping;
//! * [`journal`] — the `KTSTORE2` write-ahead log: per-visit CRC32
//!   frames, campaign checkpoints, deterministic crash-point
//!   injection, replay/resume, and the `fsck` store doctor, with
//!   group-commit frame batching behind [`journal::JournalConfig`];
//! * [`segment`] — memory-mapped sealed segments: spill a sealed
//!   segment to disk and serve it back through the zero-copy `Bytes`
//!   API via `mmap` (with an explicit resident fallback);
//! * [`snapshot`] — the content-addressed [`SnapshotStore`] for
//!   longitudinal series: identical visit records across snapshots are
//!   stored once, manifests link unchanged sites by reference, and
//!   [`snapshot_fsck`] audits the on-disk chunk layout.

#![warn(missing_docs)]

pub mod codec;
pub mod journal;
pub mod persist;
pub mod record;
pub mod segment;
pub mod snapshot;
pub mod store;

pub use codec::{decode_view, VisitView};
pub use journal::{
    fsck, replay, CheckpointFrame, FsckOptions, FsckReport, JournalConfig, JournalError,
    JournalMeta, JournalStats, JournalWriter, KillMode, KillSpec, ReplayReport, ReplayedVisit,
    VisitDelta,
};
pub use persist::{load, load_any, save, LoadReport, PersistError, SaveReport};
pub use record::{CrawlId, LoadOutcome, VisitRecord};
pub use segment::{SegmentMode, SpillConfig};
pub use snapshot::{
    canonical_bytes, os_slot, shard_of, slot_os, snapshot_fsck, ContentHash, GcReport,
    IngestOutcome, ManifestEntry, SnapshotFsckReport, SnapshotManifest, SnapshotSaveReport,
    SnapshotStore, CANONICAL_CRAWL, SNAPSHOT_SHARDS,
};
pub use store::TelemetryStore;
